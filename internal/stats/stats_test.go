package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestStd(t *testing.T) {
	// Known sample: [2,4,4,4,5,5,7,9] has sample std ≈ 2.138.
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1381) > 1e-3 {
		t.Fatalf("Std = %v, want ≈2.138", got)
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("Std of single value should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{1, 3, 9}); got != 3 {
		t.Fatalf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{1, 3, 5, 9}); got != 4 {
		t.Fatalf("even Median = %v, want 4", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %v, want 0", got)
	}
}

func TestMedianOfDoesNotMutate(t *testing.T) {
	vs := []float64{9, 1, 5}
	if got := MedianOf(vs); got != 5 {
		t.Fatalf("MedianOf = %v, want 5", got)
	}
	if vs[0] != 9 || vs[1] != 1 {
		t.Fatal("MedianOf mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 || s.Mean != 2.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("String = %q", s.String())
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty Summarize should be zero")
	}
}

func TestRepeatTimed(t *testing.T) {
	calls := 0
	s := RepeatTimed(5, func() { calls++ })
	if calls != 5 || s.N != 5 {
		t.Fatalf("calls=%d N=%d", calls, s.N)
	}
	if s.Min < 0 {
		t.Fatal("negative duration")
	}
	if RepeatTimed(0, func() { t.Fatal("must not run") }).N != 0 {
		t.Fatal("zero reps should be empty")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive values should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty should yield 0")
	}
}

// Property: min ≤ median ≤ max and min ≤ mean ≤ max for any sample.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.NormFloat64() * 100
		}
		s := Summarize(vs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Std is shift-invariant and scale-equivariant.
func TestStdPropertiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		vs := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		shift := r.NormFloat64() * 50
		scale := 1 + r.Float64()*5
		for i := range vs {
			vs[i] = r.NormFloat64() * 10
			shifted[i] = vs[i] + shift
			scaled[i] = vs[i] * scale
		}
		base := Std(vs)
		if math.Abs(Std(shifted)-base) > 1e-6*(1+base) {
			return false
		}
		return math.Abs(Std(scaled)-scale*base) < 1e-6*(1+scale*base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
