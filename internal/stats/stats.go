// Package stats provides the small descriptive-statistics toolkit the
// benchmark harness uses to report repeated measurements robustly: means,
// medians, standard deviations, and repeat-measurement summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary over vs. An empty slice yields a zero
// Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs)}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Median(sorted)
	s.Mean = Mean(vs)
	s.Std = Std(vs)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g median=%.4g [%.4g, %.4g]",
		s.N, s.Mean, s.Std, s.Median, s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Std returns the sample standard deviation (0 for fewer than 2 values).
func Std(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var sq float64
	for _, v := range vs {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(vs)-1))
}

// Median returns the median of a *sorted* slice (0 for an empty slice).
func Median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MedianOf sorts a copy of vs and returns its median.
func MedianOf(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	return Median(sorted)
}

// RepeatTimed runs fn reps times and returns a Summary of the wall-clock
// seconds per run. Benchmarking loops use the median to damp scheduler
// noise on shared hosts.
func RepeatTimed(reps int, fn func()) Summary {
	if reps < 1 {
		return Summary{}
	}
	secs := make([]float64, reps)
	for i := range secs {
		start := time.Now()
		fn()
		secs[i] = time.Since(start).Seconds()
	}
	return Summarize(secs)
}

// GeoMean returns the geometric mean of positive values; it returns 0 if
// any value is non-positive or the slice is empty. Used for aggregating
// speedup ratios.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}
