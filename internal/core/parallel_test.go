package core

import (
	"bytes"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/profiler"
)

// runEpisodesCollect trains tr for episodes full episodes and returns each
// completed episode's mean reward.
func runEpisodesCollect(t *testing.T, tr *Trainer, episodes int) []float64 {
	t.Helper()
	rewards := make([]float64, 0, episodes)
	tr.RunEpisodes(episodes, func(_ int, r float64) {
		rewards = append(rewards, r)
	})
	return rewards
}

// trainerStateBytes serializes tr's full state for bit-level comparison.
func trainerStateBytes(t *testing.T, tr *Trainer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSerialParallelDeterminism is the headline guarantee of the parallel
// update engine: the same seed trained with UpdateWorkers=1 and
// UpdateWorkers=8 produces bit-identical network parameters and episode
// rewards after 50 episodes on cooperative navigation with 3 agents.
func TestSerialParallelDeterminism(t *testing.T) {
	const episodes = 50
	run := func(workers int) ([]float64, []byte) {
		cfg := smallConfig(MADDPG)
		cfg.UpdateWorkers = workers
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		rewards := runEpisodesCollect(t, tr, episodes)
		return rewards, trainerStateBytes(t, tr)
	}

	serialRewards, serialState := run(1)
	parallelRewards, parallelState := run(8)

	if len(serialRewards) != episodes || len(parallelRewards) != episodes {
		t.Fatalf("got %d/%d episode rewards, want %d", len(serialRewards), len(parallelRewards), episodes)
	}
	for i := range serialRewards {
		if serialRewards[i] != parallelRewards[i] {
			t.Fatalf("episode %d reward diverged: serial %v, parallel %v", i, serialRewards[i], parallelRewards[i])
		}
	}
	if !bytes.Equal(serialState, parallelState) {
		t.Fatal("serial and parallel checkpoints are not bit-identical")
	}
}

// TestSerialParallelDeterminismMATD3 covers the MATD3-specific parallel
// surfaces: target policy smoothing noise (drawn from per-agent RNG
// streams), the twin critics, and the policy-delay flag shared with the
// worker pool.
func TestSerialParallelDeterminismMATD3(t *testing.T) {
	const episodes = 20
	run := func(workers int) ([]float64, []byte) {
		cfg := smallConfig(MATD3)
		cfg.UpdateWorkers = workers
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		rewards := runEpisodesCollect(t, tr, episodes)
		return rewards, trainerStateBytes(t, tr)
	}
	serialRewards, serialState := run(1)
	parallelRewards, parallelState := run(8)
	for i := range serialRewards {
		if serialRewards[i] != parallelRewards[i] {
			t.Fatalf("episode %d reward diverged: serial %v, parallel %v", i, serialRewards[i], parallelRewards[i])
		}
	}
	if !bytes.Equal(serialState, parallelState) {
		t.Fatal("serial and parallel MATD3 checkpoints are not bit-identical")
	}
}

// TestParallelPriorityFeedbackDeterminism exercises the batched
// priority-feedback path for every prioritized sampler: concurrent workers
// sample from the shared priority state while TD errors are parked
// per-agent, and the post-join application must leave the sampler in the
// same state as a serial run. Under -race this doubles as the concurrent
// priority-feedback race test.
func TestParallelPriorityFeedbackDeterminism(t *testing.T) {
	for _, kind := range []SamplerKind{SamplerPER, SamplerIPLocality, SamplerRankPER} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const episodes = 12
			run := func(workers int) ([]float64, []byte) {
				cfg := smallConfig(MADDPG)
				cfg.Sampler = kind
				cfg.UpdateWorkers = workers
				tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
				if err != nil {
					t.Fatal(err)
				}
				defer tr.Close()
				rewards := runEpisodesCollect(t, tr, episodes)
				return rewards, trainerStateBytes(t, tr)
			}
			serialRewards, serialState := run(1)
			parallelRewards, parallelState := run(4)
			for i := range serialRewards {
				if serialRewards[i] != parallelRewards[i] {
					t.Fatalf("episode %d reward diverged: serial %v, parallel %v", i, serialRewards[i], parallelRewards[i])
				}
			}
			if !bytes.Equal(serialState, parallelState) {
				t.Fatalf("%v: serial and parallel checkpoints differ", kind)
			}
		})
	}
}

// TestParallelKVLayoutMatchesSerial checks the fused key-value gather path
// under the worker pool.
func TestParallelKVLayoutMatchesSerial(t *testing.T) {
	const episodes = 12
	run := func(workers int) []byte {
		cfg := smallConfig(MADDPG)
		cfg.UseKVLayout = true
		cfg.UpdateWorkers = workers
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.RunEpisodes(episodes, nil)
		return trainerStateBytes(t, tr)
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("KV-layout serial and parallel checkpoints differ")
	}
}

// TestParallelUpdatePreservesProfileCounts ensures the per-worker profiler
// shards merge into the same phase call counts the serial loop records.
func TestParallelUpdatePreservesProfileCounts(t *testing.T) {
	counts := func(workers int) map[string]uint64 {
		cfg := smallConfig(MADDPG)
		cfg.UpdateWorkers = workers
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.RunEpisodes(8, nil)
		out := map[string]uint64{}
		for _, p := range profiler.Phases() {
			out[p.String()] = tr.Profile().Count(p)
		}
		return out
	}
	serial, parallel := counts(1), counts(4)
	for name, n := range serial {
		if parallel[name] != n {
			t.Fatalf("phase %s count: serial %d, parallel %d", name, n, parallel[name])
		}
	}
}

// TestReseedRNGReseedsAgentStreams verifies that two trainers reseeded to
// the same value continue identically — the agent streams must follow the
// main RNG, or a watchdog rollback would resume with stale streams.
func TestReseedRNGReseedsAgentStreams(t *testing.T) {
	build := func(seed int64) *Trainer {
		cfg := smallConfig(MADDPG)
		cfg.Seed = seed
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := build(7)
	b := build(99)
	defer a.Close()
	defer b.Close()
	a.ReseedRNG(1234)
	b.ReseedRNG(1234)
	for i := range a.agentRNGs {
		if got, want := a.agentRNGs[i].Int63(), b.agentRNGs[i].Int63(); got != want {
			t.Fatalf("agent %d stream diverged after identical reseed: %d vs %d", i, got, want)
		}
	}
}

// TestUpdateWorkersValidation covers the config surface of the engine.
func TestUpdateWorkersValidation(t *testing.T) {
	cfg := smallConfig(MADDPG)
	cfg.UpdateWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative UpdateWorkers accepted")
	}
	cfg.UpdateWorkers = 0
	if got := cfg.ResolvedUpdateWorkers(); got < 1 {
		t.Fatalf("ResolvedUpdateWorkers = %d with auto setting, want ≥1", got)
	}
	cfg.UpdateWorkers = 3
	if got := cfg.ResolvedUpdateWorkers(); got != 3 {
		t.Fatalf("ResolvedUpdateWorkers = %d, want 3", got)
	}
}
