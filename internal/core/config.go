// Package core implements the paper's trainers: MADDPG and MATD3 under the
// Centralized-Training-Decentralized-Execution model, with pluggable
// mini-batch sampling strategies (uniform baseline, cache-locality-aware,
// PER, information-prioritized locality-aware) and the optional key-value
// transition-layout reorganization. Every training phase is timed through
// internal/profiler so the paper's breakdowns can be regenerated.
package core

import (
	"fmt"
	"runtime"
)

// Algorithm selects the MARL workload.
type Algorithm int

// The two workloads the paper characterizes.
const (
	MADDPG Algorithm = iota
	MATD3
)

// String returns the algorithm's report name.
func (a Algorithm) String() string {
	switch a {
	case MADDPG:
		return "maddpg"
	case MATD3:
		return "matd3"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// SamplerKind selects the mini-batch sampling strategy.
type SamplerKind int

// Sampling strategies studied by the paper.
const (
	// SamplerUniform is the baseline i.i.d. random sampling.
	SamplerUniform SamplerKind = iota
	// SamplerLocality is cache-locality-aware neighbor sampling (§IV-A).
	SamplerLocality
	// SamplerPER is proportional prioritized replay (PER-MADDPG baseline).
	SamplerPER
	// SamplerIPLocality is information-prioritized locality-aware sampling
	// (§IV-B1).
	SamplerIPLocality
	// SamplerRankPER is rank-based prioritized replay (the second variant
	// of Schaul et al.), provided as an additional prioritization baseline.
	SamplerRankPER
	// SamplerEpisodeLocality is cache-locality-aware sampling whose
	// neighbor runs stop at episode boundaries.
	SamplerEpisodeLocality
)

// String returns the sampler kind's report name.
func (s SamplerKind) String() string {
	switch s {
	case SamplerUniform:
		return "uniform"
	case SamplerLocality:
		return "locality"
	case SamplerPER:
		return "per"
	case SamplerIPLocality:
		return "ip-locality"
	case SamplerRankPER:
		return "rank-per"
	case SamplerEpisodeLocality:
		return "ep-locality"
	default:
		return fmt.Sprintf("sampler(%d)", int(s))
	}
}

// Config holds every hyperparameter of a training run. DefaultConfig
// returns the paper's settings (§V, Software Settings).
type Config struct {
	Algorithm Algorithm
	Sampler   SamplerKind

	// Locality sampling operating point; the paper evaluates (16, 64) and
	// (64, 16). Ignored by non-locality samplers.
	Neighbors int
	Refs      int

	// ISBeta is the Lemma-1 compensation parameter β for the IP sampler
	// (1 = full compensation).
	ISBeta float64

	BatchSize      int     // mini-batch size (paper: 1024)
	BufferCapacity int     // replay capacity (paper: 1 million)
	LR             float64 // Adam learning rate (paper: 0.01)
	Gamma          float64 // discount factor (paper: 0.95)
	Tau            float64 // target soft-update rate (paper: 0.01)
	HiddenSize     int     // MLP width (paper: 64, two layers)
	MaxEpisodeLen  int     // steps per episode (paper: 25)
	UpdateEvery    int     // env steps between updates (paper: 100)
	WarmupSize     int     // min buffer fill before updates (default: BatchSize)
	ClipNorm       float64 // gradient clip norm (reference impl: 0.5)
	GumbelTau      float64 // Gumbel-softmax temperature for exploration

	// MATD3 specifics.
	PolicyDelay     int     // actor/target update period (default 2)
	TargetNoiseStd  float64 // target policy smoothing noise
	TargetNoiseClip float64 // noise clip bound

	// UseKVLayout enables the transition data-layout reorganization
	// (§IV-B2): per-update reshaping into the key-value table plus O(m)
	// gathers.
	UseKVLayout bool

	// UpdateWorkers sizes the per-agent worker pool of the update stage.
	// 0 (the default) resolves to runtime.GOMAXPROCS; 1 forces the serial
	// path. Any value produces bit-identical training results for the same
	// seed — each agent draws from its own RNG stream — so this is purely a
	// throughput knob.
	UpdateWorkers int

	Seed int64
}

// ResolvedUpdateWorkers returns the effective worker-pool size:
// UpdateWorkers when positive, otherwise runtime.GOMAXPROCS.
func (c Config) ResolvedUpdateWorkers() int {
	if c.UpdateWorkers > 0 {
		return c.UpdateWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the paper's hyperparameters for the given workload.
func DefaultConfig(algo Algorithm) Config {
	return Config{
		Algorithm:       algo,
		Sampler:         SamplerUniform,
		Neighbors:       16,
		Refs:            64,
		ISBeta:          1,
		BatchSize:       1024,
		BufferCapacity:  1_000_000,
		LR:              0.01,
		Gamma:           0.95,
		Tau:             0.01,
		HiddenSize:      64,
		MaxEpisodeLen:   25,
		UpdateEvery:     100,
		ClipNorm:        0.5,
		GumbelTau:       1.0,
		PolicyDelay:     2,
		TargetNoiseStd:  0.2,
		TargetNoiseClip: 0.5,
		Seed:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BatchSize < 1 {
		return fmt.Errorf("core: BatchSize = %d, want ≥1", c.BatchSize)
	}
	if c.BufferCapacity < c.BatchSize {
		return fmt.Errorf("core: BufferCapacity %d below BatchSize %d", c.BufferCapacity, c.BatchSize)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("core: Gamma = %v, want [0,1]", c.Gamma)
	}
	if c.Tau <= 0 || c.Tau > 1 {
		return fmt.Errorf("core: Tau = %v, want (0,1]", c.Tau)
	}
	if c.HiddenSize < 1 {
		return fmt.Errorf("core: HiddenSize = %d, want ≥1", c.HiddenSize)
	}
	if c.MaxEpisodeLen < 1 {
		return fmt.Errorf("core: MaxEpisodeLen = %d, want ≥1", c.MaxEpisodeLen)
	}
	if c.UpdateEvery < 1 {
		return fmt.Errorf("core: UpdateEvery = %d, want ≥1", c.UpdateEvery)
	}
	if (c.Sampler == SamplerLocality || c.Sampler == SamplerEpisodeLocality) && (c.Neighbors < 1 || c.Refs < 1) {
		return fmt.Errorf("core: locality sampler needs Neighbors/Refs ≥1, got %d/%d", c.Neighbors, c.Refs)
	}
	if c.Algorithm == MATD3 && c.PolicyDelay < 1 {
		return fmt.Errorf("core: PolicyDelay = %d, want ≥1", c.PolicyDelay)
	}
	if c.GumbelTau <= 0 {
		return fmt.Errorf("core: GumbelTau = %v, want >0", c.GumbelTau)
	}
	if c.UpdateWorkers < 0 {
		return fmt.Errorf("core: UpdateWorkers = %d, want ≥0 (0 = GOMAXPROCS)", c.UpdateWorkers)
	}
	return nil
}
