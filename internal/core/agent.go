package core

import (
	"math/rand"

	"marlperf/internal/nn"
)

// agentNets bundles one agent's four (MADDPG) or six (MATD3) networks and
// their optimizers: a decentralized actor over its own observation and a
// centralized critic over the joint observation-action space, each with a
// target copy for stable learning. MATD3 adds a twin critic pair.
type agentNets struct {
	actor       *nn.Network
	targetActor *nn.Network
	actorOpt    *nn.Adam

	critic1       *nn.Network
	targetCritic1 *nn.Network
	critic1Opt    *nn.Adam

	// Twin critic, nil unless the algorithm is MATD3.
	critic2       *nn.Network
	targetCritic2 *nn.Network
	critic2Opt    *nn.Adam
}

// newAgentNets builds the network set for one agent. obsDim is the agent's
// own observation width; jointDim is Σ obs widths + N·actDim, the critic's
// centralized input.
func newAgentNets(cfg Config, obsDim, actDim, jointDim int, rng *rand.Rand) *agentNets {
	h := cfg.HiddenSize
	a := &agentNets{
		actor:         nn.NewMLP(rng, obsDim, h, h, actDim),
		targetActor:   nn.NewMLP(rng, obsDim, h, h, actDim),
		critic1:       nn.NewMLP(rng, jointDim, h, h, 1),
		targetCritic1: nn.NewMLP(rng, jointDim, h, h, 1),
	}
	nn.HardCopy(a.targetActor, a.actor)
	nn.HardCopy(a.targetCritic1, a.critic1)
	a.actorOpt = nn.NewAdam(a.actor, cfg.LR)
	a.critic1Opt = nn.NewAdam(a.critic1, cfg.LR)
	if cfg.Algorithm == MATD3 {
		a.critic2 = nn.NewMLP(rng, jointDim, h, h, 1)
		a.targetCritic2 = nn.NewMLP(rng, jointDim, h, h, 1)
		nn.HardCopy(a.targetCritic2, a.critic2)
		a.critic2Opt = nn.NewAdam(a.critic2, cfg.LR)
	}
	return a
}

// softUpdateTargets applies the Polyak update to all target networks.
func (a *agentNets) softUpdateTargets(tau float64) {
	nn.SoftUpdate(a.targetActor, a.actor, tau)
	nn.SoftUpdate(a.targetCritic1, a.critic1, tau)
	if a.critic2 != nil {
		nn.SoftUpdate(a.targetCritic2, a.critic2, tau)
	}
}
