package core

import (
	"math"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/profiler"
)

// smallConfig returns a fast configuration for tests: tiny batch, buffer
// and update interval so updates happen within a few episodes.
func smallConfig(algo Algorithm) Config {
	c := DefaultConfig(algo)
	c.BatchSize = 32
	c.BufferCapacity = 512
	c.UpdateEvery = 20
	c.HiddenSize = 16
	c.Seed = 7
	return c
}

func TestNewTrainerAllSamplers(t *testing.T) {
	for _, s := range []SamplerKind{SamplerUniform, SamplerLocality, SamplerPER, SamplerIPLocality, SamplerRankPER, SamplerEpisodeLocality} {
		cfg := smallConfig(MADDPG)
		cfg.Sampler = s
		env := mpe.NewCooperativeNavigation(2)
		tr, err := NewTrainer(cfg, env)
		if err != nil {
			t.Fatalf("sampler %v: %v", s, err)
		}
		if tr.Sampler() == nil {
			t.Fatalf("sampler %v: nil sampler", s)
		}
	}
}

func TestNewTrainerRejectsInvalidConfig(t *testing.T) {
	cfg := smallConfig(MADDPG)
	cfg.BatchSize = 0
	if _, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestJointDimLayout(t *testing.T) {
	env := mpe.NewCooperativeNavigation(3) // obs 18 each, 5 actions
	tr, err := NewTrainer(smallConfig(MADDPG), env)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*18 + 3*5
	if tr.JointDim() != want {
		t.Fatalf("JointDim = %d, want %d", tr.JointDim(), want)
	}
}

func TestStepAccumulatesBufferAndEpisodes(t *testing.T) {
	cfg := smallConfig(MADDPG)
	env := mpe.NewCooperativeNavigation(2)
	tr, err := NewTrainer(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	episodes := 0
	for i := 0; i < 60; i++ { // MaxEpisodeLen 25 → at least 2 episodes
		if tr.Step() {
			episodes++
		}
	}
	if tr.TotalSteps() != 60 {
		t.Fatalf("TotalSteps = %d, want 60", tr.TotalSteps())
	}
	if tr.Buffer().Len() != 60 {
		t.Fatalf("buffer Len = %d, want 60", tr.Buffer().Len())
	}
	if episodes != 2 || tr.EpisodeCount() != 2 {
		t.Fatalf("episodes = %d/%d, want 2", episodes, tr.EpisodeCount())
	}
	if tr.UpdateCount() == 0 {
		t.Fatal("no updates ran in 60 steps with UpdateEvery=20 and warmup=32")
	}
}

func TestWarmupDoesNotUpdateOrProfile(t *testing.T) {
	cfg := smallConfig(MADDPG)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(50)
	if tr.UpdateCount() != 0 {
		t.Fatal("warmup must not run updates")
	}
	if tr.Buffer().Len() != 50 {
		t.Fatalf("warmup buffer Len = %d, want 50", tr.Buffer().Len())
	}
	if tr.Profile().Total() != 0 {
		t.Fatal("warmup must not record phase timings")
	}
}

func TestUpdateAllTrainersRecordsPhases(t *testing.T) {
	cfg := smallConfig(MADDPG)
	tr, err := NewTrainer(cfg, mpe.NewPredatorPrey(3))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	tr.UpdateAllTrainers()
	p := tr.Profile()
	for _, ph := range []profiler.Phase{profiler.PhaseSampling, profiler.PhaseTargetQ, profiler.PhaseQPLoss} {
		if p.Duration(ph) == 0 {
			t.Fatalf("phase %v not recorded", ph)
		}
	}
	// 3 agent trainers → 3 sampling phases.
	if p.Count(profiler.PhaseSampling) != 3 {
		t.Fatalf("sampling count = %d, want 3", p.Count(profiler.PhaseSampling))
	}
}

func TestUpdateOnEmptyBufferPanics(t *testing.T) {
	tr, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("update with empty buffer did not panic")
		}
	}()
	tr.UpdateAllTrainers()
}

func TestTrainingStaysFinite(t *testing.T) {
	for _, algo := range []Algorithm{MADDPG, MATD3} {
		cfg := smallConfig(algo)
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
		if err != nil {
			t.Fatal(err)
		}
		tr.RunEpisodes(4, func(ep int, reward float64) {
			if math.IsNaN(reward) || math.IsInf(reward, 0) {
				t.Fatalf("%v: episode %d reward %v", algo, ep, reward)
			}
		})
		// Spot-check network parameters for NaN.
		for i, ag := range tr.agents {
			for _, p := range ag.actor.Params() {
				for _, v := range p.Data {
					if math.IsNaN(v) {
						t.Fatalf("%v: NaN in agent %d actor", algo, i)
					}
				}
			}
		}
	}
}

func TestParametersChangeAfterUpdate(t *testing.T) {
	cfg := smallConfig(MADDPG)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	before := tr.agents[0].actor.Params()[0].Clone()
	beforeCritic := tr.agents[0].critic1.Params()[0].Clone()
	tr.UpdateAllTrainers()
	changedActor, changedCritic := false, false
	for i, v := range tr.agents[0].actor.Params()[0].Data {
		if v != before.Data[i] {
			changedActor = true
			break
		}
	}
	for i, v := range tr.agents[0].critic1.Params()[0].Data {
		if v != beforeCritic.Data[i] {
			changedCritic = true
			break
		}
	}
	if !changedActor || !changedCritic {
		t.Fatalf("update left parameters untouched: actor=%v critic=%v", changedActor, changedCritic)
	}
}

func TestTargetNetworksLagBehind(t *testing.T) {
	cfg := smallConfig(MADDPG)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	tr.UpdateAllTrainers()
	ag := tr.agents[0]
	// After one τ=0.01 update, target must differ from both its initial
	// copy and the online network (it moved, but only 1% of the way).
	var diffOnline float64
	for i, v := range ag.targetCritic1.Params()[0].Data {
		diffOnline += math.Abs(v - ag.critic1.Params()[0].Data[i])
	}
	if diffOnline == 0 {
		t.Fatal("target should lag behind the online critic, not equal it")
	}
}

func TestMATD3HasTwinCriticsAndDelaysActor(t *testing.T) {
	cfg := smallConfig(MATD3)
	cfg.PolicyDelay = 2
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.agents[0].critic2 == nil {
		t.Fatal("MATD3 agent missing twin critic")
	}
	tr.Warmup(40)
	actorBefore := tr.agents[0].actor.Params()[0].Clone()
	tr.UpdateAllTrainers() // updateCount=1: 1%2 != 0 → actor delayed
	for i, v := range tr.agents[0].actor.Params()[0].Data {
		if v != actorBefore.Data[i] {
			t.Fatal("actor updated on a delayed step")
		}
	}
	tr.UpdateAllTrainers() // updateCount=2 → actor updates
	changed := false
	for i, v := range tr.agents[0].actor.Params()[0].Data {
		if v != actorBefore.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("actor never updated after policy-delay steps")
	}
}

func TestMADDPGHasNoTwinCritic(t *testing.T) {
	tr, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.agents[0].critic2 != nil {
		t.Fatal("MADDPG agent should not have a twin critic")
	}
}

func TestPERPrioritiesEvolveDuringTraining(t *testing.T) {
	cfg := smallConfig(MADDPG)
	cfg.Sampler = SamplerPER
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	tr.UpdateAllTrainers()
	// After one update the priority distribution should no longer be
	// uniform (fresh max priority everywhere).
	sampler := tr.Sampler().(interface{ NormalizedPriority(int) float64 })
	uniform := true
	first := sampler.NormalizedPriority(0)
	for i := 1; i < tr.Buffer().Len(); i++ {
		if math.Abs(sampler.NormalizedPriority(i)-first) > 1e-9 {
			uniform = false
			break
		}
	}
	if uniform {
		t.Fatal("PER priorities did not differentiate after an update")
	}
}

func TestRankPERTrainerUpdatesPriorities(t *testing.T) {
	cfg := smallConfig(MADDPG)
	cfg.Sampler = SamplerRankPER
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	tr.UpdateAllTrainers()
	// After the TD-error refresh, sampling should prefer some transitions
	// over others; just assert the full update path ran without panic and
	// a second update still works.
	tr.UpdateAllTrainers()
	if tr.UpdateCount() != 2 {
		t.Fatalf("UpdateCount = %d, want 2", tr.UpdateCount())
	}
}

func TestKVLayoutTrainingMatchesBaseline(t *testing.T) {
	// The KV layout is purely a storage transformation: with the same seed
	// the training trajectory must be identical to the baseline layout.
	mk := func(useKV bool) *Trainer {
		cfg := smallConfig(MADDPG)
		cfg.UseKVLayout = useKV
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := mk(false)
	b := mk(true)
	for i := 0; i < 80; i++ {
		a.Step()
		b.Step()
	}
	if a.UpdateCount() == 0 {
		t.Fatal("no updates happened; test is vacuous")
	}
	pa := a.agents[0].actor.Params()[0]
	pb := b.agents[0].actor.Params()[0]
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatalf("KV layout diverged from baseline at param %d: %v vs %v", i, pa.Data[i], pb.Data[i])
		}
	}
	if b.Profile().Duration(profiler.PhaseLayoutReorg) == 0 {
		t.Fatal("KV trainer did not record layout-reorg time")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		cfg := smallConfig(MADDPG)
		tr, err := NewTrainer(cfg, mpe.NewPredatorPrey(3))
		if err != nil {
			t.Fatal(err)
		}
		tr.RunEpisodes(3, nil)
		return tr.LastEpisodeReward()
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Fatalf("same seed produced different rewards: %v vs %v", r1, r2)
	}
}

func TestLocalityTrainerUsesContiguousGathers(t *testing.T) {
	cfg := smallConfig(MADDPG)
	cfg.Sampler = SamplerLocality
	cfg.Neighbors = 8
	cfg.Refs = 4
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(100)
	sample := tr.Sampler().Sample(32, tr.rng)
	if len(sample.Refs) != 4 {
		t.Fatalf("locality trainer refs = %d, want 4", len(sample.Refs))
	}
}
