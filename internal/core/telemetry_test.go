package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"marlperf/internal/mpe"
	"marlperf/internal/profiler"
)

// syncObserver is a concurrency-safe observer: worker shards call it
// concurrently during the parallel update stage.
type syncObserver struct {
	mu     sync.Mutex
	durs   map[profiler.Phase]time.Duration
	counts map[profiler.Phase]uint64
	events map[string]uint64
}

func newSyncObserver() *syncObserver {
	return &syncObserver{
		durs:   make(map[profiler.Phase]time.Duration),
		counts: make(map[profiler.Phase]uint64),
		events: make(map[string]uint64),
	}
}

func (o *syncObserver) ObservePhase(p profiler.Phase, d time.Duration) {
	o.mu.Lock()
	o.durs[p] += d
	o.counts[p]++
	o.mu.Unlock()
}

func (o *syncObserver) ObserveEvent(name string, n uint64) {
	o.mu.Lock()
	o.events[name] += n
	o.mu.Unlock()
}

func telemetryTestTrainer(t *testing.T, workers int) *Trainer {
	t.Helper()
	cfg := DefaultConfig(MADDPG)
	cfg.BatchSize = 32
	cfg.BufferCapacity = 4096
	cfg.WarmupSize = 32
	cfg.UpdateEvery = 10
	cfg.UpdateWorkers = workers
	tr, err := NewTrainer(cfg, mpe.NewPredatorPrey(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// TestPhaseObserverMatchesProfile is the core half of the acceptance
// criterion: every phase duration and event the profiler accumulates is
// observed exactly once, so observer totals equal profile totals — serial
// and parallel.
func TestPhaseObserverMatchesProfile(t *testing.T) {
	for _, workers := range []int{1, 4} {
		obs := newSyncObserver()
		tr := telemetryTestTrainer(t, workers)
		tr.SetPhaseObserver(obs)
		tr.RunEpisodes(6, nil)

		prof := tr.Profile()
		for _, p := range profiler.Phases() {
			if got, want := obs.counts[p], prof.Count(p); got != want {
				t.Fatalf("workers=%d phase %v: observed %d calls, profile has %d", workers, p, got, want)
			}
			if got, want := obs.durs[p], prof.Duration(p); got != want {
				t.Fatalf("workers=%d phase %v: observed %v, profile has %v", workers, p, got, want)
			}
		}
		for _, name := range prof.Events() {
			if got, want := obs.events[name], prof.EventCount(name); got != want {
				t.Fatalf("workers=%d event %q: observed %d, profile has %d", workers, name, got, want)
			}
		}
		if prof.Count(profiler.PhaseSampling) == 0 {
			t.Fatalf("workers=%d: no sampling observations — test exercised nothing", workers)
		}
	}
}

// TestObserverSetBeforeScratchBuilt: SetPhaseObserver before the first
// update must cover shards created lazily afterwards.
func TestObserverSetBeforeScratchBuilt(t *testing.T) {
	obs := newSyncObserver()
	tr := telemetryTestTrainer(t, 2)
	tr.SetPhaseObserver(obs) // scratch arenas do not exist yet
	tr.RunEpisodes(2, nil)
	if obs.counts[profiler.PhaseSampling] != tr.Profile().Count(profiler.PhaseSampling) {
		t.Fatal("lazily built worker shards missed the observer")
	}
}

// TestUpdateListenerEmitsPerUpdate checks the run-event contract: exactly
// one event per update stage, monotone step/update indices, correct
// sampler/worker metadata, and phase-micro deltas that sum back to the
// profiler totals (to microsecond rounding).
func TestUpdateListenerEmitsPerUpdate(t *testing.T) {
	tr := telemetryTestTrainer(t, 2)
	var events []UpdateEvent
	tr.SetUpdateListener(func(ev UpdateEvent) { events = append(events, ev) })
	tr.RunEpisodes(6, nil)

	if len(events) != tr.UpdateCount() {
		t.Fatalf("got %d events for %d updates", len(events), tr.UpdateCount())
	}
	if len(events) == 0 {
		t.Fatal("no updates ran — test exercised nothing")
	}
	phaseSums := make(map[string]int64)
	for i, ev := range events {
		if ev.Update != i+1 {
			t.Fatalf("event %d has update index %d", i, ev.Update)
		}
		if i > 0 && ev.Step <= events[i-1].Step {
			t.Fatalf("steps not increasing: %d then %d", events[i-1].Step, ev.Step)
		}
		if ev.Sampler != "uniform" {
			t.Fatalf("sampler = %q", ev.Sampler)
		}
		if ev.Workers != tr.UpdateWorkers() {
			t.Fatalf("workers = %d, want %d", ev.Workers, tr.UpdateWorkers())
		}
		if ev.TimeUnixNano == 0 {
			t.Fatal("missing timestamp")
		}
		for phase, us := range ev.PhaseMicros {
			phaseSums[phase] += us
		}
	}
	// Deltas must reassemble the profiler totals up to 1µs rounding per
	// event, for every phase that appears.
	prof := tr.Profile()
	for _, p := range profiler.Phases() {
		total := prof.Duration(p).Microseconds()
		if total == 0 {
			continue
		}
		got := phaseSums[p.String()]
		slack := int64(len(events) + 1) // rounding: ≤1µs per emission + tail
		// Interaction-phase time after the last update is not covered by
		// any event, so allow the remainder of one update interval.
		if got > total || total-got > slack+total/2 {
			t.Fatalf("phase %v: event deltas sum to %dµs, profile has %dµs", p, got, total)
		}
	}
	// The update-stage phases end exactly at the event, so they must agree
	// tightly.
	updTotal := prof.Duration(profiler.PhaseSampling).Microseconds()
	if got := phaseSums[profiler.PhaseSampling.String()]; got > updTotal || updTotal-got > int64(len(events)+1) {
		t.Fatalf("sampling deltas %dµs vs profile %dµs", got, updTotal)
	}
}

// TestUpdateListenerDetach: a nil listener stops emission.
func TestUpdateListenerDetach(t *testing.T) {
	tr := telemetryTestTrainer(t, 1)
	calls := 0
	tr.SetUpdateListener(func(UpdateEvent) { calls++ })
	tr.RunEpisodes(2, nil)
	if calls == 0 {
		t.Fatal("listener never fired")
	}
	seen := calls
	tr.SetUpdateListener(nil)
	tr.RunEpisodes(2, nil)
	if calls != seen {
		t.Fatal("detached listener still fired")
	}
}

// TestTelemetryPreservesDeterminism: attaching observers and listeners
// must not change training trajectories (they only read).
func TestTelemetryPreservesDeterminism(t *testing.T) {
	run := func(instrument bool) float64 {
		tr := telemetryTestTrainer(t, 2)
		if instrument {
			tr.SetPhaseObserver(newSyncObserver())
			tr.SetUpdateListener(func(UpdateEvent) {})
		}
		tr.RunEpisodes(4, nil)
		return tr.LastEpisodeReward()
	}
	plain, instrumented := run(false), run(true)
	if math.IsNaN(plain) || plain != instrumented {
		t.Fatalf("telemetry changed training: %v vs %v", plain, instrumented)
	}
}
