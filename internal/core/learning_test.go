package core

import (
	"testing"

	"marlperf/internal/mpe"
)

// TestMADDPGLearnsSingleAgentNavigation is the end-to-end learning check:
// a single agent on cooperative navigation (reward = -distance to its
// landmark) must improve its greedy-policy evaluation substantially after
// 300 training episodes. Thresholds were set from a 3-seed calibration run
// (improvements of +46/+9/+20 reward); the margin below passes all of them
// comfortably on seed 1.
func TestMADDPGLearnsSingleAgentNavigation(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test takes ~15s")
	}
	cfg := DefaultConfig(MADDPG)
	cfg.BatchSize = 128
	cfg.BufferCapacity = 20000
	cfg.UpdateEvery = 50
	cfg.HiddenSize = 32
	cfg.Seed = 1
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(1))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Evaluate(20)
	tr.RunEpisodes(300, nil)
	after := tr.Evaluate(20)
	if after < before+10 {
		t.Fatalf("greedy evaluation did not improve enough: %.2f -> %.2f", before, after)
	}
}

// TestLocalitySamplerPreservesLearning mirrors Figure 10's claim: training
// with cache-aware sampling must still learn. Same setup as above with the
// (16, 64) operating point.
func TestLocalitySamplerPreservesLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test takes ~15s")
	}
	cfg := DefaultConfig(MADDPG)
	cfg.BatchSize = 128
	cfg.BufferCapacity = 20000
	cfg.UpdateEvery = 50
	cfg.HiddenSize = 32
	cfg.Seed = 1
	cfg.Sampler = SamplerLocality
	cfg.Neighbors, cfg.Refs = 16, 8
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(1))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Evaluate(20)
	tr.RunEpisodes(300, nil)
	after := tr.Evaluate(20)
	if after < before+5 {
		t.Fatalf("cache-aware training did not learn: %.2f -> %.2f", before, after)
	}
}
