package core

import (
	"bytes"
	"strings"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/tensor"
)

func trainedTrainer(t *testing.T, algo Algorithm) *Trainer {
	t.Helper()
	cfg := smallConfig(algo)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.Warmup(40)
	tr.UpdateAllTrainers()
	tr.UpdateAllTrainers()
	return tr
}

func TestCheckpointRoundTripMADDPG(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(MADDPG)
	cfg.Seed = 99 // different init; must be fully overwritten
	dst, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range src.agents {
		for pi, p := range src.agents[i].actor.Params() {
			if !tensor.ApproxEqual(dst.agents[i].actor.Params()[pi], p, 0) {
				t.Fatalf("agent %d actor param %d differs", i, pi)
			}
		}
		for pi, p := range src.agents[i].targetCritic1.Params() {
			if !tensor.ApproxEqual(dst.agents[i].targetCritic1.Params()[pi], p, 0) {
				t.Fatalf("agent %d target critic param %d differs", i, pi)
			}
		}
	}
	if dst.UpdateCount() != src.UpdateCount() || dst.TotalSteps() != src.TotalSteps() {
		t.Fatalf("counters: %d/%d vs %d/%d", dst.UpdateCount(), dst.TotalSteps(), src.UpdateCount(), src.TotalSteps())
	}
}

func TestCheckpointRoundTripMATD3IncludesTwins(t *testing.T) {
	src := trainedTrainer(t, MATD3)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewTrainer(smallConfig(MATD3), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for pi, p := range src.agents[0].critic2.Params() {
		if !tensor.ApproxEqual(dst.agents[0].critic2.Params()[pi], p, 0) {
			t.Fatalf("twin critic param %d differs", pi)
		}
	}
}

func TestCheckpointRestoredTrainerKeepsTraining(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// The restored trainer has an empty buffer; it must be able to collect
	// experience and update without issue.
	dst.Warmup(40)
	before := dst.agents[0].actor.Params()[0].Clone()
	dst.UpdateAllTrainers()
	changed := false
	for i, v := range dst.agents[0].actor.Params()[0].Data {
		if v != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("restored trainer did not train")
	}
}

func TestLoadCheckpointRejectsAlgorithmMismatch(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewTrainer(smallConfig(MATD3), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}
}

func TestLoadCheckpointRejectsAgentCountMismatch(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err == nil {
		t.Fatal("agent-count mismatch accepted")
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	dst, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadCheckpointRejectsTruncated(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dst, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestEvaluateGreedyAndNonDestructive(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	bufLen := tr.Buffer().Len()
	updates := tr.UpdateCount()
	param := tr.agents[0].actor.Params()[0].Clone()

	r1 := tr.Evaluate(3)
	if tr.Buffer().Len() != bufLen {
		t.Fatal("Evaluate wrote to the replay buffer")
	}
	if tr.UpdateCount() != updates {
		t.Fatal("Evaluate ran training updates")
	}
	if !tensor.ApproxEqual(tr.agents[0].actor.Params()[0], param, 0) {
		t.Fatal("Evaluate changed parameters")
	}
	// Greedy policy on fixed params: the evaluation is a function of env
	// randomness only; it must return a finite value and training must
	// continue cleanly afterwards.
	if r1 != r1 {
		t.Fatal("Evaluate returned NaN")
	}
	tr.Step() // must not panic after evaluation reset the env
}

func TestEvaluateZeroEpisodes(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	if got := tr.Evaluate(0); got != 0 {
		t.Fatalf("Evaluate(0) = %v, want 0", got)
	}
}
