package core

// Acceptance tests for the distributed tracer's two core guarantees on the
// learner: span emission never changes training bytes (tracing on vs off,
// serial vs parallel, local vs remote, prefetch on vs off — one
// checkpoint), and the disabled path is free (no additional allocations on
// the update hot path).

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"marlperf/internal/expserve"
	"marlperf/internal/expstore"
	"marlperf/internal/mpe"
	"marlperf/internal/replay"
	"marlperf/internal/trace"
)

// traceTestTracer returns a tracer recording every update stage.
func traceTestTracer(proc string) *trace.Tracer {
	tr := trace.New(proc, 1<<14)
	tr.SetSampleEvery(1)
	tr.SetEnabled(true)
	return tr
}

// TestTracingBitIdenticalAcrossWorkers: tracing draws no randomness and
// writes no training state, so enabling it — at full sampling — must leave
// checkpoints bit-identical to an untraced run, for serial and parallel
// update engines alike.
func TestTracingBitIdenticalAcrossWorkers(t *testing.T) {
	const episodes = 6
	run := func(workers int, traced bool) ([]byte, *trace.Tracer) {
		cfg := smallConfig(MADDPG)
		cfg.UpdateWorkers = workers
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		var tracer *trace.Tracer
		if traced {
			tracer = traceTestTracer("learner")
			tr.SetTracer(tracer)
		}
		tr.RunEpisodes(episodes, nil)
		return trainerStateBytes(t, tr), tracer
	}

	baseline, _ := run(1, false)
	for _, tc := range []struct {
		workers int
		traced  bool
	}{{1, true}, {4, false}, {4, true}} {
		ckpt, tracer := run(tc.workers, tc.traced)
		if !bytes.Equal(baseline, ckpt) {
			t.Fatalf("workers=%d traced=%v: checkpoint diverged from untraced serial baseline",
				tc.workers, tc.traced)
		}
		if tc.traced {
			if tracer.Len() == 0 {
				t.Fatalf("workers=%d: traced run recorded no spans; the check is vacuous", tc.workers)
			}
			updates := 0
			for _, rec := range tracer.Snapshot() {
				if rec.Name == "update" {
					updates++
				}
			}
			if updates == 0 {
				t.Fatalf("workers=%d: no update root spans recorded", tc.workers)
			}
		}
	}
}

// TestTracingBitIdenticalRemotePrefetch covers the remote leg: a learner
// sampling a real HTTP experience service with client+server tracers and
// full-rate sampling must checkpoint identically to the untraced run, with
// and without the prefetch source in between — and the traces must
// actually stitch, i.e. the server records spans under the same trace IDs
// the learner started.
func TestTracingBitIdenticalRemotePrefetch(t *testing.T) {
	cfg := expConfig(SamplerLocality)
	run := func(prefetch, traced bool) ([]byte, *trace.Tracer, *trace.Tracer) {
		env := mpe.NewCooperativeNavigation(2)
		spec := expSpec(cfg, env)
		plan, err := cfg.SamplePlan()
		if err != nil {
			t.Fatal(err)
		}
		var serverTracer *trace.Tracer
		if traced {
			serverTracer = traceTestTracer("replayd")
		}
		srv, err := expserve.NewServer(expserve.ServerConfig{
			Provider: expstore.NewRing(spec), Spec: spec, Tracer: serverTracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		defer func() { hs.Close(); srv.Close() }()

		var learnerTracer *trace.Tracer
		if traced {
			learnerTracer = traceTestTracer("learner")
		}
		client := expserve.NewClient(hs.URL, expserve.ClientOptions{
			Timeout: 10 * time.Second, JitterSeed: 1, Tracer: learnerTracer,
		})
		src, err := expserve.NewRemoteSource(client, spec, plan)
		if err != nil {
			t.Fatal(err)
		}
		sink, err := expserve.NewRemoteSink(client, "actor-0", spec)
		if err != nil {
			t.Fatal(err)
		}
		var source = replay.TransitionSource(src)
		if prefetch {
			// Prefetched sample RPCs run on the prefetcher's goroutine; they
			// must not perturb training either way.
			source = expserve.NewPrefetchSource(src, 4, nil)
		}
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if traced {
			tr.SetTracer(learnerTracer)
		}
		if err := tr.SetExperienceService(source, sink); err != nil {
			t.Fatal(err)
		}
		for completed := 0; completed < 3; {
			done, err := tr.StepE()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				completed++
			}
		}
		return checkpointBytes(t, tr), learnerTracer, serverTracer
	}

	baseline, _, _ := run(false, false)
	ckpt, learnerTracer, serverTracer := run(false, true)
	if !bytes.Equal(baseline, ckpt) {
		t.Fatal("traced remote run diverged from untraced baseline")
	}
	pfCkpt, _, _ := run(true, true)
	if !bytes.Equal(baseline, pfCkpt) {
		t.Fatal("traced prefetch run diverged from untraced baseline")
	}

	// Cross-process stitching: every learner trace ID that reached the wire
	// must appear again in the server's records.
	learnerTraces := make(map[uint64]bool)
	for _, rec := range learnerTracer.Snapshot() {
		if rec.Name == "sample-rpc" || rec.Name == "append-rpc" {
			learnerTraces[rec.TraceID] = true
		}
	}
	if len(learnerTraces) == 0 {
		t.Fatal("learner recorded no RPC client spans")
	}
	stitched := 0
	for _, rec := range serverTracer.Snapshot() {
		if learnerTraces[rec.TraceID] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("server recorded %d spans but none share a trace ID with the learner's %d RPC spans",
			serverTracer.Len(), len(learnerTraces))
	}
}

// TestDisabledTracerAddsNoAllocs: attaching a tracer that is present but
// disabled must not add a single allocation to the update/sample hot path
// relative to no tracer at all — the guard is one atomic load per probe.
func TestDisabledTracerAddsNoAllocs(t *testing.T) {
	const episodes = 4
	mallocs := func(withTracer bool) uint64 {
		cfg := smallConfig(MADDPG)
		cfg.UpdateWorkers = 1
		tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(3))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if withTracer {
			tracer := trace.New("learner", 1024)
			// Deliberately never enabled.
			tr.SetTracer(tracer)
		}
		// Warm up pools and lazily-built state outside the measured window.
		tr.RunEpisodes(1, nil)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		tr.RunEpisodes(episodes, nil)
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	plain := mallocs(false)
	withDisabled := mallocs(true)
	// Both runs are deterministic and identical byte-for-byte; allow a small
	// absolute slack for runtime-internal allocations (timer wheels, GC
	// bookkeeping) that are not attributable to the tracer. Any real
	// per-span cost would show up as thousands of allocations here.
	const slack = 200
	if withDisabled > plain+slack {
		t.Fatalf("disabled tracer added allocations: %d with vs %d without (slack %d)",
			withDisabled, plain, slack)
	}
}
