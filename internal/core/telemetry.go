package core

import (
	"time"

	"marlperf/internal/profiler"
	"marlperf/internal/trace"
)

// UpdateEvent is the run-event record emitted once per completed
// update-all-trainers stage. Field tags define the JSONL schema of the
// run log (-runlog); keep them stable for downstream tooling.
type UpdateEvent struct {
	// TimeUnixNano is the wall-clock emission time.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Step is the total environment steps taken so far.
	Step int `json:"step"`
	// Update is the 1-based index of this update stage.
	Update int `json:"update"`
	// Episode is the number of completed episodes.
	Episode int `json:"episode"`
	// EpisodeReward is the mean-over-agents summed reward of the most
	// recently completed episode (0 until the first episode completes).
	EpisodeReward float64 `json:"episode_reward"`
	// TDMean is the mean |TD error| of this update's critic step — the
	// training-loss signal the divergence watchdog also monitors.
	TDMean float64 `json:"td_mean"`
	// PhaseMicros is the per-phase wall time accumulated since the
	// previous event, in microseconds; phases with no new time are
	// omitted (sub-microsecond deltas appear as 0). Summed across events
	// this reproduces the profiler totals to microsecond rounding.
	PhaseMicros map[string]int64 `json:"phase_micros"`
	// Sampler is the active sampling strategy's report name.
	Sampler string `json:"sampler"`
	// Workers is the resolved update worker-pool size.
	Workers int `json:"workers"`
}

// SetPhaseObserver mirrors every profiler phase observation and event —
// from the main profile and from every per-worker shard, present and
// future — to o. Because worker shards observe concurrently during the
// update stage, o must be safe for concurrent use (telemetry's
// PhaseCollector is). Call before training; a nil o detaches.
func (t *Trainer) SetPhaseObserver(o profiler.Observer) {
	t.phaseObs = o
	t.prof.SetObserver(o)
	for _, s := range t.scratch {
		s.prof.SetObserver(o)
	}
}

// SetUpdateListener registers fn to receive one UpdateEvent per completed
// update-all-trainers stage, invoked synchronously from the training
// goroutine at the end of UpdateAllTrainers. The per-phase deltas start
// from the profile's state at registration time. A nil fn detaches.
func (t *Trainer) SetUpdateListener(fn func(UpdateEvent)) {
	t.updateListener = fn
	if fn == nil {
		return
	}
	if t.prevPhaseDur == nil {
		t.prevPhaseDur = make([]time.Duration, profiler.NumPhases())
	}
	for _, p := range profiler.Phases() {
		t.prevPhaseDur[int(p)] = t.prof.Duration(p)
	}
}

// SetTracer attaches a span tracer to the update stage. Each sampled
// update opens a root span whose trace ID derives deterministically from
// (Config.Seed, update index) and publishes it as the tracer's active
// context, which the experience client and policy publisher pick up to
// stitch the cross-process critical path. A nil tracer (the default)
// keeps every instrumentation point on its zero-allocation disabled
// path. Call before training.
func (t *Trainer) SetTracer(tr *trace.Tracer) { t.tracer = tr }

// Tracer returns the attached span tracer, or nil.
func (t *Trainer) Tracer() *trace.Tracer { return t.tracer }

// buildUpdateEvent snapshots the run state and the per-phase wall time
// accumulated since the previous event.
func (t *Trainer) buildUpdateEvent() UpdateEvent {
	ev := UpdateEvent{
		TimeUnixNano:  time.Now().UnixNano(),
		Step:          t.totalSteps,
		Update:        t.updateCount,
		Episode:       t.episodeCount,
		EpisodeReward: t.lastEpReward,
		TDMean:        t.lastTDMean,
		PhaseMicros:   make(map[string]int64, profiler.NumPhases()),
		Sampler:       t.cfg.Sampler.String(),
		Workers:       t.updateWorkers,
	}
	for _, p := range profiler.Phases() {
		d := t.prof.Duration(p)
		if delta := d - t.prevPhaseDur[int(p)]; delta > 0 {
			ev.PhaseMicros[p.String()] = delta.Microseconds()
		}
		t.prevPhaseDur[int(p)] = d
	}
	return ev
}
