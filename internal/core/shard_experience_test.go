package core

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"marlperf/internal/expserve"
	"marlperf/internal/expshard"
	"marlperf/internal/expstore"
	"marlperf/internal/mpe"
	"marlperf/internal/replay"
)

// newShardFabric spins up shards real replayd HTTP servers at R=1 and a
// client fabric routing across them.
func newShardFabric(t *testing.T, spec replay.Spec, shards int) *expserve.Fabric {
	t.Helper()
	var groups []expshard.Group
	for gi := 0; gi < shards; gi++ {
		id := expshard.DefaultGroupID(gi)
		srv, err := expserve.NewServer(expserve.ServerConfig{Provider: expstore.NewRing(spec), Spec: spec, ShardID: id})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		t.Cleanup(func() { hs.Close(); srv.Close() })
		groups = append(groups, expshard.Group{ID: id, Members: []expshard.Member{{Addr: hs.URL}}})
	}
	fabric, err := expserve.NewFabric(groups, expserve.FabricOptions{
		Client: expserve.ClientOptions{Timeout: 10 * time.Second, JitterSeed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fabric
}

// The tentpole acceptance criterion of the sharded replay fabric: a
// trainer sampling from (and publishing to) N shards at R=1 must train
// BIT-IDENTICALLY to one wired to a local in-process store — across
// shard counts, update worker counts, and with prefetch overlap on or
// off. Sharding, like the service split itself, is a pure throughput
// topology knob: same insertion order, same per-batch seeds, same plan
// executed on every shard over the same frozen view, same stable
// shard-ordered merge, therefore the same weights.
func TestShardedExperienceTrainingMatchesLocal(t *testing.T) {
	cfg := expConfig(SamplerLocality)
	env := mpe.NewCooperativeNavigation(2)
	spec := expSpec(cfg, env)
	plan, err := cfg.SamplePlan()
	if err != nil {
		t.Fatal(err)
	}

	localSrc, err := expstore.NewSource(expstore.NewRing(spec), plan)
	if err != nil {
		t.Fatal(err)
	}
	localCkpt, localTr := runServiceTrainer(t, cfg, localSrc, localSrc, 4)
	defer localTr.Close()
	if localTr.UpdateCount() == 0 {
		t.Fatal("no updates ran; the determinism check is vacuous")
	}

	for _, tc := range []struct {
		name     string
		shards   int
		workers  int
		prefetch bool
	}{
		{"2shards", 2, 1, false},
		{"2shards-prefetch", 2, 1, true},
		{"3shards-3workers-prefetch", 3, 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			c.UpdateWorkers = tc.workers
			fabric := newShardFabric(t, spec, tc.shards)
			src, err := expserve.NewShardedSource(fabric, spec, plan)
			if err != nil {
				t.Fatal(err)
			}
			var source replay.TransitionSource = src
			if tc.prefetch {
				source = expserve.NewPrefetchSource(src, 2, nil)
			}
			sink, err := expserve.NewShardedSink(fabric, "actor-0", spec)
			if err != nil {
				t.Fatal(err)
			}
			ckpt, tr := runServiceTrainer(t, c, source, sink, 4)
			defer tr.Close()

			if tr.UpdateCount() != localTr.UpdateCount() {
				t.Fatalf("update counts diverge: sharded %d, local %d", tr.UpdateCount(), localTr.UpdateCount())
			}
			if !bytes.Equal(ckpt, localCkpt) {
				t.Fatalf("sharded training diverged from local: checkpoints differ (%d vs %d bytes)", len(ckpt), len(localCkpt))
			}
			if fabric.DegradedDraws() != 0 || fabric.ReplicaReads() != 0 {
				t.Fatalf("healthy run left the happy path: replica_reads=%d degraded_draws=%d",
					fabric.ReplicaReads(), fabric.DegradedDraws())
			}
		})
	}
}
