package core

import (
	"bytes"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/replay"
)

func TestRestoreExperienceRefillsBufferAndSamplers(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if _, err := tr.Buffer().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := replay.ReadBuffer(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh trainer with a prioritized sampler: Add must fire
	// the listeners registered at NewTrainer time so the priority tree covers
	// the restored experience.
	cfg := smallConfig(MADDPG)
	cfg.Sampler = SamplerPER
	fresh, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreExperience(restored); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Buffer().Len(), tr.Buffer().Len(); got != want {
		t.Fatalf("restored buffer holds %d transitions, want %d", got, want)
	}
	// The PER sampler must be able to draw a batch from the restored
	// experience (panics if its tree is empty).
	fresh.UpdateAllTrainers()
}

func TestRestoreExperienceRejectsShapeMismatch(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	other, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(3))
	if err != nil {
		t.Fatal(err)
	}
	other.Warmup(5)
	var buf bytes.Buffer
	if _, err := other.Buffer().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := replay.ReadBuffer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RestoreExperience(restored); err == nil {
		t.Fatal("mismatched buffer shape accepted")
	}
}
