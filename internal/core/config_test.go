package core

import "testing"

func TestDefaultConfigMatchesPaperSettings(t *testing.T) {
	c := DefaultConfig(MADDPG)
	if c.BatchSize != 1024 {
		t.Fatalf("BatchSize = %d, want 1024", c.BatchSize)
	}
	if c.BufferCapacity != 1_000_000 {
		t.Fatalf("BufferCapacity = %d, want 1M", c.BufferCapacity)
	}
	if c.LR != 0.01 {
		t.Fatalf("LR = %v, want 0.01", c.LR)
	}
	if c.Gamma != 0.95 {
		t.Fatalf("Gamma = %v, want 0.95", c.Gamma)
	}
	if c.Tau != 0.01 {
		t.Fatalf("Tau = %v, want 0.01", c.Tau)
	}
	if c.HiddenSize != 64 {
		t.Fatalf("HiddenSize = %v, want 64", c.HiddenSize)
	}
	if c.MaxEpisodeLen != 25 {
		t.Fatalf("MaxEpisodeLen = %v, want 25", c.MaxEpisodeLen)
	}
	if c.UpdateEvery != 100 {
		t.Fatalf("UpdateEvery = %v, want 100", c.UpdateEvery)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	base := DefaultConfig(MADDPG)
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"batch", func(c *Config) { c.BatchSize = 0 }},
		{"capacity", func(c *Config) { c.BufferCapacity = 10 }},
		{"gamma", func(c *Config) { c.Gamma = 1.5 }},
		{"tau", func(c *Config) { c.Tau = 0 }},
		{"hidden", func(c *Config) { c.HiddenSize = 0 }},
		{"eplen", func(c *Config) { c.MaxEpisodeLen = 0 }},
		{"updateevery", func(c *Config) { c.UpdateEvery = 0 }},
		{"gumbel", func(c *Config) { c.GumbelTau = 0 }},
		{"locality", func(c *Config) { c.Sampler = SamplerLocality; c.Neighbors = 0 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: invalid config accepted", m.name)
		}
	}
	bad := DefaultConfig(MATD3)
	bad.PolicyDelay = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("MATD3 with PolicyDelay 0 accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if MADDPG.String() != "maddpg" || MATD3.String() != "matd3" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm should still render")
	}
	for kind, want := range map[SamplerKind]string{
		SamplerUniform:         "uniform",
		SamplerLocality:        "locality",
		SamplerPER:             "per",
		SamplerIPLocality:      "ip-locality",
		SamplerRankPER:         "rank-per",
		SamplerEpisodeLocality: "ep-locality",
	} {
		if kind.String() != want {
			t.Fatalf("sampler %d = %q, want %q", kind, kind.String(), want)
		}
	}
}
