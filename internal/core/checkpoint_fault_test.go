package core

import (
	"bytes"
	"strings"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/resilience"
	"marlperf/internal/tensor"
)

// Fault-injection coverage for the v2 MARL format: bit flips anywhere in
// the stream, short writes, and legacy v1 (trailer-less) compatibility.

func checkpointBytes(t *testing.T, src *Trainer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func freshTrainer(t *testing.T, algo Algorithm) *Trainer {
	t.Helper()
	tr, err := NewTrainer(smallConfig(algo), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLoadCheckpointRejectsBitFlips(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	data := checkpointBytes(t, src)
	// Sampled offsets across the whole stream plus both edges: header,
	// network parameters, optimizer moments, counters, trailer.
	offsets := []int{0, 1, 4, 5, 8, len(data) - 1, len(data) - 4, len(data) - 12}
	for off := 16; off < len(data); off += 97 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		dst := freshTrainer(t, MADDPG)
		r := &resilience.BitFlipReader{R: bytes.NewReader(data), Offset: int64(off), Mask: 0x20}
		if err := dst.LoadCheckpoint(r); err == nil {
			t.Fatalf("bit flip at offset %d/%d accepted", off, len(data))
		}
	}
}

func TestLoadCheckpointChecksumFailureLeavesTrainerUntouched(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	data := checkpointBytes(t, src)
	dst := freshTrainer(t, MADDPG)
	before := dst.agents[0].actor.Params()[0].Clone()
	// Corrupt a byte deep in the parameter section: the CRC check must
	// fire before any parameter is overwritten.
	r := &resilience.BitFlipReader{R: bytes.NewReader(data), Offset: int64(len(data) / 2), Mask: 0x01}
	if err := dst.LoadCheckpoint(r); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if !tensor.ApproxEqual(dst.agents[0].actor.Params()[0], before, 0) {
		t.Fatal("rejected checkpoint still mutated the trainer")
	}
}

func TestSaveCheckpointPropagatesShortWrites(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	full := int64(len(checkpointBytes(t, src)))
	for _, allow := range []int64{0, 3, 100, full / 2, full - 2} {
		fw := &resilience.FaultWriter{W: &bytes.Buffer{}, Remaining: allow, Short: true}
		if err := src.SaveCheckpoint(fw); err == nil {
			t.Fatalf("short write after %d bytes not reported", allow)
		}
	}
}

func TestLoadCheckpointReadsV1(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	data := checkpointBytes(t, src)
	// A v1 stream is the v2 stream with the version field rewound and the
	// CRC trailer stripped.
	v1 := append([]byte(nil), data[:len(data)-4]...)
	v1[4] = 1
	dst := freshTrainer(t, MADDPG)
	if err := dst.LoadCheckpoint(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	for pi, p := range src.agents[0].actor.Params() {
		if !tensor.ApproxEqual(dst.agents[0].actor.Params()[pi], p, 0) {
			t.Fatalf("v1 restore: actor param %d differs", pi)
		}
	}
	if dst.TotalSteps() != src.TotalSteps() {
		t.Fatal("v1 restore: counters differ")
	}
}

func TestLoadCheckpointRejectsFutureVersion(t *testing.T) {
	src := trainedTrainer(t, MADDPG)
	data := checkpointBytes(t, src)
	data[4] = 99
	dst := freshTrainer(t, MADDPG)
	err := dst.LoadCheckpoint(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}
}
