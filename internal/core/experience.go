package core

import (
	"fmt"

	"marlperf/internal/replay"
)

// SamplePlan maps the configured sampler to the pure-data plan the
// experience service executes server-side. Only strategies whose index
// selection is a pure function of (length, seed) are serviceable — the
// prioritized samplers carry client-side mutable state (sum trees, rank
// heaps) that cannot be replayed remotely.
func (c Config) SamplePlan() (replay.SamplePlan, error) {
	switch c.Sampler {
	case SamplerUniform:
		return replay.SamplePlan{Strategy: replay.PlanUniform}, nil
	case SamplerLocality:
		return replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: c.Neighbors, Refs: c.Refs}, nil
	default:
		return replay.SamplePlan{}, fmt.Errorf("core: sampler %v is not expressible as a sample plan (stateless strategies only)", c.Sampler)
	}
}

// SetExperienceService rewires where the trainer's experience lives:
//
//   - source, when non-nil, replaces the in-process sampler for the update
//     stage — every mini-batch is drawn through it with one seed per batch
//     from the requesting agent's RNG stream. The source may be local
//     (expstore.Source) or remote (expserve.RemoteSource); because index
//     selection is a pure function of (plan, length, seed), the two produce
//     bit-identical training for the same collected rows.
//   - sink, when non-nil, additionally receives every collected transition
//     in collection order; it is flushed before each update-gate check so
//     source.Len reflects everything this process collected.
//
// Must be called before training starts. The configured sampler must be
// plan-expressible (see Config.SamplePlan) when a source is set, so runs
// stay comparable with the local strategy of the same name.
func (t *Trainer) SetExperienceService(source replay.TransitionSource, sink replay.TransitionSink) error {
	if t.totalSteps > 0 || t.updateCount > 0 {
		return fmt.Errorf("core: SetExperienceService after training started")
	}
	if source != nil {
		if _, err := t.cfg.SamplePlan(); err != nil {
			return err
		}
	}
	t.expSource = source
	t.expSink = sink
	return nil
}

// FlushExperience publishes any transitions still buffered in the
// experience sink. The update gate flushes on its own cadence during
// training; call this at end of run so the service holds every row this
// process collected (the zero-experience-loss accounting the chaos smoke
// checks). No-op without a sink.
func (t *Trainer) FlushExperience() error {
	if t.expSink == nil {
		return nil
	}
	return t.expSink.Flush()
}

// ExperienceErr returns the first error recorded by the experience service
// paths (remote sampling or publishing) and clears it.
func (t *Trainer) ExperienceErr() error {
	t.expErrMu.Lock()
	defer t.expErrMu.Unlock()
	err := t.expErr
	t.expErr = nil
	return err
}

// setExpErr records the first experience-service error; later ones are
// dropped (the first failure is the actionable one, and training stops at
// the next step boundary anyway).
func (t *Trainer) setExpErr(err error) {
	t.expErrMu.Lock()
	if t.expErr == nil {
		t.expErr = err
	}
	t.expErrMu.Unlock()
}

// updateReady reports whether the update gate passes: the sampleable
// experience (service-side when a source is wired, the local buffer
// otherwise) has reached the warmup size. With a sink attached, everything
// collected so far is flushed first, so a synchronous service counts this
// process's rows exactly — the property that keeps local and remote update
// cadence identical.
func (t *Trainer) updateReady() (bool, error) {
	if t.expSource == nil {
		return t.buf.Len() >= t.cfg.WarmupSize, nil
	}
	if t.expSink != nil {
		if err := t.expSink.Flush(); err != nil {
			return false, err
		}
	}
	n, err := t.expSource.Len()
	if err != nil {
		return false, err
	}
	return n >= t.cfg.WarmupSize, nil
}
