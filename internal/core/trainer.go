package core

import (
	"fmt"
	"math/rand"

	"marlperf/internal/mpe"
	"marlperf/internal/nn"
	"marlperf/internal/profiler"
	"marlperf/internal/replay"
	"marlperf/internal/tensor"
)

// Trainer runs the CTDE training loop of Figure 1: per-step action
// selection through the decentralized actors, environment interaction,
// replay storage, and the periodic "update all trainers" stage (mini-batch
// sampling, target-Q calculation, Q-loss/P-loss backpropagation) whose
// phases are individually timed.
type Trainer struct {
	cfg Config
	env mpe.Env
	rng *rand.Rand

	n       int   // trainable agents
	obsDims []int // per-agent observation widths
	actDim  int

	agents  []*agentNets
	buf     *replay.Buffer
	kv      *replay.KVBuffer
	sampler replay.Sampler
	prof    *profiler.Profile

	// Episode state.
	obs           [][]float64
	epStep        int
	epRewardSum   float64
	episodeCount  int
	lastEpReward  float64
	totalSteps    int
	sinceUpdate   int
	updateCount   int
	actorUpdCount int

	// Health signals for the watchdog.
	lastTDMean    float64 // mean |TD error| of the most recent critic update
	sanitizedSeen uint64  // sampler clamp count already forwarded to the profiler

	// Joint-space layout: column offsets of each agent's observation and
	// action block in the critic input [obs_1..obs_N, act_1..act_N].
	jointDim   int
	obsOffsets []int
	actOffsets []int

	// Preallocated scratch reused across updates.
	batches     []*replay.AgentBatch
	jointCur    *tensor.Matrix
	jointNext   *tensor.Matrix
	yTarget     *tensor.Matrix
	qGrad       *tensor.Matrix
	probsBuf    *tensor.Matrix
	gradProbs   *tensor.Matrix
	gradLogits  *tensor.Matrix
	targetProbs []*tensor.Matrix
	tdAbs       []float64
	onesW       []float64
	actionProbs [][]float64 // per-agent action vectors for the current step
	actionIdx   []int
}

// NewTrainer builds a trainer for cfg over env, constructing all agent
// networks, the replay storage, and the selected sampling strategy.
func NewTrainer(cfg Config, env mpe.Env) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:     cfg,
		env:     env,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		n:       env.NumAgents(),
		obsDims: env.ObsDims(),
		actDim:  env.NumActions(),
		prof:    &profiler.Profile{},
	}
	if cfg.WarmupSize == 0 {
		cfg.WarmupSize = cfg.BatchSize
		t.cfg.WarmupSize = cfg.BatchSize
	}

	// Joint critic input layout.
	t.obsOffsets = make([]int, t.n)
	t.actOffsets = make([]int, t.n)
	off := 0
	for i, d := range t.obsDims {
		t.obsOffsets[i] = off
		off += d
	}
	for i := 0; i < t.n; i++ {
		t.actOffsets[i] = off
		off += t.actDim
	}
	t.jointDim = off

	for i := 0; i < t.n; i++ {
		t.agents = append(t.agents, newAgentNets(cfg, t.obsDims[i], t.actDim, t.jointDim, t.rng))
	}

	spec := replay.Spec{
		NumAgents: t.n,
		ObsDims:   t.obsDims,
		ActDim:    t.actDim,
		Capacity:  cfg.BufferCapacity,
	}
	t.buf = replay.NewBuffer(spec)
	if cfg.UseKVLayout {
		t.kv = replay.NewKVBuffer(spec)
	}
	switch cfg.Sampler {
	case SamplerUniform:
		t.sampler = replay.NewUniformSampler(t.buf)
	case SamplerLocality:
		t.sampler = replay.NewLocalitySampler(t.buf, cfg.Neighbors, cfg.Refs)
	case SamplerPER:
		t.sampler = replay.NewPERSampler(t.buf)
	case SamplerIPLocality:
		t.sampler = replay.NewIPLocalitySampler(t.buf, cfg.ISBeta)
	case SamplerRankPER:
		t.sampler = replay.NewRankPERSampler(t.buf)
	case SamplerEpisodeLocality:
		t.sampler = replay.NewEpisodeAwareLocalitySampler(t.buf, cfg.Neighbors, cfg.Refs)
	default:
		return nil, fmt.Errorf("core: unknown sampler %v", cfg.Sampler)
	}

	// Scratch allocations.
	b := cfg.BatchSize
	t.batches = make([]*replay.AgentBatch, t.n)
	t.targetProbs = make([]*tensor.Matrix, t.n)
	for i := 0; i < t.n; i++ {
		t.batches[i] = replay.NewAgentBatch(b, t.obsDims[i], t.actDim)
		t.targetProbs[i] = tensor.New(b, t.actDim)
	}
	t.jointCur = tensor.New(b, t.jointDim)
	t.jointNext = tensor.New(b, t.jointDim)
	t.yTarget = tensor.New(b, 1)
	t.qGrad = tensor.New(b, 1)
	t.probsBuf = tensor.New(b, t.actDim)
	t.gradProbs = tensor.New(b, t.actDim)
	t.gradLogits = tensor.New(b, t.actDim)
	t.tdAbs = make([]float64, b)
	t.onesW = make([]float64, b)
	for i := range t.onesW {
		t.onesW[i] = 1
	}
	t.actionProbs = make([][]float64, t.n)
	for i := range t.actionProbs {
		t.actionProbs[i] = make([]float64, t.actDim)
	}
	t.actionIdx = make([]int, t.n)

	t.obs = env.Reset(t.rng)
	return t, nil
}

// Config returns the trainer's configuration (with defaults resolved).
func (t *Trainer) Config() Config { return t.cfg }

// Profile returns the phase-timing profile.
func (t *Trainer) Profile() *profiler.Profile { return t.prof }

// Buffer returns the baseline replay buffer.
func (t *Trainer) Buffer() *replay.Buffer { return t.buf }

// KVBuffer returns the key-value table, or nil when the layout
// reorganization is disabled.
func (t *Trainer) KVBuffer() *replay.KVBuffer { return t.kv }

// Sampler returns the active sampling strategy.
func (t *Trainer) Sampler() replay.Sampler { return t.sampler }

// TotalSteps returns the number of environment steps taken.
func (t *Trainer) TotalSteps() int { return t.totalSteps }

// UpdateCount returns how many update-all-trainers stages have run.
func (t *Trainer) UpdateCount() int { return t.updateCount }

// EpisodeCount returns the number of completed episodes.
func (t *Trainer) EpisodeCount() int { return t.episodeCount }

// LastEpisodeReward returns the mean-over-agents summed reward of the most
// recently completed episode.
func (t *Trainer) LastEpisodeReward() float64 { return t.lastEpReward }

// JointDim returns the centralized critic's input width.
func (t *Trainer) JointDim() int { return t.jointDim }

// Step advances the environment by one step (action selection, env
// interaction, replay add) and runs update-all-trainers when due. It
// returns true if an episode completed on this step.
func (t *Trainer) Step() bool {
	done := t.interact(true)
	t.sinceUpdate++
	if t.sinceUpdate >= t.cfg.UpdateEvery && t.buf.Len() >= t.cfg.WarmupSize {
		t.sinceUpdate = 0
		t.UpdateAllTrainers()
	}
	return done
}

// Warmup runs env steps without any training updates, pre-filling the
// replay buffer (used by the characterization harness).
func (t *Trainer) Warmup(steps int) {
	for i := 0; i < steps; i++ {
		t.interact(false)
	}
}

// interact performs one action-selection + env-step + replay-add cycle.
// When timed is false the phases are not recorded (warmup).
func (t *Trainer) interact(timed bool) bool {
	if timed {
		t.prof.Start(profiler.PhaseActionSelection)
	}
	obsRow := tensor.New(1, 0) // shape fixed per agent below
	for i := 0; i < t.n; i++ {
		obsRow.Rows, obsRow.Cols, obsRow.Data = 1, t.obsDims[i], t.obs[i]
		logits := t.agents[i].actor.Forward(obsRow)
		nn.GumbelSoftmaxRow(t.actionProbs[i], logits.Row(0), t.cfg.GumbelTau, t.rng)
		if !finiteSlice(t.actionProbs[i]) {
			// A diverged actor must not write NaN actions into the replay
			// buffer: one poisoned row re-poisons every batch that samples
			// it, even after a watchdog rollback restores the weights. Act
			// uniformly at random until the watchdog recovers.
			uniform := 1 / float64(t.actDim)
			for k := range t.actionProbs[i] {
				t.actionProbs[i][k] = uniform
			}
			t.actionIdx[i] = t.rng.Intn(t.actDim)
			t.prof.Event(profiler.EventActionSanitized, 1)
			continue
		}
		t.actionIdx[i] = tensor.ArgMax(t.actionProbs[i])
	}
	if timed {
		t.prof.Stop(profiler.PhaseActionSelection)
		t.prof.Start(profiler.PhaseEnvStep)
	}
	nextObs, rewards := t.env.Step(t.actionIdx)
	if timed {
		t.prof.Stop(profiler.PhaseEnvStep)
	}

	t.epStep++
	t.totalSteps++
	var meanRew float64
	for _, r := range rewards {
		meanRew += r
	}
	meanRew /= float64(t.n)
	t.epRewardSum += meanRew

	episodeDone := t.epStep >= t.cfg.MaxEpisodeLen
	doneFlag := 0.0
	if episodeDone {
		doneFlag = 1
	}
	dones := make([]float64, t.n)
	for i := range dones {
		dones[i] = doneFlag
	}

	if timed {
		t.prof.Start(profiler.PhaseReplayAdd)
	}
	t.buf.Add(t.obs, t.actionProbs, rewards, nextObs, dones)
	if timed {
		t.prof.Stop(profiler.PhaseReplayAdd)
	}
	if t.kv != nil {
		// The key-value table is maintained incrementally: every new
		// transition is reshaped into its interleaved row as it arrives,
		// which is the layout-reorganization cost in steady-state training.
		if timed {
			t.prof.Start(profiler.PhaseLayoutReorg)
		}
		t.kv.Add(t.obs, t.actionProbs, rewards, nextObs, dones)
		if timed {
			t.prof.Stop(profiler.PhaseLayoutReorg)
		}
	}

	if episodeDone {
		t.lastEpReward = t.epRewardSum
		t.epRewardSum = 0
		t.epStep = 0
		t.episodeCount++
		t.obs = t.env.Reset(t.rng)
	} else {
		t.obs = nextObs
	}
	return episodeDone
}

// RunEpisodes runs n full episodes (with training updates as configured),
// invoking cb (if non-nil) with each completed episode's mean reward.
func (t *Trainer) RunEpisodes(n int, cb func(episode int, meanReward float64)) {
	for completed := 0; completed < n; {
		if t.Step() {
			completed++
			if cb != nil {
				cb(t.episodeCount, t.lastEpReward)
			}
		}
	}
}

// UpdateAllTrainers runs the full update stage once: for every agent, the
// mini-batch sampling, target-Q calculation and Q-loss/P-loss phases, then
// the target-network soft updates. It panics if the buffer holds fewer than
// BatchSize transitions.
func (t *Trainer) UpdateAllTrainers() {
	if t.buf.Len() < 1 {
		panic("core: update with empty replay buffer")
	}
	t.updateCount++

	delayedStep := t.cfg.Algorithm == MATD3 && t.updateCount%t.cfg.PolicyDelay != 0

	for i := 0; i < t.n; i++ {
		// ---- Mini-batch sampling phase ----
		t.prof.Start(profiler.PhaseSampling)
		sample := t.sampler.Sample(t.cfg.BatchSize, t.rng)
		if t.cfg.UseKVLayout {
			t.kv.GatherAll(sample.Indices, t.batches)
		} else {
			t.buf.GatherAll(sample.Indices, t.batches)
		}
		t.prof.Stop(profiler.PhaseSampling)

		// ---- Target-Q calculation phase ----
		t.prof.Start(profiler.PhaseTargetQ)
		t.computeTargets(i)
		t.prof.Stop(profiler.PhaseTargetQ)

		// ---- Q-loss / P-loss phase ----
		t.prof.Start(profiler.PhaseQPLoss)
		weights := sample.Weights
		if weights == nil {
			weights = t.onesW
		}
		t.updateCritics(i, weights)
		if !delayedStep {
			t.updateActor(i)
		}
		t.prof.Stop(profiler.PhaseQPLoss)

		if ps, ok := t.sampler.(replay.PrioritySampler); ok {
			ps.UpdatePriorities(sample.Indices, t.tdAbs[:len(sample.Indices)])
		}
	}
	if sc, ok := t.sampler.(interface{ SanitizedCount() uint64 }); ok {
		if n := sc.SanitizedCount(); n > t.sanitizedSeen {
			t.prof.Event(profiler.EventPriorityClamped, n-t.sanitizedSeen)
			t.sanitizedSeen = n
		}
	}

	if !delayedStep {
		t.prof.Start(profiler.PhaseQPLoss)
		for _, ag := range t.agents {
			ag.softUpdateTargets(t.cfg.Tau)
		}
		t.prof.Stop(profiler.PhaseQPLoss)
	}
}

// computeTargets fills yTarget for agent i: every agent's target actor maps
// its next observation to target action probabilities (with MATD3 target
// policy smoothing), the joint next state-action is assembled, and the
// target critic(s) produce y = r + γ(1-done)·Q'. This is the N×(N-1)
// cross-agent policy lookup structure the paper describes.
func (t *Trainer) computeTargets(i int) {
	b := t.cfg.BatchSize
	for j := 0; j < t.n; j++ {
		logits := t.agents[j].targetActor.Forward(t.batches[j].NextObs)
		if t.cfg.Algorithm == MATD3 && t.cfg.TargetNoiseStd > 0 {
			// Target policy smoothing: clipped Gaussian noise on logits.
			for k := range logits.Data {
				noise := t.rng.NormFloat64() * t.cfg.TargetNoiseStd
				if noise > t.cfg.TargetNoiseClip {
					noise = t.cfg.TargetNoiseClip
				} else if noise < -t.cfg.TargetNoiseClip {
					noise = -t.cfg.TargetNoiseClip
				}
				logits.Data[k] += noise
			}
		}
		nn.SoftmaxRows(t.targetProbs[j], logits)
	}
	for j := 0; j < t.n; j++ {
		tensor.SetCols(t.jointNext, t.batches[j].NextObs, t.obsOffsets[j])
		tensor.SetCols(t.jointNext, t.targetProbs[j], t.actOffsets[j])
	}
	q1 := t.agents[i].targetCritic1.Forward(t.jointNext)
	qNext := q1
	if t.agents[i].targetCritic2 != nil {
		q2 := t.agents[i].targetCritic2.Forward(t.jointNext)
		// Twin target: elementwise min counters over-estimation bias.
		for k := range q1.Data {
			if q2.Data[k] < q1.Data[k] {
				q1.Data[k] = q2.Data[k]
			}
		}
	}
	rew := t.batches[i].Rew
	done := t.batches[i].Done
	for k := 0; k < b; k++ {
		t.yTarget.Data[k] = rew.Data[k] + t.cfg.Gamma*(1-done.Data[k])*qNext.Data[k]
	}
}

// updateCritics assembles the joint current state-action from the sampled
// batch and applies one weighted-MSE Adam step to each critic of agent i,
// recording absolute TD errors for prioritized samplers.
func (t *Trainer) updateCritics(i int, weights []float64) {
	for j := 0; j < t.n; j++ {
		tensor.SetCols(t.jointCur, t.batches[j].Obs, t.obsOffsets[j])
		tensor.SetCols(t.jointCur, t.batches[j].Act, t.actOffsets[j])
	}
	ag := t.agents[i]

	q := ag.critic1.Forward(t.jointCur)
	nn.WeightedMSELoss(t.qGrad, q, t.yTarget, weights, t.tdAbs)
	var tdSum float64
	for _, v := range t.tdAbs {
		tdSum += v
	}
	t.lastTDMean = tdSum / float64(len(t.tdAbs))
	ag.critic1.ZeroGrads()
	ag.critic1.Backward(t.qGrad)
	ag.critic1.ClipGradients(t.cfg.ClipNorm)
	ag.critic1Opt.Step()

	if ag.critic2 != nil {
		q2 := ag.critic2.Forward(t.jointCur)
		nn.WeightedMSELoss(t.qGrad, q2, t.yTarget, weights, nil)
		ag.critic2.ZeroGrads()
		ag.critic2.Backward(t.qGrad)
		ag.critic2.ClipGradients(t.cfg.ClipNorm)
		ag.critic2Opt.Step()
	}
}

// updateActor applies one policy-gradient step to agent i's actor: the
// actor's softmax action replaces its buffer action in the joint input,
// the critic scores it, and -mean(Q) (plus the reference implementation's
// 1e-3 logit regularizer) is minimized through the critic into the actor.
func (t *Trainer) updateActor(i int) {
	ag := t.agents[i]
	b := t.cfg.BatchSize

	logits := ag.actor.Forward(t.batches[i].Obs)
	nn.SoftmaxRows(t.probsBuf, logits)
	tensor.SetCols(t.jointCur, t.probsBuf, t.actOffsets[i])

	ag.critic1.Forward(t.jointCur)
	// dPLoss/dQ = -1/B for pLoss = -mean(Q).
	t.qGrad.Fill(-1 / float64(b))
	ag.critic1.ZeroGrads()
	gradIn := ag.critic1.Backward(t.qGrad)
	tensor.SliceCols(t.gradProbs, gradIn, t.actOffsets[i], t.actOffsets[i]+t.actDim)
	nn.SoftmaxBackwardRows(t.gradLogits, t.probsBuf, t.gradProbs)
	// Logit regularizer: +1e-3 · mean(logits²).
	regScale := 1e-3 * 2 / float64(len(logits.Data))
	for k := range t.gradLogits.Data {
		t.gradLogits.Data[k] += regScale * logits.Data[k]
	}
	ag.actor.ZeroGrads()
	ag.actor.Backward(t.gradLogits)
	ag.actor.ClipGradients(t.cfg.ClipNorm)
	ag.actorOpt.Step()
	// The critic's parameter gradients from this pass are discarded; clear
	// them so nothing leaks into the next critic step.
	ag.critic1.ZeroGrads()
	t.actorUpdCount++
}
