package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"marlperf/internal/mpe"
	"marlperf/internal/nn"
	"marlperf/internal/profiler"
	"marlperf/internal/replay"
	"marlperf/internal/tensor"
	"marlperf/internal/trace"
)

// Trainer runs the CTDE training loop of Figure 1: per-step action
// selection through the decentralized actors, environment interaction,
// replay storage, and the periodic "update all trainers" stage (mini-batch
// sampling, target-Q calculation, Q-loss/P-loss backpropagation) whose
// phases are individually timed.
//
// The update stage runs on a persistent per-agent worker pool sized by
// Config.UpdateWorkers. Each agent's update draws from its own RNG stream
// and writes only its own networks, so serial (UpdateWorkers=1) and
// parallel runs are bit-identical for the same seed; see updateAgent for
// the isolation invariants.
type Trainer struct {
	cfg Config
	env mpe.Env
	rng *rand.Rand

	n       int   // trainable agents
	obsDims []int // per-agent observation widths
	actDim  int

	agents  []*agentNets
	buf     *replay.Buffer
	kv      *replay.KVBuffer
	sampler replay.Sampler
	prof    *profiler.Profile

	// Experience service wiring (see SetExperienceService). When expSource
	// is set, mini-batches come from it instead of the in-process sampler;
	// when expSink is set, every collected transition is also published.
	expSource replay.TransitionSource
	expSink   replay.TransitionSink
	expErrMu  sync.Mutex
	expErr    error

	// Episode state.
	obs           [][]float64
	epStep        int
	epRewardSum   float64
	episodeCount  int
	lastEpReward  float64
	totalSteps    int
	sinceUpdate   int
	updateCount   int
	actorUpdCount int

	// Health signals for the watchdog.
	lastTDMean    float64 // mean |TD error| of the most recent critic update
	sanitizedSeen uint64  // sampler clamp count already forwarded to the profiler

	// Telemetry taps. phaseObs mirrors every phase observation and event
	// to an external collector; updateListener receives one UpdateEvent
	// per completed update-all-trainers stage. Both are optional.
	phaseObs       profiler.Observer
	updateListener func(UpdateEvent)
	prevPhaseDur   []time.Duration // per-phase totals at the last emitted event
	tracer         *trace.Tracer   // optional span tracer; nil behaves as disabled

	// Joint-space layout: column offsets of each agent's observation and
	// action block in the critic input [obs_1..obs_N, act_1..act_N].
	jointDim   int
	obsOffsets []int
	actOffsets []int

	// Parallel update engine. Per-agent RNG streams keep sampling and
	// target-noise draws independent of worker interleaving; per-worker
	// scratch arenas keep the hot path allocation-free; per-agent pending
	// slots batch TD-error feedback until after the join barrier.
	updateWorkers int // resolved worker cap (≥1)
	agentRNGs     []*rand.Rand
	prioritized   bool // sampler implements PrioritySampler
	scratch       []*updateScratch
	workCh        chan int
	updWG         sync.WaitGroup
	updDelayed    bool // MATD3 policy-delay flag for the in-flight update
	pendingIdx    [][]int
	pendingTD     [][]float64
	tdMeans       []float64
	updSeeds      []int64 // per-agent batch seeds, pre-drawn serially each update

	// Shared read-only and interaction scratch.
	onesW       []float64
	actionProbs [][]float64 // per-agent action vectors for the current step
	actionIdx   []int
	dones       []float64
	obsRow      *tensor.Matrix
}

// updateScratch is one worker's private arena for the update stage: batch
// tensors, joint-space assembly buffers, TD errors, a reusable sample, a
// profiler shard, and shared-weight shadow clones of every agent's target
// actor (the only networks every worker must forward — the N×(N-1)
// cross-agent lookups of the CTDE target calculation).
type updateScratch struct {
	sample      replay.Sample
	batches     []*replay.AgentBatch
	targetProbs []*tensor.Matrix
	tActors     []*nn.Network // shadows aliasing agents[j].targetActor weights
	jointCur    *tensor.Matrix
	jointNext   *tensor.Matrix
	yTarget     *tensor.Matrix
	qGrad       *tensor.Matrix
	probsBuf    *tensor.Matrix
	gradProbs   *tensor.Matrix
	gradLogits  *tensor.Matrix
	tdAbs       []float64
	prof        profiler.Profile
}

func (t *Trainer) newUpdateScratch() *updateScratch {
	b := t.cfg.BatchSize
	s := &updateScratch{
		batches:     make([]*replay.AgentBatch, t.n),
		targetProbs: make([]*tensor.Matrix, t.n),
		tActors:     make([]*nn.Network, t.n),
		jointCur:    tensor.New(b, t.jointDim),
		jointNext:   tensor.New(b, t.jointDim),
		yTarget:     tensor.New(b, 1),
		qGrad:       tensor.New(b, 1),
		probsBuf:    tensor.New(b, t.actDim),
		gradProbs:   tensor.New(b, t.actDim),
		gradLogits:  tensor.New(b, t.actDim),
		tdAbs:       make([]float64, b),
	}
	for i := 0; i < t.n; i++ {
		s.batches[i] = replay.NewAgentBatch(b, t.obsDims[i], t.actDim)
		s.targetProbs[i] = tensor.New(b, t.actDim)
		s.tActors[i] = t.agents[i].targetActor.SharedClone()
	}
	s.prof.SetObserver(t.phaseObs)
	return s
}

// agentStreamPrime spaces the per-agent RNG streams derived from the run
// seed.
const agentStreamPrime = 1_000_000_007

// agentStreamSeed derives agent i's RNG stream seed from the run seed.
func agentStreamSeed(seed int64, agent int) int64 {
	return seed ^ int64(agent+1)*agentStreamPrime
}

// NewTrainer builds a trainer for cfg over env, constructing all agent
// networks, the replay storage, and the selected sampling strategy.
func NewTrainer(cfg Config, env mpe.Env) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{
		cfg:     cfg,
		env:     env,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		n:       env.NumAgents(),
		obsDims: env.ObsDims(),
		actDim:  env.NumActions(),
		prof:    &profiler.Profile{},
	}
	if cfg.WarmupSize == 0 {
		cfg.WarmupSize = cfg.BatchSize
		t.cfg.WarmupSize = cfg.BatchSize
	}
	t.updateWorkers = cfg.ResolvedUpdateWorkers()

	// Joint critic input layout.
	t.obsOffsets = make([]int, t.n)
	t.actOffsets = make([]int, t.n)
	off := 0
	for i, d := range t.obsDims {
		t.obsOffsets[i] = off
		off += d
	}
	for i := 0; i < t.n; i++ {
		t.actOffsets[i] = off
		off += t.actDim
	}
	t.jointDim = off

	for i := 0; i < t.n; i++ {
		t.agents = append(t.agents, newAgentNets(cfg, t.obsDims[i], t.actDim, t.jointDim, t.rng))
	}
	t.agentRNGs = make([]*rand.Rand, t.n)
	for i := range t.agentRNGs {
		t.agentRNGs[i] = rand.New(rand.NewSource(agentStreamSeed(cfg.Seed, i)))
	}

	spec := replay.Spec{
		NumAgents: t.n,
		ObsDims:   t.obsDims,
		ActDim:    t.actDim,
		Capacity:  cfg.BufferCapacity,
	}
	t.buf = replay.NewBuffer(spec)
	if cfg.UseKVLayout {
		t.kv = replay.NewKVBuffer(spec)
	}
	switch cfg.Sampler {
	case SamplerUniform:
		t.sampler = replay.NewUniformSampler(t.buf)
	case SamplerLocality:
		t.sampler = replay.NewLocalitySampler(t.buf, cfg.Neighbors, cfg.Refs)
	case SamplerPER:
		t.sampler = replay.NewPERSampler(t.buf)
	case SamplerIPLocality:
		t.sampler = replay.NewIPLocalitySampler(t.buf, cfg.ISBeta)
	case SamplerRankPER:
		t.sampler = replay.NewRankPERSampler(t.buf)
	case SamplerEpisodeLocality:
		t.sampler = replay.NewEpisodeAwareLocalitySampler(t.buf, cfg.Neighbors, cfg.Refs)
	default:
		return nil, fmt.Errorf("core: unknown sampler %v", cfg.Sampler)
	}
	_, t.prioritized = t.sampler.(replay.PrioritySampler)

	// Per-agent pending slots for batched priority feedback and TD means.
	t.pendingIdx = make([][]int, t.n)
	t.pendingTD = make([][]float64, t.n)
	t.tdMeans = make([]float64, t.n)

	// Shared scratch.
	t.onesW = make([]float64, cfg.BatchSize)
	for i := range t.onesW {
		t.onesW[i] = 1
	}
	t.actionProbs = make([][]float64, t.n)
	for i := range t.actionProbs {
		t.actionProbs[i] = make([]float64, t.actDim)
	}
	t.actionIdx = make([]int, t.n)
	t.dones = make([]float64, t.n)
	t.obsRow = tensor.New(1, 0) // shape rebound per agent in interact

	t.obs = env.Reset(t.rng)
	return t, nil
}

// Config returns the trainer's configuration (with defaults resolved).
func (t *Trainer) Config() Config { return t.cfg }

// Profile returns the phase-timing profile.
func (t *Trainer) Profile() *profiler.Profile { return t.prof }

// Buffer returns the baseline replay buffer.
func (t *Trainer) Buffer() *replay.Buffer { return t.buf }

// KVBuffer returns the key-value table, or nil when the layout
// reorganization is disabled.
func (t *Trainer) KVBuffer() *replay.KVBuffer { return t.kv }

// Sampler returns the active sampling strategy.
func (t *Trainer) Sampler() replay.Sampler { return t.sampler }

// TotalSteps returns the number of environment steps taken.
func (t *Trainer) TotalSteps() int { return t.totalSteps }

// UpdateCount returns how many update-all-trainers stages have run.
func (t *Trainer) UpdateCount() int { return t.updateCount }

// EpisodeCount returns the number of completed episodes.
func (t *Trainer) EpisodeCount() int { return t.episodeCount }

// LastEpisodeReward returns the mean-over-agents summed reward of the most
// recently completed episode.
func (t *Trainer) LastEpisodeReward() float64 { return t.lastEpReward }

// JointDim returns the centralized critic's input width.
func (t *Trainer) JointDim() int { return t.jointDim }

// UpdateWorkers returns the resolved worker-pool size (before the per-update
// cap at the agent count).
func (t *Trainer) UpdateWorkers() int { return t.updateWorkers }

// Close shuts down the update worker pool. The trainer must not be updated
// afterwards; Close is idempotent and safe on trainers that never went
// parallel.
func (t *Trainer) Close() {
	if t.workCh != nil {
		close(t.workCh)
		t.workCh = nil
	}
}

// Step advances the environment by one step (action selection, env
// interaction, replay add) and runs update-all-trainers when due. It
// returns true if an episode completed on this step. Experience-service
// failures (a remote source past its retry budget) panic; use StepE to
// handle them.
func (t *Trainer) Step() bool {
	done, err := t.StepE()
	if err != nil {
		panic(err)
	}
	return done
}

// StepE is Step with experience-service errors surfaced instead of
// panicking. Trainers without a remote source never return an error.
func (t *Trainer) StepE() (bool, error) {
	done := t.interact(true)
	if err := t.ExperienceErr(); err != nil {
		return done, err
	}
	t.sinceUpdate++
	if t.sinceUpdate >= t.cfg.UpdateEvery {
		ready, err := t.updateReady()
		if err != nil {
			return done, err
		}
		if ready {
			t.sinceUpdate = 0
			t.UpdateAllTrainers()
			if err := t.ExperienceErr(); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}

// Warmup runs env steps without any training updates, pre-filling the
// replay buffer (used by the characterization harness).
func (t *Trainer) Warmup(steps int) {
	for i := 0; i < steps; i++ {
		t.interact(false)
	}
}

// interact performs one action-selection + env-step + replay-add cycle.
// When timed is false the phases are not recorded (warmup).
func (t *Trainer) interact(timed bool) bool {
	if timed {
		t.prof.Start(profiler.PhaseActionSelection)
	}
	obsRow := t.obsRow
	for i := 0; i < t.n; i++ {
		obsRow.Rows, obsRow.Cols, obsRow.Data = 1, t.obsDims[i], t.obs[i]
		logits := t.agents[i].actor.Forward(obsRow)
		nn.GumbelSoftmaxRow(t.actionProbs[i], logits.Row(0), t.cfg.GumbelTau, t.rng)
		if !finiteSlice(t.actionProbs[i]) {
			// A diverged actor must not write NaN actions into the replay
			// buffer: one poisoned row re-poisons every batch that samples
			// it, even after a watchdog rollback restores the weights. Act
			// uniformly at random until the watchdog recovers.
			uniform := 1 / float64(t.actDim)
			for k := range t.actionProbs[i] {
				t.actionProbs[i][k] = uniform
			}
			t.actionIdx[i] = t.rng.Intn(t.actDim)
			t.prof.Event(profiler.EventActionSanitized, 1)
			continue
		}
		t.actionIdx[i] = tensor.ArgMax(t.actionProbs[i])
	}
	if timed {
		t.prof.Stop(profiler.PhaseActionSelection)
		t.prof.Start(profiler.PhaseEnvStep)
	}
	nextObs, rewards := t.env.Step(t.actionIdx)
	if timed {
		t.prof.Stop(profiler.PhaseEnvStep)
	}

	t.epStep++
	t.totalSteps++
	var meanRew float64
	for _, r := range rewards {
		meanRew += r
	}
	meanRew /= float64(t.n)
	t.epRewardSum += meanRew

	episodeDone := t.epStep >= t.cfg.MaxEpisodeLen
	doneFlag := 0.0
	if episodeDone {
		doneFlag = 1
	}
	for i := range t.dones {
		t.dones[i] = doneFlag
	}

	if timed {
		t.prof.Start(profiler.PhaseReplayAdd)
	}
	t.buf.Add(t.obs, t.actionProbs, rewards, nextObs, t.dones)
	if timed {
		t.prof.Stop(profiler.PhaseReplayAdd)
	}
	if t.kv != nil {
		// The key-value table is maintained incrementally: every new
		// transition is reshaped into its interleaved row as it arrives,
		// which is the layout-reorganization cost in steady-state training.
		if timed {
			t.prof.Start(profiler.PhaseLayoutReorg)
		}
		t.kv.Add(t.obs, t.actionProbs, rewards, nextObs, t.dones)
		if timed {
			t.prof.Stop(profiler.PhaseLayoutReorg)
		}
	}
	if t.expSink != nil {
		// Publish to the experience service in collection order. Sinks may
		// buffer; the update gate flushes before counting rows.
		if timed {
			t.prof.Start(profiler.PhaseReplayAdd)
		}
		if err := t.expSink.Add(t.obs, t.actionProbs, rewards, nextObs, t.dones); err != nil {
			t.setExpErr(err)
		}
		if timed {
			t.prof.Stop(profiler.PhaseReplayAdd)
		}
	}

	if episodeDone {
		t.lastEpReward = t.epRewardSum
		t.epRewardSum = 0
		t.epStep = 0
		t.episodeCount++
		t.obs = t.env.Reset(t.rng)
	} else {
		t.obs = nextObs
	}
	return episodeDone
}

// RunEpisodes runs n full episodes (with training updates as configured),
// invoking cb (if non-nil) with each completed episode's mean reward.
func (t *Trainer) RunEpisodes(n int, cb func(episode int, meanReward float64)) {
	for completed := 0; completed < n; {
		if t.Step() {
			completed++
			if cb != nil {
				cb(t.episodeCount, t.lastEpReward)
			}
		}
	}
}

// ensureUpdateState lazily builds the per-worker scratch arenas and, when
// more than one worker is in play, the persistent pool goroutines. The pool
// size is fixed for the trainer's lifetime (agent count and config do not
// change), so this settles after the first update.
func (t *Trainer) ensureUpdateState(workers int) {
	for len(t.scratch) < workers {
		t.scratch = append(t.scratch, t.newUpdateScratch())
	}
	if workers > 1 && t.workCh == nil {
		t.workCh = make(chan int)
		for w := 0; w < workers; w++ {
			go t.updateWorkerLoop(t.scratch[w])
		}
	}
}

// updateWorkerLoop is one pool goroutine: it owns scratch s for its entire
// life and processes agent indices until the channel closes.
func (t *Trainer) updateWorkerLoop(s *updateScratch) {
	for i := range t.workCh {
		t.updateAgent(s, i, t.updDelayed)
		t.updWG.Done()
	}
}

// UpdateAllTrainers runs the full update stage once: for every agent, the
// mini-batch sampling, target-Q calculation and Q-loss/P-loss phases, then
// the batched priority feedback and target-network soft updates. With
// UpdateWorkers > 1 the per-agent updates run concurrently on the worker
// pool; results are bit-identical to the serial path because every agent
// draws from its own RNG stream, writes only its own networks, and all
// cross-agent reads (target actors, replay storage, sum trees) are frozen
// for the duration of the parallel window.
func (t *Trainer) UpdateAllTrainers() {
	if t.expSource == nil && t.buf.Len() < 1 {
		panic("core: update with empty replay buffer")
	}
	t.updateCount++

	// Open the per-update root span and publish its context before the
	// seed pre-draw, so every sample RPC this update issues (including
	// prefetched ones) joins the trace. Unsampled updates clear the
	// context so their RPCs do not attach to a stale root. The trace ID
	// is a pure function of (seed, update index): the same seeded run
	// traces to the same IDs on every machine.
	var updSpan trace.Span
	if t.tracer.Sampled(uint64(t.updateCount)) {
		tid := trace.DeriveTraceID(uint64(t.cfg.Seed), trace.KindUpdate, uint64(t.updateCount))
		updSpan = t.tracer.StartTrace(tid, "update")
		t.tracer.SetActive(updSpan.Context())
	} else if t.tracer.Enabled() {
		t.tracer.ClearActive()
	}

	delayed := t.cfg.Algorithm == MATD3 && t.updateCount%t.cfg.PolicyDelay != 0
	workers := t.updateWorkers
	if workers > t.n {
		workers = t.n
	}
	t.ensureUpdateState(workers)

	if t.expSource != nil {
		// Pre-draw every agent's batch seed serially, in agent order, before
		// any worker runs. Each draw is still the first Int63 taken from
		// stream i this update — exactly the value updateAgent used to draw
		// inline — so the schedule change is invisible to training. Hoisting
		// the draws is what makes overlap possible: a prefetching source can
		// start all n sample RPCs now and hide them behind gradient compute.
		if cap(t.updSeeds) < t.n {
			t.updSeeds = make([]int64, t.n)
		}
		t.updSeeds = t.updSeeds[:t.n]
		for i := 0; i < t.n; i++ {
			t.updSeeds[i] = t.agentRNGs[i].Int63()
		}
		if pf, ok := t.expSource.(replay.BatchPrefetcher); ok {
			pf.PrefetchBatch(t.cfg.BatchSize, t.updSeeds)
		}
	}

	if workers <= 1 {
		s := t.scratch[0]
		for i := 0; i < t.n; i++ {
			t.updateAgent(s, i, delayed)
		}
		s.prof.DrainInto(t.prof)
	} else {
		t.updDelayed = delayed
		// Suspend nested row-parallelism inside the kernels: the cores are
		// occupied one-matmul-per-agent, and row results are identical
		// either way.
		tensor.BeginCoarseParallel()
		t.updWG.Add(t.n)
		for i := 0; i < t.n; i++ {
			t.workCh <- i
		}
		t.updWG.Wait()
		tensor.EndCoarseParallel()
		// Drain profiler shards in worker order so phase totals stay
		// deterministic in structure (durations are wall-clock, counts are
		// exact).
		for _, s := range t.scratch[:workers] {
			s.prof.DrainInto(t.prof)
		}
	}

	// Batched priority feedback: every agent's TD errors were parked in its
	// pending slot during the (possibly concurrent) update; apply them
	// serially in agent order so the sum tree / rank order sees the same
	// write sequence regardless of worker count.
	if ps, ok := t.sampler.(replay.PrioritySampler); ok {
		for i := 0; i < t.n; i++ {
			if len(t.pendingIdx[i]) > 0 {
				ps.UpdatePriorities(t.pendingIdx[i], t.pendingTD[i])
			}
		}
	}
	var tdSum float64
	for _, m := range t.tdMeans {
		tdSum += m
	}
	t.lastTDMean = tdSum / float64(t.n)
	if !delayed {
		t.actorUpdCount += t.n
	}
	if sc, ok := t.sampler.(interface{ SanitizedCount() uint64 }); ok {
		if n := sc.SanitizedCount(); n > t.sanitizedSeen {
			t.prof.Event(profiler.EventPriorityClamped, n-t.sanitizedSeen)
			t.sanitizedSeen = n
		}
	}

	if !delayed {
		t.prof.Start(profiler.PhaseQPLoss)
		// Span name matches the profiler phase this block accumulates
		// into, so per-name span sums reconcile with /profilez totals.
		sp := t.tracer.StartSpan(updSpan.Context(), "q-loss-p-loss")
		for _, ag := range t.agents {
			ag.softUpdateTargets(t.cfg.Tau)
		}
		sp.EndArg("soft-updates", int64(t.n))
		t.prof.Stop(profiler.PhaseQPLoss)
	}

	// The root context stays active past End: the policy publisher reads
	// it from its own goroutine after this update returns, attributing
	// the publish RPC to the update that produced the weights.
	updSpan.EndArg("update", int64(t.updateCount))

	if t.updateListener != nil {
		t.updateListener(t.buildUpdateEvent())
	}
}

// updateAgent runs one agent's full update on worker scratch s. Isolation
// invariants that make concurrent calls (distinct s, distinct i) safe and
// deterministic:
//   - RNG draws (sampling, MATD3 target noise) come from agentRNGs[i] only.
//   - Writes touch only agent i's own networks/optimizers and s.
//   - Cross-agent target-actor forwards go through s.tActors shadows, which
//     alias weights (frozen until the post-join soft updates) but own their
//     forward scratch.
//   - Replay reads (SampleInto, GatherAll, sum-tree lookups) are concurrent
//     reads; priority writes are parked in pendingIdx/pendingTD[i] and
//     applied after the join.
func (t *Trainer) updateAgent(s *updateScratch, i int, delayed bool) {
	// Phase spans parent on the per-update root (zero when this update is
	// unsampled, making every span below a no-op). They sit inside the
	// profiler Start/Stop windows so span sums stay ≤ profiler totals.
	parent := t.tracer.Active()

	// ---- Mini-batch sampling phase ----
	s.prof.Start(profiler.PhaseSampling)
	sampleSpan := t.tracer.StartSpan(parent, "mini-batch-sampling")
	if t.expSource != nil {
		// Experience-service path: one seed per mini-batch from agent i's
		// stream; the source (local store or remote service) derives the
		// index set from it. The seed was pre-drawn serially at the top of
		// UpdateAllTrainers — the single Int63 draw replaces the in-process
		// sampler's RNG consumption in both local and remote mode, which is
		// what keeps the two bit-identical.
		seed := t.updSeeds[i]
		if _, err := t.expSource.SampleBatch(t.cfg.BatchSize, seed, s.batches); err != nil {
			t.setExpErr(fmt.Errorf("core: agent %d mini-batch: %w", i, err))
			sampleSpan.EndArg("agent", int64(i))
			s.prof.Stop(profiler.PhaseSampling)
			return
		}
	} else {
		t.sampler.SampleInto(&s.sample, t.cfg.BatchSize, t.agentRNGs[i])
		if t.cfg.UseKVLayout {
			t.kv.GatherAll(s.sample.Indices, s.batches)
		} else {
			t.buf.GatherAll(s.sample.Indices, s.batches)
		}
	}
	sampleSpan.EndArg("agent", int64(i))
	s.prof.Stop(profiler.PhaseSampling)

	// ---- Target-Q calculation phase ----
	s.prof.Start(profiler.PhaseTargetQ)
	tqSpan := t.tracer.StartSpan(parent, "target-q")
	t.computeTargets(s, i)
	tqSpan.EndArg("agent", int64(i))
	s.prof.Stop(profiler.PhaseTargetQ)

	// ---- Q-loss / P-loss phase ----
	s.prof.Start(profiler.PhaseQPLoss)
	qpSpan := t.tracer.StartSpan(parent, "q-loss-p-loss")
	weights := s.sample.Weights
	if len(weights) == 0 {
		weights = t.onesW
	}
	t.updateCritics(s, i, weights)
	if !delayed {
		t.updateActor(s, i)
	}
	qpSpan.EndArg("agent", int64(i))
	s.prof.Stop(profiler.PhaseQPLoss)

	if t.prioritized {
		m := len(s.sample.Indices)
		t.pendingIdx[i] = append(t.pendingIdx[i][:0], s.sample.Indices...)
		t.pendingTD[i] = append(t.pendingTD[i][:0], s.tdAbs[:m]...)
	}
}

// computeTargets fills s.yTarget for agent i: every agent's target actor
// (through this worker's shadows) maps its next observation to target action
// probabilities (with MATD3 target policy smoothing from agent i's RNG
// stream), the joint next state-action is assembled, and the target
// critic(s) produce y = r + γ(1-done)·Q'. This is the N×(N-1) cross-agent
// policy lookup structure the paper describes.
func (t *Trainer) computeTargets(s *updateScratch, i int) {
	b := t.cfg.BatchSize
	rng := t.agentRNGs[i]
	for j := 0; j < t.n; j++ {
		logits := s.tActors[j].Forward(s.batches[j].NextObs)
		if t.cfg.Algorithm == MATD3 && t.cfg.TargetNoiseStd > 0 {
			// Target policy smoothing: clipped Gaussian noise on logits.
			for k := range logits.Data {
				noise := rng.NormFloat64() * t.cfg.TargetNoiseStd
				if noise > t.cfg.TargetNoiseClip {
					noise = t.cfg.TargetNoiseClip
				} else if noise < -t.cfg.TargetNoiseClip {
					noise = -t.cfg.TargetNoiseClip
				}
				logits.Data[k] += noise
			}
		}
		nn.SoftmaxRows(s.targetProbs[j], logits)
	}
	for j := 0; j < t.n; j++ {
		tensor.SetCols(s.jointNext, s.batches[j].NextObs, t.obsOffsets[j])
		tensor.SetCols(s.jointNext, s.targetProbs[j], t.actOffsets[j])
	}
	q1 := t.agents[i].targetCritic1.Forward(s.jointNext)
	qNext := q1
	if t.agents[i].targetCritic2 != nil {
		q2 := t.agents[i].targetCritic2.Forward(s.jointNext)
		// Twin target: elementwise min counters over-estimation bias.
		for k := range q1.Data {
			if q2.Data[k] < q1.Data[k] {
				q1.Data[k] = q2.Data[k]
			}
		}
	}
	rew := s.batches[i].Rew
	done := s.batches[i].Done
	for k := 0; k < b; k++ {
		s.yTarget.Data[k] = rew.Data[k] + t.cfg.Gamma*(1-done.Data[k])*qNext.Data[k]
	}
}

// updateCritics assembles the joint current state-action from the sampled
// batch and applies one weighted-MSE Adam step to each critic of agent i,
// recording absolute TD errors for prioritized samplers.
func (t *Trainer) updateCritics(s *updateScratch, i int, weights []float64) {
	for j := 0; j < t.n; j++ {
		tensor.SetCols(s.jointCur, s.batches[j].Obs, t.obsOffsets[j])
		tensor.SetCols(s.jointCur, s.batches[j].Act, t.actOffsets[j])
	}
	ag := t.agents[i]

	q := ag.critic1.Forward(s.jointCur)
	nn.WeightedMSELoss(s.qGrad, q, s.yTarget, weights, s.tdAbs)
	var tdSum float64
	for _, v := range s.tdAbs {
		tdSum += v
	}
	t.tdMeans[i] = tdSum / float64(len(s.tdAbs))
	ag.critic1.ZeroGrads()
	ag.critic1.Backward(s.qGrad)
	ag.critic1.ClipGradients(t.cfg.ClipNorm)
	ag.critic1Opt.Step()

	if ag.critic2 != nil {
		q2 := ag.critic2.Forward(s.jointCur)
		nn.WeightedMSELoss(s.qGrad, q2, s.yTarget, weights, nil)
		ag.critic2.ZeroGrads()
		ag.critic2.Backward(s.qGrad)
		ag.critic2.ClipGradients(t.cfg.ClipNorm)
		ag.critic2Opt.Step()
	}
}

// updateActor applies one policy-gradient step to agent i's actor: the
// actor's softmax action replaces its buffer action in the joint input,
// the critic scores it, and -mean(Q) (plus the reference implementation's
// 1e-3 logit regularizer) is minimized through the critic into the actor.
func (t *Trainer) updateActor(s *updateScratch, i int) {
	ag := t.agents[i]
	b := t.cfg.BatchSize

	logits := ag.actor.Forward(s.batches[i].Obs)
	nn.SoftmaxRows(s.probsBuf, logits)
	tensor.SetCols(s.jointCur, s.probsBuf, t.actOffsets[i])

	ag.critic1.Forward(s.jointCur)
	// dPLoss/dQ = -1/B for pLoss = -mean(Q).
	s.qGrad.Fill(-1 / float64(b))
	ag.critic1.ZeroGrads()
	gradIn := ag.critic1.Backward(s.qGrad)
	tensor.SliceCols(s.gradProbs, gradIn, t.actOffsets[i], t.actOffsets[i]+t.actDim)
	nn.SoftmaxBackwardRows(s.gradLogits, s.probsBuf, s.gradProbs)
	// Logit regularizer: +1e-3 · mean(logits²).
	regScale := 1e-3 * 2 / float64(len(logits.Data))
	for k := range s.gradLogits.Data {
		s.gradLogits.Data[k] += regScale * logits.Data[k]
	}
	ag.actor.ZeroGrads()
	ag.actor.Backward(s.gradLogits)
	ag.actor.ClipGradients(t.cfg.ClipNorm)
	ag.actorOpt.Step()
	// The critic's parameter gradients from this pass are discarded; clear
	// them so nothing leaks into the next critic step.
	ag.critic1.ZeroGrads()
}
