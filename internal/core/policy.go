package core

import "marlperf/internal/nn"

// ActorNetworks returns every agent's live (online) actor network in agent
// order. The learner publishes these through policysync at its configured
// cadence; callers must treat them as read-only and must not forward them
// concurrently with an in-flight update stage (marl-train serializes publish
// with the step loop, so this never overlaps).
func (t *Trainer) ActorNetworks() []*nn.Network {
	nets := make([]*nn.Network, t.n)
	for i, ag := range t.agents {
		nets[i] = ag.actor
	}
	return nets
}
