package core

import (
	"bytes"
	"math"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/profiler"
)

// Cross-feature integration tests: combinations of algorithm, sampler,
// layout and environment that users can legitimately compose.

func TestMATD3WithKVLayoutAndLocality(t *testing.T) {
	cfg := smallConfig(MATD3)
	cfg.UseKVLayout = true
	cfg.Sampler = SamplerLocality
	cfg.Neighbors, cfg.Refs = 8, 4
	tr, err := NewTrainer(cfg, mpe.NewPredatorPrey(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		tr.Step()
	}
	if tr.UpdateCount() == 0 {
		t.Fatal("no updates ran")
	}
	if tr.Profile().Duration(profiler.PhaseLayoutReorg) == 0 {
		t.Fatal("KV maintenance not recorded")
	}
	for _, p := range tr.agents[0].critic2.Params() {
		for _, v := range p.Data {
			if math.IsNaN(v) {
				t.Fatal("NaN in twin critic after combined training")
			}
		}
	}
}

func TestIPSamplerWithMATD3OnDeception(t *testing.T) {
	cfg := smallConfig(MATD3)
	cfg.Sampler = SamplerIPLocality
	cfg.ISBeta = 1
	tr, err := NewTrainer(cfg, mpe.NewPhysicalDeception(2))
	if err != nil {
		t.Fatal(err)
	}
	tr.RunEpisodes(3, func(ep int, reward float64) {
		if math.IsNaN(reward) {
			t.Fatalf("NaN reward at episode %d", ep)
		}
	})
	if tr.UpdateCount() == 0 {
		t.Fatal("no updates ran")
	}
}

func TestCheckpointAcrossKVLayoutConfigs(t *testing.T) {
	// A checkpoint from a baseline-layout trainer must restore into a
	// KV-layout trainer (layout is storage, not learned state).
	src := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(MADDPG)
	cfg.UseKVLayout = true
	dst, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst.Warmup(40)
	dst.UpdateAllTrainers() // must run cleanly on the KV path
}

func TestEvaluateOnAllScenarios(t *testing.T) {
	for _, env := range []mpe.Env{
		mpe.NewPredatorPrey(2),
		mpe.NewCooperativeNavigation(2),
		mpe.NewPhysicalDeception(2),
	} {
		tr, err := NewTrainer(smallConfig(MADDPG), env)
		if err != nil {
			t.Fatalf("%s: %v", env.Name(), err)
		}
		r := tr.Evaluate(2)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("%s: Evaluate returned %v", env.Name(), r)
		}
	}
}

func TestRewardCurveIsDeterministicPerSeedAcrossSamplers(t *testing.T) {
	// Different samplers consume the RNG differently, so trajectories
	// diverge across samplers — but each sampler must be reproducible.
	for _, s := range []SamplerKind{SamplerUniform, SamplerPER, SamplerIPLocality, SamplerRankPER} {
		run := func() float64 {
			cfg := smallConfig(MADDPG)
			cfg.Sampler = s
			tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
			if err != nil {
				t.Fatal(err)
			}
			tr.RunEpisodes(3, nil)
			return tr.LastEpisodeReward()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("sampler %v not reproducible: %v vs %v", s, a, b)
		}
	}
}
