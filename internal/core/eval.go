package core

import (
	"marlperf/internal/tensor"
)

// Evaluate runs n greedy episodes (argmax actions, no Gumbel exploration,
// no training, no replay writes) and returns the mean episode reward
// (summed per episode, averaged over agents and episodes). It resets the
// environment first and leaves it reset afterwards, so interleaving
// evaluation with training perturbs only the environment state, never the
// learned parameters or the replay buffer.
func (t *Trainer) Evaluate(n int) float64 {
	if n < 1 {
		return 0
	}
	obs := t.env.Reset(t.rng)
	obsRow := tensor.New(1, 0)
	actions := make([]int, t.n)
	var total float64
	for ep := 0; ep < n; ep++ {
		var epReward float64
		for step := 0; step < t.cfg.MaxEpisodeLen; step++ {
			for i := 0; i < t.n; i++ {
				obsRow.Rows, obsRow.Cols, obsRow.Data = 1, t.obsDims[i], obs[i]
				logits := t.agents[i].actor.Forward(obsRow)
				actions[i] = tensor.ArgMax(logits.Row(0))
			}
			var rewards []float64
			obs, rewards = t.env.Step(actions)
			var mean float64
			for _, r := range rewards {
				mean += r
			}
			epReward += mean / float64(t.n)
		}
		total += epReward
		obs = t.env.Reset(t.rng)
	}
	// Restore the trainer's own observation pointer: training continues
	// from the freshly reset environment.
	t.obs = obs
	t.epStep = 0
	t.epRewardSum = 0
	return total / float64(n)
}
