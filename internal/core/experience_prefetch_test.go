package core

// Acceptance tests for the prefetch overlap path: -prefetch is a pure
// timing optimization. A remote-fed training run with prefetching on must
// produce checkpoints bit-identical to one with it off, for any update
// worker count, and even when every HTTP exchange rides through injected
// network faults that delay or drop (but never lose) committed data.

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"marlperf/internal/expserve"
	"marlperf/internal/expstore"
	"marlperf/internal/faultnet"
	"marlperf/internal/mpe"
	"marlperf/internal/telemetry"
)

// runRemoteTrainer spins up a fresh in-memory experience server and trains
// episodes against it, optionally through a fault injector and optionally
// with the prefetch source wrapped in. Returns the checkpoint witness and
// the prefetch registry (nil when prefetch is off).
func runRemoteTrainer(t *testing.T, cfg Config, prefetch bool, inj *faultnet.Injector, episodes int) ([]byte, *telemetry.Registry) {
	t.Helper()
	env := mpe.NewCooperativeNavigation(2)
	spec := expSpec(cfg, env)
	plan, err := cfg.SamplePlan()
	if err != nil {
		t.Fatal(err)
	}
	store := expstore.NewRing(spec)
	srv, err := expserve.NewServer(expserve.ServerConfig{Provider: store, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()
	opts := expserve.ClientOptions{
		Timeout:          10 * time.Second,
		Attempts:         12,
		BaseDelay:        time.Millisecond,
		MaxDelay:         5 * time.Millisecond,
		JitterSeed:       1,
		BreakerThreshold: -1,
		Conns:            4,
	}
	if inj != nil {
		opts.Transport = inj.RoundTripper("learner→replay", nil)
	}
	client := expserve.NewClient(hs.URL, opts)
	src, err := expserve.NewRemoteSource(client, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := expserve.NewRemoteSink(client, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	var reg *telemetry.Registry
	if prefetch {
		reg = telemetry.NewRegistry()
		pf := expserve.NewPrefetchSource(src, 4, reg)
		if inj != nil {
			// Under injected delays, force the timeout-fallback path to
			// fire too: late prefetches must degrade to sync fetches, not
			// stalls or wrong bytes.
			pf.SyncAfter = time.Millisecond
		}
		ckpt, tr := runServiceTrainer(t, cfg, pf, sink, episodes)
		tr.Close()
		return ckpt, reg
	}
	ckpt, tr := runServiceTrainer(t, cfg, src, sink, episodes)
	tr.Close()
	return ckpt, nil
}

// Prefetch on vs off, serial and parallel update engines: four runs, one
// checkpoint.
func TestRemoteExperiencePrefetchBitIdentical(t *testing.T) {
	base := expConfig(SamplerLocality)
	var ckpts [][]byte
	var regs []*telemetry.Registry
	for _, workers := range []int{1, 3} {
		for _, prefetch := range []bool{false, true} {
			cfg := base
			cfg.UpdateWorkers = workers
			ckpt, reg := runRemoteTrainer(t, cfg, prefetch, nil, 3)
			ckpts = append(ckpts, ckpt)
			regs = append(regs, reg)
		}
	}
	for i := 1; i < len(ckpts); i++ {
		if !bytes.Equal(ckpts[0], ckpts[i]) {
			t.Fatalf("checkpoint %d diverged from baseline: prefetch must be bit-invisible", i)
		}
	}
	// The prefetch runs must actually have prefetched (the test would be
	// vacuous if every sample quietly missed).
	for i, reg := range regs {
		if reg == nil {
			continue
		}
		if hits := reg.Counter("marl_exp_prefetch_hit_total").Value(); hits == 0 {
			t.Fatalf("run %d: prefetch never hit; overlap was never exercised", i)
		}
	}
}

// The same contract through a lossy, slow wire: delayed prefetches fall
// back to synchronous fetches, and the checkpoint still matches the
// fault-free prefetch-off baseline bit for bit — no duplicate or skipped
// seeds anywhere in the pipeline.
func TestRemoteExperiencePrefetchBitIdenticalUnderFaults(t *testing.T) {
	cfg := expConfig(SamplerLocality)
	clean, _ := runRemoteTrainer(t, cfg, false, nil, 3)

	inj := faultnet.New(99)
	if err := inj.SetRule("learner→replay", faultnet.Rule{Drop: 0.08, Error: 0.08, Delay: 500 * time.Microsecond, DelayProb: 0.4}); err != nil {
		t.Fatal(err)
	}
	faulted, reg := runRemoteTrainer(t, cfg, true, inj, 3)

	if c := inj.Counts("learner→replay"); c.Dropped == 0 && c.Errored == 0 {
		t.Fatalf("fault injection never fired (%+v); the run proved nothing", c)
	}
	if !bytes.Equal(clean, faulted) {
		t.Fatalf("prefetch training through a faulty transport diverged (%d vs %d bytes)", len(clean), len(faulted))
	}
	hits := reg.Counter("marl_exp_prefetch_hit_total").Value()
	misses := reg.Counter("marl_exp_prefetch_miss_total").Value()
	if hits+misses == 0 {
		t.Fatal("no samples observed through the prefetch source")
	}
}
