package core

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Run state is the small non-checkpoint remainder a resumable run needs:
// the RNG continuation seed. Progress counters travel in the checkpoint;
// experience travels in the replay buffer; this section makes the restored
// exploration stream deterministic instead of wall-clock dependent.
//
// Format (little-endian): magic "MRUN" | uint32 version | uint64 seed.
// Integrity is the enclosing snapshot's job (resilience.WriteSnapshot CRCs
// every section), so the payload carries no trailer of its own.

const (
	runStateMagic   = "MRUN"
	runStateVersion = 1
)

// SaveRunState writes the run-state section. It draws the continuation
// seed from the live RNG stream (advancing it by one value), so every save
// point yields a distinct, deterministic future.
func (t *Trainer) SaveRunState(w io.Writer) error {
	if _, err := w.Write([]byte(runStateMagic)); err != nil {
		return err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], runStateVersion)
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(t.rng.Int63()))
	_, err := w.Write(seed[:])
	return err
}

// LoadRunState restores the section written by SaveRunState, reseeding the
// trainer's RNG with the recorded continuation seed.
func (t *Trainer) LoadRunState(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("core: reading run-state magic: %w", err)
	}
	if string(magic[:]) != runStateMagic {
		return fmt.Errorf("core: bad run-state magic %q", magic)
	}
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("core: reading run-state version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(b[:]); v != runStateVersion {
		return fmt.Errorf("core: run-state version %d, want %d", v, runStateVersion)
	}
	var seed [8]byte
	if _, err := io.ReadFull(r, seed[:]); err != nil {
		return fmt.Errorf("core: reading run-state seed: %w", err)
	}
	t.ReseedRNG(int64(binary.LittleEndian.Uint64(seed[:])))
	return nil
}
