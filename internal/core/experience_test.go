package core

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"marlperf/internal/expserve"
	"marlperf/internal/expstore"
	"marlperf/internal/faultnet"
	"marlperf/internal/mpe"
	"marlperf/internal/replay"
)

func expConfig(sampler SamplerKind) Config {
	cfg := DefaultConfig(MADDPG)
	cfg.BatchSize = 32
	cfg.BufferCapacity = 512
	cfg.UpdateEvery = 20
	cfg.HiddenSize = 16
	cfg.MaxEpisodeLen = 25
	cfg.Sampler = sampler
	cfg.Neighbors = 8
	cfg.Refs = 4
	cfg.UpdateWorkers = 1
	cfg.Seed = 21
	return cfg
}

func expSpec(cfg Config, env mpe.Env) replay.Spec {
	return replay.Spec{
		NumAgents: env.NumAgents(),
		ObsDims:   env.ObsDims(),
		ActDim:    env.NumActions(),
		Capacity:  cfg.BufferCapacity,
	}
}

// runServiceTrainer trains episodes episodes against the given experience
// source/sink and returns the final checkpoint bytes (weights, optimizer
// state, RNG streams — the full bit-identity witness).
func runServiceTrainer(t *testing.T, cfg Config, src replay.TransitionSource, sink replay.TransitionSink, episodes int) ([]byte, *Trainer) {
	t.Helper()
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetExperienceService(src, sink); err != nil {
		t.Fatal(err)
	}
	for completed := 0; completed < episodes; {
		done, err := tr.StepE()
		if err != nil {
			t.Fatalf("StepE: %v", err)
		}
		if done {
			completed++
		}
	}
	return checkpointBytes(t, tr), tr
}

// The single-actor fixed-seed determinism contract of the actor/learner
// split: a trainer feeding and sampling a REMOTE experience service (real
// HTTP server, segment-packed store on disk) must train bit-identically to
// one wired to a local in-process store — same insertion order, same
// per-batch seeds, same plan, therefore the same batches and the same
// weights.
func TestRemoteExperienceTrainingMatchesLocal(t *testing.T) {
	for _, sampler := range []SamplerKind{SamplerUniform, SamplerLocality} {
		t.Run(sampler.String(), func(t *testing.T) {
			cfg := expConfig(sampler)
			env := mpe.NewCooperativeNavigation(2)
			spec := expSpec(cfg, env)
			plan, err := cfg.SamplePlan()
			if err != nil {
				t.Fatal(err)
			}

			// Local: in-process ring store.
			localSrc, err := expstore.NewSource(expstore.NewRing(spec), plan)
			if err != nil {
				t.Fatal(err)
			}
			localCkpt, localTr := runServiceTrainer(t, cfg, localSrc, localSrc, 4)
			defer localTr.Close()

			// Remote: persistent segment store behind a real HTTP server.
			store, err := expstore.Open(t.TempDir(), spec, expstore.Options{SegmentRows: 128})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			srv, err := expserve.NewServer(expserve.ServerConfig{Provider: store, Spec: spec})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			defer func() { hs.Close(); srv.Close() }()
			client := expserve.NewClient(hs.URL, expserve.ClientOptions{Timeout: 10 * time.Second, JitterSeed: 1})
			remoteSrc, err := expserve.NewRemoteSource(client, spec, plan)
			if err != nil {
				t.Fatal(err)
			}
			remoteSink, err := expserve.NewRemoteSink(client, "actor-0", spec)
			if err != nil {
				t.Fatal(err)
			}
			remoteCkpt, remoteTr := runServiceTrainer(t, cfg, remoteSrc, remoteSink, 4)
			defer remoteTr.Close()

			if localTr.UpdateCount() == 0 {
				t.Fatal("no updates ran; the determinism check is vacuous")
			}
			if localTr.UpdateCount() != remoteTr.UpdateCount() {
				t.Fatalf("update counts diverge: local %d, remote %d", localTr.UpdateCount(), remoteTr.UpdateCount())
			}
			if !bytes.Equal(localCkpt, remoteCkpt) {
				t.Fatalf("remote-fed training diverged from local: checkpoints differ (%d vs %d bytes)", len(localCkpt), len(remoteCkpt))
			}
		})
	}
}

// The determinism contract must hold across the parallel update engine too:
// worker count is a pure throughput knob in service mode exactly as it is
// locally.
func TestRemoteExperienceDeterministicAcrossWorkers(t *testing.T) {
	cfg := expConfig(SamplerLocality)
	env := mpe.NewCooperativeNavigation(2)
	spec := expSpec(cfg, env)
	plan, err := cfg.SamplePlan()
	if err != nil {
		t.Fatal(err)
	}
	var ckpts [][]byte
	for _, workers := range []int{1, 3} {
		c := cfg
		c.UpdateWorkers = workers
		src, err := expstore.NewSource(expstore.NewRing(spec), plan)
		if err != nil {
			t.Fatal(err)
		}
		ckpt, tr := runServiceTrainer(t, c, src, src, 3)
		tr.Close()
		ckpts = append(ckpts, ckpt)
	}
	if !bytes.Equal(ckpts[0], ckpts[1]) {
		t.Fatal("experience-service training differs across UpdateWorkers")
	}
}

func TestSetExperienceServiceRejectsStatefulSamplers(t *testing.T) {
	cfg := expConfig(SamplerPER)
	env := mpe.NewCooperativeNavigation(2)
	tr, err := NewTrainer(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := expSpec(cfg, env)
	src, err := expstore.NewSource(expstore.NewRing(spec), replay.SamplePlan{Strategy: replay.PlanUniform})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetExperienceService(src, src); err == nil {
		t.Fatal("PER sampler accepted with an experience source")
	}
}

func TestSetExperienceServiceRejectsMidRun(t *testing.T) {
	cfg := expConfig(SamplerUniform)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Warmup(3)
	spec := expSpec(cfg, mpe.NewCooperativeNavigation(2))
	src, err := expstore.NewSource(expstore.NewRing(spec), replay.SamplePlan{Strategy: replay.PlanUniform})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetExperienceService(src, src); err == nil {
		t.Fatal("rewiring after training started was accepted")
	}
}

func TestConfigSamplePlanMapping(t *testing.T) {
	for _, c := range []struct {
		sampler SamplerKind
		ok      bool
	}{
		{SamplerUniform, true},
		{SamplerLocality, true},
		{SamplerPER, false},
		{SamplerIPLocality, false},
		{SamplerRankPER, false},
		{SamplerEpisodeLocality, false},
	} {
		cfg := expConfig(c.sampler)
		plan, err := cfg.SamplePlan()
		if (err == nil) != c.ok {
			t.Errorf("SamplePlan(%v) = %v, %v; want ok=%v", c.sampler, plan, err, c.ok)
		}
		if err == nil {
			if verr := plan.Validate(); verr != nil {
				t.Errorf("SamplePlan(%v) produced invalid plan: %v", c.sampler, verr)
			}
		}
	}
}

// StepE surfaces a broken service as an error, not a panic or a silent
// stall.
func TestStepESurfacesServiceFailure(t *testing.T) {
	cfg := expConfig(SamplerUniform)
	tr, err := NewTrainer(cfg, mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.SetExperienceService(brokenSource{}, nil); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < cfg.UpdateEvery+1 && sawErr == nil; i++ {
		_, sawErr = tr.StepE()
	}
	if sawErr == nil {
		t.Fatal("broken experience service never surfaced an error")
	}
}

type brokenSource struct{}

func (brokenSource) Len() (int, error) { return 0, fmt.Errorf("service unreachable") }
func (brokenSource) SampleBatch(int, int64, []*replay.AgentBatch) ([]int, error) {
	return nil, fmt.Errorf("service unreachable")
}

// The chaos-mode acceptance criterion, proven in-process: a full training
// run whose every HTTP exchange with the experience service rides through
// injected drops, 5xx answers and delays must produce a checkpoint
// bit-identical to the fault-free run. Faults that only delay (never lose)
// committed data cost wall-clock, never bits.
func TestRemoteTrainingBitIdenticalUnderInjectedFaults(t *testing.T) {
	cfg := expConfig(SamplerLocality)
	env := mpe.NewCooperativeNavigation(2)
	spec := expSpec(cfg, env)
	plan, err := cfg.SamplePlan()
	if err != nil {
		t.Fatal(err)
	}

	run := func(inj *faultnet.Injector) []byte {
		t.Helper()
		store := expstore.NewRing(spec)
		srv, err := expserve.NewServer(expserve.ServerConfig{Provider: store, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		defer func() { hs.Close(); srv.Close() }()
		opts := expserve.ClientOptions{
			Timeout:    10 * time.Second,
			Attempts:   12,
			BaseDelay:  time.Millisecond,
			MaxDelay:   5 * time.Millisecond,
			JitterSeed: 1,
			// Never fail fast: the run must ride every injected fault out.
			BreakerThreshold: -1,
		}
		if inj != nil {
			opts.Transport = inj.RoundTripper("actor→replay", nil)
		}
		client := expserve.NewClient(hs.URL, opts)
		src, err := expserve.NewRemoteSource(client, spec, plan)
		if err != nil {
			t.Fatal(err)
		}
		sink, err := expserve.NewRemoteSink(client, "actor-0", spec)
		if err != nil {
			t.Fatal(err)
		}
		ckpt, tr := runServiceTrainer(t, cfg, src, sink, 3)
		tr.Close()
		return ckpt
	}

	clean := run(nil)

	inj := faultnet.New(99)
	if err := inj.SetRule("actor→replay", faultnet.Rule{Drop: 0.08, Error: 0.08, Delay: 200 * time.Microsecond, DelayProb: 0.25}); err != nil {
		t.Fatal(err)
	}
	faulted := run(inj)

	if c := inj.Counts("actor→replay"); c.Dropped == 0 && c.Errored == 0 {
		t.Fatalf("fault injection never fired (%+v); the run proved nothing", c)
	}
	if !bytes.Equal(clean, faulted) {
		t.Fatalf("training through a faulty transport diverged: checkpoints differ (%d vs %d bytes)", len(clean), len(faulted))
	}
}
