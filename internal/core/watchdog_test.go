package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/profiler"
	"marlperf/internal/replay"
	"marlperf/internal/tensor"
)

func TestHealthyDetectsPoisonedParams(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	if err := tr.Healthy(); err != nil {
		t.Fatalf("trained trainer unhealthy: %v", err)
	}
	tr.agents[1].critic1.Params()[0].Data[3] = math.NaN()
	err := tr.Healthy()
	if err == nil || !strings.Contains(err.Error(), "agent 1 critic1") {
		t.Fatalf("Healthy = %v, want agent 1 critic1 complaint", err)
	}
}

func TestHealthyDetectsNonFiniteTD(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	tr.lastTDMean = math.Inf(1)
	if err := tr.Healthy(); err == nil || !strings.Contains(err.Error(), "TD") {
		t.Fatalf("Healthy = %v, want TD complaint", err)
	}
}

func TestWatchdogRollsBackOnNaN(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	wd, err := NewWatchdog(tr, WatchdogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	goodParam := tr.agents[0].actor.Params()[0].Clone()

	// A few healthy observations refresh the snapshot and report nothing.
	for i := 0; i < 3; i++ {
		tr.Warmup(25)
		if ev, err := wd.Observe(); err != nil || ev != nil {
			t.Fatalf("healthy Observe: ev=%v err=%v", ev, err)
		}
	}
	goodSteps := tr.TotalSteps()
	goodParam = tr.agents[0].actor.Params()[0].Clone()

	// Inject divergence: poison an actor parameter, as an exploded P-loss
	// gradient would.
	tr.agents[0].actor.Params()[0].Data[0] = math.NaN()
	tr.Warmup(25)
	ev, err := wd.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Reason == nil {
		t.Fatal("divergence not recovered")
	}
	if wd.Rollbacks() != 1 {
		t.Fatalf("Rollbacks = %d, want 1", wd.Rollbacks())
	}
	if !tensor.ApproxEqual(tr.agents[0].actor.Params()[0], goodParam, 0) {
		t.Fatal("rollback did not restore the last good parameters")
	}
	if tr.TotalSteps() != goodSteps {
		t.Fatalf("rollback restored %d steps, want %d", tr.TotalSteps(), goodSteps)
	}
	if err := tr.Healthy(); err != nil {
		t.Fatalf("trainer unhealthy after rollback: %v", err)
	}
	if got := tr.Profile().EventCount(profiler.EventWatchdogRollback); got != 1 {
		t.Fatalf("profiler rollback count = %d, want 1", got)
	}

	// The run continues to completion with finite rewards.
	finite := true
	tr.RunEpisodes(4, func(ep int, reward float64) {
		if math.IsNaN(reward) || math.IsInf(reward, 0) {
			finite = false
		}
	})
	if !finite {
		t.Fatal("post-recovery episodes produced non-finite rewards")
	}
	if _, err := wd.Observe(); err != nil {
		t.Fatal(err)
	}
}

func TestInteractSanitizesDivergedActions(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	// Poison agent 0's actor so its logits (and Gumbel-softmax probs) go NaN.
	for _, p := range tr.agents[0].actor.Params() {
		for i := range p.Data {
			p.Data[i] = math.NaN()
		}
	}
	before := tr.buf.Len()
	tr.Warmup(20)
	if tr.buf.Len() <= before {
		t.Fatal("warmup added no transitions")
	}
	n := tr.buf.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	dst := make([]*replay.AgentBatch, tr.n)
	for a := 0; a < tr.n; a++ {
		dst[a] = replay.NewAgentBatch(n, tr.obsDims[a], tr.actDim)
	}
	tr.buf.GatherAll(idx, dst)
	for a, b := range dst {
		if !finiteSlice(b.Act.Data) {
			t.Fatalf("agent %d: non-finite action row reached the replay buffer", a)
		}
		if !finiteSlice(b.Obs.Data) {
			t.Fatalf("agent %d: non-finite obs row reached the replay buffer", a)
		}
	}
	if got := tr.Profile().EventCount(profiler.EventActionSanitized); got == 0 {
		t.Fatal("no action-sanitized events recorded")
	}
}

func TestWatchdogExhaustsRollbackBudget(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	wd, err := NewWatchdog(tr, WatchdogConfig{MaxRollbacks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		tr.agents[0].actor.Params()[0].Data[0] = math.NaN()
		if _, err := wd.Observe(); err != nil {
			t.Fatalf("rollback %d: %v", i+1, err)
		}
	}
	tr.agents[0].actor.Params()[0].Data[0] = math.NaN()
	if _, err := wd.Observe(); err == nil {
		t.Fatal("third divergence should exhaust the budget")
	}
}

func TestWatchdogDetectsStall(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	wd, err := NewWatchdog(tr, WatchdogConfig{StallSteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a stuck env loop: steps accumulate, episodeCount frozen.
	wd.stepsAtEpisode = tr.totalSteps - 100
	ev, err := wd.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || !strings.Contains(ev.Reason.Error(), "stall") {
		t.Fatalf("stall not detected: %v", ev)
	}
	if got := tr.Profile().EventCount(profiler.EventWatchdogStall); got != 1 {
		t.Fatalf("stall event count = %d, want 1", got)
	}
}

func TestWatchdogRefusesUnhealthyStart(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	tr.agents[0].actor.Params()[0].Data[0] = math.NaN()
	if _, err := NewWatchdog(tr, WatchdogConfig{}); err == nil {
		t.Fatal("watchdog accepted an already-poisoned trainer")
	}
}

func TestRunStateRoundTripReseedsDeterministically(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	var buf bytes.Buffer
	if err := tr.SaveRunState(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	other, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadRunState(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	again, err := NewTrainer(smallConfig(MADDPG), mpe.NewCooperativeNavigation(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := again.LoadRunState(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if a, b := other.rng.Int63(), again.rng.Int63(); a != b {
			t.Fatalf("restored RNG streams diverge at draw %d: %d != %d", i, a, b)
		}
	}
}

func TestLoadRunStateRejectsGarbage(t *testing.T) {
	tr := trainedTrainer(t, MADDPG)
	if err := tr.LoadRunState(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage run state accepted")
	}
	if err := tr.LoadRunState(strings.NewReader("MRUNxxxxyyyyzzzz")); err == nil {
		t.Fatal("bad version accepted")
	}
}
