package core

import (
	"bytes"
	"fmt"
	"math"

	"marlperf/internal/nn"
	"marlperf/internal/profiler"
)

// Healthy reports nil when the trainer's numerical state is finite: the
// most recent mean |TD error| and every parameter of every network. A NaN
// or Inf anywhere means the run is training on poisoned weights and every
// further update is wasted — the watchdog rolls back instead.
func (t *Trainer) Healthy() error {
	if t.updateCount > 0 && !isFinite(t.lastTDMean) {
		return fmt.Errorf("core: mean |TD error| is %v after update %d", t.lastTDMean, t.updateCount)
	}
	for i, ag := range t.agents {
		nets := []struct {
			name string
			net  *nn.Network
		}{
			{"actor", ag.actor}, {"target-actor", ag.targetActor},
			{"critic1", ag.critic1}, {"target-critic1", ag.targetCritic1},
			{"critic2", ag.critic2}, {"target-critic2", ag.targetCritic2},
		}
		for _, n := range nets {
			if n.net == nil {
				continue
			}
			for pi, p := range n.net.Params() {
				for _, v := range p.Data {
					if !isFinite(v) {
						return fmt.Errorf("core: agent %d %s param %d contains %v", i, n.name, pi, v)
					}
				}
			}
		}
	}
	return nil
}

// LastTDMean returns the mean |TD error| of the most recent critic update.
func (t *Trainer) LastTDMean() float64 { return t.lastTDMean }

// ReseedRNG replaces the trainer's RNG stream and the derived per-agent
// update streams. The watchdog uses this after a rollback so a divergence
// caused by an unlucky noise draw is not replayed deterministically.
func (t *Trainer) ReseedRNG(seed int64) {
	t.rng.Seed(seed)
	for i, rng := range t.agentRNGs {
		rng.Seed(agentStreamSeed(seed, i))
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteSlice(vs []float64) bool {
	for _, v := range vs {
		if !isFinite(v) {
			return false
		}
	}
	return true
}

// WatchdogConfig tunes divergence detection and recovery.
type WatchdogConfig struct {
	// CheckEvery is how many healthy Observe calls pass between snapshot
	// refreshes (default 1: every healthy observation becomes the new
	// rollback target).
	CheckEvery int
	// StallSteps is how many env steps may pass without a completed
	// episode before the run counts as stalled (default 10 episodes'
	// worth of steps).
	StallSteps int
	// MaxRollbacks bounds recovery attempts; past it the watchdog reports
	// an error instead of looping on a deterministic divergence (default 8).
	MaxRollbacks int
}

// RecoveryEvent describes one watchdog intervention.
type RecoveryEvent struct {
	Reason  error // what Healthy (or the stall detector) found
	Episode int   // episode count restored by the rollback
}

// Watchdog guards a training run against numerical divergence and stalls.
// The caller invokes Observe at episode boundaries; the watchdog keeps an
// in-memory copy of the last known-good checkpoint and, when the trainer
// goes non-finite or stops completing episodes, restores it — continuing
// from the last good weights instead of training on poison. Recoveries are
// counted through the trainer's profiler events.
type Watchdog struct {
	tr  *Trainer
	cfg WatchdogConfig

	good        []byte // serialized last-good checkpoint
	goodEpisode int
	healthySeen int

	stepsAtEpisode int // totalSteps when episodeCount last advanced
	lastEpisode    int

	rollbacks int
}

// NewWatchdog builds a watchdog over tr, capturing the current (healthy)
// state as the first rollback target.
func NewWatchdog(tr *Trainer, cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.CheckEvery < 1 {
		cfg.CheckEvery = 1
	}
	if cfg.StallSteps < 1 {
		cfg.StallSteps = 10 * tr.cfg.MaxEpisodeLen
	}
	if cfg.MaxRollbacks < 1 {
		cfg.MaxRollbacks = 8
	}
	w := &Watchdog{
		tr:             tr,
		cfg:            cfg,
		lastEpisode:    tr.episodeCount,
		stepsAtEpisode: tr.totalSteps,
	}
	if err := tr.Healthy(); err != nil {
		return nil, fmt.Errorf("core: watchdog started on unhealthy trainer: %w", err)
	}
	if err := w.capture(); err != nil {
		return nil, err
	}
	return w, nil
}

// Rollbacks returns how many times the watchdog has restored a snapshot.
func (w *Watchdog) Rollbacks() int { return w.rollbacks }

// capture refreshes the in-memory rollback target from the live trainer.
func (w *Watchdog) capture() error {
	var buf bytes.Buffer
	if err := w.tr.SaveCheckpoint(&buf); err != nil {
		return fmt.Errorf("core: watchdog snapshot: %w", err)
	}
	w.good = buf.Bytes()
	w.goodEpisode = w.tr.episodeCount
	return nil
}

// Observe checks the trainer and recovers if it has diverged or stalled.
// It returns a non-nil RecoveryEvent when a rollback happened, and an error
// only when recovery itself is impossible (rollback budget exhausted, or
// the restore failed).
func (w *Watchdog) Observe() (*RecoveryEvent, error) {
	unhealthy := w.tr.Healthy()
	if unhealthy == nil {
		if stalled := w.checkStall(); stalled != nil {
			w.tr.prof.Event(profiler.EventWatchdogStall, 1)
			unhealthy = stalled
		}
	}
	if unhealthy == nil {
		w.healthySeen++
		if w.healthySeen >= w.cfg.CheckEvery {
			w.healthySeen = 0
			if err := w.capture(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if w.rollbacks >= w.cfg.MaxRollbacks {
		return nil, fmt.Errorf("core: watchdog exhausted %d rollbacks, run keeps diverging: %w",
			w.rollbacks, unhealthy)
	}
	if err := w.tr.LoadCheckpoint(bytes.NewReader(w.good)); err != nil {
		return nil, fmt.Errorf("core: watchdog rollback failed: %w", err)
	}
	w.rollbacks++
	// Perturb the exploration stream so an unlucky noise draw is not
	// replayed into the same divergence.
	w.tr.ReseedRNG(w.tr.cfg.Seed + int64(w.rollbacks)*7919)
	w.lastEpisode = w.tr.episodeCount
	w.stepsAtEpisode = w.tr.totalSteps
	w.healthySeen = 0
	w.tr.prof.Event(profiler.EventWatchdogRollback, 1)
	return &RecoveryEvent{Reason: unhealthy, Episode: w.goodEpisode}, nil
}

// checkStall reports an error when env steps keep accumulating with no
// completed episode.
func (w *Watchdog) checkStall() error {
	if w.tr.episodeCount > w.lastEpisode {
		w.lastEpisode = w.tr.episodeCount
		w.stepsAtEpisode = w.tr.totalSteps
		return nil
	}
	if advanced := w.tr.totalSteps - w.stepsAtEpisode; advanced > w.cfg.StallSteps {
		return fmt.Errorf("core: %d env steps without a completed episode (stall threshold %d)",
			advanced, w.cfg.StallSteps)
	}
	return nil
}
