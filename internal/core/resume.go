package core

import (
	"fmt"

	"marlperf/internal/replay"
)

// RestoreExperience replays every transition stored in src (oldest first)
// through the trainer's live replay path. Re-Adding — instead of swapping
// the buffer pointer — keeps the sampler listeners registered at NewTrainer
// time attached and re-derives their state (priority trees, episode runs),
// and rebuilds the optional key-value table alongside. src typically comes
// from replay.ReadBuffer over a snapshot's replay section.
func (t *Trainer) RestoreExperience(src *replay.Buffer) error {
	want, got := t.buf.Spec(), src.Spec()
	if got.NumAgents != want.NumAgents || got.ActDim != want.ActDim {
		return fmt.Errorf("core: restored buffer shape %d agents × act %d, trainer wants %d × %d",
			got.NumAgents, got.ActDim, want.NumAgents, want.ActDim)
	}
	for a, od := range want.ObsDims {
		if got.ObsDims[a] != od {
			return fmt.Errorf("core: restored buffer agent %d obs dim %d, trainer wants %d",
				a, got.ObsDims[a], od)
		}
	}
	obs := make([][]float64, t.n)
	act := make([][]float64, t.n)
	nextObs := make([][]float64, t.n)
	rew := make([]float64, t.n)
	done := make([]float64, t.n)
	for a := 0; a < t.n; a++ {
		obs[a] = make([]float64, want.ObsDims[a])
		nextObs[a] = make([]float64, want.ObsDims[a])
		act[a] = make([]float64, want.ActDim)
	}
	for _, idx := range src.InsertionOrder() {
		src.CopyTransition(idx, obs, act, rew, nextObs, done)
		t.buf.Add(obs, act, rew, nextObs, done)
		if t.kv != nil {
			t.kv.Add(obs, act, rew, nextObs, done)
		}
	}
	return nil
}
