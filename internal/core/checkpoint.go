package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"marlperf/internal/nn"
)

// Checkpoint format: magic "MARL" | uint32 version | uint8 algorithm |
// uint32 numAgents | per agent: actor, target actor, critic1, target
// critic1, (MATD3: critic2, target critic2) networks, then actor and
// critic optimizers | uint64 totalSteps, updateCount, episodeCount.
// The replay buffer and RNG stream are not serialized: a restored trainer
// resumes learning from fresh experience with the learned parameters.

const (
	checkpointMagic   = "MARL"
	checkpointVersion = 1
)

// SaveCheckpoint writes the trainer's learned state (all networks,
// optimizer moments, progress counters).
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], checkpointVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(t.cfg.Algorithm)}); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(t.n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, ag := range t.agents {
		nets := []*nn.Network{ag.actor, ag.targetActor, ag.critic1, ag.targetCritic1}
		if ag.critic2 != nil {
			nets = append(nets, ag.critic2, ag.targetCritic2)
		}
		for _, net := range nets {
			if _, err := net.WriteTo(w); err != nil {
				return err
			}
		}
		opts := []*nn.Adam{ag.actorOpt, ag.critic1Opt}
		if ag.critic2Opt != nil {
			opts = append(opts, ag.critic2Opt)
		}
		for _, opt := range opts {
			if _, err := opt.WriteTo(w); err != nil {
				return err
			}
		}
	}
	var cnt [8]byte
	for _, v := range []uint64{uint64(t.totalSteps), uint64(t.updateCount), uint64(t.episodeCount)} {
		binary.LittleEndian.PutUint64(cnt[:], v)
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint restores state written by SaveCheckpoint into a trainer
// built with the same algorithm, agent count and network architecture.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) != checkpointMagic {
		return fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if v := binary.LittleEndian.Uint32(hdr[:]); v != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", v, checkpointVersion)
	}
	var algo [1]byte
	if _, err := io.ReadFull(r, algo[:]); err != nil {
		return err
	}
	if Algorithm(algo[0]) != t.cfg.Algorithm {
		return fmt.Errorf("core: checkpoint algorithm %v, trainer has %v", Algorithm(algo[0]), t.cfg.Algorithm)
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if n := binary.LittleEndian.Uint32(hdr[:]); int(n) != t.n {
		return fmt.Errorf("core: checkpoint has %d agents, trainer has %d", n, t.n)
	}
	for _, ag := range t.agents {
		nets := []**nn.Network{&ag.actor, &ag.targetActor, &ag.critic1, &ag.targetCritic1}
		if ag.critic2 != nil {
			nets = append(nets, &ag.critic2, &ag.targetCritic2)
		}
		for _, slot := range nets {
			restored, err := nn.ReadNetwork(r)
			if err != nil {
				return err
			}
			if restored.NumParams() != (*slot).NumParams() {
				return fmt.Errorf("core: checkpoint network has %d params, trainer expects %d",
					restored.NumParams(), (*slot).NumParams())
			}
			nn.HardCopy(*slot, restored)
		}
		// Optimizers are re-bound to the in-place networks, then their
		// moment state is overwritten from the checkpoint.
		ag.actorOpt = nn.NewAdam(ag.actor, t.cfg.LR)
		ag.critic1Opt = nn.NewAdam(ag.critic1, t.cfg.LR)
		opts := []*nn.Adam{ag.actorOpt, ag.critic1Opt}
		if ag.critic2 != nil {
			ag.critic2Opt = nn.NewAdam(ag.critic2, t.cfg.LR)
			opts = append(opts, ag.critic2Opt)
		}
		for _, opt := range opts {
			if err := opt.ReadInto(r); err != nil {
				return err
			}
		}
	}
	var cnt [8]byte
	vals := make([]uint64, 3)
	for i := range vals {
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return err
		}
		vals[i] = binary.LittleEndian.Uint64(cnt[:])
	}
	t.totalSteps = int(vals[0])
	t.updateCount = int(vals[1])
	t.episodeCount = int(vals[2])
	return nil
}
