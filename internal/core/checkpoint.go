package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"marlperf/internal/nn"
	"marlperf/internal/resilience"
)

// Checkpoint format: magic "MARL" | uint32 version | uint8 algorithm |
// uint32 numAgents | per agent: actor, target actor, critic1, target
// critic1, (MATD3: critic2, target critic2) networks, then actor and
// critic optimizers | uint64 totalSteps, updateCount, episodeCount |
// (v2) uint32 CRC32-IEEE of every preceding byte.
// The replay buffer and RNG stream are not serialized: a restored trainer
// resumes learning from fresh experience with the learned parameters.
// Bundling those alongside the checkpoint is the resilience snapshot's job.
//
// Version history: v1 had no integrity trailer; v2 appends the CRC32 so
// truncated or bit-flipped checkpoints are rejected instead of partially
// loaded. v1 files are still read (without verification).

const (
	checkpointMagic   = "MARL"
	checkpointVersion = 2
)

// SaveCheckpoint writes the trainer's learned state (all networks,
// optimizer moments, progress counters) followed by a CRC32 trailer.
func (t *Trainer) SaveCheckpoint(dst io.Writer) error {
	w := resilience.NewCRCWriter(dst)
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], checkpointVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(t.cfg.Algorithm)}); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(t.n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, ag := range t.agents {
		nets := []*nn.Network{ag.actor, ag.targetActor, ag.critic1, ag.targetCritic1}
		if ag.critic2 != nil {
			nets = append(nets, ag.critic2, ag.targetCritic2)
		}
		for _, net := range nets {
			if _, err := net.WriteTo(w); err != nil {
				return err
			}
		}
		opts := []*nn.Adam{ag.actorOpt, ag.critic1Opt}
		if ag.critic2Opt != nil {
			opts = append(opts, ag.critic2Opt)
		}
		for _, opt := range opts {
			if _, err := opt.WriteTo(w); err != nil {
				return err
			}
		}
	}
	var cnt [8]byte
	for _, v := range []uint64{uint64(t.totalSteps), uint64(t.updateCount), uint64(t.episodeCount)} {
		binary.LittleEndian.PutUint64(cnt[:], v)
		if _, err := w.Write(cnt[:]); err != nil {
			return err
		}
	}
	return w.WriteTrailer()
}

// LoadCheckpoint restores state written by SaveCheckpoint into a trainer
// built with the same algorithm, agent count and network architecture. For
// v2 checkpoints the CRC32 trailer is verified over the whole stream before
// any trainer state is touched, so a truncated or bit-flipped file is
// rejected outright rather than partially loaded; v1 files (no trailer) are
// still accepted unverified.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) != checkpointMagic {
		return fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: reading checkpoint version: %w", err)
	}
	switch v := binary.LittleEndian.Uint32(hdr[:]); v {
	case 1:
		// Legacy trailer-less stream: parse directly.
		return t.loadCheckpointBody(r)
	case checkpointVersion:
		// Hash the body, verify the trailer, then parse from memory — no
		// trainer state changes before the checksum is known good.
		body, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("core: reading checkpoint: %w", err)
		}
		if len(body) < 4 {
			return fmt.Errorf("core: checkpoint truncated before checksum trailer")
		}
		trailer := binary.LittleEndian.Uint32(body[len(body)-4:])
		body = body[:len(body)-4]
		if got := checkpointCRC(magic[:], hdr[:], body); got != trailer {
			return fmt.Errorf("core: checkpoint checksum mismatch %08x != %08x (corrupt or truncated)", got, trailer)
		}
		return t.loadCheckpointBody(bytes.NewReader(body))
	default:
		return fmt.Errorf("core: checkpoint version %d, want ≤%d", v, checkpointVersion)
	}
}

// checkpointCRC recomputes the v2 trailer checksum over header and body.
func checkpointCRC(magic, version, body []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, magic)
	crc = crc32.Update(crc, crc32.IEEETable, version)
	return crc32.Update(crc, crc32.IEEETable, body)
}

// loadCheckpointBody parses everything after the magic and version fields.
func (t *Trainer) loadCheckpointBody(r io.Reader) error {
	var hdr [4]byte
	var algo [1]byte
	if _, err := io.ReadFull(r, algo[:]); err != nil {
		return err
	}
	if Algorithm(algo[0]) != t.cfg.Algorithm {
		return fmt.Errorf("core: checkpoint algorithm %v, trainer has %v", Algorithm(algo[0]), t.cfg.Algorithm)
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if n := binary.LittleEndian.Uint32(hdr[:]); int(n) != t.n {
		return fmt.Errorf("core: checkpoint has %d agents, trainer has %d", n, t.n)
	}
	for _, ag := range t.agents {
		nets := []**nn.Network{&ag.actor, &ag.targetActor, &ag.critic1, &ag.targetCritic1}
		if ag.critic2 != nil {
			nets = append(nets, &ag.critic2, &ag.targetCritic2)
		}
		for _, slot := range nets {
			restored, err := nn.ReadNetwork(r)
			if err != nil {
				return err
			}
			if restored.NumParams() != (*slot).NumParams() {
				return fmt.Errorf("core: checkpoint network has %d params, trainer expects %d",
					restored.NumParams(), (*slot).NumParams())
			}
			nn.HardCopy(*slot, restored)
		}
		// Optimizers are re-bound to the in-place networks, then their
		// moment state is overwritten from the checkpoint.
		ag.actorOpt = nn.NewAdam(ag.actor, t.cfg.LR)
		ag.critic1Opt = nn.NewAdam(ag.critic1, t.cfg.LR)
		opts := []*nn.Adam{ag.actorOpt, ag.critic1Opt}
		if ag.critic2 != nil {
			ag.critic2Opt = nn.NewAdam(ag.critic2, t.cfg.LR)
			opts = append(opts, ag.critic2Opt)
		}
		for _, opt := range opts {
			if err := opt.ReadInto(r); err != nil {
				return err
			}
		}
	}
	var cnt [8]byte
	vals := make([]uint64, 3)
	for i := range vals {
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return err
		}
		vals[i] = binary.LittleEndian.Uint64(cnt[:])
	}
	t.totalSteps = int(vals[0])
	t.updateCount = int(vals[1])
	t.episodeCount = int(vals[2])
	return nil
}
