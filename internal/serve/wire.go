package serve

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary /act wire format, for clients that want the zero-parse path:
//
//	request  Content-Type: application/octet-stream
//	         f64le observation values, all agents concatenated in agent
//	         order — exactly sum(obsDims) values, no framing. The serving
//	         shape is the frame: a length mismatch is a 400.
//	reply    "MACT" magic, u64le version, u32le agent count, then one
//	         u32le greedy action index per agent.
//
// The JSON path carries the same payloads as {"obs": [[...], ...]} and
// {"version": N, "actions": [...]} for humans and scripts.

// actReplyMagic frames a binary action reply.
const actReplyMagic = "MACT"

// EncodeObsFrame appends the observations as the binary request body.
func EncodeObsFrame(dst []byte, obs [][]float64) []byte {
	for _, row := range obs {
		for _, v := range row {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// DecodeObsFrame splits a binary request body against the serving widths.
// The returned rows alias freshly allocated storage, not the input.
func DecodeObsFrame(body []byte, obsDims []int) ([][]float64, error) {
	total := 0
	for _, w := range obsDims {
		total += w
	}
	if len(body) != total*8 {
		return nil, fmt.Errorf("serve: binary obs frame is %d bytes, serving shape needs %d (%d f64 values)", len(body), total*8, total)
	}
	obs := make([][]float64, len(obsDims))
	off := 0
	for i, w := range obsDims {
		row := make([]float64, w)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		obs[i] = row
	}
	return obs, nil
}

// EncodeActReply appends the binary reply frame.
func EncodeActReply(dst []byte, version uint64, actions []int) []byte {
	dst = append(dst, actReplyMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(actions)))
	for _, a := range actions {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return dst
}

// DecodeActReply parses a binary reply frame.
func DecodeActReply(body []byte) (version uint64, actions []int, err error) {
	if len(body) < len(actReplyMagic)+12 || string(body[:4]) != actReplyMagic {
		return 0, nil, fmt.Errorf("serve: malformed action reply frame (%d bytes)", len(body))
	}
	version = binary.LittleEndian.Uint64(body[4:])
	n := int(binary.LittleEndian.Uint32(body[12:]))
	if len(body) != 16+4*n {
		return 0, nil, fmt.Errorf("serve: action reply frame is %d bytes, header promises %d actions", len(body), n)
	}
	actions = make([]int, n)
	for i := range actions {
		actions[i] = int(binary.LittleEndian.Uint32(body[16+4*i:]))
	}
	return version, actions, nil
}
