package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marlperf/internal/trace"
)

// HTTP paths served by the gateway server.
const (
	PathAct     = "/act"
	PathHealthz = "/healthz"
	PathStatz   = "/statz"
)

// maxActBody bounds one /act request body; observation frames are small
// (tens of floats), so 1 MiB is already generous.
const maxActBody = 1 << 20

// ActRequest is the JSON /act request body.
type ActRequest struct {
	// Obs holds one observation row per agent, at the serving widths.
	Obs [][]float64 `json:"obs"`
}

// ActReply is the JSON /act response body.
type ActReply struct {
	Version uint64 `json:"version"`
	Actions []int  `json:"actions"`
}

// Statz is the /statz JSON document.
type Statz struct {
	Ready    bool   `json:"ready"`
	Version  uint64 `json:"version"`
	Previous uint64 `json:"previous"`
	Agents   int    `json:"agents"`
	ObsDims  []int  `json:"obs_dims"`
	ActDim   int    `json:"act_dim"`
}

// Server exposes a Gateway over HTTP:
//
//	POST /act      — one observation set in, one action vector out.
//	     JSON (default) or binary (Content-Type: application/octet-stream,
//	     see wire.go); the reply mirrors the request encoding and always
//	     carries X-Serve-Version. `?version=N` pins a retained snapshot.
//	GET  /healthz  — 200 once a policy is installed, 503 before (the
//	     readiness gate: a fleet fronts the gateway only after it can act).
//	GET  /statz    — JSON serving-state document (versions, shape).
//
// Inbound X-Marl-Trace headers are deliberately ignored: /act spans descend
// from the serving snapshot's install position so one trace ID runs learner
// update → publish → install → request, and the response header hands that
// position to the client for its own after-the-fact spans.
type Server struct {
	gw  *Gateway
	mux *http.ServeMux

	closed   atomic.Bool
	inflight sync.WaitGroup
}

// NewServer wraps a gateway.
func NewServer(gw *Gateway) (*Server, error) {
	if gw == nil {
		return nil, fmt.Errorf("serve: NewServer needs a Gateway")
	}
	s := &Server{gw: gw}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathAct, s.handleAct)
	s.mux.HandleFunc(PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(PathStatz, s.handleStatz)
	return s, nil
}

// Handler returns the service mux for mounting alongside other endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleAct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.closed.Load() {
		http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()

	var version uint64
	if q := r.URL.Query().Get("version"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			http.Error(w, fmt.Sprintf("bad version %q", q), http.StatusBadRequest)
			return
		}
		version = v
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxActBody+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxActBody {
		http.Error(w, fmt.Sprintf("request exceeds %d bytes", maxActBody), http.StatusRequestEntityTooLarge)
		return
	}

	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream")
	var obs [][]float64
	if binaryReq {
		dims, _ := s.gw.Dims()
		if dims == nil {
			http.Error(w, ErrNotReady.Error(), http.StatusServiceUnavailable)
			return
		}
		obs, err = DecodeObsFrame(body, dims)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var req ActRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("bad JSON body: %v", err), http.StatusBadRequest)
			return
		}
		obs = req.Obs
	}

	res, err := s.gw.Act(version, obs)
	if err != nil {
		http.Error(w, err.Error(), actErrStatus(err))
		return
	}
	w.Header().Set("X-Serve-Version", strconv.FormatUint(res.Version, 10))
	if res.TraceCtx.Valid() {
		w.Header().Set(trace.HeaderName, trace.FormatHeader(res.TraceCtx))
	}
	if binaryReq {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(EncodeActReply(nil, res.Version, res.Actions))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ActReply{Version: res.Version, Actions: res.Actions})
}

// actErrStatus maps gateway errors onto HTTP status codes.
func actErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case strings.Contains(err.Error(), "not retained"):
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.gw.Ready() {
		http.Error(w, "no policy installed yet", http.StatusServiceUnavailable)
		return
	}
	head, _ := s.gw.Versions()
	fmt.Fprintf(w, "ok version=%d\n", head)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	head, prev := s.gw.Versions()
	dims, actDim := s.gw.Dims()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(Statz{
		Ready:    s.gw.Ready(),
		Version:  head,
		Previous: prev,
		Agents:   len(dims),
		ObsDims:  dims,
		ActDim:   actDim,
	})
}

// BeginDrain flips the server into drain mode — new /act requests answer
// 503 — waits for in-flight handlers, then drains the gateway's batch
// loop. Call before shutting the HTTP listener down so every accepted
// request gets a real answer. Idempotent.
func (s *Server) BeginDrain(timeout time.Duration) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.inflight.Wait()
	return s.gw.Drain(timeout)
}

// ListenAndServe binds addr (port 0 picks a free port), serves the handler
// in the background, and returns the bound address plus a shutdown func.
func (s *Server) ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("serve: listener: %w", err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
