package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"marlperf/internal/nn"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

func testNets(t testing.TB, seed int64, n, obsDim, actDim int) []*nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nets := make([]*nn.Network, n)
	for i := range nets {
		nets[i] = nn.NewMLP(rng, obsDim, 32, 32, actDim)
	}
	return nets
}

func testObs(seed int64, obsDims []int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	obs := make([][]float64, len(obsDims))
	for i, w := range obsDims {
		row := make([]float64, w)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		obs[i] = row
	}
	return obs
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g := NewGateway(cfg)
	t.Cleanup(func() { _ = g.Drain(5 * time.Second) })
	return g
}

func installV1(t *testing.T, g *Gateway) []*nn.Network {
	t.Helper()
	nets := testNets(t, 1, 3, 8, 5)
	if err := g.Install(1, 10, nets, traceZero()); err != nil {
		t.Fatal(err)
	}
	return nets
}

func traceZero() trace.Context { return trace.Context{} }

func TestGatewayReadiness(t *testing.T) {
	g := newTestGateway(t, Config{Window: 0})
	if g.Ready() {
		t.Fatal("fresh gateway reports ready")
	}
	if _, err := g.Act(0, nil); err != ErrNotReady {
		t.Fatalf("pre-install Act error %v, want ErrNotReady", err)
	}
	installV1(t, g)
	if !g.Ready() {
		t.Fatal("gateway not ready after install")
	}
	res, err := g.Act(0, testObs(7, []int{8, 8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || len(res.Actions) != 3 {
		t.Fatalf("act: %+v", res)
	}
	for _, a := range res.Actions {
		if a < 0 || a >= 5 {
			t.Fatalf("action %d out of range", a)
		}
	}
}

// TestBatchedMatchesDirect is the bit-identity contract at the gateway
// level: the same observations produce the same actions whether each
// request forwards alone (Direct), trickles through the batcher one at a
// time, or is coalesced with many concurrent neighbors. Run with -race,
// this also exercises the enqueue/reply paths under contention.
func TestBatchedMatchesDirect(t *testing.T) {
	nets := testNets(t, 2, 3, 8, 5)
	obsDims := []int{8, 8, 8}
	const requests = 200

	obsSets := make([][][]float64, requests)
	for i := range obsSets {
		obsSets[i] = testObs(int64(100+i), obsDims)
	}

	// Reference: per-request forwards, no batching anywhere.
	direct := newTestGateway(t, Config{Direct: true})
	if err := direct.Install(1, 0, nets, traceZero()); err != nil {
		t.Fatal(err)
	}
	want := make([][]int, requests)
	for i, obs := range obsSets {
		res, err := direct.Act(0, obs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Actions
	}

	for _, tc := range []struct {
		name string
		cfg  Config
		conc int
	}{
		{"sequential-window0", Config{Window: 0, MaxBatch: 64}, 1},
		{"coalesced", Config{Window: 5 * time.Millisecond, MaxBatch: 64}, 32},
		{"coalesced-tiny-batch", Config{Window: time.Millisecond, MaxBatch: 4}, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newTestGateway(t, tc.cfg)
			if err := g.Install(1, 0, nets, traceZero()); err != nil {
				t.Fatal(err)
			}
			got := make([][]int, requests)
			var wg sync.WaitGroup
			sem := make(chan struct{}, tc.conc)
			for i, obs := range obsSets {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, obs [][]float64) {
					defer wg.Done()
					defer func() { <-sem }()
					res, err := g.Act(0, obs)
					if err != nil {
						t.Errorf("request %d: %v", i, err)
						return
					}
					got[i] = res.Actions
				}(i, obs)
			}
			wg.Wait()
			for i := range want {
				if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("request %d: coalesced actions %v, per-request actions %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCanarySplitDeterministicAndCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := newTestGateway(t, Config{Window: 0, CanaryPercent: 25, Seed: 42, Registry: reg})
	netsV1 := testNets(t, 3, 2, 6, 4)
	netsV2 := testNets(t, 4, 2, 6, 4)
	if err := g.Install(1, 0, netsV1, traceZero()); err != nil {
		t.Fatal(err)
	}

	// One snapshot: no split regardless of percent.
	obs := testObs(9, []int{6, 6})
	for i := 0; i < 10; i++ {
		res, err := g.Act(0, obs)
		if err != nil || res.Version != 1 {
			t.Fatalf("pre-canary act: %+v err %v", res, err)
		}
	}

	if err := g.Install(2, 0, netsV2, traceZero()); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	hits := map[uint64]int{}
	for i := 0; i < n; i++ {
		res, err := g.Act(0, obs)
		if err != nil {
			t.Fatal(err)
		}
		hits[res.Version]++
	}
	if hits[1] == 0 || hits[2] == 0 {
		t.Fatalf("one arm starved: %v", hits)
	}
	frac := float64(hits[2]) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("canary fraction %.3f far from configured 0.25 (hits %v)", frac, hits)
	}

	// The split is a pure function of (seed, sequence): replaying the same
	// sequence window on a fresh gateway reproduces the same arm choices.
	for seq := uint64(1); seq <= 100; seq++ {
		if canaryArm(42, seq, 25) != canaryArm(42, seq, 25) {
			t.Fatal("canaryArm is not deterministic")
		}
	}
	a, b := 0, 0
	for seq := uint64(0); seq < 10000; seq++ {
		if canaryArm(42, seq, 25) {
			a++
		}
		if canaryArm(43, seq, 25) {
			b++
		}
	}
	if a == b {
		t.Fatalf("different seeds produced identical arm counts (%d) — suspicious hash", a)
	}

	snap := reg.Snapshot()
	var canary, stable uint64
	for _, c := range snap.Counters {
		if c.Name == "marl_serve_canary_total" {
			for _, l := range c.Labels {
				if l.Name == "arm" && l.Value == "canary" {
					canary = c.Value
				}
				if l.Name == "arm" && l.Value == "stable" {
					stable = c.Value
				}
			}
		}
	}
	if canary != uint64(hits[2]) || stable != uint64(hits[1]) {
		t.Fatalf("canary counters %d/%d, served %d/%d", canary, stable, hits[2], hits[1])
	}
}

func TestVersionPinning(t *testing.T) {
	g := newTestGateway(t, Config{Window: 0})
	netsV1 := testNets(t, 5, 2, 6, 4)
	netsV2 := testNets(t, 6, 2, 6, 4)
	if err := g.Install(1, 0, netsV1, traceZero()); err != nil {
		t.Fatal(err)
	}
	if err := g.Install(2, 0, netsV2, traceZero()); err != nil {
		t.Fatal(err)
	}
	obs := testObs(11, []int{6, 6})
	for _, v := range []uint64{1, 2} {
		res, err := g.Act(v, obs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != v {
			t.Fatalf("pinned %d, served %d", v, res.Version)
		}
	}
	if _, err := g.Act(9, obs); err == nil {
		t.Fatal("pinning an unretained version did not error")
	}

	// Pinned answers track the pinned weights, not the head: v1 answers
	// must match a fresh gateway serving only v1.
	ref := newTestGateway(t, Config{Window: 0})
	if err := ref.Install(1, 0, netsV1, traceZero()); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Act(0, obs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Act(1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Actions) != fmt.Sprint(want.Actions) {
		t.Fatalf("pinned v1 actions %v, dedicated v1 gateway says %v", got.Actions, want.Actions)
	}
}

func TestInstallPreviousBackfill(t *testing.T) {
	g := newTestGateway(t, Config{Window: 0, CanaryPercent: 50, Seed: 7})
	netsV1 := testNets(t, 7, 2, 6, 4)
	netsV2 := testNets(t, 8, 2, 6, 4)
	if err := g.Install(2, 0, netsV2, traceZero()); err != nil {
		t.Fatal(err)
	}
	if err := g.InstallPrevious(1, 0, netsV1, traceZero()); err != nil {
		t.Fatal(err)
	}
	head, prev := g.Versions()
	if head != 2 || prev != 1 {
		t.Fatalf("versions %d/%d, want 2/1", head, prev)
	}
	obs := testObs(13, []int{6, 6})
	hits := map[uint64]int{}
	for i := 0; i < 500; i++ {
		res, err := g.Act(0, obs)
		if err != nil {
			t.Fatal(err)
		}
		hits[res.Version]++
	}
	if hits[1] == 0 || hits[2] == 0 {
		t.Fatalf("backfilled stable arm never served: %v", hits)
	}

	// Backfill never displaces an existing stable arm or the head.
	if err := g.InstallPrevious(1, 0, testNets(t, 9, 2, 6, 4), traceZero()); err != nil {
		t.Fatal(err)
	}
	if err := g.InstallPrevious(3, 0, testNets(t, 10, 2, 6, 4), traceZero()); err != nil {
		t.Fatal(err)
	}
	if head, prev := g.Versions(); head != 2 || prev != 1 {
		t.Fatalf("backfill rewrote the window: %d/%d", head, prev)
	}
}

func TestGatewayValidation(t *testing.T) {
	g := newTestGateway(t, Config{Window: 0})
	installV1(t, g) // 3 agents × 8 dims → 5 actions
	if _, err := g.Act(0, testObs(1, []int{8, 8})); err == nil {
		t.Fatal("wrong agent count accepted")
	}
	if _, err := g.Act(0, testObs(1, []int{8, 8, 9})); err == nil {
		t.Fatal("wrong obs width accepted")
	}
	// A mismatched later install is rejected and the head stays serving.
	if err := g.Install(5, 0, testNets(t, 11, 2, 6, 4), traceZero()); err == nil {
		t.Fatal("shape-changing install accepted")
	}
	if res, err := g.Act(0, testObs(2, []int{8, 8, 8})); err != nil || res.Version != 1 {
		t.Fatalf("head lost after rejected install: %+v err %v", res, err)
	}
	// Stale re-delivery is ignored, not an error.
	if err := g.Install(1, 0, testNets(t, 1, 3, 8, 5), traceZero()); err != nil {
		t.Fatal(err)
	}
}

func TestGatewayDrain(t *testing.T) {
	g := NewGateway(Config{Window: 2 * time.Millisecond, MaxBatch: 8})
	installV1(t, g)
	obs := testObs(3, []int{8, 8, 8})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Act(0, obs); err != nil && err != ErrDraining && err != ErrOverloaded {
				errs <- err
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := g.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := g.Act(0, obs); err != ErrDraining {
		t.Fatalf("post-drain Act error %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := g.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// --- HTTP layer ---

func newTestServer(t *testing.T, cfg Config) (*Gateway, *Server, *httptest.Server) {
	t.Helper()
	g := newTestGateway(t, cfg)
	srv, err := NewServer(g)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return g, srv, ts
}

func postJSON(t *testing.T, url string, obs [][]float64) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(ActRequest{Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServerHealthzGate(t *testing.T) {
	g, _, ts := newTestServer(t, Config{Window: 0})
	resp, err := http.Get(ts.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-install healthz %d, want 503", resp.StatusCode)
	}
	// /act also refuses before the first install.
	r2, _ := postJSON(t, ts.URL+PathAct, testObs(1, []int{8, 8, 8}))
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-install act %d, want 503", r2.StatusCode)
	}
	installV1(t, g)
	resp, err = http.Get(ts.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("version=1")) {
		t.Fatalf("post-install healthz %d %q", resp.StatusCode, body)
	}
}

// TestServerJSONBinaryIdentity drives the full HTTP path in both encodings
// under concurrency and checks every answer equals the per-request Direct
// reference — the end-to-end form of the bit-identity contract.
func TestServerJSONBinaryIdentity(t *testing.T) {
	nets := testNets(t, 12, 3, 8, 5)
	obsDims := []int{8, 8, 8}
	const requests = 120

	direct := newTestGateway(t, Config{Direct: true})
	if err := direct.Install(1, 0, nets, traceZero()); err != nil {
		t.Fatal(err)
	}
	obsSets := make([][][]float64, requests)
	want := make([][]int, requests)
	for i := range obsSets {
		obsSets[i] = testObs(int64(500+i), obsDims)
		res, err := direct.Act(0, obsSets[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Actions
	}

	g, _, ts := newTestServer(t, Config{Window: 3 * time.Millisecond, MaxBatch: 32})
	if err := g.Install(1, 0, nets, traceZero()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 { // JSON
				resp, data := postJSON(t, ts.URL+PathAct, obsSets[i])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("json %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				if resp.Header.Get("X-Serve-Version") != "1" {
					t.Errorf("json %d: X-Serve-Version %q", i, resp.Header.Get("X-Serve-Version"))
				}
				var reply ActReply
				if err := json.Unmarshal(data, &reply); err != nil {
					t.Errorf("json %d: %v", i, err)
					return
				}
				if reply.Version != 1 || fmt.Sprint(reply.Actions) != fmt.Sprint(want[i]) {
					t.Errorf("json %d: got %v want %v", i, reply.Actions, want[i])
				}
			} else { // binary
				frame := EncodeObsFrame(nil, obsSets[i])
				resp, err := http.Post(ts.URL+PathAct, "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					t.Errorf("bin %d: %v", i, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("bin %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				version, actions, err := DecodeActReply(data)
				if err != nil {
					t.Errorf("bin %d: %v", i, err)
					return
				}
				if version != 1 || fmt.Sprint(actions) != fmt.Sprint(want[i]) {
					t.Errorf("bin %d: got %v want %v", i, actions, want[i])
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestServerErrors(t *testing.T) {
	g, _, ts := newTestServer(t, Config{Window: 0})
	installV1(t, g)

	// Bad JSON.
	resp, err := http.Post(ts.URL+PathAct, "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", resp.StatusCode)
	}

	// Binary frame at the wrong length.
	resp, err = http.Post(ts.URL+PathAct, "application/octet-stream", bytes.NewReader(make([]byte, 7)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short binary frame status %d", resp.StatusCode)
	}

	// Unretained pin.
	resp, _ = postJSONURL(t, ts.URL+PathAct+"?version=9", testObs(1, []int{8, 8, 8}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unretained pin status %d, want 404", resp.StatusCode)
	}

	// GET is not an action.
	resp, err = http.Get(ts.URL + PathAct)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /act status %d", resp.StatusCode)
	}
}

func postJSONURL(t *testing.T, url string, obs [][]float64) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url, obs)
}

func TestServerStatz(t *testing.T) {
	g, _, ts := newTestServer(t, Config{Window: 0})
	resp, err := http.Get(ts.URL + PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Ready || st.Version != 0 {
		t.Fatalf("fresh statz: %+v", st)
	}
	installV1(t, g)
	resp, err = http.Get(ts.URL + PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Ready || st.Version != 1 || st.Agents != 3 || st.ActDim != 5 || len(st.ObsDims) != 3 || st.ObsDims[0] != 8 {
		t.Fatalf("statz: %+v", st)
	}
}

func TestServerDrain(t *testing.T) {
	g, srv, ts := newTestServer(t, Config{Window: time.Millisecond, MaxBatch: 8})
	installV1(t, g)
	obs := testObs(21, []int{8, 8, 8})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+PathAct, obs)
			// Accepted requests must answer 200; refused ones 503/429.
			switch resp.StatusCode {
			case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
			default:
				t.Errorf("drain-race status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	if err := srv.BeginDrain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	resp, _ := postJSON(t, ts.URL+PathAct, obs)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain act status %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz %d, want 503", hz.StatusCode)
	}
}

// TestActSpansJoinInstallTrace pins the serving tail of the distributed
// trace: an install descending from a publish trace records serve-install,
// and sampled /act requests record act-request + batch-forward spans under
// the same trace ID, which the Result hands back for the client's own
// after-the-fact span.
func TestActSpansJoinInstallTrace(t *testing.T) {
	tr := trace.New("serve-test", 1024)
	tr.SetEnabled(true)
	tr.SetSampleEvery(1)
	g := newTestGateway(t, Config{Window: 0, Tracer: tr})
	root := tr.StartTrace(777, "publish")
	nets := testNets(t, 40, 2, 6, 4)
	if err := g.Install(1, 0, nets, root.Context()); err != nil {
		t.Fatal(err)
	}
	res, err := g.Act(0, testObs(41, []int{6, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceCtx.TraceID != 777 {
		t.Fatalf("result trace ID %d, want 777", res.TraceCtx.TraceID)
	}
	root.End()
	names := map[string]bool{}
	for _, r := range tr.Snapshot() {
		if r.TraceID != 777 {
			t.Fatalf("span %q on trace %d, want 777", r.Name, r.TraceID)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"serve-install", "act-request", "batch-forward"} {
		if !names[want] {
			t.Fatalf("trace is missing a %q span (have %v)", want, names)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	obs := testObs(31, []int{3, 5})
	frame := EncodeObsFrame(nil, obs)
	back, err := DecodeObsFrame(frame, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(back) != fmt.Sprint(obs) {
		t.Fatalf("obs round trip: %v vs %v", back, obs)
	}
	if _, err := DecodeObsFrame(frame[:len(frame)-1], []int{3, 5}); err == nil {
		t.Fatal("truncated obs frame decoded")
	}

	reply := EncodeActReply(nil, 7, []int{2, 0, 4})
	version, actions, err := DecodeActReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	if version != 7 || fmt.Sprint(actions) != "[2 0 4]" {
		t.Fatalf("reply round trip: v%d %v", version, actions)
	}
	for _, bad := range [][]byte{nil, reply[:10], append(append([]byte(nil), reply...), 1), []byte("XXXX12345678keys")} {
		if _, _, err := DecodeActReply(bad); err == nil {
			t.Fatalf("malformed reply %v decoded", bad)
		}
	}
}
