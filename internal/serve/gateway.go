// Package serve is the inference side of the trained system: a micro-
// batching action gateway that turns policy snapshots flowing out of the
// training loop (via policysync) into an HTTP "observations in, actions
// out" service.
//
// The core idea is the same batching economics the paper measures inside
// the training loop, applied at the serving edge: concurrent /act requests
// are coalesced into one batched forward pass per agent network instead of
// one forward per request, trading a bounded queueing window for
// per-dispatch amortization. Because the batched forward is the rollout
// engine's own ActCore — dense rows computed in an identical op order at
// any batch size, no RNG — a coalesced answer is bit-identical to the
// answer the same observation gets alone. Batching here is purely a
// throughput decision, never a behavioral one.
//
// Snapshot lifecycle: Install hot-swaps the serving head atomically; the
// displaced head is retained as the stable arm so a weighted canary split
// can route a deterministic fraction of unpinned traffic to the newest
// weights while the rest keeps serving the proven ones. Requests may also
// pin an exact retained version.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"runtime"

	"marlperf/internal/nn"
	"marlperf/internal/rollout"
	"marlperf/internal/telemetry"
	"marlperf/internal/tensor"
	"marlperf/internal/trace"
)

// Config describes a gateway.
type Config struct {
	// Window is how long the batch loop holds an incomplete batch open for
	// more requests after the first one arrives. Zero batches only what is
	// already queued (no added latency). Negative selects the 2ms default.
	Window time.Duration
	// MaxBatch caps one coalesced forward. Defaults to 64.
	MaxBatch int
	// QueueDepth bounds the request queue; enqueues beyond it fail fast
	// with ErrOverloaded instead of stacking latency. Defaults to 4×MaxBatch.
	QueueDepth int
	// CanaryPercent routes this percentage of unpinned requests to the
	// newest snapshot and the rest to the previous one, once two snapshots
	// are installed. 0 disables the split (everything serves the newest).
	CanaryPercent int
	// Seed makes the canary split deterministic: arm choice is a hash of
	// (Seed, request sequence number), so a replayed request sequence hits
	// the same arms. The split never consumes an RNG.
	Seed int64
	// Direct disables micro-batching: each request runs its own forward in
	// the handler goroutine under a mutex. This is the naive per-request
	// server BenchmarkServe compares the batcher against.
	Direct bool
	// Registry receives marl_serve_* metrics; nil keeps a private one.
	Registry *telemetry.Registry
	// Tracer, when set and enabled, records act-request and batch-forward
	// spans parented on the serving snapshot's install position — the
	// continuation of the learner update → policyd publish → serve install
	// chain — for requests the sampler selects.
	Tracer *trace.Tracer
}

// ErrOverloaded is returned when the request queue is full.
var ErrOverloaded = fmt.Errorf("serve: request queue full")

// ErrNotReady is returned before the first snapshot install.
var ErrNotReady = fmt.Errorf("serve: no policy installed yet")

// ErrDraining is returned for requests that arrive after Drain began.
var ErrDraining = fmt.Errorf("serve: draining")

// snapshot is one installed policy version. Its networks are only read by
// whichever goroutine holds the forward core at the time, so a hot-swap
// never tears a forward.
type snapshot struct {
	version    uint64
	updates    uint64
	agents     []*nn.Network
	installCtx trace.Context // serve-install span position (zero: untraced)
}

// actRequest is one enqueued /act call.
type actRequest struct {
	snap    *snapshot
	obs     [][]float64 // [agent][obsDims[agent]]
	replyCh chan actReply
}

type actReply struct {
	actions []int
	err     error
}

// Result is one served action vector.
type Result struct {
	// Actions holds one greedy (argmax) action index per agent.
	Actions []int
	// Version is the snapshot version that produced the actions.
	Version uint64
	// TraceCtx is the request span position when the request was sampled
	// into a trace (zero otherwise); servers relay it to the client.
	TraceCtx trace.Context
}

// Gateway owns the snapshot window and the batch loop. Safe for concurrent
// use by any number of request goroutines plus one installer (the syncer).
type Gateway struct {
	cfg Config

	mu      sync.Mutex
	head    *snapshot
	prev    *snapshot
	obsDims []int
	actDim  int
	core    *rollout.ActCore // owned by the batch loop (Direct: by fwdMu)
	ready   atomic.Bool

	queue    chan *actRequest
	sendMu   sync.RWMutex // excludes enqueues while Drain closes the queue
	draining atomic.Bool
	loopDone chan struct{}

	// reqPool recycles request envelopes (and their reply channels): one
	// request is owned by exactly one sender until its single reply arrives,
	// so the envelope is reusable the moment the reply is read.
	reqPool sync.Pool
	// batchScratch/groupScratch are owned by the batch loop between
	// dispatches, so steady-state coalescing allocates nothing.
	batchScratch []*actRequest
	groupScratch []*actRequest

	reqSeq atomic.Uint64 // canary-split and trace-sampling sequence

	fwdMu sync.Mutex // Direct mode: serializes handler-side forwards

	requestsC *telemetry.Counter
	errorsC   *telemetry.Counter
	batchesC  *telemetry.Counter
	installsC *telemetry.Counter
	canaryC   *telemetry.Counter
	stableC   *telemetry.Counter
	pinnedC   *telemetry.Counter
	versionG  *telemetry.Gauge
	readyG    *telemetry.Gauge
	batchH    *telemetry.Histogram
	latencyH  *telemetry.Histogram
}

// batchSizeBuckets bounds the coalesced-batch-size histogram: powers of two
// past the 64-request default cap.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// NewGateway validates cfg, registers metrics, and starts the batch loop
// (unless Direct). Call Drain to stop it.
func NewGateway(cfg Config) *Gateway {
	if cfg.Window < 0 {
		cfg.Window = 2 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.CanaryPercent < 0 {
		cfg.CanaryPercent = 0
	} else if cfg.CanaryPercent > 100 {
		cfg.CanaryPercent = 100
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_serve_requests_total", "Action requests accepted by the gateway.")
	reg.SetHelp("marl_serve_batch_size", "Requests coalesced into one batched forward.")
	reg.SetHelp("marl_serve_latency_seconds", "Gateway latency from accept to reply, per request.")
	reg.SetHelp("marl_serve_canary_total", "Unpinned requests routed per canary arm.")
	g := &Gateway{
		cfg:       cfg,
		queue:     make(chan *actRequest, cfg.QueueDepth),
		loopDone:  make(chan struct{}),
		requestsC: reg.Counter("marl_serve_requests_total"),
		errorsC:   reg.Counter("marl_serve_errors_total"),
		batchesC:  reg.Counter("marl_serve_batches_total"),
		installsC: reg.Counter("marl_serve_installs_total"),
		canaryC:   reg.Counter("marl_serve_canary_total", "arm", "canary"),
		stableC:   reg.Counter("marl_serve_canary_total", "arm", "stable"),
		pinnedC:   reg.Counter("marl_serve_pinned_total"),
		versionG:  reg.Gauge("marl_serve_version"),
		readyG:    reg.Gauge("marl_serve_ready"),
		batchH:    reg.Histogram("marl_serve_batch_size", batchSizeBuckets()),
		latencyH:  reg.Histogram("marl_serve_latency_seconds", nil),
	}
	if cfg.Direct {
		close(g.loopDone)
	} else {
		go g.batchLoop()
	}
	return g
}

// Install hot-swaps the serving head to the given snapshot, demoting the
// current head to the stable canary arm. The first install fixes the
// serving shape and flips the gateway ready; installs with a version not
// newer than the head are ignored (a restarted syncer may re-deliver). The
// networks are taken by reference and must not be mutated afterwards.
func (g *Gateway) Install(version, updates uint64, agents []*nn.Network, tctx trace.Context) error {
	obsDims, actDim, err := rollout.NetworkDims(agents)
	if err != nil {
		return err
	}
	sp := g.cfg.Tracer.StartSpan(tctx, "serve-install")
	installCtx := tctx
	if sp.Valid() {
		installCtx = sp.Context()
	}
	g.mu.Lock()
	if g.head != nil {
		if version <= g.head.version {
			g.mu.Unlock()
			sp.EndArg("stale", int64(version))
			return nil
		}
		if err := dimsMatch(g.obsDims, g.actDim, obsDims, actDim); err != nil {
			g.mu.Unlock()
			sp.EndArg("error", 1)
			return err
		}
		g.prev = g.head
	} else {
		g.obsDims = obsDims
		g.actDim = actDim
		g.core = rollout.NewActCore(obsDims, actDim, g.cfg.MaxBatch)
	}
	g.head = &snapshot{version: version, updates: updates, agents: agents, installCtx: installCtx}
	g.mu.Unlock()

	g.ready.Store(true)
	g.readyG.Set(1)
	g.installsC.Inc()
	g.versionG.Set(float64(version))
	sp.EndArg("version", int64(version))
	return nil
}

// InstallPrevious backfills the stable arm with an older retained version —
// the path a freshly started gateway uses after fetching the previous
// publish from policyd, so canary routing works from the first install
// instead of only after the next head swap. No-op unless the version is
// strictly older than the head and the stable slot is empty.
func (g *Gateway) InstallPrevious(version, updates uint64, agents []*nn.Network, tctx trace.Context) error {
	obsDims, actDim, err := rollout.NetworkDims(agents)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.head == nil || g.prev != nil || version == 0 || version >= g.head.version {
		return nil
	}
	if err := dimsMatch(g.obsDims, g.actDim, obsDims, actDim); err != nil {
		return err
	}
	g.prev = &snapshot{version: version, updates: updates, agents: agents, installCtx: tctx}
	return nil
}

func dimsMatch(wantObs []int, wantAct int, obs []int, act int) error {
	if len(obs) != len(wantObs) || act != wantAct {
		return fmt.Errorf("serve: snapshot shape %v/%d does not match serving shape %v/%d", obs, act, wantObs, wantAct)
	}
	for i := range obs {
		if obs[i] != wantObs[i] {
			return fmt.Errorf("serve: snapshot agent %d obs width %d does not match serving width %d", i, obs[i], wantObs[i])
		}
	}
	return nil
}

// Ready reports whether a policy is installed.
func (g *Gateway) Ready() bool { return g.ready.Load() }

// Dims returns the serving observation widths and action width (nil/0
// before the first install).
func (g *Gateway) Dims() ([]int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.obsDims, g.actDim
}

// Versions returns the head and stable-arm versions (0 when absent).
func (g *Gateway) Versions() (head, prev uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.head != nil {
		head = g.head.version
	}
	if g.prev != nil {
		prev = g.prev.version
	}
	return head, prev
}

// resolve picks the snapshot for one request: an exact retained version
// when pinned (version != 0), otherwise the canary split over the request
// sequence number.
func (g *Gateway) resolve(version, seq uint64) (*snapshot, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.head == nil {
		return nil, ErrNotReady
	}
	if version != 0 {
		switch {
		case version == g.head.version:
			g.pinnedC.Inc()
			return g.head, nil
		case g.prev != nil && version == g.prev.version:
			g.pinnedC.Inc()
			return g.prev, nil
		}
		var stable uint64
		if g.prev != nil {
			stable = g.prev.version
		}
		return nil, fmt.Errorf("serve: version %d not retained (serving %d, stable %d)", version, g.head.version, stable)
	}
	if g.cfg.CanaryPercent > 0 && g.prev != nil {
		if canaryArm(uint64(g.cfg.Seed), seq, g.cfg.CanaryPercent) {
			g.canaryC.Inc()
			return g.head, nil
		}
		g.stableC.Inc()
		return g.prev, nil
	}
	return g.head, nil
}

// canaryArm reports whether request seq goes to the canary (newest) arm
// under the given percent, via a seeded integer hash — deterministic for a
// given (seed, seq), uniform across seq, and RNG-free.
func canaryArm(seed, seq uint64, percent int) bool {
	h := mix64(seed ^ mix64(seq+0x9E3779B97F4A7C15))
	return h%100 < uint64(percent)
}

// mix64 is the splitmix64 finalizer (the same construction the trace
// package uses for ID derivation).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Act serves one observation set: resolve the snapshot (pin or canary),
// then either coalesce through the batch loop or forward directly. obs
// must hold one row per agent at the serving widths.
func (g *Gateway) Act(version uint64, obs [][]float64) (Result, error) {
	start := time.Now()
	seq := g.reqSeq.Add(1)
	snap, err := g.resolve(version, seq)
	if err != nil {
		g.errorsC.Inc()
		return Result{}, err
	}
	if err := g.checkObs(obs); err != nil {
		g.errorsC.Inc()
		return Result{}, err
	}
	g.requestsC.Inc()

	// Sampled requests get a span parented on the serving snapshot's
	// install position — the serving tail of the learner's update trace.
	var reqSpan trace.Span
	if g.cfg.Tracer.Enabled() && g.cfg.Tracer.Sampled(seq) && snap.installCtx.Valid() {
		reqSpan = g.cfg.Tracer.StartSpan(snap.installCtx, "act-request")
	}

	var actions []int
	if g.cfg.Direct {
		actions, err = g.directForward(snap, obs)
	} else {
		actions, err = g.batchForward(snap, obs)
	}
	if err != nil {
		g.errorsC.Inc()
		reqSpan.EndArg("error", 1)
		return Result{}, err
	}
	g.latencyH.Observe(time.Since(start).Seconds())
	reqSpan.EndArg("version", int64(snap.version))
	return Result{Actions: actions, Version: snap.version, TraceCtx: reqSpan.Context()}, nil
}

func (g *Gateway) checkObs(obs [][]float64) error {
	g.mu.Lock()
	dims := g.obsDims
	g.mu.Unlock()
	if len(obs) != len(dims) {
		return fmt.Errorf("serve: request has %d agent observations, policy serves %d agents", len(obs), len(dims))
	}
	for i, row := range obs {
		if len(row) != dims[i] {
			return fmt.Errorf("serve: agent %d observation has %d dims, policy wants %d", i, len(row), dims[i])
		}
	}
	return nil
}

// batchForward enqueues the request and waits for the batch loop's answer.
// The read lock excludes the enqueue against Drain closing the queue.
func (g *Gateway) batchForward(snap *snapshot, obs [][]float64) ([]int, error) {
	req, _ := g.reqPool.Get().(*actRequest)
	if req == nil {
		req = &actRequest{replyCh: make(chan actReply, 1)}
	}
	req.snap, req.obs = snap, obs
	g.sendMu.RLock()
	if g.draining.Load() {
		g.sendMu.RUnlock()
		g.putReq(req)
		return nil, ErrDraining
	}
	var enqueued bool
	select {
	case g.queue <- req:
		enqueued = true
	default:
	}
	g.sendMu.RUnlock()
	if !enqueued {
		g.putReq(req)
		return nil, ErrOverloaded
	}
	reply := <-req.replyCh
	g.putReq(req)
	return reply.actions, reply.err
}

// putReq returns a request envelope to the pool. Callers must hold the only
// reference: either the enqueue failed, or the single reply was received
// (the batch loop never touches a request after replying).
func (g *Gateway) putReq(req *actRequest) {
	req.snap, req.obs = nil, nil
	g.reqPool.Put(req)
}

// directForward is the per-request baseline: one 1-row forward in the
// caller's goroutine, serialized by a mutex the way a naive non-batching
// server would be.
func (g *Gateway) directForward(snap *snapshot, obs [][]float64) ([]int, error) {
	g.fwdMu.Lock()
	defer g.fwdMu.Unlock()
	if err := g.core.SetAgents(snap.agents); err != nil {
		return nil, err
	}
	g.core.Begin(1)
	for a, row := range obs {
		g.core.SetObs(0, a, row)
	}
	g.core.Forward()
	g.batchH.Observe(1)
	g.batchesC.Inc()
	return argmaxRow(g.core, 0), nil
}

func argmaxRow(core *rollout.ActCore, row int) []int {
	actions := make([]int, core.NumAgents())
	for a := range actions {
		actions[a] = tensor.ArgMax(core.Logits(a, row))
	}
	return actions
}

// batchLoop is the single consumer: it pulls the first waiting request,
// holds the batch open up to Window (or MaxBatch), groups by snapshot —
// a hot-swap mid-window means two groups, each forwarded on its own
// weights — and answers every request from one forward per group.
func (g *Gateway) batchLoop() {
	defer close(g.loopDone)
	for {
		first, ok := <-g.queue
		if !ok {
			return
		}
		g.forwardBatch(g.collect(first))
	}
}

// collect gathers up to MaxBatch requests, waiting at most Window after
// the first arrival. The returned slice aliases the loop's scratch storage
// and is only valid until the next collect.
func (g *Gateway) collect(first *actRequest) []*actRequest {
	batch := append(g.batchScratch[:0], first)
	defer func() { g.batchScratch = batch[:0] }()
	if g.cfg.Window <= 0 {
		// Zero window: batch what is already queued — but senders that are
		// runnable and mid-enqueue haven't reached the queue yet (on a
		// loaded box this loop tends to win the scheduler race and would
		// dispatch singletons forever). One yield lets that in-flight wave
		// land; no timers, at most one scheduler pass of added latency.
		batch = g.drainQueued(batch)
		if len(batch) < g.cfg.MaxBatch {
			runtime.Gosched()
			batch = g.drainQueued(batch)
		}
		return batch
	}
	timer := time.NewTimer(g.cfg.Window)
	defer timer.Stop()
	for len(batch) < g.cfg.MaxBatch {
		select {
		case r, ok := <-g.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// drainQueued moves already-queued requests into the batch, up to MaxBatch,
// without blocking.
func (g *Gateway) drainQueued(batch []*actRequest) []*actRequest {
	for len(batch) < g.cfg.MaxBatch {
		select {
		case r, ok := <-g.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// forwardBatch splits the batch into per-snapshot groups and answers each
// group from one coalesced forward. The partition filters in place (the
// rest compacts into the batch's own prefix, which only ever lags the read
// cursor), so steady-state dispatch allocates nothing.
func (g *Gateway) forwardBatch(batch []*actRequest) {
	for len(batch) > 0 {
		snap := batch[0].snap
		group := g.groupScratch[:0]
		rest := batch[:0]
		for _, r := range batch {
			if r.snap == snap {
				group = append(group, r)
			} else {
				rest = append(rest, r)
			}
		}
		g.forwardGroup(snap, group)
		g.groupScratch = group[:0]
		batch = rest
	}
}

func (g *Gateway) forwardGroup(snap *snapshot, group []*actRequest) {
	if err := g.core.SetAgents(snap.agents); err != nil {
		for _, r := range group {
			r.replyCh <- actReply{err: err}
		}
		return
	}
	g.core.Begin(len(group))
	for row, r := range group {
		for a, obsRow := range r.obs {
			g.core.SetObs(row, a, obsRow)
		}
	}
	// One forward span per coalesced batch (not per request), descending
	// from the snapshot's install position.
	sp := g.cfg.Tracer.StartSpan(snap.installCtx, "batch-forward")
	g.core.Forward()
	sp.EndArg("batch", int64(len(group)))
	g.batchH.Observe(float64(len(group)))
	g.batchesC.Inc()
	for row, r := range group {
		r.replyCh <- actReply{actions: argmaxRow(g.core, row)}
	}
}

// Drain stops accepting new requests, lets queued ones finish, and waits
// up to timeout for the batch loop to exit. Idempotent.
func (g *Gateway) Drain(timeout time.Duration) error {
	if g.draining.Swap(true) {
		<-g.loopDone
		return nil
	}
	g.readyG.Set(0)
	g.sendMu.Lock()
	close(g.queue)
	g.sendMu.Unlock()
	select {
	case <-g.loopDone:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: batch loop did not drain within %v", timeout)
	}
}
