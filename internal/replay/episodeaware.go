package replay

import (
	"fmt"
	"math/rand"
)

// EpisodeAwareLocalitySampler refines Algorithm 1: neighbor runs are
// truncated at episode boundaries (done flags), so a run never mixes the
// tail of one episode with the head of the next. The paper's sampler takes
// raw index neighbors; with 25-step episodes roughly 1-in-25/neighbors runs
// straddle a boundary, which is harmless for the critic target (each
// transition is self-contained) but changes the temporal mix of the batch.
// This variant keeps the cache-streaming property while sampling only
// intra-episode neighborhoods, at the cost of a few extra reference points
// per batch.
type EpisodeAwareLocalitySampler struct {
	buf       *Buffer
	Neighbors int
	Refs      int
}

// NewEpisodeAwareLocalitySampler returns the boundary-respecting variant
// of the cache-locality-aware sampler.
func NewEpisodeAwareLocalitySampler(buf *Buffer, neighbors, refs int) *EpisodeAwareLocalitySampler {
	if neighbors < 1 || refs < 1 {
		panic(fmt.Sprintf("replay: episode-aware sampler needs positive neighbors/refs, got %d/%d", neighbors, refs))
	}
	return &EpisodeAwareLocalitySampler{buf: buf, Neighbors: neighbors, Refs: refs}
}

// Name implements Sampler.
func (s *EpisodeAwareLocalitySampler) Name() string {
	return fmt.Sprintf("ep-locality(n=%d,ref=%d)", s.Neighbors, s.Refs)
}

// Sample implements Sampler: uniform reference points expanded into
// contiguous runs that stop after a done flag (agent 0's flag; all agents
// share episode boundaries in the CTDE loop).
func (s *EpisodeAwareLocalitySampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler.
func (s *EpisodeAwareLocalitySampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	done := s.buf.done[0]
	dst.Reset(n)
	// Worst case every run truncates after one slot, so Refs may need n
	// entries.
	dst.growRefs(n)
	for len(dst.Indices) < n {
		ref := rng.Intn(length)
		dst.Refs = append(dst.Refs, ref)
		run := s.Neighbors
		if rem := n - len(dst.Indices); run > rem {
			run = rem
		}
		for k := 0; k < run; k++ {
			pos := (ref + k) % length
			dst.Indices = append(dst.Indices, pos)
			// A done flag ends the episode at pos; the next physical slot
			// belongs to a different episode, so stop the run here.
			if done[pos] != 0 {
				break
			}
		}
	}
}
