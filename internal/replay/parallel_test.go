package replay

import (
	"math/rand"
	"sync"
	"testing"
)

// allSamplers builds one of each sampler kind over buf (reuse wraps
// uniform), mirroring the trainer's construction switch.
func allSamplers(buf *Buffer) []Sampler {
	return []Sampler{
		NewUniformSampler(buf),
		NewLocalitySampler(buf, 4, 8),
		NewPERSampler(buf),
		NewIPLocalitySampler(buf, 1),
		NewRankPERSampler(buf),
		NewEpisodeAwareLocalitySampler(buf, 4, 8),
		NewReuseSampler(NewUniformSampler(buf), 3),
	}
}

// TestSampleIntoMatchesSample checks the gather-into variants reproduce the
// value-returning API exactly for every sampler, including slice reuse
// across calls.
func TestSampleIntoMatchesSample(t *testing.T) {
	buf := NewBuffer(testSpec(128))
	samplers := allSamplers(buf) // before fill: priority samplers listen on Add
	fillBuffer(buf, 128)
	for _, s := range samplers {
		rngA := rand.New(rand.NewSource(11))
		rngB := rand.New(rand.NewSource(11))
		var dst Sample
		for round := 0; round < 4; round++ {
			want := s.Sample(32, rngA)
			s.SampleInto(&dst, 32, rngB)
			if len(dst.Indices) != len(want.Indices) {
				t.Fatalf("%s: SampleInto %d indices, Sample %d", s.Name(), len(dst.Indices), len(want.Indices))
			}
			for i := range want.Indices {
				if dst.Indices[i] != want.Indices[i] {
					t.Fatalf("%s round %d: index %d = %d, want %d", s.Name(), round, i, dst.Indices[i], want.Indices[i])
				}
			}
			if len(dst.Weights) != len(want.Weights) {
				t.Fatalf("%s: SampleInto %d weights, Sample %d", s.Name(), len(dst.Weights), len(want.Weights))
			}
			for i := range want.Weights {
				if dst.Weights[i] != want.Weights[i] {
					t.Fatalf("%s round %d: weight %d = %v, want %v", s.Name(), round, i, dst.Weights[i], want.Weights[i])
				}
			}
		}
	}
}

// TestConcurrentSampleIntoIsSafe runs many goroutines sampling from one
// shared sampler with private dst/rng — the parallel update engine's read
// pattern. Under -race this is the concurrent-gather safety test; the
// per-stream draws must also stay identical to a serial replay of the same
// streams.
func TestConcurrentSampleIntoIsSafe(t *testing.T) {
	buf := NewBuffer(testSpec(256))
	samplers := allSamplers(buf)
	fillBuffer(buf, 256)
	const workers = 8
	const rounds = 20
	for _, s := range samplers {
		if _, reuse := s.(*ReuseSampler); reuse {
			// The reuse cache intentionally couples streams; skip the
			// per-stream determinism comparison and just hammer it for
			// races.
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					var dst Sample
					for r := 0; r < rounds; r++ {
						s.SampleInto(&dst, 32, rng)
					}
				}(w)
			}
			wg.Wait()
			continue
		}
		// Serial reference per stream.
		serial := make([][]int, workers)
		for w := 0; w < workers; w++ {
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var dst Sample
			for r := 0; r < rounds; r++ {
				s.SampleInto(&dst, 32, rng)
				serial[w] = append(serial[w], dst.Indices...)
			}
		}
		// Concurrent run of the same streams.
		concurrent := make([][]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + w)))
				var dst Sample
				for r := 0; r < rounds; r++ {
					s.SampleInto(&dst, 32, rng)
					concurrent[w] = append(concurrent[w], dst.Indices...)
				}
			}(w)
		}
		wg.Wait()
		for w := range serial {
			if len(serial[w]) != len(concurrent[w]) {
				t.Fatalf("%s worker %d: %d vs %d indices", s.Name(), w, len(serial[w]), len(concurrent[w]))
			}
			for i := range serial[w] {
				if serial[w][i] != concurrent[w][i] {
					t.Fatalf("%s worker %d: draw %d = %d concurrent, %d serial", s.Name(), w, i, concurrent[w][i], serial[w][i])
				}
			}
		}
	}
}

// TestConcurrentSampleWithGatherIsSafe overlaps SampleInto with GatherAll on
// both storage layouts, the full read mix of one update worker.
func TestConcurrentSampleWithGatherIsSafe(t *testing.T) {
	spec := testSpec(256)
	buf := NewBuffer(spec)
	kv := NewKVBuffer(spec)
	s := NewPERSampler(buf)
	fillBuffer(buf, 256)
	fillKVBuffer(kv, 256)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var dst Sample
			batches := make([]*AgentBatch, spec.NumAgents)
			for a := range batches {
				batches[a] = NewAgentBatch(32, spec.ObsDims[a], spec.ActDim)
			}
			for r := 0; r < 15; r++ {
				s.SampleInto(&dst, 32, rng)
				if w%2 == 0 {
					buf.GatherAll(dst.Indices, batches)
				} else {
					kv.GatherAll(dst.Indices, batches)
				}
			}
		}(w)
	}
	wg.Wait()
}

// fillKVBuffer mirrors fillBuffer for the key-value layout.
func fillKVBuffer(k *KVBuffer, n int) {
	spec := k.Spec()
	for t := 0; t < n; t++ {
		obs := make([][]float64, spec.NumAgents)
		act := make([][]float64, spec.NumAgents)
		rew := make([]float64, spec.NumAgents)
		nextObs := make([][]float64, spec.NumAgents)
		done := make([]float64, spec.NumAgents)
		for a := 0; a < spec.NumAgents; a++ {
			obs[a] = make([]float64, spec.ObsDims[a])
			nextObs[a] = make([]float64, spec.ObsDims[a])
			act[a] = make([]float64, spec.ActDim)
		}
		k.Add(obs, act, rew, nextObs, done)
	}
}

// TestSampleIntoZeroAlloc asserts the steady-state sampling and gather hot
// paths do not touch the heap once scratch has warmed up.
func TestSampleIntoZeroAlloc(t *testing.T) {
	spec := testSpec(256)
	buf := NewBuffer(spec)
	samplers := allSamplers(buf)
	fillBuffer(buf, 256)
	rng := rand.New(rand.NewSource(5))
	batches := make([]*AgentBatch, spec.NumAgents)
	for a := range batches {
		batches[a] = NewAgentBatch(64, spec.ObsDims[a], spec.ActDim)
	}
	for _, s := range samplers {
		s := s
		var dst Sample
		s.SampleInto(&dst, 64, rng) // warm the scratch
		allocs := testing.AllocsPerRun(50, func() {
			s.SampleInto(&dst, 64, rng)
			buf.GatherAll(dst.Indices, batches)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per sample+gather, want 0", s.Name(), allocs)
		}
	}
}

// TestInsertionOrderIntoReusesStorage covers the allocation fix on the
// restore path helper.
func TestInsertionOrderIntoReusesStorage(t *testing.T) {
	buf := NewBuffer(testSpec(16))
	fillBuffer(buf, 24) // wraps: oldest at the write cursor
	want := buf.InsertionOrder()
	scratch := make([]int, 0, 16)
	got := buf.InsertionOrderInto(scratch)
	if len(got) != len(want) {
		t.Fatalf("InsertionOrderInto len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("InsertionOrderInto did not reuse caller storage")
	}
	allocs := testing.AllocsPerRun(20, func() {
		got = buf.InsertionOrderInto(got)
	})
	if allocs != 0 {
		t.Fatalf("InsertionOrderInto allocates %v per call with warm storage, want 0", allocs)
	}
}
