package replay

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// RankPERSampler implements the rank-based variant of prioritized
// experience replay (Schaul et al., 2015): sampling probability
// P(i) ∝ 1/rank(i), where rank orders transitions by |TD error|. Rank-based
// prioritization is less sensitive to outlier TD magnitudes than the
// proportional variant; it is included as an additional baseline for the
// prioritization ablations.
//
// The rank order is rebuilt lazily: updates mark the order dirty and the
// next Sample re-sorts, amortizing the O(n log n) cost across the batch.
type RankPERSampler struct {
	buf  *Buffer
	Beta float64 // importance-weight compensation

	// mu serializes the lazy rebuild: SampleInto may be called from
	// several update workers at once, and the first caller after an
	// UpdatePriorities re-sorts order/cum in place. The rebuild is
	// deterministic (stable sort over priorities), so whichever worker
	// wins produces the same order and the rest sample read-only.
	mu sync.Mutex

	priorities []float64
	order      []int     // slot indices sorted by priority, descending
	cum        []float64 // cumulative 1/rank masses over order
	dirty      bool
	maxPri     float64
	sanitized  uint64 // TD errors clamped by sanitizePriority
}

// NewRankPERSampler builds a rank-based sampler over buf with β=0.4.
func NewRankPERSampler(buf *Buffer) *RankPERSampler {
	s := &RankPERSampler{
		buf:        buf,
		Beta:       0.4,
		priorities: make([]float64, buf.Capacity()),
		maxPri:     1,
	}
	buf.AddListener(s.onAdd)
	return s
}

// Name implements Sampler.
func (s *RankPERSampler) Name() string { return "rank-per" }

func (s *RankPERSampler) onAdd(idx int) {
	s.priorities[idx] = s.maxPri
	s.dirty = true
}

// rebuild re-sorts the rank order and cumulative masses.
func (s *RankPERSampler) rebuild() {
	n := s.buf.Len()
	s.order = s.order[:0]
	for i := 0; i < n; i++ {
		s.order = append(s.order, i)
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return s.priorities[s.order[a]] > s.priorities[s.order[b]]
	})
	s.cum = s.cum[:0]
	var total float64
	for rank := 1; rank <= n; rank++ {
		total += 1 / float64(rank)
		s.cum = append(s.cum, total)
	}
	s.dirty = false
}

// Sample implements Sampler with stratified rank-proportional draws.
func (s *RankPERSampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler.
func (s *RankPERSampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	s.mu.Lock()
	if s.dirty || len(s.order) != length {
		s.rebuild()
	}
	s.mu.Unlock()
	total := s.cum[len(s.cum)-1]
	dst.Reset(n)
	dst.growWeights(n)
	segment := total / float64(n)
	flen := float64(length)
	maxW := 0.0
	for i := 0; i < n; i++ {
		v := (float64(i) + rng.Float64()) * segment
		pos := sort.SearchFloat64s(s.cum, v)
		if pos >= length {
			pos = length - 1
		}
		dst.Indices = append(dst.Indices, s.order[pos])
		prob := (1 / float64(pos+1)) / total
		w := math.Pow(1/(flen*prob), s.Beta)
		dst.Weights = append(dst.Weights, w)
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range dst.Weights {
			dst.Weights[i] /= maxW
		}
	}
}

// UpdatePriorities implements PrioritySampler. Non-finite and negative TD
// errors are clamped to priorityFloor (and counted) before they can skew
// the rank order — a single NaN priority makes the sort comparator
// inconsistent, scrambling every subsequent rank.
func (s *RankPERSampler) UpdatePriorities(indices []int, tdAbs []float64) {
	if len(indices) != len(tdAbs) {
		panic(fmt.Sprintf("replay: UpdatePriorities got %d indices, %d errors", len(indices), len(tdAbs)))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(s.priorities) {
			panic(fmt.Sprintf("replay: priority index %d outside [0,%d)", idx, len(s.priorities)))
		}
		td, clamped := sanitizePriority(tdAbs[i])
		if clamped {
			s.sanitized++
		}
		if td > s.maxPri {
			s.maxPri = td
		}
		s.priorities[idx] = td
	}
	s.dirty = true
}

// SanitizedCount returns how many TD errors were clamped because they were
// NaN, Inf or negative.
func (s *RankPERSampler) SanitizedCount() uint64 { return s.sanitized }
