package replay

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RankPERSampler implements the rank-based variant of prioritized
// experience replay (Schaul et al., 2015): sampling probability
// P(i) ∝ 1/rank(i), where rank orders transitions by |TD error|. Rank-based
// prioritization is less sensitive to outlier TD magnitudes than the
// proportional variant; it is included as an additional baseline for the
// prioritization ablations.
//
// The rank order is rebuilt lazily: updates mark the order dirty and the
// next Sample re-sorts, amortizing the O(n log n) cost across the batch.
type RankPERSampler struct {
	buf  *Buffer
	Beta float64 // importance-weight compensation

	priorities []float64
	order      []int     // slot indices sorted by priority, descending
	cum        []float64 // cumulative 1/rank masses over order
	dirty      bool
	maxPri     float64
	sanitized  uint64 // TD errors clamped by sanitizePriority
}

// NewRankPERSampler builds a rank-based sampler over buf with β=0.4.
func NewRankPERSampler(buf *Buffer) *RankPERSampler {
	s := &RankPERSampler{
		buf:        buf,
		Beta:       0.4,
		priorities: make([]float64, buf.Capacity()),
		maxPri:     1,
	}
	buf.AddListener(s.onAdd)
	return s
}

// Name implements Sampler.
func (s *RankPERSampler) Name() string { return "rank-per" }

func (s *RankPERSampler) onAdd(idx int) {
	s.priorities[idx] = s.maxPri
	s.dirty = true
}

// rebuild re-sorts the rank order and cumulative masses.
func (s *RankPERSampler) rebuild() {
	n := s.buf.Len()
	s.order = s.order[:0]
	for i := 0; i < n; i++ {
		s.order = append(s.order, i)
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return s.priorities[s.order[a]] > s.priorities[s.order[b]]
	})
	s.cum = s.cum[:0]
	var total float64
	for rank := 1; rank <= n; rank++ {
		total += 1 / float64(rank)
		s.cum = append(s.cum, total)
	}
	s.dirty = false
}

// Sample implements Sampler with stratified rank-proportional draws.
func (s *RankPERSampler) Sample(n int, rng *rand.Rand) Sample {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	if s.dirty || len(s.order) != length {
		s.rebuild()
	}
	total := s.cum[len(s.cum)-1]
	idx := make([]int, n)
	weights := make([]float64, n)
	segment := total / float64(n)
	flen := float64(length)
	maxW := 0.0
	for i := 0; i < n; i++ {
		v := (float64(i) + rng.Float64()) * segment
		pos := sort.SearchFloat64s(s.cum, v)
		if pos >= length {
			pos = length - 1
		}
		idx[i] = s.order[pos]
		prob := (1 / float64(pos+1)) / total
		w := math.Pow(1/(flen*prob), s.Beta)
		weights[i] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= maxW
		}
	}
	return Sample{Indices: idx, Weights: weights}
}

// UpdatePriorities implements PrioritySampler. Non-finite and negative TD
// errors are clamped to priorityFloor (and counted) before they can skew
// the rank order — a single NaN priority makes the sort comparator
// inconsistent, scrambling every subsequent rank.
func (s *RankPERSampler) UpdatePriorities(indices []int, tdAbs []float64) {
	if len(indices) != len(tdAbs) {
		panic(fmt.Sprintf("replay: UpdatePriorities got %d indices, %d errors", len(indices), len(tdAbs)))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(s.priorities) {
			panic(fmt.Sprintf("replay: priority index %d outside [0,%d)", idx, len(s.priorities)))
		}
		td, clamped := sanitizePriority(tdAbs[i])
		if clamped {
			s.sanitized++
		}
		if td > s.maxPri {
			s.maxPri = td
		}
		s.priorities[idx] = td
	}
	s.dirty = true
}

// SanitizedCount returns how many TD errors were clamped because they were
// NaN, Inf or negative.
func (s *RankPERSampler) SanitizedCount() uint64 { return s.sanitized }
