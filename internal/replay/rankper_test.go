package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankPERSampleShapes(t *testing.T) {
	b := NewBuffer(testSpec(128))
	s := NewRankPERSampler(b)
	fillBuffer(b, 100)
	sample := s.Sample(64, rand.New(rand.NewSource(1)))
	if len(sample.Indices) != 64 || len(sample.Weights) != 64 {
		t.Fatalf("sample sizes %d/%d", len(sample.Indices), len(sample.Weights))
	}
	maxW := 0.0
	for i, idx := range sample.Indices {
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		if sample.Weights[i] <= 0 || sample.Weights[i] > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", sample.Weights[i])
		}
		if sample.Weights[i] > maxW {
			maxW = sample.Weights[i]
		}
	}
	if math.Abs(maxW-1) > 1e-9 {
		t.Fatalf("max weight = %v, want 1", maxW)
	}
}

func TestRankPERTopRankDominates(t *testing.T) {
	b := NewBuffer(testSpec(64))
	s := NewRankPERSampler(b)
	fillBuffer(b, 40)
	idx := make([]int, 40)
	td := make([]float64, 40)
	for i := range idx {
		idx[i] = i
		td[i] = 0.001
	}
	td[13] = 100 // rank 1
	s.UpdatePriorities(idx, td)
	sample := s.Sample(400, rand.New(rand.NewSource(2)))
	count := 0
	for _, i := range sample.Indices {
		if i == 13 {
			count++
		}
	}
	// Rank 1 of 40 carries 1/H(40) ≈ 23% of the mass.
	if count < 50 {
		t.Fatalf("rank-1 transition sampled only %d/400 times", count)
	}
}

func TestRankPERLessSensitiveToOutliersThanProportional(t *testing.T) {
	// With one extreme TD error, proportional sampling concentrates almost
	// entirely on it while rank-based keeps a bounded share — the property
	// that motivates the variant.
	spec := testSpec(64)
	count := func(s PrioritySampler) int {
		idx := make([]int, 40)
		td := make([]float64, 40)
		for i := range idx {
			idx[i] = i
			td[i] = 0.01
		}
		td[7] = 1e6
		s.UpdatePriorities(idx, td)
		sample := s.Sample(400, rand.New(rand.NewSource(3)))
		c := 0
		for _, i := range sample.Indices {
			if i == 7 {
				c++
			}
		}
		return c
	}
	bProp := NewBuffer(spec)
	prop := NewPERSampler(bProp)
	fillBuffer(bProp, 40)
	bRank := NewBuffer(spec)
	rank := NewRankPERSampler(bRank)
	fillBuffer(bRank, 40)
	cProp := count(prop)
	cRank := count(rank)
	if cRank >= cProp {
		t.Fatalf("rank-based (%d) should concentrate less than proportional (%d)", cRank, cProp)
	}
}

func TestRankPERRebuildAfterUpdates(t *testing.T) {
	b := NewBuffer(testSpec(32))
	s := NewRankPERSampler(b)
	fillBuffer(b, 10)
	rng := rand.New(rand.NewSource(4))
	s.Sample(8, rng) // builds order
	// Promote index 9 to rank 1 and verify sampling notices.
	s.UpdatePriorities([]int{9}, []float64{50})
	sample := s.Sample(200, rng)
	count := 0
	for _, i := range sample.Indices {
		if i == 9 {
			count++
		}
	}
	if count < 20 {
		t.Fatalf("updated priority ignored: index 9 sampled %d/200", count)
	}
}

func TestRankPERPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty sample", func() {
			s := NewRankPERSampler(NewBuffer(testSpec(8)))
			s.Sample(4, rand.New(rand.NewSource(1)))
		}},
		{"length mismatch", func() {
			b := NewBuffer(testSpec(8))
			s := NewRankPERSampler(b)
			fillBuffer(b, 2)
			s.UpdatePriorities([]int{0, 1}, []float64{1})
		}},
		{"bad index", func() {
			s := NewRankPERSampler(NewBuffer(testSpec(8)))
			s.UpdatePriorities([]int{999}, []float64{1})
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

// Property: the rank order always holds — higher priority ⇒ earlier rank.
func TestRankPEROrderInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuffer(testSpec(64))
		s := NewRankPERSampler(b)
		n := 5 + r.Intn(50)
		fillBuffer(b, n)
		var idx []int
		var td []float64
		for i := 0; i < n; i++ {
			idx = append(idx, i)
			td = append(td, r.Float64()*10)
		}
		s.UpdatePriorities(idx, td)
		s.Sample(4, r) // force rebuild
		for i := 1; i < len(s.order); i++ {
			if s.priorities[s.order[i-1]] < s.priorities[s.order[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
