package replay

import "fmt"

// SumTree is the classic binary-indexed priority tree used by proportional
// prioritized experience replay: leaf i holds priority p_i, internal nodes
// hold subtree sums, so sampling proportional to priority is O(log n).
type SumTree struct {
	capacity int
	nodes    []float64 // 1-indexed heap layout: nodes[1] is the root
}

// NewSumTree returns a tree over capacity leaves, all zero priority.
func NewSumTree(capacity int) *SumTree {
	if capacity < 1 {
		panic(fmt.Sprintf("replay: SumTree capacity %d, want ≥1", capacity))
	}
	// Round leaves up to a power of two for a clean implicit layout.
	leaves := 1
	for leaves < capacity {
		leaves *= 2
	}
	return &SumTree{capacity: capacity, nodes: make([]float64, 2*leaves)}
}

// leafBase returns the index of leaf 0 in the node array.
func (t *SumTree) leafBase() int { return len(t.nodes) / 2 }

// Set assigns priority p to leaf idx and updates ancestor sums.
func (t *SumTree) Set(idx int, p float64) {
	if idx < 0 || idx >= t.capacity {
		panic(fmt.Sprintf("replay: SumTree index %d outside [0,%d)", idx, t.capacity))
	}
	if p < 0 {
		panic(fmt.Sprintf("replay: negative priority %v", p))
	}
	node := t.leafBase() + idx
	delta := p - t.nodes[node]
	for node >= 1 {
		t.nodes[node] += delta
		node /= 2
	}
}

// Get returns the priority at leaf idx.
func (t *SumTree) Get(idx int) float64 {
	if idx < 0 || idx >= t.capacity {
		panic(fmt.Sprintf("replay: SumTree index %d outside [0,%d)", idx, t.capacity))
	}
	return t.nodes[t.leafBase()+idx]
}

// Total returns the sum of all priorities.
func (t *SumTree) Total() float64 { return t.nodes[1] }

// Find returns the leaf index whose cumulative-priority interval contains
// value v ∈ [0, Total), i.e. proportional sampling.
func (t *SumTree) Find(v float64) int {
	if t.Total() <= 0 {
		panic("replay: Find on empty SumTree")
	}
	if v < 0 {
		v = 0
	}
	node := 1
	base := t.leafBase()
	for node < base {
		left := 2 * node
		if v < t.nodes[left] {
			node = left
		} else {
			v -= t.nodes[left]
			node = left + 1
		}
	}
	idx := node - base
	if idx >= t.capacity {
		// Floating-point drift can walk past the last populated leaf; clamp.
		idx = t.capacity - 1
	}
	return idx
}
