package replay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKVBufferRowStride(t *testing.T) {
	k := NewKVBuffer(testSpec(8))
	// Per agent: 2·obsDim + actDim + 2. Agents have obs 4, 4, 6; act 5.
	want := (2*4 + 5 + 2) + (2*4 + 5 + 2) + (2*6 + 5 + 2)
	if k.RowStride() != want {
		t.Fatalf("RowStride = %d, want %d", k.RowStride(), want)
	}
}

func TestKVReorganizeMatchesBaselineGather(t *testing.T) {
	spec := testSpec(64)
	b := NewBuffer(spec)
	fillBuffer(b, 40)
	k := NewKVBuffer(spec)
	if n := k.ReorganizeFrom(b); n != 40 {
		t.Fatalf("ReorganizeFrom copied %d, want 40", n)
	}

	indices := []int{0, 7, 13, 39}
	baseBatches := make([]*AgentBatch, spec.NumAgents)
	kvBatches := make([]*AgentBatch, spec.NumAgents)
	for a := range baseBatches {
		baseBatches[a] = NewAgentBatch(len(indices), spec.ObsDims[a], spec.ActDim)
		kvBatches[a] = NewAgentBatch(len(indices), spec.ObsDims[a], spec.ActDim)
	}
	b.GatherAll(indices, baseBatches)
	k.GatherAll(indices, kvBatches)
	for a := 0; a < spec.NumAgents; a++ {
		for _, pair := range []struct{ base, kv []float64 }{
			{baseBatches[a].Obs.Data, kvBatches[a].Obs.Data},
			{baseBatches[a].Act.Data, kvBatches[a].Act.Data},
			{baseBatches[a].Rew.Data, kvBatches[a].Rew.Data},
			{baseBatches[a].NextObs.Data, kvBatches[a].NextObs.Data},
			{baseBatches[a].Done.Data, kvBatches[a].Done.Data},
		} {
			for i := range pair.base {
				if pair.base[i] != pair.kv[i] {
					t.Fatalf("agent %d field mismatch at %d: %v vs %v", a, i, pair.base[i], pair.kv[i])
				}
			}
		}
	}
}

func TestKVDirectAddMatchesReorganized(t *testing.T) {
	spec := testSpec(32)
	b := NewBuffer(spec)
	k := NewKVBuffer(spec)
	// Feed identical streams into both paths.
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 20; step++ {
		obs := make([][]float64, spec.NumAgents)
		act := make([][]float64, spec.NumAgents)
		rew := make([]float64, spec.NumAgents)
		nextObs := make([][]float64, spec.NumAgents)
		done := make([]float64, spec.NumAgents)
		for a := 0; a < spec.NumAgents; a++ {
			obs[a] = make([]float64, spec.ObsDims[a])
			nextObs[a] = make([]float64, spec.ObsDims[a])
			act[a] = make([]float64, spec.ActDim)
			for j := range obs[a] {
				obs[a][j] = rng.Float64()
				nextObs[a][j] = rng.Float64()
			}
			act[a][rng.Intn(spec.ActDim)] = 1
			rew[a] = rng.NormFloat64()
		}
		b.Add(obs, act, rew, nextObs, done)
		k.Add(obs, act, rew, nextObs, done)
	}
	k2 := NewKVBuffer(spec)
	k2.ReorganizeFrom(b)
	if k.Len() != k2.Len() {
		t.Fatalf("lengths differ: %d vs %d", k.Len(), k2.Len())
	}
	for i := range k.data {
		if k.data[i] != k2.data[i] {
			t.Fatalf("interleaved data differs at %d", i)
		}
	}
}

func TestKVGatherEmitsOneAccessPerRow(t *testing.T) {
	spec := testSpec(16)
	b := NewBuffer(spec)
	fillBuffer(b, 10)
	k := NewKVBuffer(spec)
	k.ReorganizeFrom(b)
	tr := &recordingTracer{}
	k.SetTracer(tr)
	batches := make([]*AgentBatch, spec.NumAgents)
	for a := range batches {
		batches[a] = NewAgentBatch(4, spec.ObsDims[a], spec.ActDim)
	}
	k.GatherAll([]int{1, 3, 5, 7}, batches)
	if len(tr.addrs) != 4 {
		t.Fatalf("KV gather emitted %d accesses, want 4 (one per row)", len(tr.addrs))
	}
	for i, size := range tr.sizes {
		if size != k.RowStride()*8 {
			t.Fatalf("access %d size %d, want full row %d", i, size, k.RowStride()*8)
		}
	}
}

func TestKVGatherOutOfRangePanics(t *testing.T) {
	spec := testSpec(8)
	k := NewKVBuffer(spec)
	batches := make([]*AgentBatch, spec.NumAgents)
	for a := range batches {
		batches[a] = NewAgentBatch(1, spec.ObsDims[a], spec.ActDim)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KV gather on empty table did not panic")
		}
	}()
	k.GatherAll([]int{0}, batches)
}

func TestKVReorganizeSpecMismatchPanics(t *testing.T) {
	k := NewKVBuffer(testSpec(8))
	other := NewBuffer(Spec{NumAgents: 2, ObsDims: []int{4, 4}, ActDim: 5, Capacity: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("spec mismatch did not panic")
		}
	}()
	k.ReorganizeFrom(other)
}

func TestKVAddWrapsRing(t *testing.T) {
	spec := testSpec(4)
	k := NewKVBuffer(spec)
	mk := func(v float64) ([][]float64, [][]float64, []float64, [][]float64, []float64) {
		obs := make([][]float64, spec.NumAgents)
		act := make([][]float64, spec.NumAgents)
		rew := make([]float64, spec.NumAgents)
		nextObs := make([][]float64, spec.NumAgents)
		done := make([]float64, spec.NumAgents)
		for a := 0; a < spec.NumAgents; a++ {
			obs[a] = make([]float64, spec.ObsDims[a])
			obs[a][0] = v
			nextObs[a] = make([]float64, spec.ObsDims[a])
			act[a] = make([]float64, spec.ActDim)
		}
		return obs, act, rew, nextObs, done
	}
	for i := 0; i < 6; i++ {
		obs, act, rew, nextObs, done := mk(float64(i))
		k.Add(obs, act, rew, nextObs, done)
	}
	if k.Len() != 4 {
		t.Fatalf("Len = %d, want 4", k.Len())
	}
	batches := make([]*AgentBatch, spec.NumAgents)
	for a := range batches {
		batches[a] = NewAgentBatch(1, spec.ObsDims[a], spec.ActDim)
	}
	k.GatherAll([]int{0}, batches) // slot 0 should hold step 4
	if got := batches[0].Obs.At(0, 0); got != 4 {
		t.Fatalf("wrapped slot 0 = %v, want 4", got)
	}
}

// Property: for any random fill and index set, KV gather equals baseline
// gather field-for-field.
func TestKVEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := Spec{
			NumAgents: 1 + r.Intn(4),
			ActDim:    1 + r.Intn(5),
			Capacity:  8 + r.Intn(56),
		}
		spec.ObsDims = make([]int, spec.NumAgents)
		for a := range spec.ObsDims {
			spec.ObsDims[a] = 1 + r.Intn(8)
		}
		b := NewBuffer(spec)
		n := 1 + r.Intn(spec.Capacity)
		for step := 0; step < n; step++ {
			obs := make([][]float64, spec.NumAgents)
			act := make([][]float64, spec.NumAgents)
			rew := make([]float64, spec.NumAgents)
			nextObs := make([][]float64, spec.NumAgents)
			done := make([]float64, spec.NumAgents)
			for a := 0; a < spec.NumAgents; a++ {
				obs[a] = randomRow(r, spec.ObsDims[a])
				nextObs[a] = randomRow(r, spec.ObsDims[a])
				act[a] = randomRow(r, spec.ActDim)
				rew[a] = r.NormFloat64()
				done[a] = float64(r.Intn(2))
			}
			b.Add(obs, act, rew, nextObs, done)
		}
		k := NewKVBuffer(spec)
		k.ReorganizeFrom(b)
		m := 1 + r.Intn(16)
		indices := make([]int, m)
		for i := range indices {
			indices[i] = r.Intn(n)
		}
		bb := make([]*AgentBatch, spec.NumAgents)
		kb := make([]*AgentBatch, spec.NumAgents)
		for a := range bb {
			bb[a] = NewAgentBatch(m, spec.ObsDims[a], spec.ActDim)
			kb[a] = NewAgentBatch(m, spec.ObsDims[a], spec.ActDim)
		}
		b.GatherAll(indices, bb)
		k.GatherAll(indices, kb)
		for a := range bb {
			for i := range bb[a].Obs.Data {
				if bb[a].Obs.Data[i] != kb[a].Obs.Data[i] {
					return false
				}
			}
			for i := range bb[a].Rew.Data {
				if bb[a].Rew.Data[i] != kb[a].Rew.Data[i] || bb[a].Done.Data[i] != kb[a].Done.Data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomRow(r *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	for i := range row {
		row[i] = r.NormFloat64()
	}
	return row
}
