package replay

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer(testSpec(32))
	fillBuffer(b, 20)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadBuffer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 20 || restored.Capacity() != 32 {
		t.Fatalf("restored Len=%d Cap=%d", restored.Len(), restored.Capacity())
	}
	// Gathers must produce identical batches.
	indices := []int{0, 7, 19}
	spec := b.Spec()
	for a := 0; a < spec.NumAgents; a++ {
		want := NewAgentBatch(3, spec.ObsDims[a], spec.ActDim)
		got := NewAgentBatch(3, spec.ObsDims[a], spec.ActDim)
		b.Gather(a, indices, want)
		restored.Gather(a, indices, got)
		for i := range want.Obs.Data {
			if want.Obs.Data[i] != got.Obs.Data[i] {
				t.Fatalf("agent %d obs differs after round-trip", a)
			}
		}
		for i := range want.Rew.Data {
			if want.Rew.Data[i] != got.Rew.Data[i] || want.Done.Data[i] != got.Done.Data[i] {
				t.Fatalf("agent %d scalars differ after round-trip", a)
			}
		}
	}
}

func TestBufferRoundTripContinuesRing(t *testing.T) {
	b := NewBuffer(testSpec(4))
	fillBuffer(b, 6) // wrapped: next == 2
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadBuffer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The next Add must land where the original would have (slot 2).
	var seen []int
	restored.AddListener(func(idx int) { seen = append(seen, idx) })
	fillBuffer(restored, 1)
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("restored ring cursor wrong: adds landed at %v, want [2]", seen)
	}
}

func TestReadBufferRejectsGarbage(t *testing.T) {
	if _, err := ReadBuffer(strings.NewReader("garbage data here")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadBufferRejectsTruncated(t *testing.T) {
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 5)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 8, 20, len(data) / 2} {
		if _, err := ReadBuffer(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadBufferRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(bufMagic)
	putU32(&buf, bufVersion)
	putU32(&buf, 1<<20) // absurd agent count
	putU32(&buf, 5)
	putU32(&buf, 100)
	if _, err := ReadBuffer(&buf); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestReadBufferRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(bufMagic)
	putU32(&buf, 99)
	if _, err := ReadBuffer(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func FuzzReadBuffer(f *testing.F) {
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 5)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MARB"))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncated mid-payload
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xAA
	f.Add(mutated)
	// A header demanding a huge allocation (giant capacity) must be
	// rejected by the plausibility bounds, not attempted.
	huge := append([]byte(nil), valid[:16]...)
	binary.LittleEndian.PutUint32(huge[12:], 1<<27)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := ReadBuffer(bytes.NewReader(data))
		if err != nil {
			return
		}
		if restored.Len() > restored.Capacity() {
			t.Fatal("parsed buffer violates invariants")
		}
	})
}
