package replay

import (
	"fmt"
	"math/rand"
	"sync"
)

// ReuseSampler models the transition-reuse strategy of AccMER (Gogineni et
// al., 2023 — cited as related work [43]): a drawn mini-batch is reused for
// a window of W consecutive updates before fresh indices are sampled,
// trading sampling freshness for data-movement savings. It wraps any inner
// sampler, so reuse composes with uniform, locality-aware, or prioritized
// index generation.
type ReuseSampler struct {
	inner  Sampler
	Window int

	mu        sync.Mutex // guards the cache: SampleInto mutates it on refresh
	cached    Sample
	usesLeft  int
	cachedFor int // batch size the cache was drawn for
}

// NewReuseSampler wraps inner so each drawn batch is reused window times
// (window=1 behaves exactly like inner).
func NewReuseSampler(inner Sampler, window int) *ReuseSampler {
	if window < 1 {
		panic(fmt.Sprintf("replay: reuse window %d, want ≥1", window))
	}
	return &ReuseSampler{inner: inner, Window: window}
}

// Name implements Sampler.
func (s *ReuseSampler) Name() string {
	return fmt.Sprintf("reuse(w=%d,%s)", s.Window, s.inner.Name())
}

// Sample implements Sampler: it returns the cached batch while the window
// lasts, then refreshes from the inner sampler. A change in requested batch
// size invalidates the cache.
func (s *ReuseSampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler. The cache is copied into dst rather than
// aliased, so concurrent callers (serialized on the refresh by the mutex)
// each get independent storage.
func (s *ReuseSampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	s.mu.Lock()
	if s.usesLeft > 0 && s.cachedFor == n {
		s.usesLeft--
	} else {
		s.inner.SampleInto(&s.cached, n, rng)
		s.cachedFor = n
		s.usesLeft = s.Window - 1
	}
	dst.Reset(len(s.cached.Indices))
	dst.Indices = append(dst.Indices, s.cached.Indices...)
	dst.growWeights(len(s.cached.Weights))
	dst.Weights = append(dst.Weights, s.cached.Weights...)
	dst.growRefs(len(s.cached.Refs))
	dst.Refs = append(dst.Refs, s.cached.Refs...)
	s.mu.Unlock()
}

// UpdatePriorities forwards TD errors to the inner sampler when it is
// prioritized; otherwise it is a no-op, so reuse can wrap any sampler under
// a PrioritySampler-shaped caller.
func (s *ReuseSampler) UpdatePriorities(indices []int, tdAbs []float64) {
	if ps, ok := s.inner.(PrioritySampler); ok {
		ps.UpdatePriorities(indices, tdAbs)
	}
}
