package replay

import (
	"fmt"
	"math/rand"
)

// ReuseSampler models the transition-reuse strategy of AccMER (Gogineni et
// al., 2023 — cited as related work [43]): a drawn mini-batch is reused for
// a window of W consecutive updates before fresh indices are sampled,
// trading sampling freshness for data-movement savings. It wraps any inner
// sampler, so reuse composes with uniform, locality-aware, or prioritized
// index generation.
type ReuseSampler struct {
	inner  Sampler
	Window int

	cached    Sample
	usesLeft  int
	cachedFor int // batch size the cache was drawn for
}

// NewReuseSampler wraps inner so each drawn batch is reused window times
// (window=1 behaves exactly like inner).
func NewReuseSampler(inner Sampler, window int) *ReuseSampler {
	if window < 1 {
		panic(fmt.Sprintf("replay: reuse window %d, want ≥1", window))
	}
	return &ReuseSampler{inner: inner, Window: window}
}

// Name implements Sampler.
func (s *ReuseSampler) Name() string {
	return fmt.Sprintf("reuse(w=%d,%s)", s.Window, s.inner.Name())
}

// Sample implements Sampler: it returns the cached batch while the window
// lasts, then refreshes from the inner sampler. A change in requested batch
// size invalidates the cache.
func (s *ReuseSampler) Sample(n int, rng *rand.Rand) Sample {
	if s.usesLeft > 0 && s.cachedFor == n {
		s.usesLeft--
		return s.cached
	}
	s.cached = s.inner.Sample(n, rng)
	s.cachedFor = n
	s.usesLeft = s.Window - 1
	return s.cached
}

// UpdatePriorities forwards TD errors to the inner sampler when it is
// prioritized; otherwise it is a no-op, so reuse can wrap any sampler under
// a PrioritySampler-shaped caller.
func (s *ReuseSampler) UpdatePriorities(indices []int, tdAbs []float64) {
	if ps, ok := s.inner.(PrioritySampler); ok {
		ps.UpdatePriorities(indices, tdAbs)
	}
}
