package replay

import "fmt"

// RowLayout is the paper's key-value row shape (§IV-B2) factored out of
// KVBuffer so every component that stores or ships interleaved transition
// rows — the in-process KV table, the segment-packed experience store, and
// the actor/learner wire format — agrees on one layout: for each agent, in
// agent order, [obs, act, rew, nextObs, done] laid out contiguously. One
// row holds every agent's view of a single environment step.
type RowLayout struct {
	spec   Spec
	stride int   // float64s per row (all agents, all fields)
	obsOff []int // per-agent offset of obs within a row
	actOff []int
	rewOff []int
	nxtOff []int
	dnOff  []int
}

// NewRowLayout computes the interleaved row layout for spec.
func NewRowLayout(spec Spec) RowLayout {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	l := RowLayout{
		spec:   spec,
		obsOff: make([]int, spec.NumAgents),
		actOff: make([]int, spec.NumAgents),
		rewOff: make([]int, spec.NumAgents),
		nxtOff: make([]int, spec.NumAgents),
		dnOff:  make([]int, spec.NumAgents),
	}
	off := 0
	for a := 0; a < spec.NumAgents; a++ {
		od := spec.ObsDims[a]
		l.obsOff[a] = off
		off += od
		l.actOff[a] = off
		off += spec.ActDim
		l.rewOff[a] = off
		off++
		l.nxtOff[a] = off
		off += od
		l.dnOff[a] = off
		off++
	}
	l.stride = off
	return l
}

// Spec returns the transition shape the layout was built for.
func (l RowLayout) Spec() Spec { return l.spec }

// Stride returns the float64 count of one interleaved row.
func (l RowLayout) Stride() int { return l.stride }

// PackRow interleaves one environment step (per-agent obs/act/rew/nextObs/
// done) into dst, which must hold Stride() float64s.
func (l RowLayout) PackRow(dst []float64, obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) {
	n := l.spec.NumAgents
	if len(obs) != n || len(act) != n || len(rew) != n || len(nextObs) != n || len(done) != n {
		panic(fmt.Sprintf("replay: PackRow got %d/%d/%d/%d/%d rows, want %d each", len(obs), len(act), len(rew), len(nextObs), len(done), n))
	}
	if len(dst) < l.stride {
		panic(fmt.Sprintf("replay: PackRow dst %d floats, want %d", len(dst), l.stride))
	}
	ad := l.spec.ActDim
	for a := 0; a < n; a++ {
		od := l.spec.ObsDims[a]
		copy(dst[l.obsOff[a]:l.obsOff[a]+od], obs[a])
		copy(dst[l.actOff[a]:l.actOff[a]+ad], act[a])
		dst[l.rewOff[a]] = rew[a]
		copy(dst[l.nxtOff[a]:l.nxtOff[a]+od], nextObs[a])
		dst[l.dnOff[a]] = done[a]
	}
}

// SplitRowInto scatters one interleaved row into batch row rowN of the
// per-agent tensors — the per-row leg of the "data reshaping" pass.
func (l RowLayout) SplitRowInto(dst []*AgentBatch, rowN int, row []float64) {
	if len(dst) != l.spec.NumAgents {
		panic(fmt.Sprintf("replay: SplitRowInto got %d batches for %d agents", len(dst), l.spec.NumAgents))
	}
	ad := l.spec.ActDim
	for a := 0; a < l.spec.NumAgents; a++ {
		od := l.spec.ObsDims[a]
		d := dst[a]
		copy(d.Obs.Row(rowN), row[l.obsOff[a]:l.obsOff[a]+od])
		copy(d.Act.Row(rowN), row[l.actOff[a]:l.actOff[a]+ad])
		d.Rew.Data[rowN] = row[l.rewOff[a]]
		copy(d.NextObs.Row(rowN), row[l.nxtOff[a]:l.nxtOff[a]+od])
		d.Done.Data[rowN] = row[l.dnOff[a]]
	}
}

// SplitRows scatters count packed rows into the per-agent batch tensors.
func (l RowLayout) SplitRows(rows []float64, count int, dst []*AgentBatch) {
	if len(rows) < count*l.stride {
		panic(fmt.Sprintf("replay: SplitRows got %d floats for %d rows of %d", len(rows), count, l.stride))
	}
	for rowN := 0; rowN < count; rowN++ {
		l.SplitRowInto(dst, rowN, rows[rowN*l.stride:(rowN+1)*l.stride])
	}
}
