package replay

import (
	"fmt"
	"math/rand"
)

// Sample is the result of one mini-batch index selection.
type Sample struct {
	Indices []int
	// Weights holds the Lemma-1 importance-sampling weights, normalized so
	// the largest is 1. A nil or empty slice means uniform (all-ones)
	// weights.
	Weights []float64
	// Refs records the reference points locality-aware samplers expanded,
	// for diagnostics and tests; nil for non-locality samplers.
	Refs []int
}

// Reset truncates the sample's slices in place (retaining capacity) and
// ensures Indices can hold n entries without reallocating. SampleInto
// implementations call it first, so a Sample reused across updates settles
// into zero steady-state allocation.
func (s *Sample) Reset(n int) {
	if cap(s.Indices) < n {
		s.Indices = make([]int, 0, n)
	}
	s.Indices = s.Indices[:0]
	s.Weights = s.Weights[:0]
	s.Refs = s.Refs[:0]
}

// growWeights ensures Weights can hold n entries without reallocating.
func (s *Sample) growWeights(n int) {
	if cap(s.Weights) < n {
		s.Weights = make([]float64, 0, n)
	}
}

// growRefs ensures Refs can hold n entries without reallocating (n is the
// worst case: every reference run truncated after one neighbor).
func (s *Sample) growRefs(n int) {
	if cap(s.Refs) < n {
		s.Refs = make([]int, 0, n)
	}
}

// Sampler produces mini-batch index sets over a buffer.
type Sampler interface {
	// Name identifies the strategy in reports.
	Name() string
	// Sample returns n transition indices (with optional IS weights) in
	// freshly allocated slices.
	Sample(n int, rng *rand.Rand) Sample
	// SampleInto fills dst with n transition indices (and optional IS
	// weights), reusing dst's storage; steady-state calls do not allocate.
	// Concurrent SampleInto calls with distinct dst and rng are safe as
	// long as no priority update or buffer write runs concurrently — the
	// contract of the parallel update engine, which batches TD-error
	// feedback and applies it after all workers join.
	SampleInto(dst *Sample, n int, rng *rand.Rand)
}

// PrioritySampler is a Sampler whose distribution adapts to TD errors.
type PrioritySampler interface {
	Sampler
	// UpdatePriorities refreshes the priorities of the sampled indices with
	// their new absolute TD errors. Not safe to call while SampleInto runs
	// on another goroutine; callers running parallel updates must batch
	// TD errors per worker and apply them after the join.
	UpdatePriorities(indices []int, tdAbs []float64)
}

// sampled adapts a SampleInto implementation to the value-returning Sample
// API, preserving its historical nil-slice conventions.
func sampled(s Sampler, n int, rng *rand.Rand) Sample {
	var dst Sample
	s.SampleInto(&dst, n, rng)
	if len(dst.Weights) == 0 {
		dst.Weights = nil
	}
	if len(dst.Refs) == 0 {
		dst.Refs = nil
	}
	return dst
}

// UniformSampler is the MARL baseline: every index is drawn i.i.d. uniform
// over the buffer, producing the irregular access pattern the paper
// profiles.
type UniformSampler struct {
	buf *Buffer
}

// NewUniformSampler returns the baseline sampler over buf.
func NewUniformSampler(buf *Buffer) *UniformSampler {
	return &UniformSampler{buf: buf}
}

// Name implements Sampler.
func (s *UniformSampler) Name() string { return "uniform" }

// Sample implements Sampler.
func (s *UniformSampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler.
func (s *UniformSampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	dst.Reset(n)
	for i := 0; i < n; i++ {
		dst.Indices = append(dst.Indices, rng.Intn(length))
	}
}

// LocalitySampler implements the paper's Algorithm 1: draw Refs uniform
// reference points and expand each into Neighbors consecutive transitions,
// so the gather stream becomes sequential runs a hardware prefetcher can
// follow. The paper evaluates (Neighbors=16, Refs=64) and (Neighbors=64,
// Refs=16), both covering the batch size 1024.
type LocalitySampler struct {
	buf       *Buffer
	Neighbors int
	Refs      int
}

// NewLocalitySampler returns a cache-locality-aware sampler with the given
// neighbor run length and reference-point count.
func NewLocalitySampler(buf *Buffer, neighbors, refs int) *LocalitySampler {
	if neighbors < 1 || refs < 1 {
		panic(fmt.Sprintf("replay: locality sampler needs positive neighbors/refs, got %d/%d", neighbors, refs))
	}
	return &LocalitySampler{buf: buf, Neighbors: neighbors, Refs: refs}
}

// Name implements Sampler.
func (s *LocalitySampler) Name() string {
	return fmt.Sprintf("locality(n=%d,ref=%d)", s.Neighbors, s.Refs)
}

// Sample implements Sampler. If refs·neighbors < n the remainder is filled
// from additional reference points; if refs·neighbors > n the final run is
// truncated, so exactly n indices are always returned.
func (s *LocalitySampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler.
func (s *LocalitySampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	dst.Reset(n)
	dst.growRefs((n + s.Neighbors - 1) / s.Neighbors)
	for len(dst.Indices) < n {
		ref := rng.Intn(length)
		dst.Refs = append(dst.Refs, ref)
		run := s.Neighbors
		if rem := n - len(dst.Indices); run > rem {
			run = rem
		}
		for k := 0; k < run; k++ {
			dst.Indices = append(dst.Indices, (ref+k)%length)
		}
	}
}
