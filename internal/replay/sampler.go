package replay

import (
	"fmt"
	"math/rand"
)

// Sample is the result of one mini-batch index selection.
type Sample struct {
	Indices []int
	// Weights holds the Lemma-1 importance-sampling weights, normalized so
	// the largest is 1. A nil slice means uniform (all-ones) weights.
	Weights []float64
	// Refs records the reference points locality-aware samplers expanded,
	// for diagnostics and tests; nil for non-locality samplers.
	Refs []int
}

// Sampler produces mini-batch index sets over a buffer.
type Sampler interface {
	// Name identifies the strategy in reports.
	Name() string
	// Sample returns n transition indices (with optional IS weights).
	Sample(n int, rng *rand.Rand) Sample
}

// PrioritySampler is a Sampler whose distribution adapts to TD errors.
type PrioritySampler interface {
	Sampler
	// UpdatePriorities refreshes the priorities of the sampled indices with
	// their new absolute TD errors.
	UpdatePriorities(indices []int, tdAbs []float64)
}

// UniformSampler is the MARL baseline: every index is drawn i.i.d. uniform
// over the buffer, producing the irregular access pattern the paper
// profiles.
type UniformSampler struct {
	buf *Buffer
}

// NewUniformSampler returns the baseline sampler over buf.
func NewUniformSampler(buf *Buffer) *UniformSampler {
	return &UniformSampler{buf: buf}
}

// Name implements Sampler.
func (s *UniformSampler) Name() string { return "uniform" }

// Sample implements Sampler.
func (s *UniformSampler) Sample(n int, rng *rand.Rand) Sample {
	if s.buf.Len() == 0 {
		panic("replay: sampling from empty buffer")
	}
	idx := make([]int, n)
	sampleUniformIndices(idx, s.buf.Len(), rng)
	return Sample{Indices: idx}
}

// LocalitySampler implements the paper's Algorithm 1: draw Refs uniform
// reference points and expand each into Neighbors consecutive transitions,
// so the gather stream becomes sequential runs a hardware prefetcher can
// follow. The paper evaluates (Neighbors=16, Refs=64) and (Neighbors=64,
// Refs=16), both covering the batch size 1024.
type LocalitySampler struct {
	buf       *Buffer
	Neighbors int
	Refs      int
}

// NewLocalitySampler returns a cache-locality-aware sampler with the given
// neighbor run length and reference-point count.
func NewLocalitySampler(buf *Buffer, neighbors, refs int) *LocalitySampler {
	if neighbors < 1 || refs < 1 {
		panic(fmt.Sprintf("replay: locality sampler needs positive neighbors/refs, got %d/%d", neighbors, refs))
	}
	return &LocalitySampler{buf: buf, Neighbors: neighbors, Refs: refs}
}

// Name implements Sampler.
func (s *LocalitySampler) Name() string {
	return fmt.Sprintf("locality(n=%d,ref=%d)", s.Neighbors, s.Refs)
}

// Sample implements Sampler. If refs·neighbors < n the remainder is filled
// from additional reference points; if refs·neighbors > n the final run is
// truncated, so exactly n indices are always returned.
func (s *LocalitySampler) Sample(n int, rng *rand.Rand) Sample {
	length := s.buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	idx := make([]int, 0, n)
	var refs []int
	for len(idx) < n {
		ref := rng.Intn(length)
		refs = append(refs, ref)
		run := s.Neighbors
		if rem := n - len(idx); run > rem {
			run = rem
		}
		for k := 0; k < run; k++ {
			idx = append(idx, (ref+k)%length)
		}
	}
	return Sample{Indices: idx, Refs: refs}
}
