package replay

import (
	"math/rand"
	"testing"
)

// testSpec returns a small 3-agent spec with distinct obs widths.
func testSpec(capacity int) Spec {
	return Spec{NumAgents: 3, ObsDims: []int{4, 4, 6}, ActDim: 5, Capacity: capacity}
}

// fillBuffer adds n synthetic transitions whose values encode (agent, index)
// so gathers can be verified exactly. Transition t has obs[a][j] = enc(t,a)+j
// where enc(t,a) = float64(t*10 + a) * 1000.
func fillBuffer(b *Buffer, n int) {
	spec := b.Spec()
	for t := 0; t < n; t++ {
		obs := make([][]float64, spec.NumAgents)
		act := make([][]float64, spec.NumAgents)
		rew := make([]float64, spec.NumAgents)
		nextObs := make([][]float64, spec.NumAgents)
		done := make([]float64, spec.NumAgents)
		for a := 0; a < spec.NumAgents; a++ {
			enc := float64(t*10+a) * 1000
			obs[a] = make([]float64, spec.ObsDims[a])
			nextObs[a] = make([]float64, spec.ObsDims[a])
			for j := range obs[a] {
				obs[a][j] = enc + float64(j)
				nextObs[a][j] = enc + float64(j) + 0.5
			}
			act[a] = make([]float64, spec.ActDim)
			act[a][t%spec.ActDim] = 1
			rew[a] = enc
			done[a] = float64(t % 2)
		}
		b.Add(obs, act, rew, nextObs, done)
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec(8)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{NumAgents: 0, ObsDims: nil, ActDim: 5, Capacity: 8},
		{NumAgents: 2, ObsDims: []int{4}, ActDim: 5, Capacity: 8},
		{NumAgents: 1, ObsDims: []int{0}, ActDim: 5, Capacity: 8},
		{NumAgents: 1, ObsDims: []int{4}, ActDim: 0, Capacity: 8},
		{NumAgents: 1, ObsDims: []int{4}, ActDim: 5, Capacity: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestBufferAddAndLen(t *testing.T) {
	b := NewBuffer(testSpec(16))
	if b.Len() != 0 || b.Capacity() != 16 {
		t.Fatalf("fresh buffer Len=%d Cap=%d", b.Len(), b.Capacity())
	}
	fillBuffer(b, 5)
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
}

func TestBufferRingWraps(t *testing.T) {
	b := NewBuffer(testSpec(4))
	fillBuffer(b, 10)
	if b.Len() != 4 {
		t.Fatalf("Len after overfill = %d, want 4", b.Len())
	}
	// Slot 0 should now hold transition t=8 (10 adds into capacity 4:
	// t=8 lands on slot 8%4=0).
	batch := NewAgentBatch(1, 4, 5)
	b.Gather(0, []int{0}, batch)
	wantEnc := float64(8*10+0) * 1000
	if batch.Obs.At(0, 0) != wantEnc {
		t.Fatalf("wrapped slot 0 obs = %v, want %v", batch.Obs.At(0, 0), wantEnc)
	}
}

func TestGatherExactValues(t *testing.T) {
	b := NewBuffer(testSpec(16))
	fillBuffer(b, 8)
	batch := NewAgentBatch(3, 6, 5)
	b.Gather(2, []int{1, 5, 7}, batch)
	for row, tIdx := range []int{1, 5, 7} {
		enc := float64(tIdx*10+2) * 1000
		for j := 0; j < 6; j++ {
			if got := batch.Obs.At(row, j); got != enc+float64(j) {
				t.Fatalf("obs[%d][%d] = %v, want %v", row, j, got, enc+float64(j))
			}
			if got := batch.NextObs.At(row, j); got != enc+float64(j)+0.5 {
				t.Fatalf("nextObs[%d][%d] = %v", row, j, got)
			}
		}
		if batch.Rew.Data[row] != enc {
			t.Fatalf("rew[%d] = %v, want %v", row, batch.Rew.Data[row], enc)
		}
		if batch.Done.Data[row] != float64(tIdx%2) {
			t.Fatalf("done[%d] = %v", row, batch.Done.Data[row])
		}
		if batch.Act.At(row, tIdx%5) != 1 {
			t.Fatalf("act[%d] one-hot misplaced: %v", row, batch.Act.Row(row))
		}
	}
}

func TestGatherAllSharedIndices(t *testing.T) {
	b := NewBuffer(testSpec(16))
	fillBuffer(b, 8)
	spec := b.Spec()
	batches := make([]*AgentBatch, spec.NumAgents)
	for a := range batches {
		batches[a] = NewAgentBatch(2, spec.ObsDims[a], spec.ActDim)
	}
	b.GatherAll([]int{3, 6}, batches)
	for a := 0; a < spec.NumAgents; a++ {
		enc := float64(3*10+a) * 1000
		if batches[a].Obs.At(0, 0) != enc {
			t.Fatalf("agent %d row 0 = %v, want %v", a, batches[a].Obs.At(0, 0), enc)
		}
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 3)
	batch := NewAgentBatch(1, 4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Gather past Len did not panic")
		}
	}()
	b.Gather(0, []int{5}, batch)
}

func TestAddShapeMismatchPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong agent count did not panic")
		}
	}()
	b.Add(make([][]float64, 1), make([][]float64, 1), make([]float64, 1), make([][]float64, 1), make([]float64, 1))
}

func TestAddListenerReceivesSlots(t *testing.T) {
	b := NewBuffer(testSpec(4))
	var got []int
	b.AddListener(func(idx int) { got = append(got, idx) })
	fillBuffer(b, 6)
	want := []int{0, 1, 2, 3, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("listener saw %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("listener saw %v, want %v", got, want)
		}
	}
}

// recordingTracer captures emitted accesses for trace tests.
type recordingTracer struct {
	addrs []uint64
	sizes []int
}

func (r *recordingTracer) Access(addr uint64, size int) {
	r.addrs = append(r.addrs, addr)
	r.sizes = append(r.sizes, size)
}

func TestGatherEmitsTraces(t *testing.T) {
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 4)
	tr := &recordingTracer{}
	b.SetTracer(tr)
	batch := NewAgentBatch(2, 4, 5)
	b.Gather(0, []int{0, 2}, batch)
	// 5 regions per index × 2 indices.
	if len(tr.addrs) != 10 {
		t.Fatalf("trace emitted %d accesses, want 10", len(tr.addrs))
	}
	// Different agents' regions must not overlap (distant allocations).
	b.SetTracer(nil)
	tr2 := &recordingTracer{}
	b.SetTracer(tr2)
	b.Gather(1, []int{0}, NewAgentBatch(1, 4, 5))
	for _, a0 := range tr.addrs[:5] {
		for _, a1 := range tr2.addrs {
			if a0 == a1 {
				t.Fatal("agent 0 and agent 1 regions overlap in the synthetic address space")
			}
		}
	}
}

func TestUniformSamplerInRangeAndCoverage(t *testing.T) {
	b := NewBuffer(testSpec(64))
	fillBuffer(b, 50)
	s := NewUniformSampler(b)
	rng := rand.New(rand.NewSource(1))
	sample := s.Sample(1024, rng)
	if len(sample.Indices) != 1024 {
		t.Fatalf("got %d indices", len(sample.Indices))
	}
	if sample.Weights != nil {
		t.Fatal("uniform sampler should not produce weights")
	}
	seen := map[int]bool{}
	for _, i := range sample.Indices {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
		seen[i] = true
	}
	// With 1024 draws over 50 slots every slot should appear.
	if len(seen) != 50 {
		t.Fatalf("uniform sampling covered %d/50 slots", len(seen))
	}
}

func TestUniformSamplerEmptyPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	s := NewUniformSampler(b)
	defer func() {
		if recover() == nil {
			t.Fatal("sampling empty buffer did not panic")
		}
	}()
	s.Sample(4, rand.New(rand.NewSource(1)))
}

func TestLocalitySamplerContiguousRuns(t *testing.T) {
	b := NewBuffer(testSpec(2048))
	fillBuffer(b, 2000)
	s := NewLocalitySampler(b, 16, 64)
	rng := rand.New(rand.NewSource(2))
	sample := s.Sample(1024, rng)
	if len(sample.Indices) != 1024 {
		t.Fatalf("got %d indices, want 1024", len(sample.Indices))
	}
	if len(sample.Refs) != 64 {
		t.Fatalf("got %d refs, want 64", len(sample.Refs))
	}
	// Each run of 16 must be consecutive modulo the buffer length.
	for r := 0; r < 64; r++ {
		base := sample.Indices[r*16]
		for k := 0; k < 16; k++ {
			want := (base + k) % 2000
			if sample.Indices[r*16+k] != want {
				t.Fatalf("run %d offset %d: index %d, want %d", r, k, sample.Indices[r*16+k], want)
			}
		}
	}
}

func TestLocalitySamplerTruncatesFinalRun(t *testing.T) {
	b := NewBuffer(testSpec(256))
	fillBuffer(b, 200)
	s := NewLocalitySampler(b, 64, 16)
	sample := s.Sample(100, rand.New(rand.NewSource(3))) // 100 = 64 + 36
	if len(sample.Indices) != 100 {
		t.Fatalf("got %d indices, want exactly 100", len(sample.Indices))
	}
	if len(sample.Refs) != 2 {
		t.Fatalf("got %d refs, want 2", len(sample.Refs))
	}
}

func TestLocalitySamplerWrapsAroundBufferEnd(t *testing.T) {
	b := NewBuffer(testSpec(64))
	fillBuffer(b, 10)
	s := NewLocalitySampler(b, 8, 1)
	for trial := 0; trial < 200; trial++ {
		sample := s.Sample(8, rand.New(rand.NewSource(int64(trial))))
		for _, i := range sample.Indices {
			if i < 0 || i >= 10 {
				t.Fatalf("wrapped index %d outside [0,10)", i)
			}
		}
	}
}

func TestLocalitySamplerBadParamsPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	defer func() {
		if recover() == nil {
			t.Fatal("zero neighbors did not panic")
		}
	}()
	NewLocalitySampler(b, 0, 16)
}

func TestLocalitySamplerName(t *testing.T) {
	b := NewBuffer(testSpec(8))
	s := NewLocalitySampler(b, 16, 64)
	if s.Name() != "locality(n=16,ref=64)" {
		t.Fatalf("Name = %q", s.Name())
	}
}
