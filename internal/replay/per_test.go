package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumTreeSetGetTotal(t *testing.T) {
	tr := NewSumTree(10)
	tr.Set(0, 1)
	tr.Set(5, 3)
	tr.Set(9, 0.5)
	if got := tr.Get(5); got != 3 {
		t.Fatalf("Get(5) = %v", got)
	}
	if got := tr.Total(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("Total = %v, want 4.5", got)
	}
	tr.Set(5, 1) // overwrite must adjust the total
	if got := tr.Total(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Total after overwrite = %v, want 2.5", got)
	}
}

func TestSumTreeFindBoundaries(t *testing.T) {
	tr := NewSumTree(4)
	tr.Set(0, 1)
	tr.Set(1, 2)
	tr.Set(2, 3)
	tr.Set(3, 4)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1.0, 1}, {2.99, 1}, {3.0, 2}, {5.99, 2}, {6.0, 3}, {9.99, 3},
	}
	for _, c := range cases {
		if got := tr.Find(c.v); got != c.want {
			t.Fatalf("Find(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSumTreeFindNegativeClampsToZero(t *testing.T) {
	tr := NewSumTree(4)
	tr.Set(2, 1)
	if got := tr.Find(-5); got != 2 {
		t.Fatalf("Find(-5) = %d, want first nonzero leaf 2", got)
	}
}

func TestSumTreePanics(t *testing.T) {
	tr := NewSumTree(4)
	for _, f := range []func(){
		func() { tr.Set(-1, 1) },
		func() { tr.Set(4, 1) },
		func() { tr.Set(0, -1) },
		func() { tr.Get(7) },
		func() { tr.Find(0) }, // empty tree
		func() { NewSumTree(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Find over a random tree is always consistent with the
// cumulative-sum definition.
func TestSumTreeFindMatchesLinearScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		tr := NewSumTree(n)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = r.Float64() * 10
			tr.Set(i, ps[i])
		}
		if tr.Total() == 0 {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			v := r.Float64() * tr.Total()
			got := tr.Find(v)
			// Linear scan reference.
			cum := 0.0
			want := n - 1
			for i, p := range ps {
				cum += p
				if v < cum {
					want = i
					break
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPERFreshTransitionsGetMaxPriority(t *testing.T) {
	b := NewBuffer(testSpec(32))
	s := NewPERSampler(b)
	fillBuffer(b, 4)
	p0 := s.tree.Get(0)
	for i := 1; i < 4; i++ {
		if s.tree.Get(i) != p0 {
			t.Fatalf("fresh priorities differ: %v vs %v", s.tree.Get(i), p0)
		}
	}
	if p0 <= 0 {
		t.Fatal("fresh priority should be positive")
	}
}

func TestPERSampleShapesAndRanges(t *testing.T) {
	b := NewBuffer(testSpec(128))
	s := NewPERSampler(b)
	fillBuffer(b, 100)
	sample := s.Sample(64, rand.New(rand.NewSource(1)))
	if len(sample.Indices) != 64 || len(sample.Weights) != 64 {
		t.Fatalf("sample sizes %d/%d", len(sample.Indices), len(sample.Weights))
	}
	maxW := 0.0
	for i, idx := range sample.Indices {
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		w := sample.Weights[i]
		if w <= 0 || w > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	if math.Abs(maxW-1) > 1e-9 {
		t.Fatalf("max weight = %v, want 1 after normalization", maxW)
	}
}

func TestPERHighPriorityDominatesSampling(t *testing.T) {
	b := NewBuffer(testSpec(64))
	s := NewPERSampler(b)
	fillBuffer(b, 50)
	// Crush all priorities except index 7.
	idx := make([]int, 50)
	td := make([]float64, 50)
	for i := range idx {
		idx[i] = i
		td[i] = 1e-9
	}
	td[7] = 100
	s.UpdatePriorities(idx, td)
	rng := rand.New(rand.NewSource(2))
	count7 := 0
	sample := s.Sample(1000, rng)
	for _, i := range sample.Indices {
		if i == 7 {
			count7++
		}
	}
	if count7 < 900 {
		t.Fatalf("high-priority index sampled only %d/1000 times", count7)
	}
}

func TestPERWeightsCounteractPriority(t *testing.T) {
	b := NewBuffer(testSpec(64))
	s := NewPERSampler(b)
	s.Beta = 1 // full compensation
	fillBuffer(b, 10)
	idx := make([]int, 10)
	td := make([]float64, 10)
	for i := range idx {
		idx[i] = i
		td[i] = 0.1
	}
	td[3] = 10 // much higher priority
	s.UpdatePriorities(idx, td)
	sample := s.Sample(256, rand.New(rand.NewSource(3)))
	var w3, wOther float64
	var n3, nOther int
	for i, ix := range sample.Indices {
		if ix == 3 {
			w3 += sample.Weights[i]
			n3++
		} else {
			wOther += sample.Weights[i]
			nOther++
		}
	}
	if n3 == 0 || nOther == 0 {
		t.Skip("sampling did not cover both groups")
	}
	// The over-sampled index must receive smaller IS weights.
	if w3/float64(n3) >= wOther/float64(nOther) {
		t.Fatalf("high-priority weight %v should be below low-priority %v", w3/float64(n3), wOther/float64(nOther))
	}
}

func TestPERUpdatePrioritiesLengthMismatchPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	s := NewPERSampler(b)
	fillBuffer(b, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched UpdatePriorities did not panic")
		}
	}()
	s.UpdatePriorities([]int{0, 1}, []float64{1})
}

func TestPERNormalizedPriorityRange(t *testing.T) {
	b := NewBuffer(testSpec(16))
	s := NewPERSampler(b)
	fillBuffer(b, 8)
	s.UpdatePriorities([]int{0, 1}, []float64{5, 0.5})
	for i := 0; i < 8; i++ {
		w := s.NormalizedPriority(i)
		if w < 0 || w > 1 {
			t.Fatalf("normalized priority %v outside [0,1]", w)
		}
	}
	if s.NormalizedPriority(0) <= s.NormalizedPriority(1) {
		t.Fatal("higher TD error should map to higher normalized priority")
	}
}

func TestNeighborPredictorThresholds(t *testing.T) {
	p := DefaultNeighborPredictor()
	cases := []struct {
		w    float64
		want int
	}{
		{0.0, 1}, {0.32, 1}, {0.33, 2}, {0.5, 2}, {0.65, 2}, {0.66, 4}, {1.0, 4},
	}
	for _, c := range cases {
		if got := p.Predict(c.w); got != c.want {
			t.Fatalf("Predict(%v) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestNeighborPredictorMalformedPanics(t *testing.T) {
	p := NeighborPredictor{Thresholds: []float64{0.5}, Neighbors: []int{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("malformed predictor did not panic")
		}
	}()
	p.Predict(0.2)
}

func TestIPLocalitySampleStructure(t *testing.T) {
	b := NewBuffer(testSpec(512))
	s := NewIPLocalitySampler(b, 1)
	fillBuffer(b, 400)
	sample := s.Sample(128, rand.New(rand.NewSource(4)))
	if len(sample.Indices) != 128 || len(sample.Weights) != 128 {
		t.Fatalf("sample sizes %d/%d", len(sample.Indices), len(sample.Weights))
	}
	if len(sample.Refs) == 0 {
		t.Fatal("IP sampler should record reference points")
	}
	for _, i := range sample.Indices {
		if i < 0 || i >= 400 {
			t.Fatalf("index %d out of range", i)
		}
	}
	maxW := 0.0
	for _, w := range sample.Weights {
		if w <= 0 || w > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	if math.Abs(maxW-1) > 1e-9 {
		t.Fatalf("max IP weight = %v, want 1", maxW)
	}
}

func TestIPLocalityHighPriorityGetsLongerRuns(t *testing.T) {
	b := NewBuffer(testSpec(256))
	s := NewIPLocalitySampler(b, 1)
	fillBuffer(b, 200)
	idx := make([]int, 200)
	td := make([]float64, 200)
	for i := range idx {
		idx[i] = i
		td[i] = 1e-6
	}
	td[50] = 10 // dominant priority → normalized ≈1 → 4 neighbors
	s.UpdatePriorities(idx, td)
	sample := s.Sample(64, rand.New(rand.NewSource(5)))
	// Nearly all refs should be 50 and expand to runs 50,51,52,53.
	hits := 0
	for _, i := range sample.Indices {
		if i >= 50 && i < 54 {
			hits++
		}
	}
	if hits < 32 {
		t.Fatalf("high-priority neighborhood sampled only %d/64", hits)
	}
}

func TestIPLocalityUpdateFeedsSharedTree(t *testing.T) {
	b := NewBuffer(testSpec(64))
	s := NewIPLocalitySampler(b, 1)
	fillBuffer(b, 10)
	before := s.PER().tree.Get(3)
	s.UpdatePriorities([]int{3}, []float64{42})
	after := s.PER().tree.Get(3)
	if after <= before {
		t.Fatalf("priority did not increase: %v -> %v", before, after)
	}
}

func TestIPLocalityBetaZeroGivesUniformWeights(t *testing.T) {
	b := NewBuffer(testSpec(128))
	s := NewIPLocalitySampler(b, 0) // β=0 → no compensation
	fillBuffer(b, 100)
	s.UpdatePriorities([]int{0, 1, 2}, []float64{9, 0.1, 3})
	sample := s.Sample(64, rand.New(rand.NewSource(6)))
	for _, w := range sample.Weights {
		if math.Abs(w-1) > 1e-12 {
			t.Fatalf("β=0 weight = %v, want 1", w)
		}
	}
}

// Property: IP sampler always returns exactly n in-range indices with
// matching weights, across random priority states.
func TestIPLocalityShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuffer(testSpec(128))
		s := NewIPLocalitySampler(b, 1)
		n := 10 + r.Intn(100)
		fillBuffer(b, n)
		// Random priority shake-up.
		var idx []int
		var td []float64
		for i := 0; i < n; i += 1 + r.Intn(3) {
			idx = append(idx, i)
			td = append(td, r.Float64()*5)
		}
		if len(idx) > 0 {
			s.UpdatePriorities(idx, td)
		}
		want := 1 + r.Intn(64)
		sample := s.Sample(want, r)
		if len(sample.Indices) != want || len(sample.Weights) != want {
			return false
		}
		for _, i := range sample.Indices {
			if i < 0 || i >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
