package replay

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"marlperf/internal/resilience"
)

// Buffer persistence: collected experience can be saved and restored so
// long training runs survive restarts, or so a characterization workload
// can be replayed bit-identically on another machine.
//
// Format (little-endian): magic "MARB" | uint32 version | uint32 numAgents
// | uint32 actDim | uint32 capacity | per agent uint32 obsDim |
// uint32 length | uint32 next | per agent: length·obsDim obs float64s,
// length·actDim act, length rew, length·obsDim nextObs, length done |
// (v2) uint32 CRC32-IEEE of every preceding byte.
//
// Version history: v1 had no integrity trailer; v2 appends the CRC32 so a
// truncated or bit-flipped buffer file is rejected with a descriptive error
// instead of silently restoring damaged experience. v1 files are still
// read (without verification).

const (
	bufMagic   = "MARB"
	bufVersion = 2
)

// WriteTo serializes the buffer's spec and stored transitions, appending a
// CRC32 trailer.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	crc := resilience.NewCRCWriter(w)
	cw := &countingWriter{w: crc}
	if _, err := cw.Write([]byte(bufMagic)); err != nil {
		return cw.n, err
	}
	header := []uint32{bufVersion, uint32(b.spec.NumAgents), uint32(b.spec.ActDim), uint32(b.spec.Capacity)}
	for _, d := range b.spec.ObsDims {
		header = append(header, uint32(d))
	}
	header = append(header, uint32(b.length), uint32(b.next))
	for _, v := range header {
		if err := putU32(cw, v); err != nil {
			return cw.n, err
		}
	}
	for a := 0; a < b.spec.NumAgents; a++ {
		od := b.spec.ObsDims[a]
		for _, field := range [][]float64{
			b.obs[a][:b.length*od],
			b.act[a][:b.length*b.spec.ActDim],
			b.rew[a][:b.length],
			b.nextObs[a][:b.length*od],
			b.done[a][:b.length],
		} {
			if err := putF64s(cw, field); err != nil {
				return cw.n, err
			}
		}
	}
	// The trailer is not part of its own checksum: write it to the
	// underlying writer, counting its bytes by hand.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum())
	n, err := w.Write(trailer[:])
	cw.n += int64(n)
	return cw.n, err
}

// ReadBuffer deserializes a buffer written by WriteTo, allocating storage
// for the recorded capacity. v2 streams are verified against their CRC32
// trailer before the buffer is returned; v1 streams load unverified.
func ReadBuffer(src io.Reader) (*Buffer, error) {
	crc := resilience.NewCRCReader(src)
	var r io.Reader = crc
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("replay: reading buffer magic: %w", err)
	}
	if string(magic[:]) != bufMagic {
		return nil, fmt.Errorf("replay: bad buffer magic %q", magic)
	}
	version, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if version != 1 && version != bufVersion {
		return nil, fmt.Errorf("replay: buffer version %d, want ≤%d", version, bufVersion)
	}
	numAgents, err := getU32(r)
	if err != nil {
		return nil, err
	}
	actDim, err := getU32(r)
	if err != nil {
		return nil, err
	}
	capacity, err := getU32(r)
	if err != nil {
		return nil, err
	}
	const maxAgents, maxDim, maxCap = 1 << 12, 1 << 20, 1 << 28
	if numAgents == 0 || numAgents > maxAgents || actDim == 0 || actDim > maxDim || capacity == 0 || capacity > maxCap {
		return nil, fmt.Errorf("replay: implausible buffer header (%d agents, act %d, cap %d)", numAgents, actDim, capacity)
	}
	spec := Spec{NumAgents: int(numAgents), ActDim: int(actDim), Capacity: int(capacity)}
	for a := uint32(0); a < numAgents; a++ {
		od, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if od == 0 || od > maxDim {
			return nil, fmt.Errorf("replay: implausible obs dim %d", od)
		}
		spec.ObsDims = append(spec.ObsDims, int(od))
	}
	length, err := getU32(r)
	if err != nil {
		return nil, err
	}
	next, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if length > capacity || next >= capacity {
		return nil, fmt.Errorf("replay: implausible length %d / next %d for capacity %d", length, next, capacity)
	}
	// Bound the total allocation a header can demand before a single
	// payload byte arrives: a corrupt capacity/dim combination must fail
	// with an error, not an out-of-memory crash. 2^28 floats (2 GiB) is an
	// order of magnitude above the paper's largest configuration.
	const maxTotalFloats = 1 << 28
	var totalFloats uint64
	for _, od := range spec.ObsDims {
		totalFloats += uint64(capacity) * uint64(2*od+int(actDim)+2)
	}
	if totalFloats > maxTotalFloats {
		return nil, fmt.Errorf("replay: implausible buffer storage %d floats (max %d)", totalFloats, uint64(maxTotalFloats))
	}
	buf := NewBuffer(spec)
	buf.length = int(length)
	buf.next = int(next)
	for a := 0; a < spec.NumAgents; a++ {
		od := spec.ObsDims[a]
		for _, field := range [][]float64{
			buf.obs[a][:buf.length*od],
			buf.act[a][:buf.length*spec.ActDim],
			buf.rew[a][:buf.length],
			buf.nextObs[a][:buf.length*od],
			buf.done[a][:buf.length],
		} {
			if err := getF64s(r, field); err != nil {
				return nil, err
			}
		}
	}
	if version >= 2 {
		if err := crc.VerifyTrailer("replay: buffer"); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	_, err := io.ReadFull(r, b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func putF64s(w io.Writer, vs []float64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func getF64s(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}
