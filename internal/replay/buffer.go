// Package replay implements the experience replay storage and the sampling
// strategies the paper studies: baseline uniform mini-batch sampling,
// cache-locality-aware neighbor sampling (§IV-A), proportional prioritized
// replay (PER), information-prioritized locality-aware sampling (§IV-B1),
// and the key-value transition data-layout reorganization (§IV-B2).
//
// All storage is flat float64 so the gather loops have the same memory
// behaviour the paper profiles; every buffer can emit a synthetic address
// trace for the cache simulator in internal/simcache.
package replay

import (
	"fmt"
	"math/rand"

	"marlperf/internal/tensor"
)

// Tracer receives the logical memory accesses performed by the gather
// loops. Implemented by internal/simcache; nil tracers cost one branch.
type Tracer interface {
	Access(addr uint64, size int)
}

// Spec describes the shape of the stored transitions.
type Spec struct {
	NumAgents int
	ObsDims   []int // observation width per agent
	ActDim    int   // action-vector width (5 one-hot/probability entries)
	Capacity  int   // max stored transitions (paper: 1 million)
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.NumAgents < 1 {
		return fmt.Errorf("replay: NumAgents = %d, want ≥1", s.NumAgents)
	}
	if len(s.ObsDims) != s.NumAgents {
		return fmt.Errorf("replay: %d ObsDims for %d agents", len(s.ObsDims), s.NumAgents)
	}
	for i, d := range s.ObsDims {
		if d < 1 {
			return fmt.Errorf("replay: ObsDims[%d] = %d, want ≥1", i, d)
		}
	}
	if s.ActDim < 1 {
		return fmt.Errorf("replay: ActDim = %d, want ≥1", s.ActDim)
	}
	if s.Capacity < 1 {
		return fmt.Errorf("replay: Capacity = %d, want ≥1", s.Capacity)
	}
	return nil
}

// AgentBatch holds one agent's gathered mini-batch, ready for the networks.
type AgentBatch struct {
	Obs     *tensor.Matrix // batch×obsDim
	Act     *tensor.Matrix // batch×actDim
	Rew     *tensor.Matrix // batch×1
	NextObs *tensor.Matrix // batch×obsDim
	Done    *tensor.Matrix // batch×1
}

// NewAgentBatch allocates a batch for an agent with the given obs width.
func NewAgentBatch(batch, obsDim, actDim int) *AgentBatch {
	return &AgentBatch{
		Obs:     tensor.New(batch, obsDim),
		Act:     tensor.New(batch, actDim),
		Rew:     tensor.New(batch, 1),
		NextObs: tensor.New(batch, obsDim),
		Done:    tensor.New(batch, 1),
	}
}

// Buffer is the baseline multi-agent replay buffer: each agent's transition
// fields live in their own separate allocations ("distant memory
// locations"), so a mini-batch gather walks N_agents × batch scattered rows
// — the O(N·m) access pattern of Figure 5.
//
// Indices are aligned across agents: index t holds every agent's view of
// the same environment step.
type Buffer struct {
	spec Spec

	obs     [][]float64 // [agent][capacity·obsDim]
	act     [][]float64 // [agent][capacity·actDim]
	rew     [][]float64 // [agent][capacity]
	nextObs [][]float64 // [agent][capacity·obsDim]
	done    [][]float64 // [agent][capacity]

	length int // number of valid transitions
	next   int // ring-buffer write cursor

	tracer    Tracer
	baseAddrs []uint64 // synthetic base address per (agent, field) region

	onAdd []func(idx int) // listeners (prioritized samplers)
}

// Field identifiers for the synthetic address regions.
const (
	regionObs = iota
	regionAct
	regionRew
	regionNextObs
	regionDone
	numRegions
)

// NewBuffer allocates a baseline per-agent replay buffer.
func NewBuffer(spec Spec) *Buffer {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	b := &Buffer{spec: spec}
	b.obs = make([][]float64, spec.NumAgents)
	b.act = make([][]float64, spec.NumAgents)
	b.rew = make([][]float64, spec.NumAgents)
	b.nextObs = make([][]float64, spec.NumAgents)
	b.done = make([][]float64, spec.NumAgents)
	for a := 0; a < spec.NumAgents; a++ {
		b.obs[a] = make([]float64, spec.Capacity*spec.ObsDims[a])
		b.act[a] = make([]float64, spec.Capacity*spec.ActDim)
		b.rew[a] = make([]float64, spec.Capacity)
		b.nextObs[a] = make([]float64, spec.Capacity*spec.ObsDims[a])
		b.done[a] = make([]float64, spec.Capacity)
	}
	// Each (agent, field) region gets a widely separated synthetic base so
	// the cache simulator sees the "distant allocations" of the baseline
	// layout. 1 GiB spacing keeps regions in distinct page/line ranges.
	b.baseAddrs = make([]uint64, spec.NumAgents*numRegions)
	for i := range b.baseAddrs {
		b.baseAddrs[i] = uint64(i+1) << 30
	}
	return b
}

// Spec returns the buffer's shape description.
func (b *Buffer) Spec() Spec { return b.spec }

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return b.length }

// Capacity returns the maximum number of stored transitions.
func (b *Buffer) Capacity() int { return b.spec.Capacity }

// SetTracer installs (or clears, with nil) the address tracer.
func (b *Buffer) SetTracer(t Tracer) { b.tracer = t }

// AddListener registers a callback invoked with the slot index of every
// newly added transition (used by prioritized samplers).
func (b *Buffer) AddListener(f func(idx int)) { b.onAdd = append(b.onAdd, f) }

// Add stores one environment step for all agents and returns the slot index
// it was written to. act rows are the ActDim-wide action vectors.
func (b *Buffer) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) int {
	n := b.spec.NumAgents
	if len(obs) != n || len(act) != n || len(rew) != n || len(nextObs) != n || len(done) != n {
		panic(fmt.Sprintf("replay: Add got %d/%d/%d/%d/%d rows, want %d each", len(obs), len(act), len(rew), len(nextObs), len(done), n))
	}
	idx := b.next
	for a := 0; a < n; a++ {
		od := b.spec.ObsDims[a]
		if len(obs[a]) != od || len(nextObs[a]) != od {
			panic(fmt.Sprintf("replay: Add agent %d obs width %d/%d, want %d", a, len(obs[a]), len(nextObs[a]), od))
		}
		if len(act[a]) != b.spec.ActDim {
			panic(fmt.Sprintf("replay: Add agent %d act width %d, want %d", a, len(act[a]), b.spec.ActDim))
		}
		copy(b.obs[a][idx*od:(idx+1)*od], obs[a])
		copy(b.act[a][idx*b.spec.ActDim:(idx+1)*b.spec.ActDim], act[a])
		b.rew[a][idx] = rew[a]
		copy(b.nextObs[a][idx*od:(idx+1)*od], nextObs[a])
		b.done[a][idx] = done[a]
	}
	b.next = (b.next + 1) % b.spec.Capacity
	if b.length < b.spec.Capacity {
		b.length++
	}
	for _, f := range b.onAdd {
		f(idx)
	}
	return idx
}

// regionBase returns the synthetic base address of agent a's field region.
func (b *Buffer) regionBase(a, field int) uint64 {
	return b.baseAddrs[a*numRegions+field]
}

// trace emits one logical access if a tracer is installed.
func (b *Buffer) trace(addr uint64, size int) {
	if b.tracer != nil {
		b.tracer.Access(addr, size)
	}
}

// Gather copies the transitions at the given indices from agent a's buffers
// into dst. This is the per-agent leg of the paper's O(N·m) baseline
// sampling loop; each index touches five scattered rows.
func (b *Buffer) Gather(a int, indices []int, dst *AgentBatch) {
	od := b.spec.ObsDims[a]
	ad := b.spec.ActDim
	if dst.Obs.Cols != od || dst.Act.Cols != ad {
		panic(fmt.Sprintf("replay: Gather dst widths %d/%d, want %d/%d", dst.Obs.Cols, dst.Act.Cols, od, ad))
	}
	if len(indices) > dst.Obs.Rows {
		panic(fmt.Sprintf("replay: Gather %d indices into batch of %d", len(indices), dst.Obs.Rows))
	}
	obs, act, rew, nextObs, done := b.obs[a], b.act[a], b.rew[a], b.nextObs[a], b.done[a]
	for row, idx := range indices {
		if idx < 0 || idx >= b.length {
			panic(fmt.Sprintf("replay: Gather index %d outside [0,%d)", idx, b.length))
		}
		copy(dst.Obs.Row(row), obs[idx*od:(idx+1)*od])
		copy(dst.Act.Row(row), act[idx*ad:(idx+1)*ad])
		dst.Rew.Data[row] = rew[idx]
		copy(dst.NextObs.Row(row), nextObs[idx*od:(idx+1)*od])
		dst.Done.Data[row] = done[idx]
		if b.tracer != nil {
			b.trace(b.regionBase(a, regionObs)+uint64(idx*od*8), od*8)
			b.trace(b.regionBase(a, regionAct)+uint64(idx*ad*8), ad*8)
			b.trace(b.regionBase(a, regionRew)+uint64(idx*8), 8)
			b.trace(b.regionBase(a, regionNextObs)+uint64(idx*od*8), od*8)
			b.trace(b.regionBase(a, regionDone)+uint64(idx*8), 8)
		}
	}
}

// GatherAll runs Gather for every agent with a shared index array — the
// full mini-batch sampling inner loop of Figure 5. dst must hold one
// AgentBatch per agent.
func (b *Buffer) GatherAll(indices []int, dst []*AgentBatch) {
	if len(dst) != b.spec.NumAgents {
		panic(fmt.Sprintf("replay: GatherAll got %d batches for %d agents", len(dst), b.spec.NumAgents))
	}
	for a := 0; a < b.spec.NumAgents; a++ {
		b.Gather(a, indices, dst[a])
	}
}

// InsertionOrder returns the stored slot indices ordered oldest-first. When
// the ring has wrapped, the oldest transition sits at the write cursor; a
// restore that re-Adds in this order reproduces the original recency layout
// (which the locality samplers' neighbor runs depend on).
func (b *Buffer) InsertionOrder() []int {
	return b.InsertionOrderInto(nil)
}

// InsertionOrderInto is the allocation-reusing form of InsertionOrder: it
// fills dst (growing it only when capacity falls short) and returns the
// resulting slice. Callers polling the order repeatedly pass the previous
// result back in to avoid churn.
func (b *Buffer) InsertionOrderInto(dst []int) []int {
	if cap(dst) < b.length {
		dst = make([]int, b.length)
	}
	dst = dst[:b.length]
	start := 0
	if b.length == b.spec.Capacity {
		start = b.next
	}
	for i := range dst {
		dst[i] = (start + i) % b.spec.Capacity
	}
	return dst
}

// CopyTransition copies slot idx into the supplied per-agent rows, each
// pre-sized to the spec (obs/nextObs rows ObsDims[a] wide, act rows ActDim
// wide). Restore paths use it to replay stored experience through another
// buffer's Add, firing that buffer's listeners.
func (b *Buffer) CopyTransition(idx int, obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) {
	if idx < 0 || idx >= b.length {
		panic(fmt.Sprintf("replay: CopyTransition index %d outside [0,%d)", idx, b.length))
	}
	for a := 0; a < b.spec.NumAgents; a++ {
		od := b.spec.ObsDims[a]
		copy(obs[a], b.obs[a][idx*od:(idx+1)*od])
		copy(act[a], b.act[a][idx*b.spec.ActDim:(idx+1)*b.spec.ActDim])
		rew[a] = b.rew[a][idx]
		copy(nextObs[a], b.nextObs[a][idx*od:(idx+1)*od])
		done[a] = b.done[a][idx]
	}
}

// DoneFlag returns agent a's stored done flag at slot idx.
func (b *Buffer) DoneFlag(a, idx int) float64 {
	if idx < 0 || idx >= b.length {
		panic(fmt.Sprintf("replay: DoneFlag index %d outside [0,%d)", idx, b.length))
	}
	return b.done[a][idx]
}

// sampleUniformIndices fills dst with uniform random valid indices.
func sampleUniformIndices(dst []int, length int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(length)
	}
}
