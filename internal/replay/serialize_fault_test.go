package replay

import (
	"bytes"
	"testing"

	"marlperf/internal/resilience"
)

// Fault-injection coverage for the v2 MARB format: bit flips anywhere in
// the stream, short writes, and legacy v1 (trailer-less) compatibility.

func bufferBytes(t *testing.T) []byte {
	t.Helper()
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 6)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBufferRejectsEveryBitFlip(t *testing.T) {
	data := bufferBytes(t)
	for off := 0; off < len(data); off++ {
		r := &resilience.BitFlipReader{R: bytes.NewReader(data), Offset: int64(off), Mask: 0x08}
		if _, err := ReadBuffer(r); err == nil {
			t.Fatalf("bit flip at offset %d/%d accepted", off, len(data))
		}
	}
}

func TestWriteToPropagatesShortWrites(t *testing.T) {
	b := NewBuffer(testSpec(8))
	fillBuffer(b, 6)
	full := int64(len(bufferBytes(t)))
	for _, allow := range []int64{0, 5, 30, full / 2, full - 1} {
		fw := &resilience.FaultWriter{W: &bytes.Buffer{}, Remaining: allow, Short: true}
		if _, err := b.WriteTo(fw); err == nil {
			t.Fatalf("short write after %d bytes not reported", allow)
		}
	}
}

func TestReadBufferReadsV1(t *testing.T) {
	data := bufferBytes(t)
	// A v1 stream is the v2 stream with the version field rewound and the
	// CRC trailer stripped.
	v1 := append([]byte(nil), data[:len(data)-4]...)
	v1[4] = 1
	restored, err := ReadBuffer(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 buffer rejected: %v", err)
	}
	if restored.Len() != 6 || restored.Capacity() != 8 {
		t.Fatalf("v1 restore: Len=%d Cap=%d", restored.Len(), restored.Capacity())
	}
}

func TestReadBufferRejectsTruncatedEverywhere(t *testing.T) {
	data := bufferBytes(t)
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadBuffer(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	if _, err := ReadBuffer(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncation of trailer accepted")
	}
}
