package replay

import (
	"math"
	"math/rand"
	"testing"
)

// Statistical checks on the samplers' distributions — the properties the
// paper's Lemma 1 and §IV-A reason about.

// TestLocalitySamplerMarginalIsNearUniform verifies that although locality
// sampling draws contiguous runs, the *marginal* inclusion probability of
// each index stays near-uniform (reference points are uniform, every index
// is covered by the same number of runs modulo wraparound) — the property
// that lets the paper treat the Lemma-1 weights as ≈1 for the pure
// locality sampler.
func TestLocalitySamplerMarginalIsNearUniform(t *testing.T) {
	const (
		fill   = 500
		batch  = 64
		rounds = 4000
	)
	b := NewBuffer(testSpec(fill))
	fillBuffer(b, fill)
	s := NewLocalitySampler(b, 16, 4)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, fill)
	total := 0
	for r := 0; r < rounds; r++ {
		sample := s.Sample(batch, rng)
		for _, idx := range sample.Indices {
			counts[idx]++
			total++
		}
	}
	expected := float64(total) / float64(fill)
	for i, c := range counts {
		// Allow generous statistical slack (±40%) over 4000 rounds.
		if math.Abs(float64(c)-expected) > 0.4*expected {
			t.Fatalf("index %d drawn %d times, expected ≈%.0f", i, c, expected)
		}
	}
}

// TestUniformSamplerChiSquare sanity-checks the baseline's uniformity with
// a coarse chi-square bound.
func TestUniformSamplerChiSquare(t *testing.T) {
	const (
		fill  = 100
		draws = 100_000
	)
	b := NewBuffer(testSpec(128))
	fillBuffer(b, fill)
	s := NewUniformSampler(b)
	rng := rand.New(rand.NewSource(10))
	counts := make([]float64, fill)
	remaining := draws
	for remaining > 0 {
		n := 1000
		if n > remaining {
			n = remaining
		}
		sample := s.Sample(n, rng)
		for _, idx := range sample.Indices {
			counts[idx]++
		}
		remaining -= n
	}
	expected := float64(draws) / float64(fill)
	var chi2 float64
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	// 99 degrees of freedom; mean 99, std ≈ 14. Reject only far tails.
	if chi2 > 99+6*14 {
		t.Fatalf("chi-square = %.1f, far from uniform (expected ≈99)", chi2)
	}
}

// TestPERSamplingFrequenciesMatchPriorities checks the proportional
// property quantitatively: sampling frequency ratios track priority ratios
// (after the α exponent).
func TestPERSamplingFrequenciesMatchPriorities(t *testing.T) {
	b := NewBuffer(testSpec(64))
	s := NewPERSampler(b)
	s.Alpha = 1 // direct proportionality for the test
	fillBuffer(b, 4)
	s.UpdatePriorities([]int{0, 1, 2, 3}, []float64{1, 2, 3, 4})
	rng := rand.New(rand.NewSource(11))
	counts := make([]float64, 4)
	for r := 0; r < 200; r++ {
		sample := s.Sample(100, rng)
		for _, idx := range sample.Indices {
			counts[idx]++
		}
	}
	// Frequencies should be ≈ proportional to priorities 1:2:3:4.
	for i := 1; i < 4; i++ {
		gotRatio := counts[i] / counts[0]
		wantRatio := float64(i+1) / 1
		if math.Abs(gotRatio-wantRatio) > 0.25*wantRatio {
			t.Fatalf("frequency ratio p%d/p0 = %.2f, want ≈%.2f", i, gotRatio, wantRatio)
		}
	}
}

// TestIPLocalityRespectsBatchDistributionUnderUniformPriorities checks
// that with uniform priorities the IP sampler degenerates gracefully: all
// weights equal, runs expanded by the lowest predictor level (normalized
// priority ≈ 1 for all → longest run), and exact batch size.
func TestIPLocalityUniformPrioritiesDegenerate(t *testing.T) {
	b := NewBuffer(testSpec(256))
	s := NewIPLocalitySampler(b, 1)
	fillBuffer(b, 200)
	rng := rand.New(rand.NewSource(12))
	sample := s.Sample(64, rng)
	// Fresh transitions all carry max priority → normalized ≈1 → 4
	// neighbors per reference.
	if len(sample.Refs) != 16 {
		t.Fatalf("uniform-priority IP refs = %d, want 64/4 = 16", len(sample.Refs))
	}
	for _, w := range sample.Weights {
		if math.Abs(w-1) > 1e-9 {
			t.Fatalf("uniform-priority IP weight = %v, want 1", w)
		}
	}
}
