package replay

import (
	"math"
	"math/rand"
	"testing"
)

func poisonedTDs() []float64 {
	return []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3.5, 0.7}
}

func TestPERSanitizesPoisonedPriorities(t *testing.T) {
	b := NewBuffer(testSpec(16))
	s := NewPERSampler(b)
	fillBuffer(b, 10)
	s.UpdatePriorities([]int{0, 1, 2, 3, 4}, poisonedTDs())
	if got := s.SanitizedCount(); got != 4 {
		t.Fatalf("SanitizedCount = %d, want 4", got)
	}
	total := s.tree.Total()
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		t.Fatalf("sum tree total poisoned: %v", total)
	}
	if s.maxPriority != 1 {
		t.Fatalf("maxPriority = %v, poisoned values must not raise it", s.maxPriority)
	}
	// Sampling must still work and produce finite weights.
	rng := rand.New(rand.NewSource(3))
	sample := s.Sample(8, rng)
	for i, w := range sample.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight %d = %v after sanitization", i, w)
		}
	}
	// Clean updates keep counting from where they were.
	s.UpdatePriorities([]int{5}, []float64{2.0})
	if got := s.SanitizedCount(); got != 4 {
		t.Fatalf("clean update changed SanitizedCount to %d", got)
	}
	if s.maxPriority != 2 {
		t.Fatalf("maxPriority = %v, want 2", s.maxPriority)
	}
}

func TestRankPERSanitizesPoisonedPriorities(t *testing.T) {
	b := NewBuffer(testSpec(16))
	s := NewRankPERSampler(b)
	fillBuffer(b, 10)
	s.UpdatePriorities([]int{0, 1, 2, 3, 4}, poisonedTDs())
	if got := s.SanitizedCount(); got != 4 {
		t.Fatalf("SanitizedCount = %d, want 4", got)
	}
	for i, p := range s.priorities[:10] {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("priority %d = %v after sanitization", i, p)
		}
	}
	rng := rand.New(rand.NewSource(3))
	sample := s.Sample(8, rng)
	for i, w := range sample.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight %d = %v after sanitization", i, w)
		}
	}
}

func TestIPLocalitySanitizesThroughSharedCore(t *testing.T) {
	b := NewBuffer(testSpec(16))
	s := NewIPLocalitySampler(b, 1)
	fillBuffer(b, 10)
	s.UpdatePriorities([]int{0, 1}, []float64{math.NaN(), 0.5})
	if got := s.SanitizedCount(); got != 1 {
		t.Fatalf("SanitizedCount = %d, want 1", got)
	}
	if total := s.PER().tree.Total(); math.IsNaN(total) || math.IsInf(total, 0) {
		t.Fatalf("shared tree total poisoned: %v", total)
	}
}

func TestSanitizePriority(t *testing.T) {
	cases := []struct {
		in      float64
		want    float64
		clamped bool
	}{
		{0.5, 0.5, false},
		{0, 0, false},
		{math.MaxFloat64, math.MaxFloat64, false},
		{math.NaN(), priorityFloor, true},
		{math.Inf(1), priorityFloor, true},
		{math.Inf(-1), priorityFloor, true},
		{-1e-9, priorityFloor, true},
	}
	for _, tc := range cases {
		got, clamped := sanitizePriority(tc.in)
		if got != tc.want || clamped != tc.clamped {
			t.Fatalf("sanitizePriority(%v) = %v, %v", tc.in, got, clamped)
		}
	}
}
