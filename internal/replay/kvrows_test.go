package replay

import (
	"testing"
)

func TestGatherRowsThenSplitMatchesGatherAll(t *testing.T) {
	spec := testSpec(64)
	b := NewBuffer(spec)
	fillBuffer(b, 40)
	k := NewKVBuffer(spec)
	k.ReorganizeFrom(b)

	indices := []int{2, 9, 31}
	rows := make([]float64, len(indices)*k.RowStride())
	k.GatherRows(indices, rows)

	split := make([]*AgentBatch, spec.NumAgents)
	fused := make([]*AgentBatch, spec.NumAgents)
	for a := range split {
		split[a] = NewAgentBatch(len(indices), spec.ObsDims[a], spec.ActDim)
		fused[a] = NewAgentBatch(len(indices), spec.ObsDims[a], spec.ActDim)
	}
	k.SplitRows(rows, len(indices), split)
	k.GatherAll(indices, fused)

	for a := range split {
		for i := range split[a].Obs.Data {
			if split[a].Obs.Data[i] != fused[a].Obs.Data[i] {
				t.Fatalf("agent %d obs mismatch at %d", a, i)
			}
		}
		for i := range split[a].Rew.Data {
			if split[a].Rew.Data[i] != fused[a].Rew.Data[i] ||
				split[a].Done.Data[i] != fused[a].Done.Data[i] {
				t.Fatalf("agent %d scalar mismatch at row %d", a, i)
			}
		}
	}
}

func TestGatherRowsEmitsTraces(t *testing.T) {
	spec := testSpec(16)
	b := NewBuffer(spec)
	fillBuffer(b, 8)
	k := NewKVBuffer(spec)
	k.ReorganizeFrom(b)
	tr := &recordingTracer{}
	k.SetTracer(tr)
	rows := make([]float64, 3*k.RowStride())
	k.GatherRows([]int{0, 2, 4}, rows)
	if len(tr.addrs) != 3 {
		t.Fatalf("GatherRows emitted %d accesses, want 3", len(tr.addrs))
	}
}

func TestGatherRowsPanics(t *testing.T) {
	spec := testSpec(16)
	b := NewBuffer(spec)
	fillBuffer(b, 8)
	k := NewKVBuffer(spec)
	k.ReorganizeFrom(b)
	for name, fn := range map[string]func(){
		"short dst":    func() { k.GatherRows([]int{0, 1}, make([]float64, k.RowStride())) },
		"out of range": func() { k.GatherRows([]int{99}, make([]float64, k.RowStride())) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSplitRowsPanics(t *testing.T) {
	spec := testSpec(16)
	k := NewKVBuffer(spec)
	good := make([]*AgentBatch, spec.NumAgents)
	for a := range good {
		good[a] = NewAgentBatch(2, spec.ObsDims[a], spec.ActDim)
	}
	for name, fn := range map[string]func(){
		"wrong batch count": func() { k.SplitRows(make([]float64, 2*k.RowStride()), 2, good[:1]) },
		"short rows":        func() { k.SplitRows(make([]float64, k.RowStride()), 2, good) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
