package replay

import (
	"math/rand"
	"testing"
)

func TestReuseSamplerReusesWithinWindow(t *testing.T) {
	b := NewBuffer(testSpec(128))
	fillBuffer(b, 100)
	s := NewReuseSampler(NewUniformSampler(b), 3)
	rng := rand.New(rand.NewSource(1))
	first := s.Sample(16, rng)
	second := s.Sample(16, rng)
	third := s.Sample(16, rng)
	for i := range first.Indices {
		if first.Indices[i] != second.Indices[i] || first.Indices[i] != third.Indices[i] {
			t.Fatal("indices changed within the reuse window")
		}
	}
	fourth := s.Sample(16, rng)
	same := true
	for i := range first.Indices {
		if first.Indices[i] != fourth.Indices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("indices did not refresh after the window expired")
	}
}

func TestReuseSamplerWindowOneEqualsInner(t *testing.T) {
	b := NewBuffer(testSpec(64))
	fillBuffer(b, 50)
	s := NewReuseSampler(NewUniformSampler(b), 1)
	rng := rand.New(rand.NewSource(2))
	a := s.Sample(8, rng)
	c := s.Sample(8, rng)
	same := true
	for i := range a.Indices {
		if a.Indices[i] != c.Indices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("window=1 should resample every call")
	}
}

func TestReuseSamplerBatchSizeChangeInvalidates(t *testing.T) {
	b := NewBuffer(testSpec(64))
	fillBuffer(b, 50)
	s := NewReuseSampler(NewUniformSampler(b), 5)
	rng := rand.New(rand.NewSource(3))
	s.Sample(8, rng)
	bigger := s.Sample(16, rng)
	if len(bigger.Indices) != 16 {
		t.Fatalf("batch-size change returned %d indices, want 16", len(bigger.Indices))
	}
}

func TestReuseSamplerForwardsPriorities(t *testing.T) {
	b := NewBuffer(testSpec(64))
	per := NewPERSampler(b)
	fillBuffer(b, 20)
	s := NewReuseSampler(per, 2)
	before := per.tree.Get(5)
	s.UpdatePriorities([]int{5}, []float64{50})
	if per.tree.Get(5) <= before {
		t.Fatal("priorities not forwarded to inner PER sampler")
	}
}

func TestReuseSamplerNoopPrioritiesOnPlainInner(t *testing.T) {
	b := NewBuffer(testSpec(64))
	fillBuffer(b, 20)
	s := NewReuseSampler(NewUniformSampler(b), 2)
	s.UpdatePriorities([]int{1}, []float64{1}) // must not panic
}

func TestReuseSamplerBadWindowPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 did not panic")
		}
	}()
	NewReuseSampler(NewUniformSampler(b), 0)
}

func TestReuseSamplerName(t *testing.T) {
	b := NewBuffer(testSpec(8))
	s := NewReuseSampler(NewLocalitySampler(b, 16, 64), 4)
	if s.Name() != "reuse(w=4,locality(n=16,ref=64))" {
		t.Fatalf("Name = %q", s.Name())
	}
}
