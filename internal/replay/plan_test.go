package replay

import (
	"math/rand"
	"testing"
)

func TestSamplePlanValidate(t *testing.T) {
	cases := []struct {
		plan SamplePlan
		ok   bool
	}{
		{SamplePlan{Strategy: PlanUniform}, true},
		{SamplePlan{Strategy: PlanLocality, Neighbors: 16, Refs: 64}, true},
		{SamplePlan{Strategy: PlanLocality}, false},
		{SamplePlan{Strategy: "per"}, false},
		{SamplePlan{}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.plan, err, c.ok)
		}
	}
}

func TestSamplePlanDeterministic(t *testing.T) {
	for _, plan := range []SamplePlan{
		{Strategy: PlanUniform},
		{Strategy: PlanLocality, Neighbors: 8, Refs: 4},
	} {
		a := make([]int, 100)
		b := make([]int, 100)
		if err := plan.FillIndices(a, 777, 42); err != nil {
			t.Fatal(err)
		}
		if err := plan.FillIndices(b, 777, 42); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: index %d differs: %d != %d", plan, i, a[i], b[i])
			}
			if a[i] < 0 || a[i] >= 777 {
				t.Fatalf("%v: index %d out of range: %d", plan, i, a[i])
			}
		}
		c := make([]int, 100)
		if err := plan.FillIndices(c, 777, 43); err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%v: different seeds produced identical index streams", plan)
		}
	}
}

// The locality plan must produce the same contiguous-run structure as the
// in-process LocalitySampler: full runs of Neighbors consecutive indices
// (mod length), with only the final run truncated.
func TestSamplePlanLocalityRuns(t *testing.T) {
	plan := SamplePlan{Strategy: PlanLocality, Neighbors: 16, Refs: 4}
	const length, n = 500, 100
	idx := make([]int, n)
	if err := plan.FillIndices(idx, length, 9); err != nil {
		t.Fatal(err)
	}
	for start := 0; start < n; start += plan.Neighbors {
		end := start + plan.Neighbors
		if end > n {
			end = n
		}
		for k := start + 1; k < end; k++ {
			if idx[k] != (idx[k-1]+1)%length {
				t.Fatalf("run starting at %d breaks at %d: %d then %d", start, k, idx[k-1], idx[k])
			}
		}
	}
}

func TestSamplePlanEmptyStore(t *testing.T) {
	plan := SamplePlan{Strategy: PlanUniform}
	if err := plan.FillIndices(make([]int, 4), 0, 1); err == nil {
		t.Fatal("sampling an empty store did not error")
	}
}

func TestRowLayoutPackSplitRoundTrip(t *testing.T) {
	spec := Spec{NumAgents: 2, ObsDims: []int{3, 5}, ActDim: 4, Capacity: 16}
	layout := NewRowLayout(spec)
	wantStride := (3 + 4 + 1 + 3 + 1) + (5 + 4 + 1 + 5 + 1)
	if layout.Stride() != wantStride {
		t.Fatalf("stride %d, want %d", layout.Stride(), wantStride)
	}

	rng := rand.New(rand.NewSource(4))
	obs := [][]float64{randFloats(rng, 3), randFloats(rng, 5)}
	act := [][]float64{randFloats(rng, 4), randFloats(rng, 4)}
	nxt := [][]float64{randFloats(rng, 3), randFloats(rng, 5)}
	rew := []float64{rng.NormFloat64(), rng.NormFloat64()}
	done := []float64{0, 1}

	row := make([]float64, layout.Stride())
	layout.PackRow(row, obs, act, rew, nxt, done)

	dst := []*AgentBatch{NewAgentBatch(1, 3, 4), NewAgentBatch(1, 5, 4)}
	layout.SplitRowInto(dst, 0, row)
	for a := 0; a < 2; a++ {
		if !equalFloats(dst[a].Obs.Row(0), obs[a]) || !equalFloats(dst[a].Act.Row(0), act[a]) ||
			!equalFloats(dst[a].NextObs.Row(0), nxt[a]) {
			t.Fatalf("agent %d: round trip mutated tensors", a)
		}
		if dst[a].Rew.Data[0] != rew[a] || dst[a].Done.Data[0] != done[a] {
			t.Fatalf("agent %d: rew/done round trip mismatch", a)
		}
	}
}

// The extracted layout must agree bit-for-bit with KVBuffer's interleaving:
// Add through the KV table and gather rows, then pack the same step through
// the layout directly.
func TestRowLayoutMatchesKVBuffer(t *testing.T) {
	spec := Spec{NumAgents: 3, ObsDims: []int{4, 4, 6}, ActDim: 5, Capacity: 8}
	kv := NewKVBuffer(spec)
	layout := NewRowLayout(spec)
	if kv.RowStride() != layout.Stride() {
		t.Fatalf("KV stride %d != layout stride %d", kv.RowStride(), layout.Stride())
	}
	rng := rand.New(rand.NewSource(5))
	obs := [][]float64{randFloats(rng, 4), randFloats(rng, 4), randFloats(rng, 6)}
	act := [][]float64{randFloats(rng, 5), randFloats(rng, 5), randFloats(rng, 5)}
	nxt := [][]float64{randFloats(rng, 4), randFloats(rng, 4), randFloats(rng, 6)}
	rew := []float64{1, 2, 3}
	done := []float64{0, 0, 1}
	kv.Add(obs, act, rew, nxt, done)

	fromKV := make([]float64, layout.Stride())
	kv.GatherRows([]int{0}, fromKV)
	direct := make([]float64, layout.Stride())
	layout.PackRow(direct, obs, act, rew, nxt, done)
	if !equalFloats(fromKV, direct) {
		t.Fatal("layout packing diverges from KVBuffer interleaving")
	}
}

func randFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
