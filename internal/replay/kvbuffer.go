package replay

import (
	"fmt"
)

// KVBuffer is the paper's transition data-layout reorganization (§IV-B2):
// instead of per-agent buffers in distant allocations, the replay store
// becomes a key-value table where the key is the time index and the value
// is every agent's transition for that step, laid out contiguously. A
// mini-batch gather then runs one loop of m row copies — O(m) instead of
// the baseline O(N·m) scattered gathers — and a single row access brings
// all agents' data through the cache together.
type KVBuffer struct {
	spec Spec

	rowStride  int   // float64s per row (all agents, all fields)
	obsOff     []int // per-agent offset of obs within a row
	actOff     []int
	rewOff     []int
	nextObsOff []int
	doneOff    []int

	data   []float64 // capacity·rowStride, one contiguous allocation
	length int
	next   int

	tracer Tracer
	base   uint64
}

// NewKVBuffer allocates an empty key-value replay table for spec.
func NewKVBuffer(spec Spec) *KVBuffer {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	k := &KVBuffer{spec: spec, base: 1 << 40}
	k.obsOff = make([]int, spec.NumAgents)
	k.actOff = make([]int, spec.NumAgents)
	k.rewOff = make([]int, spec.NumAgents)
	k.nextObsOff = make([]int, spec.NumAgents)
	k.doneOff = make([]int, spec.NumAgents)
	off := 0
	for a := 0; a < spec.NumAgents; a++ {
		od := spec.ObsDims[a]
		k.obsOff[a] = off
		off += od
		k.actOff[a] = off
		off += spec.ActDim
		k.rewOff[a] = off
		off++
		k.nextObsOff[a] = off
		off += od
		k.doneOff[a] = off
		off++
	}
	k.rowStride = off
	k.data = make([]float64, spec.Capacity*off)
	return k
}

// ReorganizeFrom rebuilds the key-value table from a baseline per-agent
// buffer — the data-reshaping pass whose cost Figure 14 charges against the
// layout's sampling-phase savings. It returns the number of transitions
// copied.
func (k *KVBuffer) ReorganizeFrom(b *Buffer) int {
	if b.spec.NumAgents != k.spec.NumAgents || b.spec.ActDim != k.spec.ActDim {
		panic("replay: ReorganizeFrom spec mismatch")
	}
	for a, d := range b.spec.ObsDims {
		if d != k.spec.ObsDims[a] {
			panic(fmt.Sprintf("replay: ReorganizeFrom obs dim mismatch for agent %d", a))
		}
	}
	n := b.Len()
	if n > k.spec.Capacity {
		n = k.spec.Capacity
	}
	ad := k.spec.ActDim
	for idx := 0; idx < n; idx++ {
		row := k.data[idx*k.rowStride : (idx+1)*k.rowStride]
		for a := 0; a < k.spec.NumAgents; a++ {
			od := k.spec.ObsDims[a]
			copy(row[k.obsOff[a]:k.obsOff[a]+od], b.obs[a][idx*od:(idx+1)*od])
			copy(row[k.actOff[a]:k.actOff[a]+ad], b.act[a][idx*ad:(idx+1)*ad])
			row[k.rewOff[a]] = b.rew[a][idx]
			copy(row[k.nextObsOff[a]:k.nextObsOff[a]+od], b.nextObs[a][idx*od:(idx+1)*od])
			row[k.doneOff[a]] = b.done[a][idx]
		}
	}
	k.length = n
	k.next = b.next % k.spec.Capacity
	return n
}

// Add stores one environment step for all agents directly in interleaved
// form (the maintained-incrementally mode) and returns the slot index.
func (k *KVBuffer) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) int {
	n := k.spec.NumAgents
	if len(obs) != n || len(act) != n || len(rew) != n || len(nextObs) != n || len(done) != n {
		panic(fmt.Sprintf("replay: KVBuffer.Add got %d/%d/%d/%d/%d rows, want %d each", len(obs), len(act), len(rew), len(nextObs), len(done), n))
	}
	idx := k.next
	row := k.data[idx*k.rowStride : (idx+1)*k.rowStride]
	ad := k.spec.ActDim
	for a := 0; a < n; a++ {
		od := k.spec.ObsDims[a]
		copy(row[k.obsOff[a]:k.obsOff[a]+od], obs[a])
		copy(row[k.actOff[a]:k.actOff[a]+ad], act[a])
		row[k.rewOff[a]] = rew[a]
		copy(row[k.nextObsOff[a]:k.nextObsOff[a]+od], nextObs[a])
		row[k.doneOff[a]] = done[a]
	}
	k.next = (k.next + 1) % k.spec.Capacity
	if k.length < k.spec.Capacity {
		k.length++
	}
	return idx
}

// Len returns the number of stored transitions.
func (k *KVBuffer) Len() int { return k.length }

// Spec returns the table's shape description.
func (k *KVBuffer) Spec() Spec { return k.spec }

// RowStride returns the float64 count of one interleaved row.
func (k *KVBuffer) RowStride() int { return k.rowStride }

// SetTracer installs (or clears) the address tracer.
func (k *KVBuffer) SetTracer(t Tracer) { k.tracer = t }

// GatherRows copies the full interleaved rows at indices into dst — the
// pure O(m) inter-agent sampling loop of §IV-B2 (one contiguous copy per
// key, no per-agent handling). dst must hold at least
// len(indices)·RowStride() float64s.
func (k *KVBuffer) GatherRows(indices []int, dst []float64) {
	if len(dst) < len(indices)*k.rowStride {
		panic(fmt.Sprintf("replay: GatherRows dst %d floats for %d rows of %d", len(dst), len(indices), k.rowStride))
	}
	for rowN, idx := range indices {
		if idx < 0 || idx >= k.length {
			panic(fmt.Sprintf("replay: KVBuffer gather index %d outside [0,%d)", idx, k.length))
		}
		if k.tracer != nil {
			k.tracer.Access(k.base+uint64(idx*k.rowStride*8), k.rowStride*8)
		}
		copy(dst[rowN*k.rowStride:(rowN+1)*k.rowStride], k.data[idx*k.rowStride:(idx+1)*k.rowStride])
	}
}

// SplitRows reshapes count gathered interleaved rows (from GatherRows) into
// the per-agent batch tensors the networks consume — the "data reshaping"
// pass whose cost Figure 14 charges against the layout's sampling savings.
func (k *KVBuffer) SplitRows(rows []float64, count int, dst []*AgentBatch) {
	if len(dst) != k.spec.NumAgents {
		panic(fmt.Sprintf("replay: SplitRows got %d batches for %d agents", len(dst), k.spec.NumAgents))
	}
	if len(rows) < count*k.rowStride {
		panic(fmt.Sprintf("replay: SplitRows got %d floats for %d rows of %d", len(rows), count, k.rowStride))
	}
	ad := k.spec.ActDim
	for rowN := 0; rowN < count; rowN++ {
		row := rows[rowN*k.rowStride : (rowN+1)*k.rowStride]
		for a := 0; a < k.spec.NumAgents; a++ {
			od := k.spec.ObsDims[a]
			d := dst[a]
			copy(d.Obs.Row(rowN), row[k.obsOff[a]:k.obsOff[a]+od])
			copy(d.Act.Row(rowN), row[k.actOff[a]:k.actOff[a]+ad])
			d.Rew.Data[rowN] = row[k.rewOff[a]]
			copy(d.NextObs.Row(rowN), row[k.nextObsOff[a]:k.nextObsOff[a]+od])
			d.Done.Data[rowN] = row[k.doneOff[a]]
		}
	}
}

// GatherAll copies the transitions at indices for every agent in a single
// loop over rows — the O(m) sampling path with the per-agent split fused in
// (the layout this repository's trainer uses). dst must hold one AgentBatch
// per agent.
func (k *KVBuffer) GatherAll(indices []int, dst []*AgentBatch) {
	if len(dst) != k.spec.NumAgents {
		panic(fmt.Sprintf("replay: KVBuffer.GatherAll got %d batches for %d agents", len(dst), k.spec.NumAgents))
	}
	ad := k.spec.ActDim
	for rowN, idx := range indices {
		if idx < 0 || idx >= k.length {
			panic(fmt.Sprintf("replay: KVBuffer gather index %d outside [0,%d)", idx, k.length))
		}
		row := k.data[idx*k.rowStride : (idx+1)*k.rowStride]
		if k.tracer != nil {
			k.tracer.Access(k.base+uint64(idx*k.rowStride*8), k.rowStride*8)
		}
		for a := 0; a < k.spec.NumAgents; a++ {
			od := k.spec.ObsDims[a]
			d := dst[a]
			copy(d.Obs.Row(rowN), row[k.obsOff[a]:k.obsOff[a]+od])
			copy(d.Act.Row(rowN), row[k.actOff[a]:k.actOff[a]+ad])
			d.Rew.Data[rowN] = row[k.rewOff[a]]
			copy(d.NextObs.Row(rowN), row[k.nextObsOff[a]:k.nextObsOff[a]+od])
			d.Done.Data[rowN] = row[k.doneOff[a]]
		}
	}
}
