package replay

import (
	"fmt"
)

// KVBuffer is the paper's transition data-layout reorganization (§IV-B2):
// instead of per-agent buffers in distant allocations, the replay store
// becomes a key-value table where the key is the time index and the value
// is every agent's transition for that step, laid out contiguously. A
// mini-batch gather then runs one loop of m row copies — O(m) instead of
// the baseline O(N·m) scattered gathers — and a single row access brings
// all agents' data through the cache together.
//
// The row shape itself lives in RowLayout, shared with the segment-packed
// experience store and the actor/learner wire format.
type KVBuffer struct {
	spec   Spec
	layout RowLayout

	data   []float64 // capacity·stride, one contiguous allocation
	length int
	next   int

	tracer Tracer
	base   uint64
}

// NewKVBuffer allocates an empty key-value replay table for spec.
func NewKVBuffer(spec Spec) *KVBuffer {
	k := &KVBuffer{spec: spec, layout: NewRowLayout(spec), base: 1 << 40}
	k.data = make([]float64, spec.Capacity*k.layout.Stride())
	return k
}

// ReorganizeFrom rebuilds the key-value table from a baseline per-agent
// buffer — the data-reshaping pass whose cost Figure 14 charges against the
// layout's sampling-phase savings. It returns the number of transitions
// copied.
func (k *KVBuffer) ReorganizeFrom(b *Buffer) int {
	if b.spec.NumAgents != k.spec.NumAgents || b.spec.ActDim != k.spec.ActDim {
		panic("replay: ReorganizeFrom spec mismatch")
	}
	for a, d := range b.spec.ObsDims {
		if d != k.spec.ObsDims[a] {
			panic(fmt.Sprintf("replay: ReorganizeFrom obs dim mismatch for agent %d", a))
		}
	}
	n := b.Len()
	if n > k.spec.Capacity {
		n = k.spec.Capacity
	}
	stride := k.layout.Stride()
	ad := k.spec.ActDim
	for idx := 0; idx < n; idx++ {
		row := k.data[idx*stride : (idx+1)*stride]
		for a := 0; a < k.spec.NumAgents; a++ {
			od := k.spec.ObsDims[a]
			copy(row[k.layout.obsOff[a]:k.layout.obsOff[a]+od], b.obs[a][idx*od:(idx+1)*od])
			copy(row[k.layout.actOff[a]:k.layout.actOff[a]+ad], b.act[a][idx*ad:(idx+1)*ad])
			row[k.layout.rewOff[a]] = b.rew[a][idx]
			copy(row[k.layout.nxtOff[a]:k.layout.nxtOff[a]+od], b.nextObs[a][idx*od:(idx+1)*od])
			row[k.layout.dnOff[a]] = b.done[a][idx]
		}
	}
	k.length = n
	k.next = b.next % k.spec.Capacity
	return n
}

// Add stores one environment step for all agents directly in interleaved
// form (the maintained-incrementally mode) and returns the slot index.
func (k *KVBuffer) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) int {
	idx := k.next
	stride := k.layout.Stride()
	k.layout.PackRow(k.data[idx*stride:(idx+1)*stride], obs, act, rew, nextObs, done)
	k.next = (k.next + 1) % k.spec.Capacity
	if k.length < k.spec.Capacity {
		k.length++
	}
	return idx
}

// Len returns the number of stored transitions.
func (k *KVBuffer) Len() int { return k.length }

// Spec returns the table's shape description.
func (k *KVBuffer) Spec() Spec { return k.spec }

// Layout returns the shared interleaved row layout.
func (k *KVBuffer) Layout() RowLayout { return k.layout }

// RowStride returns the float64 count of one interleaved row.
func (k *KVBuffer) RowStride() int { return k.layout.Stride() }

// SetTracer installs (or clears) the address tracer.
func (k *KVBuffer) SetTracer(t Tracer) { k.tracer = t }

// GatherRows copies the full interleaved rows at indices into dst — the
// pure O(m) inter-agent sampling loop of §IV-B2 (one contiguous copy per
// key, no per-agent handling). dst must hold at least
// len(indices)·RowStride() float64s.
func (k *KVBuffer) GatherRows(indices []int, dst []float64) {
	stride := k.layout.Stride()
	if len(dst) < len(indices)*stride {
		panic(fmt.Sprintf("replay: GatherRows dst %d floats for %d rows of %d", len(dst), len(indices), stride))
	}
	for rowN, idx := range indices {
		if idx < 0 || idx >= k.length {
			panic(fmt.Sprintf("replay: KVBuffer gather index %d outside [0,%d)", idx, k.length))
		}
		if k.tracer != nil {
			k.tracer.Access(k.base+uint64(idx*stride*8), stride*8)
		}
		copy(dst[rowN*stride:(rowN+1)*stride], k.data[idx*stride:(idx+1)*stride])
	}
}

// SplitRows reshapes count gathered interleaved rows (from GatherRows) into
// the per-agent batch tensors the networks consume — the "data reshaping"
// pass whose cost Figure 14 charges against the layout's sampling savings.
func (k *KVBuffer) SplitRows(rows []float64, count int, dst []*AgentBatch) {
	if len(dst) != k.spec.NumAgents {
		panic(fmt.Sprintf("replay: SplitRows got %d batches for %d agents", len(dst), k.spec.NumAgents))
	}
	k.layout.SplitRows(rows, count, dst)
}

// GatherAll copies the transitions at indices for every agent in a single
// loop over rows — the O(m) sampling path with the per-agent split fused in
// (the layout this repository's trainer uses). dst must hold one AgentBatch
// per agent.
func (k *KVBuffer) GatherAll(indices []int, dst []*AgentBatch) {
	if len(dst) != k.spec.NumAgents {
		panic(fmt.Sprintf("replay: KVBuffer.GatherAll got %d batches for %d agents", len(dst), k.spec.NumAgents))
	}
	stride := k.layout.Stride()
	for rowN, idx := range indices {
		if idx < 0 || idx >= k.length {
			panic(fmt.Sprintf("replay: KVBuffer gather index %d outside [0,%d)", idx, k.length))
		}
		row := k.data[idx*stride : (idx+1)*stride]
		if k.tracer != nil {
			k.tracer.Access(k.base+uint64(idx*stride*8), stride*8)
		}
		k.layout.SplitRowInto(dst, rowN, row)
	}
}
