package replay

import (
	"fmt"
	"math"
	"math/rand"
)

// NeighborPredictor maps a normalized priority weight in [0,1] to the
// number of contiguous neighbors to expand around a reference point. The
// paper's setting (§VI-C1): w < 0.33 → 1 neighbor, 0.33–0.66 → 2, above
// 0.66 → 4, letting information-rich regions contribute longer sequential
// runs.
type NeighborPredictor struct {
	Thresholds []float64 // ascending threshold levels
	Neighbors  []int     // len = len(Thresholds)+1
}

// DefaultNeighborPredictor returns the paper's T1=0.33 / T2=0.66 →
// N1=1 / N2=2 / N3=4 predictor.
func DefaultNeighborPredictor() NeighborPredictor {
	return NeighborPredictor{Thresholds: []float64{0.33, 0.66}, Neighbors: []int{1, 2, 4}}
}

// Predict returns the neighbor count for normalized weight w.
func (p NeighborPredictor) Predict(w float64) int {
	if len(p.Neighbors) != len(p.Thresholds)+1 {
		panic(fmt.Sprintf("replay: predictor has %d neighbor levels for %d thresholds", len(p.Neighbors), len(p.Thresholds)))
	}
	for i, t := range p.Thresholds {
		if w < t {
			return p.Neighbors[i]
		}
	}
	return p.Neighbors[len(p.Neighbors)-1]
}

// IPLocalitySampler is the paper's information-prioritized locality-aware
// sampler (§IV-B1): reference points are drawn proportional to PER
// priorities, each reference expands into a predictor-chosen run of
// contiguous neighbors, and Lemma-1 importance weights
// w_i = (1/N · 1/P(i))^β compensate the distribution shift.
type IPLocalitySampler struct {
	per       *PERSampler
	Predictor NeighborPredictor
	Beta      float64 // Lemma-1 compensation parameter (1 = full)
}

// NewIPLocalitySampler builds the IP sampler sharing priorities with a PER
// core over buf. β=1 gives full Lemma-1 compensation.
func NewIPLocalitySampler(buf *Buffer, beta float64) *IPLocalitySampler {
	return &IPLocalitySampler{
		per:       NewPERSampler(buf),
		Predictor: DefaultNeighborPredictor(),
		Beta:      beta,
	}
}

// Name implements Sampler.
func (s *IPLocalitySampler) Name() string { return "ip-locality" }

// Sample implements Sampler: proportional reference selection, neighbor
// expansion, Lemma-1 weights. Exactly n indices are returned; the last run
// is truncated if needed.
func (s *IPLocalitySampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler. Like the PER core it only reads the sum
// tree, so concurrent calls with distinct dst/rng are safe while priority
// updates are deferred.
func (s *IPLocalitySampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	buf := s.per.buf
	length := buf.Len()
	if length == 0 {
		panic("replay: sampling from empty buffer")
	}
	total := s.per.tree.Total()
	if total <= 0 {
		panic("replay: IP sampler has zero total priority")
	}
	dst.Reset(n)
	dst.growWeights(n)
	dst.growRefs(n)
	flen := float64(length)
	maxW := 0.0
	for len(dst.Indices) < n {
		ref := s.per.tree.Find(rng.Float64() * total)
		if ref >= length {
			ref = rng.Intn(length)
		}
		dst.Refs = append(dst.Refs, ref)
		run := s.Predictor.Predict(s.per.NormalizedPriority(ref))
		if rem := n - len(dst.Indices); run > rem {
			run = rem
		}
		// Lemma 1: the inclusion probability of the run is driven by the
		// reference's priority; neighbors inherit the reference weight, as
		// the paper's predictor applies one weight per reference expansion.
		prob := s.per.probability(ref)
		if prob <= 0 {
			prob = 1 / flen
		}
		w := math.Pow(1/(flen*prob), s.Beta)
		if w > maxW {
			maxW = w
		}
		for k := 0; k < run; k++ {
			dst.Indices = append(dst.Indices, (ref+k)%length)
			dst.Weights = append(dst.Weights, w)
		}
	}
	if maxW > 0 {
		for i := range dst.Weights {
			dst.Weights[i] /= maxW
		}
	}
}

// UpdatePriorities implements PrioritySampler, feeding TD errors back into
// the shared priority tree (with the PER core's NaN/Inf/negative clamping).
func (s *IPLocalitySampler) UpdatePriorities(indices []int, tdAbs []float64) {
	s.per.UpdatePriorities(indices, tdAbs)
}

// SanitizedCount returns how many TD errors the shared PER core clamped.
func (s *IPLocalitySampler) SanitizedCount() uint64 { return s.per.SanitizedCount() }

// PER exposes the underlying proportional core (for tests and ablations).
func (s *IPLocalitySampler) PER() *PERSampler { return s.per }
