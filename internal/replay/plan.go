package replay

import (
	"fmt"
	"math/rand"
)

// Sample-plan strategies executable server-side by the experience service.
// Only strategies whose index selection is a pure function of
// (length, seed) qualify: prioritized samplers carry mutable client-side
// state (sum trees, rank heaps) that cannot be replayed remotely.
const (
	// PlanUniform is baseline i.i.d. uniform index selection.
	PlanUniform = "uniform"
	// PlanLocality is the paper's Algorithm 1: uniform reference points
	// expanded into contiguous neighbor runs, so the server-side gather
	// streams sequentially over the segment rows.
	PlanLocality = "locality"
)

// SamplePlan describes a mini-batch index selection as pure data, so the
// same selection runs identically against a local buffer or inside the
// remote experience service. The strategy is seeded per request: the
// learner draws one seed from its RNG stream and both sides derive the
// identical index set from it, which is what makes remote-fed training
// bit-reproducible against local training.
type SamplePlan struct {
	Strategy  string `json:"strategy"`
	Neighbors int    `json:"neighbors,omitempty"` // locality: run length
	Refs      int    `json:"refs,omitempty"`      // locality: nominal reference count (reporting)
}

// Validate reports whether the plan is executable.
func (p SamplePlan) Validate() error {
	switch p.Strategy {
	case PlanUniform:
		return nil
	case PlanLocality:
		if p.Neighbors < 1 {
			return fmt.Errorf("replay: locality plan needs Neighbors ≥1, got %d", p.Neighbors)
		}
		return nil
	default:
		return fmt.Errorf("replay: unknown sample plan strategy %q (want %q or %q)", p.Strategy, PlanUniform, PlanLocality)
	}
}

// String returns the plan's report name.
func (p SamplePlan) String() string {
	if p.Strategy == PlanLocality {
		return fmt.Sprintf("%s(n=%d,ref=%d)", p.Strategy, p.Neighbors, p.Refs)
	}
	return p.Strategy
}

// FillIndices writes len(dst) transition indices over [0, length) into dst,
// derived deterministically from seed. The index stream is identical on
// every host for the same (plan, length, seed), which both sides of the
// actor/learner split rely on.
func (p SamplePlan) FillIndices(dst []int, length int, seed int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if length < 1 {
		return fmt.Errorf("replay: sample plan over empty store")
	}
	rng := rand.New(rand.NewSource(seed))
	switch p.Strategy {
	case PlanUniform:
		for i := range dst {
			dst[i] = rng.Intn(length)
		}
	case PlanLocality:
		filled := 0
		for filled < len(dst) {
			ref := rng.Intn(length)
			run := p.Neighbors
			if rem := len(dst) - filled; run > rem {
				run = rem
			}
			for k := 0; k < run; k++ {
				dst[filled] = (ref + k) % length
				filled++
			}
		}
	}
	return nil
}
