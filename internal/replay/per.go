package replay

import (
	"fmt"
	"math"
	"math/rand"
)

// PERSampler implements proportional prioritized experience replay
// (Schaul et al., 2015), the PER-MADDPG baseline the paper compares
// against. Priorities are p_i = (|δ_i| + ε)^α; sampling is proportional via
// a sum tree; bias is compensated with importance weights
// w_i = (1/N · 1/P(i))^β, normalized by the max weight.
type PERSampler struct {
	buf   *Buffer
	tree  *SumTree
	Alpha float64
	Beta  float64
	Eps   float64

	maxPriority float64 // running max, assigned to fresh transitions
	sanitized   uint64  // TD errors clamped by sanitizePriority
}

// priorityFloor replaces NaN, Inf and negative TD errors. One bad priority
// in the sum tree poisons every subsequent proportional sample (NaN totals
// make Find undefined; Inf swallows the whole distribution), so divergent
// updates are clamped to a tiny positive priority instead of propagated.
const priorityFloor = 1e-8

// sanitizePriority returns a safe priority for td and whether it had to be
// clamped.
func sanitizePriority(td float64) (float64, bool) {
	if math.IsNaN(td) || math.IsInf(td, 0) || td < 0 {
		return priorityFloor, true
	}
	return td, false
}

// NewPERSampler builds a proportional PER sampler over buf with the
// standard α=0.6, β=0.4, ε=1e-6 defaults, registering itself so new
// transitions enter at max priority.
func NewPERSampler(buf *Buffer) *PERSampler {
	s := &PERSampler{
		buf:         buf,
		tree:        NewSumTree(buf.Capacity()),
		Alpha:       0.6,
		Beta:        0.4,
		Eps:         1e-6,
		maxPriority: 1,
	}
	buf.AddListener(s.onAdd)
	return s
}

// Name implements Sampler.
func (s *PERSampler) Name() string { return "per" }

// onAdd gives a freshly written slot the current maximum priority so every
// transition is sampled at least once with high probability.
func (s *PERSampler) onAdd(idx int) {
	s.tree.Set(idx, math.Pow(s.maxPriority+s.Eps, s.Alpha))
}

// Sample implements Sampler: stratified proportional sampling with
// importance weights.
func (s *PERSampler) Sample(n int, rng *rand.Rand) Sample {
	return sampled(s, n, rng)
}

// SampleInto implements Sampler. It only reads the sum tree, so concurrent
// calls with distinct dst/rng are safe while priority updates are deferred.
func (s *PERSampler) SampleInto(dst *Sample, n int, rng *rand.Rand) {
	if s.buf.Len() == 0 {
		panic("replay: sampling from empty buffer")
	}
	total := s.tree.Total()
	if total <= 0 {
		panic("replay: PER tree has zero total priority")
	}
	dst.Reset(n)
	dst.growWeights(n)
	segment := total / float64(n)
	length := float64(s.buf.Len())
	maxW := 0.0
	for i := 0; i < n; i++ {
		v := (float64(i) + rng.Float64()) * segment
		leaf := s.tree.Find(v)
		if leaf >= s.buf.Len() {
			leaf = rng.Intn(s.buf.Len())
		}
		dst.Indices = append(dst.Indices, leaf)
		prob := s.tree.Get(leaf) / total
		if prob <= 0 {
			prob = 1 / length
		}
		w := math.Pow(1/(length*prob), s.Beta)
		dst.Weights = append(dst.Weights, w)
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range dst.Weights {
			dst.Weights[i] /= maxW
		}
	}
}

// UpdatePriorities implements PrioritySampler. Non-finite and negative TD
// errors are clamped to priorityFloor (and counted) before they can enter
// the sum tree.
func (s *PERSampler) UpdatePriorities(indices []int, tdAbs []float64) {
	if len(indices) != len(tdAbs) {
		panic(fmt.Sprintf("replay: UpdatePriorities got %d indices, %d errors", len(indices), len(tdAbs)))
	}
	for i, idx := range indices {
		td, clamped := sanitizePriority(tdAbs[i])
		if clamped {
			s.sanitized++
		}
		if td > s.maxPriority {
			s.maxPriority = td
		}
		s.tree.Set(idx, math.Pow(td+s.Eps, s.Alpha))
	}
}

// SanitizedCount returns how many TD errors were clamped because they were
// NaN, Inf or negative.
func (s *PERSampler) SanitizedCount() uint64 { return s.sanitized }

// NormalizedPriority returns leaf idx's priority scaled to [0, 1] by the
// current max — the "normalized weight" the IP predictor thresholds.
func (s *PERSampler) NormalizedPriority(idx int) float64 {
	denom := math.Pow(s.maxPriority+s.Eps, s.Alpha)
	if denom <= 0 {
		return 0
	}
	p := s.tree.Get(idx) / denom
	if p > 1 {
		p = 1
	}
	return p
}

// probability returns P(idx) under the current priority distribution.
func (s *PERSampler) probability(idx int) float64 {
	total := s.tree.Total()
	if total <= 0 {
		return 0
	}
	return s.tree.Get(idx) / total
}
