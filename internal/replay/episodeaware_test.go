package replay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fillWithEpisodes adds n transitions where every epLen-th transition is an
// episode terminal (done=1), mirroring the trainer's fixed-length episodes.
func fillWithEpisodes(b *Buffer, n, epLen int) {
	spec := b.Spec()
	obs := make([][]float64, spec.NumAgents)
	act := make([][]float64, spec.NumAgents)
	rew := make([]float64, spec.NumAgents)
	nextObs := make([][]float64, spec.NumAgents)
	done := make([]float64, spec.NumAgents)
	for a := 0; a < spec.NumAgents; a++ {
		obs[a] = make([]float64, spec.ObsDims[a])
		nextObs[a] = make([]float64, spec.ObsDims[a])
		act[a] = make([]float64, spec.ActDim)
	}
	for t := 0; t < n; t++ {
		flag := 0.0
		if (t+1)%epLen == 0 {
			flag = 1
		}
		for a := range done {
			done[a] = flag
		}
		b.Add(obs, act, rew, nextObs, done)
	}
}

func TestEpisodeAwareRunsNeverCrossBoundaries(t *testing.T) {
	const epLen = 25
	b := NewBuffer(testSpec(512))
	fillWithEpisodes(b, 500, epLen)
	s := NewEpisodeAwareLocalitySampler(b, 16, 64)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		sample := s.Sample(256, rng)
		if len(sample.Indices) != 256 {
			t.Fatalf("got %d indices", len(sample.Indices))
		}
		// Within each run (consecutive indices), no interior element may be
		// a terminal: a done flag must be the last element of its run.
		for i := 0; i+1 < len(sample.Indices); i++ {
			cur, next := sample.Indices[i], sample.Indices[i+1]
			if next == (cur+1)%b.Len() && b.done[0][cur] != 0 {
				t.Fatalf("run continued past terminal at index %d", cur)
			}
		}
	}
}

func TestEpisodeAwareFallsBackToPlainLocalityWithoutTerminals(t *testing.T) {
	b := NewBuffer(testSpec(256))
	fillBuffer(b, 200) // fillBuffer writes done = t%2 — has terminals
	// Build a terminal-free buffer instead.
	b2 := NewBuffer(testSpec(256))
	fillWithEpisodes(b2, 200, 1_000_000) // no terminal within range
	s := NewEpisodeAwareLocalitySampler(b2, 8, 4)
	sample := s.Sample(32, rand.New(rand.NewSource(2)))
	// With no terminals every run is full-length: exactly 32/8 = 4 refs.
	if len(sample.Refs) != 4 {
		t.Fatalf("refs = %d, want 4 with no terminals", len(sample.Refs))
	}
}

func TestEpisodeAwareStillFillsExactBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuffer(testSpec(256))
		fillWithEpisodes(b, 50+r.Intn(200), 2+r.Intn(10))
		s := NewEpisodeAwareLocalitySampler(b, 1+r.Intn(16), 1+r.Intn(8))
		n := 1 + r.Intn(128)
		sample := s.Sample(n, r)
		if len(sample.Indices) != n {
			return false
		}
		for _, idx := range sample.Indices {
			if idx < 0 || idx >= b.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEpisodeAwareBadParamsPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	defer func() {
		if recover() == nil {
			t.Fatal("zero refs did not panic")
		}
	}()
	NewEpisodeAwareLocalitySampler(b, 4, 0)
}

func TestEpisodeAwareEmptyBufferPanics(t *testing.T) {
	b := NewBuffer(testSpec(8))
	s := NewEpisodeAwareLocalitySampler(b, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty buffer did not panic")
		}
	}()
	s.Sample(4, rand.New(rand.NewSource(1)))
}
