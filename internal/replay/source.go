package replay

// TransitionSource is the learner-side abstraction over where experience
// lives: an in-process row store or the remote experience service. The
// trainer draws one seed per mini-batch from the requesting agent's RNG
// stream and the source materializes the batch; because index selection is
// a pure function of (plan, length, seed), a local and a remote source fed
// the same rows in the same order produce bit-identical batches.
type TransitionSource interface {
	// Len returns the number of transitions currently sampleable. Remote
	// implementations may perform I/O.
	Len() (int, error)
	// SampleBatch fills dst (one AgentBatch per agent, each with ≥ n rows)
	// with n transitions selected by the source's plan seeded with seed,
	// and returns the chosen insertion-order row indices for diagnostics.
	// The returned slice is only valid until the next call.
	SampleBatch(n int, seed int64, dst []*AgentBatch) ([]int, error)
}

// BatchPrefetcher is the optional overlap hook a TransitionSource may
// implement: the trainer announces the (n, seed) pairs it is about to
// request — one per agent, drawn serially before the update fan-out — and
// the source may start fetching them while gradients are still being
// computed. Purely advisory: a source is free to ignore the hint, and a
// SampleBatch for an unannounced seed must still work. Because batch
// content is a pure function of (plan, length, seed), prefetching can
// change only timing, never the bytes a learner trains on.
type BatchPrefetcher interface {
	// PrefetchBatch hints that SampleBatch(n, seed) calls for each seed in
	// seeds are imminent. It must not block on the fetches themselves.
	PrefetchBatch(n int, seeds []int64)
}

// TransitionSink receives every transition an actor (or learner) collects,
// in collection order. Implementations may buffer; Flush publishes
// everything buffered so far and must be called before the producer relies
// on the rows being visible to samplers.
type TransitionSink interface {
	// Add appends one environment step (all agents). The slices are only
	// valid during the call; implementations must copy.
	Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error
	// Flush publishes buffered rows.
	Flush() error
}
