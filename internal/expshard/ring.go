// Package expshard implements the sharded, replicated replay fabric's
// placement layer: a consistent-hash ring that assigns time-striped
// partitions of the experience stream to N logical shard groups, each
// backed by R replica marl-replayd processes.
//
// The ring design (described inline — there is no external reference
// implementation in-tree):
//
//   - Each shard *group* is hashed onto a 64-bit circle at V virtual
//     points (vnodes) using FNV-1a over "groupID#k". Partition p's
//     point is a mixed hash of p; the partition is owned by the first
//     vnode clockwise. Virtual nodes keep ownership balanced, and the
//     consistent-hashing property holds: when a group joins or leaves,
//     only partitions adjacent to its vnodes change owner.
//   - The full replica→partition→shard mapping is materialized into an
//     immutable Snapshot (Part2Group table plus per-group member lists)
//     held in an atomic.Pointer, so readers on the sample/append hot
//     path take a single atomic load, never a lock. Rebuild swaps the
//     whole snapshot and bumps a version counter.
//   - The placement is a pure function of the *set* of group IDs (the
//     build sorts vnodes and resolves ties on the hash value by group
//     ID), so every process that knows the member set derives the
//     identical partition map — no coordination service required.
//
// Row placement is time-striped: the row with producer stream index t
// lands in partition (offset+t) mod Partitions. That makes the global
// index ↔ (group, local index) mapping closed-form arithmetic (see
// view.go), which is what lets sample plans execute server-side per
// shard and merge back bit-identically to a single store.
package expshard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
)

// DefaultPartitions is the default number of hash-ring partitions.
// It bounds placement skew (≤ 1/Partitions per stripe cycle) and is
// carried on the wire as a single byte per partition, so it must stay
// small; 64 keeps the per-request view under 200 bytes.
const DefaultPartitions = 64

// MaxPartitions bounds the wire encoding (one byte per partition slot).
const MaxPartitions = 1024

// MaxGroups bounds group indices to a byte on the wire.
const MaxGroups = 255

// vnodesPerGroup is the virtual-node count per shard group. 64 vnodes
// keeps the max/min partition-ownership ratio under ~2x for small N.
const vnodesPerGroup = 64

// Member is one replayd process backing a shard group.
type Member struct {
	// Addr is the host:port of the replayd HTTP endpoint.
	Addr string
}

// Group is a logical shard: R replica members holding identical copies
// of the group's sub-stream. Appends fan out to every member; reads
// prefer the first live member in order.
type Group struct {
	// ID names the group on the hash ring. Placement depends only on
	// the set of IDs, never on member addresses, so replacing a dead
	// replica does not move data.
	ID      string
	Members []Member
}

// Snapshot is an immutable view of the ring: the replica→partition→
// shard maps for one membership version. Built once, then shared
// read-only via Ring's atomic pointer.
type Snapshot struct {
	Version    uint64
	Partitions int
	Groups     []Group
	// Part2Group maps partition index → index into Groups.
	Part2Group []int
}

// NumGroups returns the shard-group count.
func (s *Snapshot) NumGroups() int { return len(s.Groups) }

// MaxReplicas returns the widest replication factor across groups.
func (s *Snapshot) MaxReplicas() int {
	r := 0
	for _, g := range s.Groups {
		if len(g.Members) > r {
			r = len(g.Members)
		}
	}
	return r
}

// OwnedPartitions returns the sorted partition indices owned by group g.
func (s *Snapshot) OwnedPartitions(g int) []int {
	var owned []int
	for p, og := range s.Part2Group {
		if og == g {
			owned = append(owned, p)
		}
	}
	return owned
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is splitmix64's finalizer: spreads small integer partition
// indices uniformly over the circle.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type vnode struct {
	point uint64
	group int // index into the sorted-by-ID group slice
	gid   string
}

// BuildSnapshot computes the partition map for the given groups. The
// result is a pure function of the set of group IDs and the partition
// count: group order in the input does not matter (groups are sorted
// by ID), and no map iteration is involved, so two independent
// processes always derive byte-identical placement.
func BuildSnapshot(groups []Group, partitions int) (*Snapshot, error) {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if partitions > MaxPartitions {
		return nil, fmt.Errorf("expshard: %d partitions exceeds max %d", partitions, MaxPartitions)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("expshard: no shard groups")
	}
	if len(groups) > MaxGroups {
		return nil, fmt.Errorf("expshard: %d groups exceeds max %d", len(groups), MaxGroups)
	}
	sorted := make([]Group, len(groups))
	copy(sorted, groups)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := make(map[string]bool, len(sorted))
	for _, g := range sorted {
		if g.ID == "" {
			return nil, fmt.Errorf("expshard: empty group id")
		}
		if seen[g.ID] {
			return nil, fmt.Errorf("expshard: duplicate group id %q", g.ID)
		}
		seen[g.ID] = true
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("expshard: group %q has no members", g.ID)
		}
	}

	vnodes := make([]vnode, 0, len(sorted)*vnodesPerGroup)
	for gi, g := range sorted {
		for k := 0; k < vnodesPerGroup; k++ {
			// FNV-1a alone clusters badly on short similar strings;
			// the splitmix finalizer spreads the arcs.
			pt := mix64(hash64(fmt.Sprintf("%s#%d", g.ID, k)))
			vnodes = append(vnodes, vnode{point: pt, group: gi, gid: g.ID})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].point != vnodes[j].point {
			return vnodes[i].point < vnodes[j].point
		}
		// Tie-break on group ID so equal hash points (vanishingly
		// rare, but possible) still resolve identically everywhere.
		return vnodes[i].gid < vnodes[j].gid
	})

	part2group := make([]int, partitions)
	for p := 0; p < partitions; p++ {
		pt := mix64(uint64(p))
		// First vnode clockwise from the partition's point.
		i := sort.Search(len(vnodes), func(i int) bool { return vnodes[i].point >= pt })
		if i == len(vnodes) {
			i = 0
		}
		part2group[p] = vnodes[i].group
	}
	return &Snapshot{Partitions: partitions, Groups: sorted, Part2Group: part2group}, nil
}

// Ring holds the current snapshot behind an atomic pointer. Readers
// call Snapshot() (one atomic load); membership changes go through
// Rebuild, which constructs a fresh snapshot and swaps it in.
type Ring struct {
	cur      atomic.Pointer[Snapshot]
	rebuilds atomic.Uint64
}

// NewRing builds the initial snapshot (version 1) for the groups.
func NewRing(groups []Group, partitions int) (*Ring, error) {
	snap, err := BuildSnapshot(groups, partitions)
	if err != nil {
		return nil, err
	}
	snap.Version = 1
	r := &Ring{}
	r.cur.Store(snap)
	return r, nil
}

// Snapshot returns the current immutable ring snapshot.
func (r *Ring) Snapshot() *Snapshot { return r.cur.Load() }

// Rebuild recomputes placement for a changed membership and atomically
// installs it with a bumped version. By the consistent-hashing
// property only partitions owned by joining/leaving groups move.
func (r *Ring) Rebuild(groups []Group) (*Snapshot, error) {
	old := r.cur.Load()
	snap, err := BuildSnapshot(groups, old.Partitions)
	if err != nil {
		return nil, err
	}
	snap.Version = old.Version + 1
	r.cur.Store(snap)
	r.rebuilds.Add(1)
	return snap, nil
}

// Rebuilds returns how many times Rebuild has installed a new snapshot.
func (r *Ring) Rebuilds() uint64 { return r.rebuilds.Load() }

// ParseSpec parses a fabric topology string: comma-separated shard
// groups, each a pipe-separated list of replica member addresses, with
// an optional "id=" group-name prefix:
//
//	"h1:9300"                               1 group, R=1 (degenerate)
//	"h1:9300,h2:9300"                       2 groups, R=1
//	"h1:9300|h1:9301,h2:9300|h2:9301"       2 groups, R=2
//	"east=h1:9300|h2:9300,west=h3:9300"     named groups
//
// Unnamed groups get stable IDs "shard-0", "shard-1", … by position.
// Naming groups explicitly keeps placement stable when the list is
// reordered or a replica address changes.
// DefaultGroupID is the stable ID assigned to the i-th unnamed group.
func DefaultGroupID(i int) string { return fmt.Sprintf("shard-%d", i) }

func ParseSpec(spec string) ([]Group, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("expshard: empty fabric spec")
	}
	var groups []Group
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("expshard: empty group at position %d", i)
		}
		id := DefaultGroupID(i)
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			id = strings.TrimSpace(part[:eq])
			part = part[eq+1:]
			if id == "" {
				return nil, fmt.Errorf("expshard: empty group id at position %d", i)
			}
		}
		var members []Member
		for _, addr := range strings.Split(part, "|") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("expshard: empty member address in group %q", id)
			}
			members = append(members, Member{Addr: addr})
		}
		groups = append(groups, Group{ID: id, Members: members})
	}
	return groups, nil
}

// IsSharded reports whether a -replay-addr value names a multi-group
// or multi-replica fabric rather than a single plain endpoint.
func IsSharded(spec string) bool {
	return strings.ContainsAny(spec, ",|=")
}

// FormatTopology renders a one-line human summary of the snapshot.
func FormatTopology(s *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ring v%d: %d partitions over %d groups:", s.Version, s.Partitions, len(s.Groups))
	for gi, g := range s.Groups {
		owned := 0
		for _, og := range s.Part2Group {
			if og == gi {
				owned++
			}
		}
		fmt.Fprintf(&b, " %s[R=%d,parts=%d]", g.ID, len(g.Members), owned)
	}
	return b.String()
}
