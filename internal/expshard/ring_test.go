package expshard

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func mkGroups(ids ...string) []Group {
	var gs []Group
	for _, id := range ids {
		gs = append(gs, Group{ID: id, Members: []Member{{Addr: "x"}}})
	}
	return gs
}

func fingerprint(s *Snapshot) uint64 {
	h := fnv.New64a()
	for _, g := range s.Part2Group {
		h.Write([]byte(s.Groups[g].ID))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Placement must be a pure function of the member-ID set: the golden
// fingerprints below were computed once and must hold in every process
// on every platform — this is what "same member set ⇒ identical
// partition map across processes" rests on.
func TestPlacementGoldenFingerprint(t *testing.T) {
	golden := map[int]uint64{
		2: 0x3ced6f209eb9a13c,
		4: 0xf9732ac0ecfec274,
	}
	for n, want := range golden {
		var ids []string
		for i := 0; i < n; i++ {
			ids = append(ids, fmt.Sprintf("shard-%d", i))
		}
		s, err := BuildSnapshot(mkGroups(ids...), 64)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(s); got != want {
			t.Errorf("n=%d fingerprint %#x, want golden %#x", n, got, want)
		}
	}
}

func TestPlacementOrderIndependent(t *testing.T) {
	a, err := BuildSnapshot(mkGroups("east", "west", "north"), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSnapshot(mkGroups("north", "east", "west"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("group insertion order changed placement")
	}
	for i := range a.Groups {
		if a.Groups[i].ID != b.Groups[i].ID {
			t.Fatalf("group order differs at %d: %q vs %q", i, a.Groups[i].ID, b.Groups[i].ID)
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		var ids []string
		for i := 0; i < n; i++ {
			ids = append(ids, fmt.Sprintf("shard-%d", i))
		}
		s, err := BuildSnapshot(mkGroups(ids...), DefaultPartitions)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for _, g := range s.Part2Group {
			counts[g]++
		}
		for gi, c := range counts {
			if c == 0 {
				t.Errorf("n=%d: group %d owns zero partitions", n, gi)
			}
			if c > 3*DefaultPartitions/n {
				t.Errorf("n=%d: group %d owns %d/%d partitions (>3x fair share)", n, gi, c, DefaultPartitions)
			}
		}
	}
}

// Consistent-hashing property: a join may only steal partitions (they
// move to the joiner), and a leave may only reassign the leaver's
// partitions — everything else stays put.
func TestRebalanceMovesOnlyAffectedPartitions(t *testing.T) {
	base := mkGroups("a", "b", "c")
	before, err := BuildSnapshot(base, 128)
	if err != nil {
		t.Fatal(err)
	}
	after, err := BuildSnapshot(mkGroups("a", "b", "c", "d"), 128)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for p := range before.Part2Group {
		idBefore := before.Groups[before.Part2Group[p]].ID
		idAfter := after.Groups[after.Part2Group[p]].ID
		if idBefore != idAfter {
			moved++
			if idAfter != "d" {
				t.Fatalf("join: partition %d moved %s→%s, not to the joiner", p, idBefore, idAfter)
			}
		}
	}
	if moved == 0 {
		t.Fatal("join moved no partitions to the joiner")
	}
	// Leave: rebuild without "b"; only b's partitions may change owner.
	left, err := BuildSnapshot(mkGroups("a", "c"), 128)
	if err != nil {
		t.Fatal(err)
	}
	for p := range before.Part2Group {
		idBefore := before.Groups[before.Part2Group[p]].ID
		idLeft := left.Groups[left.Part2Group[p]].ID
		if idBefore != "b" && idBefore != idLeft {
			t.Fatalf("leave: partition %d moved %s→%s though b left", p, idBefore, idLeft)
		}
	}
}

func TestRingRebuildVersions(t *testing.T) {
	r, err := NewRing(mkGroups("a", "b"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Snapshot().Version; v != 1 {
		t.Fatalf("initial version %d", v)
	}
	if _, err := r.Rebuild(mkGroups("a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	if v := r.Snapshot().Version; v != 2 {
		t.Fatalf("version after rebuild %d", v)
	}
	if r.Rebuilds() != 1 {
		t.Fatalf("rebuild count %d", r.Rebuilds())
	}
	if len(r.Snapshot().Groups) != 3 {
		t.Fatalf("groups after rebuild %d", len(r.Snapshot().Groups))
	}
}

func TestBuildSnapshotErrors(t *testing.T) {
	if _, err := BuildSnapshot(nil, 64); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := BuildSnapshot(mkGroups("a", "a"), 64); err == nil {
		t.Error("duplicate group id accepted")
	}
	if _, err := BuildSnapshot(mkGroups(""), 64); err == nil {
		t.Error("empty group id accepted")
	}
	if _, err := BuildSnapshot([]Group{{ID: "a"}}, 64); err == nil {
		t.Error("memberless group accepted")
	}
	if _, err := BuildSnapshot(mkGroups("a"), MaxPartitions+1); err == nil {
		t.Error("oversized partition count accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		groups  int
		members []int
		ids     []string
	}{
		{"h1:9300", 1, []int{1}, []string{"shard-0"}},
		{"h1:9300,h2:9300", 2, []int{1, 1}, []string{"shard-0", "shard-1"}},
		{"h1:9300|h1:9301,h2:9300|h2:9301", 2, []int{2, 2}, []string{"shard-0", "shard-1"}},
		{"east=h1:9300|h2:9300,west=h3:9300", 2, []int{2, 1}, []string{"east", "west"}},
		{" h1:9300 , h2:9300 ", 2, []int{1, 1}, []string{"shard-0", "shard-1"}},
	}
	for _, c := range cases {
		gs, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if len(gs) != c.groups {
			t.Fatalf("%q: %d groups, want %d", c.spec, len(gs), c.groups)
		}
		for i, g := range gs {
			if len(g.Members) != c.members[i] {
				t.Errorf("%q group %d: %d members, want %d", c.spec, i, len(g.Members), c.members[i])
			}
			if g.ID != c.ids[i] {
				t.Errorf("%q group %d: id %q, want %q", c.spec, i, g.ID, c.ids[i])
			}
		}
	}
	for _, bad := range []string{"", ",", "a,", "|", "x=|", "=h1:9300"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestIsSharded(t *testing.T) {
	if IsSharded("127.0.0.1:9300") {
		t.Error("plain address detected as sharded")
	}
	for _, s := range []string{"a:1,b:2", "a:1|b:2", "east=a:1"} {
		if !IsSharded(s) {
			t.Errorf("%q not detected as sharded", s)
		}
	}
}
