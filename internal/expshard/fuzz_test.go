package expshard

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzRebuildMembership drives a ring through an arbitrary join/leave
// sequence and checks the structural invariants after every step:
//
//  1. every partition maps to a valid group;
//  2. the installed snapshot is identical to a from-scratch build of
//     the same member set (placement is history-free — the property
//     that lets any process derive the map independently);
//  3. each step moves only partitions owned by groups that joined or
//     left in that step (consistent hashing).
func FuzzRebuildMembership(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x83, 0x01})
	f.Add([]byte{0x00})
	f.Add([]byte{0x05, 0x85, 0x05, 0x85, 0x05})
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x90, 0x91})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		present := map[string]bool{"seed": true}
		ring, err := NewRing(mkGroups("seed"), 128)
		if err != nil {
			t.Fatal(err)
		}
		prev := ring.Snapshot()
		for _, op := range ops {
			id := fmt.Sprintf("g%02d", op&0x3f)
			join := op&0x80 == 0
			changed := map[string]bool{}
			if join && !present[id] {
				present[id] = true
				changed[id] = true
			} else if !join && present[id] && len(present) > 1 {
				delete(present, id)
				changed[id] = true
			}
			if len(changed) == 0 {
				continue
			}
			ids := make([]string, 0, len(present))
			for id := range present {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			snap, err := ring.Rebuild(mkGroups(ids...))
			if err != nil {
				t.Fatal(err)
			}
			// (1) all partitions mapped.
			if len(snap.Part2Group) != snap.Partitions {
				t.Fatalf("part2group len %d != %d", len(snap.Part2Group), snap.Partitions)
			}
			for p, g := range snap.Part2Group {
				if g < 0 || g >= len(snap.Groups) {
					t.Fatalf("partition %d → invalid group %d", p, g)
				}
			}
			// (2) history-free: identical to a fresh build of this set.
			fresh, err := BuildSnapshot(mkGroups(ids...), 128)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(snap) != fingerprint(fresh) {
				t.Fatalf("rebuilt snapshot differs from fresh build of the same set %v", ids)
			}
			// (3) minimal movement: a partition may change owner only
			// if its old or new owner is in the changed set.
			for p := range snap.Part2Group {
				oldID := prev.Groups[prev.Part2Group[p]].ID
				newID := snap.Groups[snap.Part2Group[p]].ID
				if oldID != newID && !changed[oldID] && !changed[newID] {
					t.Fatalf("partition %d moved %s→%s; neither joined nor left (changed=%v)",
						p, oldID, newID, changed)
				}
			}
			if snap.Version != prev.Version+1 {
				t.Fatalf("version %d after %d", snap.Version, prev.Version)
			}
			prev = snap
		}
	})
}
