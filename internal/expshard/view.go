package expshard

import "fmt"

// GroupStat is one shard group's contribution to a stream view: how
// many rows its (preferred live) member retains and how many it has
// ever appended. Trim = Total - Rows is the count of retired rows at
// the head of the group's sub-stream.
type GroupStat struct {
	Rows  uint64
	Total uint64
	Live  bool
}

// View is a frozen snapshot of the fabric's sampling state: the
// placement function (partitions, stripe offset, partition→group map)
// plus per-group row counts. The trainer builds one per update phase
// and ships it verbatim inside every shard-sample request, so all
// shards and the client execute the exact same pure mapping — that is
// the determinism contract that makes the merged draw bit-identical
// to a single store.
//
// Placement model: the row with producer stream index t lives in
// partition (Offset+t) mod Partitions, owned by Part2Group[p]. Within
// a group, rows appear in ascending t order, so the local index of row
// t is the count of owned t' < t minus the group's trim. Both
// directions are closed-form arithmetic; the inverse (global sample
// index → t) needs a binary search only when trims or dead groups make
// the live stream non-contiguous.
type View struct {
	Partitions int
	Offset     uint64
	Part2Group []int
	Stats      []GroupStat

	// Derived at construction.
	owned    [][]int64 // per group: sorted residues a=(p-Offset) mod P for owned p
	length   int64     // Σ live Rows
	balanced bool      // exact fast path: all live, no trims, stats match striping
	maxT     int64     // exclusive upper bound on live t values (general path)
}

// NewView validates and precomputes a view. It is deterministic: the
// same inputs yield the same mapping in every process.
func NewView(partitions int, offset uint64, part2group []int, stats []GroupStat) (*View, error) {
	if partitions <= 0 || partitions > MaxPartitions {
		return nil, fmt.Errorf("expshard: bad partition count %d", partitions)
	}
	if len(part2group) != partitions {
		return nil, fmt.Errorf("expshard: part2group len %d != partitions %d", len(part2group), partitions)
	}
	if len(stats) == 0 || len(stats) > MaxGroups {
		return nil, fmt.Errorf("expshard: bad group count %d", len(stats))
	}
	v := &View{
		Partitions: partitions,
		Offset:     offset % uint64(partitions),
		Part2Group: part2group,
		Stats:      stats,
	}
	v.owned = make([][]int64, len(stats))
	for p, g := range part2group {
		if g < 0 || g >= len(stats) {
			return nil, fmt.Errorf("expshard: partition %d maps to invalid group %d", p, g)
		}
		a := (int64(p) - int64(v.Offset) + int64(partitions)) % int64(partitions)
		v.owned[g] = append(v.owned[g], a)
	}
	for g := range v.owned {
		// Residues were appended in ascending p order; with a fixed
		// offset shift they may wrap, so sort to restore order.
		insertionSortInt64(v.owned[g])
	}
	allLive, trimsZero := true, true
	for g, st := range stats {
		if st.Rows > st.Total {
			return nil, fmt.Errorf("expshard: group %d rows %d > total %d", g, st.Rows, st.Total)
		}
		if !st.Live {
			allLive = false
			continue
		}
		v.length += int64(st.Rows)
		if st.Rows != st.Total {
			trimsZero = false
		}
		if tu := v.tUpper(g); tu > v.maxT {
			v.maxT = tu
		}
	}
	if allLive && trimsZero {
		v.balanced = true
		for g, st := range stats {
			if v.ownedCountBefore(v.length, g) != int64(st.Total) {
				v.balanced = false
				break
			}
		}
	}
	return v, nil
}

func insertionSortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Len returns the number of live sampleable rows: the length argument
// every shard passes to SamplePlan.FillIndices.
func (v *View) Len() int64 { return v.length }

// NumLive returns how many groups are marked live.
func (v *View) NumLive() int {
	n := 0
	for _, st := range v.Stats {
		if st.Live {
			n++
		}
	}
	return n
}

// Balanced reports whether the exact fast path holds: every group
// live, no trims, and per-group totals exactly matching time-striped
// placement of a single contiguous stream. This is the regime of the
// bit-identity proof; outside it sampling stays correct but clamps
// placement mismatches (see Map).
func (v *View) Balanced() bool { return v.balanced }

// ownedCountBefore counts owned stream indices t' < t for group g:
// t' ≡ a (mod P) for each owned residue a. Closed form: q full stripe
// cycles contribute q·k, plus the residues below t mod P.
func (v *View) ownedCountBefore(t int64, g int) int64 {
	if t <= 0 {
		return 0
	}
	res := v.owned[g]
	if len(res) == 0 {
		return 0
	}
	p := int64(v.Partitions)
	q, r := t/p, t%p
	n := q * int64(len(res))
	// res is sorted: count entries < r.
	lo, hi := 0, len(res)
	for lo < hi {
		mid := (lo + hi) / 2
		if res[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return n + int64(lo)
}

// tUpper returns an exclusive upper bound on stream indices held by
// group g: the t of its (Total-1)-th owned slot, plus one.
func (v *View) tUpper(g int) int64 {
	total := int64(v.Stats[g].Total)
	if total == 0 || len(v.owned[g]) == 0 {
		return 0
	}
	k := int64(len(v.owned[g]))
	q, r := (total-1)/k, (total-1)%k
	return q*int64(v.Partitions) + v.owned[g][r] + 1
}

// rank counts live retained rows with stream index < t.
func (v *View) rank(t int64) int64 {
	var n int64
	for g, st := range v.Stats {
		if !st.Live {
			continue
		}
		c := v.ownedCountBefore(t, g)
		if tot := int64(st.Total); c > tot {
			c = tot
		}
		c -= int64(st.Total) - int64(st.Rows) // subtract trim
		if c > 0 {
			n += c
		}
	}
	return n
}

// Map resolves global sample index i (0 ≤ i < Len()) to the owning
// group and the row's local index on that group's live member.
// Clamped reports that striped-placement arithmetic overshot the
// group's actual row count (multi-producer rounding or a restarted
// producer counter) and the local index was wrapped mod Rows — a
// documented approximation outside the balanced regime.
func (v *View) Map(i int64) (group int, local int64, clamped bool) {
	if v.balanced {
		// Exact: the live stream is contiguous, t = i.
		p := (int64(v.Offset) + i) % int64(v.Partitions)
		g := v.Part2Group[p]
		return g, v.ownedCountBefore(i, g), false
	}
	// General path: binary search the smallest t whose cumulative live
	// retained count reaches i+1; that t is live-owned by construction.
	lo, hi := int64(0), v.maxT
	for lo < hi {
		mid := lo + (hi-lo)/2
		if v.rank(mid+1) >= i+1 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t := lo
	p := (int64(v.Offset) + t) % int64(v.Partitions)
	g := v.Part2Group[p]
	st := v.Stats[g]
	local = v.ownedCountBefore(t, g) - (int64(st.Total) - int64(st.Rows))
	if local < 0 {
		local, clamped = 0, true
	}
	if rows := int64(st.Rows); local >= rows && rows > 0 {
		local, clamped = local%rows, true
	}
	return g, local, clamped
}

// WithDead returns a copy of the view with group g marked dead, for
// the skip-and-reweight degraded-read path: the caller recomputes its
// draw over the shrunken Len so the remaining groups' rows reweight
// to a full batch. Derived state is rebuilt.
func (v *View) WithDead(g int) (*View, error) {
	if g < 0 || g >= len(v.Stats) {
		return nil, fmt.Errorf("expshard: invalid group %d", g)
	}
	stats := make([]GroupStat, len(v.Stats))
	copy(stats, v.Stats)
	stats[g].Live = false
	return NewView(v.Partitions, v.Offset, v.Part2Group, stats)
}
