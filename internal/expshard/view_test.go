package expshard

import (
	"math/rand"
	"testing"
)

// simGroup brute-force-simulates one group's store: the stream indices
// it holds, in arrival order, after trimming.
type simGroup struct {
	ts   []int64 // retained stream indices, ascending
	trim int64
}

// simulate streams T rows through the placement function and applies
// per-group trims, returning the per-group retained substreams plus
// the flat (t, group, local) triples of all live retained rows in
// ascending t order — exactly what Map must reproduce.
func simulate(part2group []int, partitions int, offset uint64, T int64, trims []int64, live []bool) ([]GroupStat, []simGroup, [][3]int64) {
	groups := len(trims)
	sims := make([]simGroup, groups)
	totals := make([]int64, groups)
	for t := int64(0); t < T; t++ {
		p := (int64(offset) + t) % int64(partitions)
		g := part2group[p]
		sims[g].ts = append(sims[g].ts, t)
		totals[g]++
	}
	stats := make([]GroupStat, groups)
	var flat [][3]int64
	for g := range sims {
		sims[g].trim = trims[g]
		sims[g].ts = sims[g].ts[trims[g]:]
		stats[g] = GroupStat{Rows: uint64(len(sims[g].ts)), Total: uint64(totals[g]), Live: live[g]}
	}
	// Live retained rows in ascending t order, with their local index.
	type row struct{ t, g, local int64 }
	var rows []row
	for g := range sims {
		if !live[g] {
			continue
		}
		for i, t := range sims[g].ts {
			rows = append(rows, row{t, int64(g), int64(i)})
		}
	}
	// Sort by t (insertion: small sizes).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j-1].t > rows[j].t; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
	for _, r := range rows {
		flat = append(flat, [3]int64{r.t, r.g, r.local})
	}
	return stats, sims, flat
}

func checkViewAgainstSim(t *testing.T, partitions int, offset uint64, part2group []int, stats []GroupStat, flat [][3]int64, wantBalanced bool) {
	t.Helper()
	v, err := NewView(partitions, offset, part2group, stats)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != int64(len(flat)) {
		t.Fatalf("Len()=%d, sim has %d live rows", v.Len(), len(flat))
	}
	if v.Balanced() != wantBalanced {
		t.Fatalf("Balanced()=%v, want %v", v.Balanced(), wantBalanced)
	}
	for i, want := range flat {
		g, local, clamped := v.Map(int64(i))
		if clamped {
			t.Fatalf("Map(%d) clamped on consistent stats", i)
		}
		if int64(g) != want[1] || local != want[2] {
			t.Fatalf("Map(%d) = (g=%d, local=%d), sim says (g=%d, local=%d) for t=%d",
				i, g, local, want[1], want[2], want[0])
		}
	}
}

func buildMap(t *testing.T, n, partitions int) []int {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "shard-" + string(rune('a'+i))
	}
	s, err := BuildSnapshot(mkGroups(ids...), partitions)
	if err != nil {
		t.Fatal(err)
	}
	return s.Part2Group
}

func TestViewMapBalanced(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		for _, offset := range []uint64{0, 7} {
			p2g := buildMap(t, n, 32)
			trims := make([]int64, n)
			live := make([]bool, n)
			for i := range live {
				live[i] = true
			}
			stats, _, flat := simulate(p2g, 32, offset, 229, trims, live)
			checkViewAgainstSim(t, 32, offset, p2g, stats, flat, true)
		}
	}
}

func TestViewMapWithTrims(t *testing.T) {
	n := 3
	p2g := buildMap(t, n, 32)
	live := []bool{true, true, true}
	trims := []int64{5, 0, 11}
	stats, _, flat := simulate(p2g, 32, 0, 300, trims, live)
	checkViewAgainstSim(t, 32, 0, p2g, stats, flat, false)
}

func TestViewMapWithDeadGroup(t *testing.T) {
	n := 4
	p2g := buildMap(t, n, 64)
	live := []bool{true, false, true, true}
	trims := make([]int64, n)
	stats, _, flat := simulate(p2g, 64, 0, 500, trims, live)
	checkViewAgainstSim(t, 64, 0, p2g, stats, flat, false)
}

func TestViewMapTrimsAndDead(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		partitions := []int{16, 32, 64}[rng.Intn(3)]
		p2g := buildMap(t, n, partitions)
		T := int64(50 + rng.Intn(400))
		trims := make([]int64, n)
		live := make([]bool, n)
		anyLive := false
		for g := 0; g < n; g++ {
			live[g] = rng.Intn(4) != 0
			anyLive = anyLive || live[g]
			trims[g] = int64(rng.Intn(10))
		}
		if !anyLive {
			live[0] = true
		}
		offset := uint64(rng.Intn(partitions))
		allLive, allZero := true, true
		for g := 0; g < n; g++ {
			allLive = allLive && live[g]
			allZero = allZero && trims[g] == 0
		}
		// Trims larger than a group's total would make the sim slice
		// out of range; skip those draws.
		probe, _, _ := simulate(p2g, partitions, offset, T, make([]int64, n), live)
		ok := true
		for g := range probe {
			if trims[g] > int64(probe[g].Total) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		stats, _, flat := simulate(p2g, partitions, offset, T, trims, live)
		if len(flat) == 0 {
			continue
		}
		checkViewAgainstSim(t, partitions, offset, p2g, stats, flat, allLive && allZero)
	}
}

// Inconsistent stats (rows not matching striped placement — e.g. a
// producer whose counter restarted) must degrade to clamping, never
// out-of-range locals or panics.
func TestViewMapClampsOnPlacementMismatch(t *testing.T) {
	p2g := buildMap(t, 2, 16)
	stats := []GroupStat{
		{Rows: 100, Total: 100, Live: true},
		{Rows: 3, Total: 3, Live: true}, // far fewer than striping implies
	}
	v, err := NewView(16, 0, p2g, stats)
	if err != nil {
		t.Fatal(err)
	}
	if v.Balanced() {
		t.Fatal("mismatched stats reported balanced")
	}
	for i := int64(0); i < v.Len(); i++ {
		g, local, _ := v.Map(i)
		if local < 0 || local >= int64(stats[g].Rows) {
			t.Fatalf("Map(%d): local %d out of range for group %d (rows %d)", i, local, g, stats[g].Rows)
		}
	}
}

func TestViewWithDead(t *testing.T) {
	p2g := buildMap(t, 3, 32)
	live := []bool{true, true, true}
	stats, _, _ := simulate(p2g, 32, 0, 200, make([]int64, 3), live)
	v, err := NewView(32, 0, p2g, stats)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := v.WithDead(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := v.Len() - int64(stats[1].Rows); dead.Len() != want {
		t.Fatalf("WithDead Len %d, want %d", dead.Len(), want)
	}
	if dead.NumLive() != 2 {
		t.Fatalf("NumLive %d", dead.NumLive())
	}
	// All indices must now resolve to live groups only.
	for i := int64(0); i < dead.Len(); i++ {
		g, _, _ := dead.Map(i)
		if g == 1 {
			t.Fatalf("Map(%d) resolved to dead group", i)
		}
	}
}

func TestViewErrors(t *testing.T) {
	p2g := buildMap(t, 2, 16)
	good := []GroupStat{{Rows: 1, Total: 1, Live: true}, {Rows: 1, Total: 1, Live: true}}
	if _, err := NewView(0, 0, nil, good); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := NewView(16, 0, p2g[:8], good); err == nil {
		t.Error("short part2group accepted")
	}
	if _, err := NewView(16, 0, p2g, nil); err == nil {
		t.Error("no groups accepted")
	}
	bad := []GroupStat{{Rows: 5, Total: 3, Live: true}, {Rows: 1, Total: 1, Live: true}}
	if _, err := NewView(16, 0, p2g, bad); err == nil {
		t.Error("rows > total accepted")
	}
	p2gBad := make([]int, 16)
	p2gBad[3] = 9
	if _, err := NewView(16, 0, p2gBad, good); err == nil {
		t.Error("out-of-range group index accepted")
	}
}
