package expserve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"marlperf/internal/telemetry"
)

// Actor-side experience spool: when marl-replayd is unreachable, a
// RemoteSink diverts whole append frames to a local directory instead of
// failing the rollout loop, and drains them — in sequence order — once the
// server answers again. Each spooled batch is one file holding the exact
// CRC-framed wire payload it would have shipped, so a drain is a byte-
// identical redelivery and the server's per-(actor,seq) dedup keeps
// exactly-once semantics across any interleaving of crashes: a file is
// deleted only after the server acknowledged the frame, and a frame
// redelivered after a crash-between-ack-and-delete is acknowledged as a
// duplicate, not re-applied.

// SpoolOptions arm local disk spooling on a RemoteSink.
type SpoolOptions struct {
	// Dir is the spool directory (created if absent). Required.
	Dir string
	// MaxBytes bounds the spool; a diversion that would exceed it fails
	// the sink (backpressure instead of filling the disk). 0 = 1 GiB.
	MaxBytes int64
	// Registry receives marl_spool_* metrics; nil keeps them private.
	Registry *telemetry.Registry
}

const spoolSuffix = ".xpb"

func spoolName(seq uint64) string { return fmt.Sprintf("spool-%016d%s", seq, spoolSuffix) }

type spoolEntry struct {
	seq   uint64
	rows  int
	path  string
	bytes int64
}

type spool struct {
	dir      string
	maxBytes int64
	entries  []spoolEntry
	bytes    int64

	spooledBatches *telemetry.Counter
	spooledRows    *telemetry.Counter
	drainedBatches *telemetry.Counter
	drainedRows    *telemetry.Counter
	depthG         *telemetry.Gauge
	bytesG         *telemetry.Gauge
}

func (sp *spool) len() int { return len(sp.entries) }

func (sp *spool) updateGauges() {
	sp.depthG.Set(float64(len(sp.entries)))
	sp.bytesG.Set(float64(sp.bytes))
}

// EnableSpool arms spooling on the sink, adopting any batches a previous
// incarnation of the same actor left behind: the sink's sequence counter
// fast-forwards past the newest spooled batch, and the backlog ships ahead
// of new data on the next flush or DrainSpool. Call after SkipTo (the
// newest cursor wins) and before the first Add.
func (s *RemoteSink) EnableSpool(opts SpoolOptions) error {
	if opts.Dir == "" {
		return fmt.Errorf("expserve: spool needs a directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return fmt.Errorf("expserve: spool dir: %w", err)
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 1 << 30
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_spool_depth_batches", "Experience batches waiting in the local spool.")
	reg.SetHelp("marl_spool_bytes", "Bytes of experience waiting in the local spool.")
	sp := &spool{
		dir:            opts.Dir,
		maxBytes:       opts.MaxBytes,
		spooledBatches: reg.Counter("marl_spool_batches_total"),
		spooledRows:    reg.Counter("marl_spool_rows_total"),
		drainedBatches: reg.Counter("marl_spool_drained_batches_total"),
		drainedRows:    reg.Counter("marl_spool_drained_rows_total"),
		depthG:         reg.Gauge("marl_spool_depth_batches"),
		bytesG:         reg.Gauge("marl_spool_bytes"),
	}

	names, err := filepath.Glob(filepath.Join(opts.Dir, "spool-*"+spoolSuffix))
	if err != nil {
		return fmt.Errorf("expserve: scanning spool: %w", err)
	}
	sort.Strings(names)
	stride := s.layout.Stride()
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("expserve: reading spooled batch: %w", err)
		}
		batch, err := decodeAppend(data, stride)
		if err != nil {
			// A torn spool file is a crash mid-spool: the batch was never
			// acknowledged to the rollout engine, so dropping it is safe —
			// but only at the tail. Earlier corruption would break the
			// contiguous sequence and is surfaced instead.
			if path == names[len(names)-1] {
				os.Remove(path)
				continue
			}
			return fmt.Errorf("expserve: corrupt spooled batch %s: %w", filepath.Base(path), err)
		}
		if batch.ActorID != s.actorID {
			return fmt.Errorf("expserve: spool %s belongs to actor %q, this sink is %q",
				filepath.Base(path), batch.ActorID, s.actorID)
		}
		if n := len(sp.entries); n > 0 && batch.BatchSeq <= sp.entries[n-1].seq {
			return fmt.Errorf("expserve: spool sequence regressed: %s carries seq %d after %d",
				filepath.Base(path), batch.BatchSeq, sp.entries[n-1].seq)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("expserve: spooled batch: %w", err)
		}
		sp.entries = append(sp.entries, spoolEntry{seq: batch.BatchSeq, rows: batch.N, path: path, bytes: fi.Size()})
		sp.bytes += fi.Size()
	}
	// Drop temp files from an interrupted spool write.
	if tmps, _ := filepath.Glob(filepath.Join(opts.Dir, "*.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	if n := len(sp.entries); n > 0 {
		s.SkipTo(sp.entries[n-1].seq)
	}
	sp.updateGauges()
	s.spool = sp
	return nil
}

// SpoolLen returns how many batches are waiting in the spool (0 when no
// spool is armed).
func (s *RemoteSink) SpoolLen() int {
	if s.spool == nil {
		return 0
	}
	return s.spool.len()
}

// SpoolBytes returns the spool's on-disk footprint.
func (s *RemoteSink) SpoolBytes() int64 {
	if s.spool == nil {
		return 0
	}
	return s.spool.bytes
}

// spoolFrame persists one encoded append frame as the newest spool entry.
// cause, when non-nil, is the ship failure that forced the diversion.
func (s *RemoteSink) spoolFrame(frame []byte, seq uint64, rows int, cause error) error {
	sp := s.spool
	if sp.bytes+int64(len(frame)) > sp.maxBytes {
		return fmt.Errorf("expserve: spool full (%d bytes + %d-byte batch exceeds %d); server still unreachable: %v",
			sp.bytes, len(frame), sp.maxBytes, cause)
	}
	path := filepath.Join(sp.dir, spoolName(seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("expserve: spooling batch %d: %w", seq, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("expserve: spooling batch %d: %w", seq, err)
	}
	sp.entries = append(sp.entries, spoolEntry{seq: seq, rows: rows, path: path, bytes: int64(len(frame))})
	sp.bytes += int64(len(frame))
	sp.spooledBatches.Inc()
	sp.spooledRows.Add(uint64(rows))
	sp.updateGauges()
	if s.OnSpool != nil {
		s.OnSpool(len(sp.entries), cause)
	}
	return nil
}

// DrainSpool ships every spooled batch in sequence order, riding through
// transient failures with the client's full retry budget. A batch's file
// is deleted only after its ack; the server's dedup absorbs redelivery.
func (s *RemoteSink) DrainSpool() error { return s.drainSpool(false) }

func (s *RemoteSink) drainSpool(failFast bool) error {
	sp := s.spool
	if sp == nil || len(sp.entries) == 0 {
		return nil
	}
	shipped := 0
	for len(sp.entries) > 0 {
		e := sp.entries[0]
		frame, err := os.ReadFile(e.path)
		if err != nil {
			return fmt.Errorf("expserve: reading spooled batch %d: %w", e.seq, err)
		}
		if _, err := s.doAppend(frame, failFast); err != nil {
			if shipped > 0 && s.OnDrain != nil {
				s.OnDrain(shipped)
			}
			return err
		}
		os.Remove(e.path)
		sp.entries = sp.entries[1:]
		sp.bytes -= e.bytes
		sp.drainedBatches.Inc()
		sp.drainedRows.Add(uint64(e.rows))
		sp.updateGauges()
		shipped++
	}
	if shipped > 0 && s.OnDrain != nil {
		s.OnDrain(shipped)
	}
	return nil
}
