package expserve

// Acceptance property from the chaos work: when injected faults only
// retry-delay committed data (drops and 5xx on the wire, never a lost
// acknowledged batch), the rows that land and the batches sampled out are
// bit-identical to a fault-free run at the same seeds. Resilience is
// allowed to cost time, never bits.

import (
	"math/rand"
	"testing"
	"time"

	"marlperf/internal/faultnet"
	"marlperf/internal/replay"
)

func TestRemoteBitIdenticalThroughFaultyTransport(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4}

	run := func(inj *faultnet.Injector) ([]int, []float64, []float64) {
		t.Helper()
		_, hs := newTestServer(t, spec, nil)
		opts := ClientOptions{
			Timeout:   5 * time.Second,
			Attempts:  12,
			BaseDelay: time.Millisecond,
			MaxDelay:  5 * time.Millisecond,
			// A breaker would add fail-fast windows; determinism of the
			// payload does not depend on it, but the run should never give
			// up, so keep every request riding through.
			BreakerThreshold: -1,
			JitterSeed:       1,
		}
		if inj != nil {
			opts.Transport = inj.RoundTripper("actor→replay", nil)
		}
		c := NewClient(hs.URL, opts)
		sink, err := NewRemoteSink(c, "actor-0", spec)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			obs, act, rew, nxt, done := step(rng)
			if err := sink.Add(obs, act, rew, nxt, done); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		remote, err := NewRemoteSource(c, spec, plan)
		if err != nil {
			t.Fatal(err)
		}
		const batch = 32
		dst := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		idx, err := remote.SampleBatch(batch, 4242, dst)
		if err != nil {
			t.Fatal(err)
		}
		idxCopy := append([]int(nil), idx...)
		var obsFlat, rewFlat []float64
		for a := 0; a < 2; a++ {
			obsFlat = append(obsFlat, dst[a].Obs.Data...)
			rewFlat = append(rewFlat, dst[a].Rew.Data...)
		}
		return idxCopy, obsFlat, rewFlat
	}

	cleanIdx, cleanObs, cleanRew := run(nil)

	inj := faultnet.New(77)
	if err := inj.SetRule("actor→replay", faultnet.Rule{Drop: 0.15, Error: 0.1, Delay: 500 * time.Microsecond, DelayProb: 0.3}); err != nil {
		t.Fatal(err)
	}
	faultIdx, faultObs, faultRew := run(inj)

	if c := inj.Counts("actor→replay"); c.Dropped == 0 && c.Errored == 0 {
		t.Fatalf("fault injection never fired (counts %+v); the run proved nothing", c)
	}
	for i := range cleanIdx {
		if cleanIdx[i] != faultIdx[i] {
			t.Fatalf("sample index %d diverged under faults: %d vs %d", i, cleanIdx[i], faultIdx[i])
		}
	}
	for i := range cleanObs {
		if cleanObs[i] != faultObs[i] {
			t.Fatalf("obs bit-divergence at %d under faults", i)
		}
	}
	for i := range cleanRew {
		if cleanRew[i] != faultRew[i] {
			t.Fatalf("rew bit-divergence at %d under faults", i)
		}
	}
}
