package expserve

// Actor-side spool and durable-dedup coverage, including a real-signal
// drain test: a child process (this test binary re-executed with an env
// guard) serves the experience service until the parent SIGKILLs it
// mid-ingest; the actor sink rides out the outage by spooling to disk,
// the parent restarts the service over the same store, and the drained
// result must hold every produced row exactly once.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"marlperf/internal/expstore"
	"marlperf/internal/telemetry"
)

const spoolKillChildEnv = "EXPSERVE_KILL_CHILD_DIR"
const spoolKillChildAddrEnv = "EXPSERVE_KILL_CHILD_ADDR"

// TestMain runs the experience-server child when re-executed with the env
// guard, and the normal test binary otherwise.
func TestMain(m *testing.M) {
	if dir := os.Getenv(spoolKillChildEnv); dir != "" {
		spoolKillChildMain(dir, os.Getenv(spoolKillChildAddrEnv))
		return
	}
	os.Exit(m.Run())
}

// spoolKillChildMain serves the experience service over a durable store
// with a durable dedup log until killed. Binding retries briefly so a
// restarted child can win the port back from a freshly killed sibling.
func spoolKillChildMain(dir, addr string) {
	st, err := expstore.Open(filepath.Join(dir, "store"), testSpec(100000), expstore.Options{SegmentRows: 64})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := NewServer(ServerConfig{
		Provider:     st,
		Spec:         testSpec(100000),
		DedupLogPath: filepath.Join(dir, "dedup.log"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err = srv.ListenAndServe(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {} // serve until SIGKILLed
}

// spoolClient is tuned for fast failure: few attempts, tiny backoff, an
// aggressive breaker — the shape an actor with a spool wants.
func spoolClient(addr string, reg *telemetry.Registry) *Client {
	return NewClient(addr, ClientOptions{
		Timeout:          2 * time.Second,
		Attempts:         2,
		BaseDelay:        time.Millisecond,
		MaxDelay:         10 * time.Millisecond,
		JitterSeed:       3,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		Registry:         reg,
	})
}

func addRows(t *testing.T, sink *RemoteSink, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
}

func waitStats(t *testing.T, c *Client, timeout time.Duration) ServiceStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.ServiceStats()
		if err == nil {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never answered stats: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSpoolDrainAcrossServerSIGKILL is the satellite scenario: SIGKILL
// marl-replayd's server mid-ingest, keep producing (batches divert to the
// spool), restart over the same store, drain, and assert row-count
// equality — no loss, no duplicates.
func TestSpoolDrainAcrossServerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec kill test skipped in -short")
	}
	dir := t.TempDir()

	// Reserve a port for the child (closed before the child binds it; the
	// child retries binding to absorb the handoff race).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	startChild := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), spoolKillChildEnv+"="+dir, spoolKillChildAddrEnv+"="+addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	child := startChild()
	defer func() { child.Process.Kill(); child.Wait() }()

	reg := telemetry.NewRegistry()
	c := spoolClient(addr, reg)
	waitStats(t, c, 15*time.Second)

	sink, err := NewRemoteSink(c, "actor-kill", testSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	sink.MaxBatchRows = 8
	if err := sink.EnableSpool(SpoolOptions{Dir: filepath.Join(dir, "spool"), Registry: reg}); err != nil {
		t.Fatal(err)
	}
	var spooled, drained int
	sink.OnSpool = func(queued int, err error) { spooled++ }
	sink.OnDrain = func(batches int) { drained += batches }

	// Phase 1: three batches land and are acked (rows + dedup cursor
	// durably flushed before each ack).
	rng := rand.New(rand.NewSource(23))
	addRows(t, sink, rng, 24)

	// SIGKILL the server between acked batches: a real kill, no shutdown
	// path runs.
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Phase 2: production continues into the outage; every batch must
	// divert to the spool without an error reaching the rollout loop.
	addRows(t, sink, rng, 24)
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush during outage: %v", err)
	}
	if got := sink.SpoolLen(); got != 3 {
		t.Fatalf("spool holds %d batches during outage, want 3", got)
	}
	if spooled != 3 {
		t.Fatalf("OnSpool saw %d diversions, want 3", spooled)
	}

	// Restart over the same store and dedup log, then drain.
	child2 := startChild()
	defer func() { child2.Process.Kill(); child2.Wait() }()
	waitStats(t, c, 15*time.Second)
	if err := sink.DrainSpool(); err != nil {
		t.Fatalf("drain after restart: %v", err)
	}
	if got := sink.SpoolLen(); got != 0 {
		t.Fatalf("spool still holds %d batches after drain", got)
	}
	if drained != 3 {
		t.Fatalf("OnDrain saw %d batches, want 3", drained)
	}

	// Post-recovery production flows normally again.
	addRows(t, sink, rng, 8)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	// Exactly-once accounting: 56 rows produced, 56 rows stored, and the
	// server's cursor for this actor matches the sink's.
	st := waitStats(t, c, 5*time.Second)
	if st.Rows != 56 || st.Total != 56 {
		t.Fatalf("store holds rows=%d total=%d, want exactly 56 (no loss, no duplicates)", st.Rows, st.Total)
	}
	if st.Actors["actor-kill"] != sink.Seq() {
		t.Fatalf("server cursor %d != sink seq %d", st.Actors["actor-kill"], sink.Seq())
	}

	// Spool-file leftovers should be gone.
	if files, _ := filepath.Glob(filepath.Join(dir, "spool", "spool-*")); len(files) != 0 {
		t.Fatalf("drained spool left files behind: %v", files)
	}
}

// TestSpoolAdoptionAcrossSinkRestart proves a crashed actor's successor
// (same ID, same spool dir) adopts the backlog: sequence numbering
// continues past the spooled batches and the drain ships them ahead of
// new data, in order.
func TestSpoolAdoptionAcrossSinkRestart(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4096)

	// Incarnation 1 talks to a dead address: everything spools.
	dead := spoolClient("127.0.0.1:1", nil)
	sink1, err := NewRemoteSink(dead, "actor-adopt", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink1.MaxBatchRows = 4
	if err := sink1.EnableSpool(SpoolOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	addRows(t, sink1, rng, 12) // 3 batches, all spooled
	if sink1.SpoolLen() != 3 || sink1.Seq() != 3 {
		t.Fatalf("incarnation 1: spool=%d seq=%d, want 3/3", sink1.SpoolLen(), sink1.Seq())
	}

	// Incarnation 2 starts fresh over the same spool dir, now with a live
	// server.
	st, err := expstore.Open(filepath.Join(t.TempDir(), "store"), spec, expstore.Options{SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := NewServer(ServerConfig{Provider: st, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	c := spoolClient(addr, nil)
	sink2, err := NewRemoteSink(c, "actor-adopt", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink2.MaxBatchRows = 4
	if err := sink2.EnableSpool(SpoolOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if sink2.Seq() != 3 {
		t.Fatalf("adoption should fast-forward seq to 3, got %d", sink2.Seq())
	}

	// New data flushes drain the backlog first, then ship seq 4.
	addRows(t, sink2, rng, 4)
	if err := sink2.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := waitStats(t, c, 5*time.Second)
	if stats.Rows != 16 || stats.Total != 16 {
		t.Fatalf("rows=%d total=%d after adoption drain, want exactly 16", stats.Rows, stats.Total)
	}
	if stats.Actors["actor-adopt"] != 4 {
		t.Fatalf("server cursor %d, want 4", stats.Actors["actor-adopt"])
	}

	// A sink under a different actor ID must refuse a foreign spool.
	dir2 := t.TempDir()
	sinkA, err := NewRemoteSink(dead, "actor-adopt", spec)
	if err != nil {
		t.Fatal(err)
	}
	sinkA.MaxBatchRows = 4
	if err := sinkA.EnableSpool(SpoolOptions{Dir: dir2}); err != nil {
		t.Fatal(err)
	}
	addRows(t, sinkA, rng, 4)
	if sinkA.SpoolLen() != 1 {
		t.Fatalf("foreign-spool setup: backlog = %d, want 1", sinkA.SpoolLen())
	}
	sink3, err := NewRemoteSink(c, "other-actor", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink3.EnableSpool(SpoolOptions{Dir: dir2}); err == nil || !strings.Contains(err.Error(), "belongs to actor") {
		t.Fatalf("foreign spool adoption should fail naming the owner, got: %v", err)
	}
}

// TestSpoolFullAppliesBackpressure: a full spool fails the sink instead of
// filling the disk.
func TestSpoolFullAppliesBackpressure(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4096)
	dead := spoolClient("127.0.0.1:1", nil)
	sink, err := NewRemoteSink(dead, "actor-full", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink.MaxBatchRows = 4
	if err := sink.EnableSpool(SpoolOptions{Dir: dir, MaxBytes: 800}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	addRows(t, sink, rng, 4) // first batch fits (a 4-row frame is ~750 bytes)
	var lastErr error
	for i := 0; i < 4 && lastErr == nil; i++ {
		obs, act, rew, nxt, done := step(rng)
		lastErr = sink.Add(obs, act, rew, nxt, done)
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), "spool full") {
		t.Fatalf("overflowing the spool should surface 'spool full', got: %v", lastErr)
	}
}

// TestDedupLogSurvivesRestart: the durable idempotency cursor makes
// redelivery across a server restart a no-op — the window the in-memory
// map could not cover.
func TestDedupLogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4096)
	storePath := filepath.Join(dir, "store")
	dedupPath := filepath.Join(dir, "dedup.log")

	serve := func() (*Client, func()) {
		t.Helper()
		st, err := expstore.Open(storePath, spec, expstore.Options{SegmentRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Provider: st, Spec: spec, DedupLogPath: dedupPath})
		if err != nil {
			t.Fatal(err)
		}
		addr, shutdown, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return fastClient(addr), func() { shutdown(); st.Close() }
	}

	c1, stop1 := serve()
	sink1, err := NewRemoteSink(c1, "actor-dedup", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink1.MaxBatchRows = 8
	rng := rand.New(rand.NewSource(13))
	addRows(t, sink1, rng, 16) // seqs 1,2 applied and recorded
	stop1()

	c2, stop2 := serve()
	defer stop2()

	// A fresh sink under the same ID would reuse seq 1 — exactly the
	// collision the stats cursor exists to prevent. Fast-forward, then
	// prove a redelivered duplicate of an old seq is dropped while new
	// data lands.
	st2 := waitStats(t, c2, 5*time.Second)
	if st2.Actors["actor-dedup"] != 2 {
		t.Fatalf("restarted server reports cursor %d, want 2 (from dedup log)", st2.Actors["actor-dedup"])
	}

	sink2, err := NewRemoteSink(c2, "actor-dedup", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink2.MaxBatchRows = 8
	// Without SkipTo: seq restarts at 1 → server must answer dup, rows
	// unchanged.
	addRows(t, sink2, rng, 8)
	if st := waitStats(t, c2, 5*time.Second); st.Rows != 16 || st.Total != 16 {
		t.Fatalf("stale-seq redelivery changed the store: rows=%d total=%d, want 16", st.Rows, st.Total)
	}

	// With SkipTo: the successor resumes past the cursor and lands.
	sink3, err := NewRemoteSink(c2, "actor-dedup", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink3.MaxBatchRows = 8
	sink3.SkipTo(st2.Actors["actor-dedup"])
	addRows(t, sink3, rng, 8)
	if st := waitStats(t, c2, 5*time.Second); st.Rows != 24 || st.Total != 24 {
		t.Fatalf("resumed sink: rows=%d total=%d, want 24", st.Rows, st.Total)
	}
	if st := waitStats(t, c2, 5*time.Second); st.Actors["actor-dedup"] != 3 {
		t.Fatalf("cursor = %d after resume, want 3", st.Actors["actor-dedup"])
	}
}

// TestTornBatchRedeliveryAppliesOnlyMissingRows reproduces the worst
// SIGKILL window: the kill lands mid-Flush, so the store's own torn-tail
// recovery keeps a row-aligned prefix of the batch (here 5 of 8 rows) while
// the batch was never acked — the actor will redeliver it in full. The
// intent log must classify the batch as partially applied, park the cursor
// one short, and make the redelivery append only the missing suffix.
func TestTornBatchRedeliveryAppliesOnlyMissingRows(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4096)
	storePath := filepath.Join(dir, "store")
	dedupPath := filepath.Join(dir, "dedup.log")

	serve := func() (*Client, func()) {
		t.Helper()
		st, err := expstore.Open(storePath, spec, expstore.Options{SegmentRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Provider: st, Spec: spec, DedupLogPath: dedupPath})
		if err != nil {
			t.Fatal(err)
		}
		addr, shutdown, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return fastClient(addr), func() { shutdown(); st.Close() }
	}

	// Batch 1 (seq 1, 8 rows) lands normally through a real server.
	c1, stop1 := serve()
	sink1, err := NewRemoteSink(c1, "torn", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink1.MaxBatchRows = 8
	rng := rand.New(rand.NewSource(29))
	addRows(t, sink1, rng, 8)
	stop1()

	// Forge the kill's disk state for batch 2: its intent went durable,
	// then the torn flush left only 5 of its 8 rows in the store.
	logF, err := os.OpenFile(dedupPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logF.WriteString(`{"actor":"torn","seq":2,"base":8,"n":8}` + "\n"); err != nil {
		t.Fatal(err)
	}
	logF.Close()
	st, err := expstore.Open(storePath, spec, expstore.Options{SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, st.Stats().Stride)
	for i := 0; i < 5; i++ {
		if err := st.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Recovery must classify batch 2 as torn — cursor parked at 1, the
	// durable prefix kept — and a second restart over the same log must
	// reach the same verdict.
	for i := 0; i < 2; i++ {
		c, stop := serve()
		stn := waitStats(t, c, 5*time.Second)
		if stn.Actors["torn"] != 1 || stn.Total != 13 {
			stop()
			t.Fatalf("restart %d: cursor=%d total=%d, want cursor 1 total 13", i, stn.Actors["torn"], stn.Total)
		}
		stop()
	}

	// Redeliver batch 2 in full plus a fresh batch 3: only the 3 missing
	// rows of 2 and the 8 of 3 may land.
	c2, stop2 := serve()
	defer stop2()
	sink2, err := NewRemoteSink(c2, "torn", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink2.MaxBatchRows = 8
	sink2.SkipTo(waitStats(t, c2, 5*time.Second).Actors["torn"])
	addRows(t, sink2, rng, 16)
	fin := waitStats(t, c2, 5*time.Second)
	if fin.Rows != 24 || fin.Total != 24 {
		t.Fatalf("after redelivery: rows=%d total=%d, want 24/24 (prefix duplicated or suffix lost)", fin.Rows, fin.Total)
	}
	if fin.Actors["torn"] != 3 {
		t.Fatalf("cursor=%d after redelivery, want 3", fin.Actors["torn"])
	}
}
