package expserve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marlperf/internal/expstore"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
)

func testSpec(capacity int) replay.Spec {
	return replay.Spec{NumAgents: 2, ObsDims: []int{3, 4}, ActDim: 2, Capacity: capacity}
}

// step produces one deterministic environment step for the spec.
func step(rng *rand.Rand) (obs, act [][]float64, rew []float64, nxt [][]float64, done []float64) {
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	obs = [][]float64{vec(3), vec(4)}
	act = [][]float64{vec(2), vec(2)}
	nxt = [][]float64{vec(3), vec(4)}
	rew = []float64{rng.NormFloat64(), rng.NormFloat64()}
	done = []float64{0, float64(rng.Intn(2))}
	return
}

func newTestServer(t *testing.T, spec replay.Spec, reg *telemetry.Registry) (*Server, *httptest.Server) {
	t.Helper()
	ring := expstore.NewRing(spec)
	srv, err := NewServer(ServerConfig{Provider: ring, Spec: spec, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func fastClient(url string) *Client {
	c := NewClient(url, ClientOptions{Timeout: 5 * time.Second, Attempts: 4, BaseDelay: time.Millisecond, JitterSeed: 1})
	return c
}

// The central equivalence property: rows shipped through the sink and
// sampled through the remote source must match, bit for bit, a local
// expstore.Source fed the same rows in the same order with the same plan
// and seed.
func TestRemoteMatchesLocalBitForBit(t *testing.T) {
	spec := testSpec(256)
	for _, plan := range []replay.SamplePlan{
		{Strategy: replay.PlanUniform},
		{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4},
	} {
		_, hs := newTestServer(t, spec, nil)
		c := fastClient(hs.URL)
		sink, err := NewRemoteSink(c, "actor-0", spec)
		if err != nil {
			t.Fatal(err)
		}

		localRing := expstore.NewRing(spec)
		local, err := expstore.NewSource(localRing, plan)
		if err != nil {
			t.Fatal(err)
		}

		rngA := rand.New(rand.NewSource(3))
		rngB := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ { // wraps the 256-row window
			obs, act, rew, nxt, done := step(rngA)
			if err := sink.Add(obs, act, rew, nxt, done); err != nil {
				t.Fatal(err)
			}
			obs, act, rew, nxt, done = step(rngB)
			if err := local.Add(obs, act, rew, nxt, done); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}

		remote, err := NewRemoteSource(c, spec, plan)
		if err != nil {
			t.Fatal(err)
		}
		nRemote, err := remote.Len()
		if err != nil {
			t.Fatal(err)
		}
		nLocal, _ := local.Len()
		if nRemote != nLocal || nRemote != 256 {
			t.Fatalf("plan %v: remote Len %d, local Len %d, want 256", plan, nRemote, nLocal)
		}

		const batch = 32
		for trial := 0; trial < 5; trial++ {
			seed := int64(1000 + trial)
			dstR := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
			dstL := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
			idxR, err := remote.SampleBatch(batch, seed, dstR)
			if err != nil {
				t.Fatal(err)
			}
			idxL, err := local.SampleBatch(batch, seed, dstL)
			if err != nil {
				t.Fatal(err)
			}
			for i := range idxR {
				if idxR[i] != idxL[i] {
					t.Fatalf("plan %v seed %d: index %d differs: remote %d local %d", plan, seed, i, idxR[i], idxL[i])
				}
			}
			for a := 0; a < 2; a++ {
				for i := range dstR[a].Obs.Data {
					if dstR[a].Obs.Data[i] != dstL[a].Obs.Data[i] {
						t.Fatalf("plan %v seed %d: agent %d obs diverges", plan, seed, a)
					}
				}
				for i := range dstR[a].Rew.Data {
					if dstR[a].Rew.Data[i] != dstL[a].Rew.Data[i] || dstR[a].Done.Data[i] != dstL[a].Done.Data[i] {
						t.Fatalf("plan %v seed %d: agent %d scalars diverge", plan, seed, a)
					}
				}
			}
		}
	}
}

func TestAppendIsIdempotentUnderRetry(t *testing.T) {
	spec := testSpec(128)
	reg := telemetry.NewRegistry()
	_, hs := newTestServer(t, spec, reg)

	// A flaky proxy: fails the first attempt of every append AFTER the
	// server has applied it, forcing the client to retry a batch that
	// already landed.
	var flake atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, PathAppend) && flake.CompareAndSwap(false, true) {
			// Forward to the real server, then pretend the reply was lost.
			req, _ := http.NewRequest(r.Method, hs.URL+r.URL.Path, r.Body)
			req.Header = r.Header
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			http.Error(w, "injected: ack lost", http.StatusBadGateway)
			return
		}
		req, _ := http.NewRequest(r.Method, hs.URL+r.URL.Path, r.Body)
		req.Header = r.Header
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 1<<20)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer proxy.Close()

	c := fastClient(proxy.URL)
	sink, err := NewRemoteSink(c, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	// The batch went over the wire twice but must count once.
	if got := reg.Counter("marl_exp_ingest_rows_total").Value(); got != 10 {
		t.Fatalf("ingested %d rows after retried batch, want 10", got)
	}
	if got := reg.Counter("marl_exp_ingest_dup_batches_total").Value(); got != 1 {
		t.Fatalf("dup batches = %d, want 1", got)
	}
}

func TestBackpressureAnswers429AndClientRetries(t *testing.T) {
	spec := testSpec(128)
	ring := expstore.NewRing(spec)
	blocked := &blockingProvider{Ring: ring, gate: make(chan struct{})}
	reg := telemetry.NewRegistry()
	srv, err := NewServer(ServerConfig{Provider: blocked, Spec: spec, QueueDepth: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	// hs.Close waits for in-flight handlers, which wait on the writer, which
	// waits on the gate — so the gate must open before the server closes.
	defer hs.Close()
	defer srv.Close()
	defer blocked.release()

	layout := replay.NewRowLayout(spec)
	send := func(c *Client, seq uint64) error {
		rows := make([]float64, layout.Stride())
		body := encodeAppend(nil, appendBatch{ActorID: "a", BatchSeq: seq, Rows: rows, N: 1}, layout.Stride())
		_, err := c.do(http.MethodPost, PathAppend, "application/octet-stream", body)
		return err
	}

	// Occupy the writer with a batch the provider blocks on, then fill the
	// depth-1 queue directly: the next real append must be bounced with 429.
	one := NewClient(hs.URL, ClientOptions{Attempts: 1, Timeout: 10 * time.Second, JitterSeed: 1})
	errc := make(chan error, 1)
	go func() { errc <- send(one, 1) }()
	blocked.waitBusy(t)
	parked := ingestJob{
		batch: appendBatch{ActorID: "b", BatchSeq: 1, Rows: make([]float64, layout.Stride()), N: 1},
		done:  make(chan ingestResult, 1),
	}
	srv.queue <- parked

	noRetry := NewClient(hs.URL, ClientOptions{Attempts: 1, Timeout: 5 * time.Second, JitterSeed: 3})
	if err := send(noRetry, 2); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("append against a full queue: err = %v, want a 429", err)
	}
	if got := reg.Counter("marl_exp_ingest_rejected_total").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// A retrying client sent during the stall succeeds once the writer
	// unblocks: the 429 is transient backpressure, not failure.
	retrier := NewClient(hs.URL, ClientOptions{Attempts: 8, BaseDelay: 5 * time.Millisecond, Timeout: 10 * time.Second, JitterSeed: 4})
	done := make(chan error, 1)
	go func() { done <- send(retrier, 3) }()
	time.Sleep(20 * time.Millisecond)
	blocked.release()
	if err := <-done; err != nil {
		t.Fatalf("retrying append failed across backpressure: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("gated append failed after release: %v", err)
	}
	<-parked.done
}

// blockingProvider stalls the first AppendRow until released, simulating a
// slow disk so the ingest queue fills.
type blockingProvider struct {
	*expstore.Ring
	gate     chan struct{}
	busy     atomic.Bool
	opened   atomic.Bool
	released sync.Once
}

func (p *blockingProvider) AppendRow(row []float64) error {
	if p.opened.CompareAndSwap(false, true) {
		p.busy.Store(true)
		<-p.gate
	}
	return p.Ring.AppendRow(row)
}

func (p *blockingProvider) waitBusy(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !p.busy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the blocking batch")
		}
		time.Sleep(time.Millisecond)
	}
}

func (p *blockingProvider) release() { p.released.Do(func() { close(p.gate) }) }

func TestSampleBeforeWarmupIsConflict(t *testing.T) {
	spec := testSpec(64)
	_, hs := newTestServer(t, spec, nil)
	c := NewClient(hs.URL, ClientOptions{Attempts: 1, Timeout: 5 * time.Second, JitterSeed: 1})
	src, err := NewRemoteSource(c, spec, replay.SamplePlan{Strategy: replay.PlanUniform})
	if err != nil {
		t.Fatal(err)
	}
	dst := []*replay.AgentBatch{replay.NewAgentBatch(4, 3, 2), replay.NewAgentBatch(4, 4, 2)}
	if _, err := src.SampleBatch(4, 1, dst); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("sampling an empty store: err = %v, want a 409", err)
	}
}

func TestServerRejectsMismatchedSpec(t *testing.T) {
	spec := testSpec(64)
	_, hs := newTestServer(t, spec, nil)
	c := fastClient(hs.URL)
	other := replay.Spec{NumAgents: 2, ObsDims: []int{3, 9}, ActDim: 2, Capacity: 64}
	if _, err := NewRemoteSource(c, other, replay.SamplePlan{Strategy: replay.PlanUniform}); err == nil {
		t.Fatal("spec mismatch accepted")
	}
}

func TestWireAppendRejectsCorruption(t *testing.T) {
	spec := testSpec(16)
	layout := replay.NewRowLayout(spec)
	rows := make([]float64, 2*layout.Stride())
	valid := encodeAppend(nil, appendBatch{ActorID: "a", BatchSeq: 1, Rows: rows, N: 2}, layout.Stride())
	if _, err := decodeAppend(valid, layout.Stride()); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	for _, corrupt := range [][]byte{
		{},
		valid[:len(valid)/2],
		append(append([]byte(nil), valid[:len(valid)-1]...), valid[len(valid)-1]^1),
	} {
		if _, err := decodeAppend(corrupt, layout.Stride()); err == nil {
			t.Fatalf("corrupt frame of %d bytes accepted", len(corrupt))
		}
	}
	mid := append([]byte(nil), valid...)
	mid[20] ^= 0x80
	if _, err := decodeAppend(mid, layout.Stride()); err == nil {
		t.Fatal("bit-flipped frame accepted")
	}
}
