package expserve

// Tests for the binary sample wire path: the fixed 32-byte request frame,
// the v2 zero-copy reply frame (length validated before any row copy), the
// striped concurrent client, and the prefetch overlap source — which must
// be a pure timing optimization, bit-invisible to training.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"marlperf/internal/faultnet"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
)

func TestSampleRequestRoundTrip(t *testing.T) {
	for _, req := range []sampleRequest{
		{N: 32, Seed: 4242, Plan: replay.SamplePlan{Strategy: replay.PlanUniform}},
		{N: 4096, Seed: -7, Plan: replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 16, Refs: 64}},
	} {
		frame, err := encodeSampleRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != sampleReqSize {
			t.Fatalf("request frame is %d bytes, want %d", len(frame), sampleReqSize)
		}
		got, err := decodeSampleRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != req.N || got.Seed != req.Seed || got.Plan != req.Plan {
			t.Fatalf("round trip mangled request: %+v -> %+v", req, got)
		}

		// Any single flipped byte must be caught by the CRC (or the
		// magic/version checks it protects).
		for i := range frame {
			bad := append([]byte(nil), frame...)
			bad[i] ^= 0x40
			if _, err := decodeSampleRequest(bad); err == nil {
				t.Fatalf("corruption at byte %d went undetected", i)
			}
		}
	}
	if _, err := encodeSampleRequest(nil, sampleRequest{N: 1, Plan: replay.SamplePlan{Strategy: "made-up"}}); err == nil {
		t.Fatal("unknown strategy must refuse to encode")
	}
}

func TestSampleReplyRoundTrip(t *testing.T) {
	const n, stride = 7, 5
	rng := rand.New(rand.NewSource(11))
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(1000)
	}
	frame := encodeSampleReply(nil, idx, rows, stride)
	if len(frame) != sampleReplySize(n, stride) {
		t.Fatalf("frame is %d bytes, want %d", len(frame), sampleReplySize(n, stride))
	}

	gotIdx := make([]int, n)
	rowBytes, err := decodeSampleReply(frame, n, stride, gotIdx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if gotIdx[i] != idx[i] {
			t.Fatalf("index %d: got %d want %d", i, gotIdx[i], idx[i])
		}
	}
	for i, want := range rows {
		got := binary.LittleEndian.Uint64(rowBytes[8*i:])
		if got != binary.LittleEndian.Uint64(frame[sampleReplyHdr+8*i:]) {
			t.Fatalf("row payload does not alias the frame at %d", i)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], got)
		if !bytes.Equal(buf[:], frame[sampleReplyHdr+8*i:sampleReplyHdr+8*i+8]) {
			t.Fatalf("row %d bytes diverge", i)
		}
		_ = want
	}

	// Truncation at every possible length must surface as ErrShortFrame —
	// checked before any row copy, so idx stays untouched.
	for cut := 0; cut < len(frame); cut++ {
		probe := make([]int, n)
		if _, err := decodeSampleReply(frame[:cut], n, stride, probe); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrShortFrame", cut, err)
		}
		for i, v := range probe {
			if v != 0 {
				t.Fatalf("truncated decode wrote idx[%d]=%d", i, v)
			}
		}
	}

	// Corrupting the header or index region must trip the matching CRC.
	bad := append([]byte(nil), frame...)
	bad[9] ^= 1 // claimed n
	if _, err := decodeSampleReply(bad, n, stride, gotIdx); err == nil {
		t.Fatal("header corruption went undetected")
	}
	bad = append(bad[:0], frame...)
	bad[sampleReplyHdr+8*n*stride] ^= 1 // first index byte
	if _, err := decodeSampleReply(bad, n, stride, gotIdx); err == nil {
		t.Fatal("index corruption went undetected")
	}
	// Flipping a row byte is NOT detected: row integrity is delegated to
	// the transport by design (see the v2 frame comment in wire.go).
	bad = append(bad[:0], frame...)
	bad[sampleReplyHdr] ^= 1
	if _, err := decodeSampleReply(bad, n, stride, gotIdx); err != nil {
		t.Fatalf("row bytes must not be checksummed, got %v", err)
	}
}

func FuzzDecodeSampleReply(f *testing.F) {
	const n, stride = 3, 4
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = float64(i) * 0.5
	}
	valid := encodeSampleReply(nil, []int{5, 0, 9}, rows, stride)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated reply: the satellite seed
	f.Add(valid[:sampleReplyHdr])
	f.Add([]byte("MXSR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx := make([]int, n)
		rowBytes, err := decodeSampleReply(data, n, stride, idx)
		if len(data) < sampleReplySize(n, stride) && !errors.Is(err, ErrShortFrame) {
			t.Fatalf("short input (%d bytes) must be ErrShortFrame, got %v", len(data), err)
		}
		if err == nil && len(rowBytes) != 8*n*stride {
			t.Fatalf("accepted frame but returned %d row bytes", len(rowBytes))
		}
	})
}

// The JSON request form stays accepted for hand-driven debugging and older
// clients; it must select the same rows the binary frame does.
func TestLegacyJSONSampleRequest(t *testing.T) {
	spec := testSpec(128)
	_, hs := newTestServer(t, spec, nil)
	c := fastClient(hs.URL)
	sink, err := NewRemoteSink(c, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 128; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	const batch = 16
	stride := replay.NewRowLayout(spec).Stride()

	body, err := json.Marshal(sampleRequest{N: batch, Seed: 99, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.do(http.MethodPost, PathSample, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	jsonIdx := make([]int, batch)
	if _, err := decodeSampleReply(data, batch, stride, jsonIdx); err != nil {
		t.Fatal(err)
	}

	remote, err := NewRemoteSource(c, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	dst := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
	binIdx, err := remote.SampleBatch(batch, 99, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range binIdx {
		if binIdx[i] != jsonIdx[i] {
			t.Fatalf("index %d: JSON request selected %d, binary %d", i, jsonIdx[i], binIdx[i])
		}
	}
}

// sampleAll runs SampleBatch for every seed and flattens the results into
// comparable per-seed snapshots.
func sampleAll(t *testing.T, src replay.TransitionSource, batch int, seeds []int64) [][]float64 {
	t.Helper()
	out := make([][]float64, len(seeds))
	for i, seed := range seeds {
		dst := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		idx, err := src.SampleBatch(batch, seed, dst)
		if err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, v := range idx {
			flat = append(flat, float64(v))
		}
		for a := 0; a < 2; a++ {
			flat = append(flat, dst[a].Obs.Data...)
			flat = append(flat, dst[a].Act.Data...)
			flat = append(flat, dst[a].Rew.Data...)
			flat = append(flat, dst[a].NextObs.Data...)
			flat = append(flat, dst[a].Done.Data...)
		}
		out[i] = flat
	}
	return out
}

// fillServer ships rows rows through a sink so the server has something to
// sample.
func fillServer(t *testing.T, c *Client, spec replay.Spec, rows int) {
	t.Helper()
	sink, err := NewRemoteSink(c, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < rows; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

// The striped client must give concurrent update workers the same bytes a
// serial reference gets: no scratch sharing, no cross-talk between in-flight
// samples. Run under -race in CI.
func TestStripedClientConcurrentSamplers(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4}
	_, hs := newTestServer(t, spec, nil)
	c := NewClient(hs.URL, ClientOptions{Timeout: 5 * time.Second, Attempts: 4, BaseDelay: time.Millisecond, JitterSeed: 1, Conns: 4})
	fillServer(t, c, spec, 300)

	remote, err := NewRemoteSource(c, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 32
	seeds := make([]int64, 24)
	for i := range seeds {
		seeds[i] = int64(1000 + i*17)
	}
	want := sampleAll(t, remote, batch, seeds)

	const workers = 8
	got := make([][]float64, len(seeds))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int, len(seeds))
	for i := range seeds {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				dst := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
				idx, err := remote.SampleBatch(batch, seeds[i], dst)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				var flat []float64
				for _, v := range idx {
					flat = append(flat, float64(v))
				}
				for a := 0; a < 2; a++ {
					flat = append(flat, dst[a].Obs.Data...)
					flat = append(flat, dst[a].Act.Data...)
					flat = append(flat, dst[a].Rew.Data...)
					flat = append(flat, dst[a].NextObs.Data...)
					flat = append(flat, dst[a].Done.Data...)
				}
				got[i] = flat
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	for i := range seeds {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("seed %d: %d values, want %d", seeds[i], len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("seed %d diverged at %d under concurrency", seeds[i], j)
			}
		}
	}
}

// A prefetched batch must be the exact bytes a synchronous fetch returns,
// and announced seeds must actually be served from the prefetch (hits), not
// silently re-fetched.
func TestPrefetchHitBitIdentical(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	_, hs := newTestServer(t, spec, nil)
	c := fastClient(hs.URL)
	fillServer(t, c, spec, 300)

	refSrc, err := NewRemoteSource(c, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 32
	seeds := []int64{41, 42, 43, 44}
	want := sampleAll(t, refSrc, batch, seeds)

	reg := telemetry.NewRegistry()
	src, err := NewRemoteSource(c, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPrefetchSource(src, 4, reg)
	pf.PrefetchBatch(batch, seeds)
	got := sampleAll(t, pf, batch, seeds)
	for i := range seeds {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("seed %d: prefetched batch diverged at %d", seeds[i], j)
			}
		}
	}
	hits := reg.Counter("marl_exp_prefetch_hit_total").Value()
	misses := reg.Counter("marl_exp_prefetch_miss_total").Value()
	if hits != uint64(len(seeds)) || misses != 0 {
		t.Fatalf("hits=%d misses=%d, want %d/0", hits, misses, len(seeds))
	}

	// Unannounced seeds fall back to the synchronous path and count as
	// misses — and still return correct bytes.
	want2 := sampleAll(t, refSrc, batch, []int64{77})
	got2 := sampleAll(t, pf, batch, []int64{77})
	for j := range want2[0] {
		if got2[0][j] != want2[0][j] {
			t.Fatalf("unannounced seed diverged at %d", j)
		}
	}
	if m := reg.Counter("marl_exp_prefetch_miss_total").Value(); m != 1 {
		t.Fatalf("miss counter %d, want 1", m)
	}
}

// Satellite: under an injected slow/lossy link, a prefetch stuck in
// retries must not stall the learner — SampleBatch falls back to the
// synchronous path after SyncAfter — and every batch, hit or fallback,
// stays bit-identical to the fault-free reference. No seed is trained
// twice or skipped: sampleAll consumes each seed exactly once.
func TestPrefetchFallsBackUnderFaults(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4}
	const batch = 32
	seeds := []int64{901, 902, 903, 904, 905, 906}

	// Fault-free reference.
	_, cleanHS := newTestServer(t, spec, nil)
	cleanC := fastClient(cleanHS.URL)
	fillServer(t, cleanC, spec, 300)
	refSrc, err := NewRemoteSource(cleanC, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleAll(t, refSrc, batch, seeds)

	// Faulty run: drops, errors and delays on the wire; generous retries
	// so nothing ultimately fails.
	_, hs := newTestServer(t, spec, nil)
	inj := faultnet.New(77)
	if err := inj.SetRule("learner→replay", faultnet.Rule{Drop: 0.1, Error: 0.1, Delay: 2 * time.Millisecond, DelayProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(hs.URL, ClientOptions{
		Timeout:          5 * time.Second,
		Attempts:         50,
		BaseDelay:        time.Millisecond,
		MaxDelay:         5 * time.Millisecond,
		BreakerThreshold: -1,
		JitterSeed:       1,
		Transport:        inj.RoundTripper("learner→replay", nil),
	})
	fillServer(t, c, spec, 300)

	src, err := NewRemoteSource(c, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pf := NewPrefetchSource(src, 4, reg)
	pf.SyncAfter = time.Millisecond // aggressive: force fallbacks under delay
	pf.PrefetchBatch(batch, seeds)
	got := sampleAll(t, pf, batch, seeds)

	if cnt := inj.Counts("learner→replay"); cnt.Dropped == 0 && cnt.Errored == 0 && cnt.Delayed == 0 {
		t.Fatalf("fault injection never fired (%+v); the run proved nothing", cnt)
	}
	for i := range seeds {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("seed %d: %d values, want %d", seeds[i], len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("seed %d diverged at %d under faults", seeds[i], j)
			}
		}
	}
	hits := reg.Counter("marl_exp_prefetch_hit_total").Value()
	misses := reg.Counter("marl_exp_prefetch_miss_total").Value()
	if hits+misses != uint64(len(seeds)) {
		t.Fatalf("hits %d + misses %d != %d consumed seeds", hits, misses, len(seeds))
	}
}
