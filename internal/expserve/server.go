package expserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"marlperf/internal/expshard"
	"marlperf/internal/expstore"
	"marlperf/internal/f64le"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// statser is implemented by providers that expose occupancy counters
// (expstore.Store does); others get a synthesized view from RowCount.
type statser interface {
	Stats() expstore.Stats
}

// ServerConfig wires an experience server.
type ServerConfig struct {
	// Provider backs all endpoints. Required.
	Provider expstore.Provider
	// Spec is the transition shape; must match Provider's layout. Required.
	Spec replay.Spec
	// QueueDepth bounds the ingest queue in batches; a full queue rejects
	// appends with 429 so actors back off instead of piling up unbounded
	// memory. Defaults to 64.
	QueueDepth int
	// MaxSampleRows caps one sample request. Defaults to 4096.
	MaxSampleRows int
	// Registry receives service metrics; nil creates a private registry.
	Registry *telemetry.Registry
	// DedupLogPath, when set, makes the per-(actor,seq) idempotency cursor
	// durable and exact to the row: before a batch touches the store, one
	// JSONL intent record {actor, seq, base, n} is appended, where base is
	// the store's pre-apply row total. A restarted server replays the log
	// against the recovered total to classify each batch as fully applied
	// (cursor advances — redelivery is acknowledged as a duplicate),
	// untouched (redelivery applies normally), or torn mid-flush by the
	// kill (redelivery applies only the rows the truncated tail lost, so
	// the surviving prefix is never doubled). Meaningful with a durable
	// provider; empty keeps the cursor in memory only.
	DedupLogPath string
	// Tracer, when set and enabled, records a server span per append and
	// sample request that arrives with an X-Marl-Trace header, joining
	// the client's trace. Nil or disabled costs one atomic load per
	// request.
	Tracer *trace.Tracer
	// ShardID names this server's position in a sharded replay fabric
	// (the -shard-id flag). Shard-sample requests addressed to a
	// different shard are rejected — the guard against a misrouted
	// fabric spec silently sampling the wrong substream. Empty accepts
	// any request and is reported as "" in stats.
	ShardID string
}

// ingestJob is one queued append batch; done carries the synchronous ack.
// enq (set at handler enqueue time) feeds the append→sampleable latency
// histogram: the ack only returns once the rows are flushed and visible
// to samplers, so ack-time minus enq is exactly how long new experience
// waited to become sampleable.
type ingestJob struct {
	batch appendBatch
	enq   time.Time
	done  chan ingestResult
}

type ingestResult struct {
	total uint64
	rows  int
	dup   bool
	err   error
}

// Server executes the experience service: bounded-queue ingestion with a
// single writer (per-actor arrival order is preserved and every acknowledged
// batch is flushed — durable against process kill before the actor sees the
// ack), and server-side seeded sampling over the packed rows.
type Server struct {
	cfg    ServerConfig
	layout replay.RowLayout
	mux    *http.ServeMux

	// provMu serializes provider access between the single ingest writer and
	// concurrent sample/stats readers. The durable expstore.Store carries its
	// own lock, but the Provider contract does not require one (the volatile
	// Ring deliberately has none), so the server guards the boundary itself.
	provMu sync.RWMutex

	queue   chan ingestJob
	stop    chan struct{}
	drained chan struct{} // closed when the ingest writer has exited
	closed  sync.Once

	// lastSeq is the per-actor idempotency cursor. Written only by the
	// single ingest writer under provMu.Lock; read by handleStats under
	// provMu.RLock.
	lastSeq map[string]uint64
	// partial records batches a kill tore mid-flush: the first `rows` rows
	// of batch `seq` are already durable, so a redelivery must skip them.
	// Populated from the dedup log on recovery, cleared on redelivery.
	partial    map[string]partialApply
	dedupPath  string
	dedupF     *os.File
	dedupBytes int64

	// Ingest metrics.
	ingestRows     *telemetry.Counter
	ingestBatches  *telemetry.Counter
	ingestDups     *telemetry.Counter
	ingestRejected *telemetry.Counter
	appendSeconds  *telemetry.Histogram
	// Sample metrics.
	sampleRequests *telemetry.Counter
	sampleRows     *telemetry.Counter
	sampleBytes    *telemetry.Counter
	sampleErrors   *telemetry.Counter
	sampleSeconds  *telemetry.Histogram
	// Shard-sample metrics (fabric topologies only).
	shardSampleRequests *telemetry.Counter
	shardSampleRows     *telemetry.Counter
	shardSampleMisaddr  *telemetry.Counter
	// End-to-end lag metrics.
	sampleAgeRows *telemetry.Histogram // per sampled row: store rows − row index
	appendVisible *telemetry.Histogram // append arrival → rows sampleable

	// samplePool recycles per-request sample scratch (index slice + response
	// frame buffer) across requests. Response frames for a mid-size workload
	// run to megabytes; re-allocating and re-growing them per request was
	// the direct cause of remote throughput degrading with batch size.
	samplePool sync.Pool
	// Occupancy gauges.
	storeRows     *telemetry.Gauge
	storeSegments *telemetry.Gauge
}

// NewServer validates cfg, registers metrics, and starts the ingest writer.
// Close must be called to stop it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("expserve: NewServer needs a Provider")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	layout := cfg.Provider.Layout()
	if want := replay.NewRowLayout(cfg.Spec); layout.Stride() != want.Stride() {
		return nil, fmt.Errorf("expserve: provider stride %d does not match spec stride %d", layout.Stride(), want.Stride())
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxSampleRows <= 0 {
		cfg.MaxSampleRows = 4096
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_exp_ingest_rows_total", "Transition rows ingested into the experience store.")
	reg.SetHelp("marl_exp_sample_requests_total", "Sample requests served by the experience store.")
	reg.SetHelp("marl_exp_sample_bytes_total", "Sample response bytes written to the wire.")
	reg.SetHelp("marl_exp_sample_age_rows", "Age of each sampled row, in rows appended since it (store row count minus sampled index).")
	reg.SetHelp("marl_exp_append_visible_seconds", "Latency from append arrival to the batch's rows being flushed and sampleable.")
	reg.SetHelp("marl_exp_shard_sample_requests_total", "Per-shard slices of fabric-wide sample draws served by this shard.")
	reg.SetHelp("marl_exp_shard_sample_misaddressed_total", "Shard-sample requests rejected because they were addressed to a different shard id.")
	s := &Server{
		cfg:     cfg,
		layout:  layout,
		queue:   make(chan ingestJob, cfg.QueueDepth),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
		lastSeq: make(map[string]uint64),
		partial: make(map[string]partialApply),

		ingestRows:     reg.Counter("marl_exp_ingest_rows_total"),
		ingestBatches:  reg.Counter("marl_exp_ingest_batches_total"),
		ingestDups:     reg.Counter("marl_exp_ingest_dup_batches_total"),
		ingestRejected: reg.Counter("marl_exp_ingest_rejected_total"),
		appendSeconds:  reg.Histogram("marl_exp_append_seconds", nil),
		sampleRequests: reg.Counter("marl_exp_sample_requests_total"),
		sampleRows:     reg.Counter("marl_exp_sample_rows_total"),
		sampleBytes:    reg.Counter("marl_exp_sample_bytes_total"),
		sampleErrors:   reg.Counter("marl_exp_sample_errors_total"),
		sampleSeconds:  reg.Histogram("marl_exp_sample_seconds", nil),

		shardSampleRequests: reg.Counter("marl_exp_shard_sample_requests_total"),
		shardSampleRows:     reg.Counter("marl_exp_shard_sample_rows_total"),
		shardSampleMisaddr:  reg.Counter("marl_exp_shard_sample_misaddressed_total"),

		sampleAgeRows: reg.Histogram("marl_exp_sample_age_rows", sampleAgeBuckets()),
		appendVisible: reg.Histogram("marl_exp_append_visible_seconds", nil),
		storeRows:     reg.Gauge("marl_exp_store_rows"),
		storeSegments: reg.Gauge("marl_exp_store_segments"),
	}
	if cfg.DedupLogPath != "" {
		if err := s.openDedupLog(cfg.DedupLogPath); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathAppend, s.handleAppend)
	s.mux.HandleFunc(PathSample, s.handleSample)
	s.mux.HandleFunc(PathShardSample, s.handleShardSample)
	s.mux.HandleFunc(PathStats, s.handleStats)
	go s.ingestLoop()
	return s, nil
}

// dedupRecord is one line of the durable idempotency log. Three forms share
// it: an *intent* (N > 0) written before a batch's rows move, carrying the
// store's pre-apply row total in Base; a *cursor* (N == 0, PartialRows == 0)
// written by compaction — and the only form pre-intent logs contain — which
// asserts seq fully applied; and a *partial* (PartialRows > 0), compaction's
// way of persisting a torn batch whose first PartialRows rows are durable.
type dedupRecord struct {
	Actor       string `json:"actor"`
	Seq         uint64 `json:"seq"`
	Base        uint64 `json:"base,omitempty"`
	N           int    `json:"n,omitempty"`
	PartialRows int    `json:"partial_rows,omitempty"`
}

// partialApply is recovered torn-batch state: the first rows rows of batch
// seq are already in the store, so a redelivery must apply only the rest.
type partialApply struct {
	seq  uint64
	rows int
}

// dedupCompactBytes triggers a rewrite of the dedup log to one record per
// actor once the append-only file grows past it.
const dedupCompactBytes = 4 << 20

// openDedupLog loads the durable idempotency state and opens the log for
// appending. Each intent is classified against the provider's recovered row
// total: fully applied (total covers base+n), torn mid-flush (total strictly
// inside the batch — the truncated store kept a row-aligned prefix), or
// untouched. Ingest is strictly serial — intent k+1 is appended only after
// batch k was applied, flushed and acked — so only an actor's last record
// can be torn or untouched; every earlier one is provably applied. The log
// shares RunLog's JSONL framing, so a tail torn by a kill mid-append is
// tolerated: the batch it described was never acknowledged, and redelivery
// applies it from scratch.
func (s *Server) openDedupLog(path string) error {
	var total uint64
	hasTotal := false
	if st, ok := s.cfg.Provider.(statser); ok {
		total, hasTotal = st.Stats().Total, true
	}
	if f, err := os.Open(path); err == nil {
		_, serr := telemetry.ScanRunLog(f, func(line json.RawMessage) error {
			var r dedupRecord
			if err := json.Unmarshal(line, &r); err != nil {
				return err
			}
			if r.Seq == 0 {
				// Client seqs start at 1; 0 would underflow the seq-1
				// cursor math below.
				return nil
			}
			// Any record above an actor's partial seq proves that batch
			// finished after all: serial ingest writes nothing about seq
			// k+1 until k is fully applied.
			if p, ok := s.partial[r.Actor]; ok && p.seq < r.Seq {
				if p.seq > s.lastSeq[r.Actor] {
					s.lastSeq[r.Actor] = p.seq
				}
				delete(s.partial, r.Actor)
			}
			cursorTo := func(seq uint64) {
				if seq > s.lastSeq[r.Actor] {
					s.lastSeq[r.Actor] = seq
				}
			}
			switch {
			case r.PartialRows > 0:
				s.partial[r.Actor] = partialApply{seq: r.Seq, rows: r.PartialRows}
				cursorTo(r.Seq - 1)
			case r.N == 0:
				cursorTo(r.Seq)
				if p, ok := s.partial[r.Actor]; ok && p.seq <= r.Seq {
					delete(s.partial, r.Actor)
				}
			case hasTotal && total >= r.Base+uint64(r.N):
				cursorTo(r.Seq)
				if p, ok := s.partial[r.Actor]; ok && p.seq <= r.Seq {
					delete(s.partial, r.Actor)
				}
			case hasTotal && total > r.Base:
				s.partial[r.Actor] = partialApply{seq: r.Seq, rows: int(total - r.Base)}
				cursorTo(r.Seq - 1)
			default:
				// Untouched — or the provider recovers no rows (volatile
				// Ring), in which case re-applying is exactly right.
				cursorTo(r.Seq - 1)
			}
			return nil
		})
		f.Close()
		if serr != nil {
			return fmt.Errorf("expserve: dedup log %s: %w", path, serr)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("expserve: dedup log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("expserve: dedup log: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("expserve: dedup log: %w", err)
	}
	s.dedupPath, s.dedupF, s.dedupBytes = path, f, fi.Size()
	return nil
}

// recordIntent makes a batch durable as an intent *before* its rows move:
// base is the store total as-if the batch had zero rows applied (a partial
// redelivery subtracts its already-durable prefix), so on recovery
// total-base counts exactly how many of the batch's n rows survived.
// Compaction runs before the append — never after — so the fresh intent is
// not immediately rewritten into cursor form while its apply is still in
// flight. Called by the single ingest writer under provMu.Lock.
func (s *Server) recordIntent(actor string, seq, base uint64, n int) error {
	if s.dedupF == nil {
		return nil
	}
	if s.dedupBytes > dedupCompactBytes {
		if err := s.compactDedupLog(); err != nil {
			return err
		}
	}
	line, err := json.Marshal(dedupRecord{Actor: actor, Seq: seq, Base: base, N: n})
	if err != nil {
		return err
	}
	wn, werr := s.dedupF.Write(append(line, '\n'))
	s.dedupBytes += int64(wn)
	if werr != nil {
		return fmt.Errorf("expserve: dedup log: %w", werr)
	}
	return nil
}

// compactDedupLog rewrites the append-only log to one cursor record per
// actor — plus a partial record for any still-torn batch, so the skip
// survives compaction — then renames over the original and reopens it.
func (s *Server) compactDedupLog() error {
	tmp := s.dedupPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("expserve: compacting dedup log: %w", err)
	}
	writeRec := func(r dedupRecord) error {
		line, err := json.Marshal(r)
		if err == nil {
			_, err = f.Write(append(line, '\n'))
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("expserve: compacting dedup log: %w", err)
		}
		return nil
	}
	for actor, seq := range s.lastSeq {
		if err := writeRec(dedupRecord{Actor: actor, Seq: seq}); err != nil {
			return err
		}
	}
	for actor, p := range s.partial {
		if err := writeRec(dedupRecord{Actor: actor, Seq: p.seq, PartialRows: p.rows}); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("expserve: compacting dedup log: %w", err)
	}
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("expserve: compacting dedup log: %w", err)
	}
	if err := os.Rename(tmp, s.dedupPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("expserve: compacting dedup log: %w", err)
	}
	s.dedupF.Close()
	nf, err := os.OpenFile(s.dedupPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.dedupF = nil
		return fmt.Errorf("expserve: reopening dedup log: %w", err)
	}
	s.dedupF, s.dedupBytes = nf, size
	return nil
}

// sampleAgeBuckets spans row ages from a warm small buffer (hundreds of
// rows) to a 1M+ transition window, roughly ×4 per bucket.
func sampleAgeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// requestSpan opens a server span joined to the trace context the
// request carries, or an inert span when tracing is off or no valid
// X-Marl-Trace header arrived.
func (s *Server) requestSpan(r *http.Request, name string) trace.Span {
	if !s.cfg.Tracer.Enabled() {
		return trace.Span{}
	}
	ctx, ok := trace.ParseHeader(r.Header.Get(trace.HeaderName))
	if !ok {
		return trace.Span{}
	}
	return s.cfg.Tracer.StartSpan(ctx, name)
}

// Handler returns the service mux, for mounting alongside other endpoints
// (marl-replayd serves it together with the telemetry /metrics handler).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the ingest writer and waits for it to drain: in-flight jobs
// are applied first so no acknowledged batch is lost, then the dedup log
// (if any) is closed. Idempotent.
func (s *Server) Close() error {
	s.closed.Do(func() { close(s.stop) })
	<-s.drained
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if s.dedupF != nil {
		s.dedupF.Close()
		s.dedupF = nil
	}
	return nil
}

// ingestLoop is the single writer: batches apply in arrival order, each
// acknowledged only after the store has accepted and flushed it. One writer
// means per-actor order is trivially preserved and RowCount is exact the
// moment an ack returns — the property the determinism contract needs.
func (s *Server) ingestLoop() {
	defer close(s.drained)
	for {
		select {
		case job := <-s.queue:
			job.done <- s.applyBatch(job.batch, job.enq)
		case <-s.stop:
			// Drain anything already queued, then exit.
			for {
				select {
				case job := <-s.queue:
					job.done <- s.applyBatch(job.batch, job.enq)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) applyBatch(b appendBatch, enq time.Time) ingestResult {
	start := time.Now()
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if applied, ok := s.lastSeq[b.ActorID]; ok && b.BatchSeq <= applied {
		s.ingestDups.Inc()
		return ingestResult{rows: s.cfg.Provider.RowCount(), dup: true}
	}
	// A redelivery of a batch a kill tore mid-flush skips the prefix the
	// truncated store already holds — the frame is byte-identical (the
	// actor replays the exact CRC-framed payload from its spool), so the
	// suffix lines up row for row.
	skip := 0
	if p, ok := s.partial[b.ActorID]; ok && p.seq == b.BatchSeq && p.rows > 0 && p.rows < b.N {
		skip = p.rows
	}
	// The intent goes durable before any row does. Its base is backdated
	// past the already-durable prefix so a recovery scan sees total-base
	// as this batch's full durable row count, whichever attempt wrote it.
	var base uint64
	if st, ok := s.cfg.Provider.(statser); ok {
		base = st.Stats().Total - uint64(skip)
	}
	if err := s.recordIntent(b.ActorID, b.BatchSeq, base, b.N); err != nil {
		// Nothing was applied; fail the ack and let the client retry.
		return ingestResult{err: err}
	}
	stride := s.layout.Stride()
	for k := skip; k < b.N; k++ {
		if err := s.cfg.Provider.AppendRow(b.Rows[k*stride : (k+1)*stride]); err != nil {
			return ingestResult{err: err}
		}
	}
	if err := s.cfg.Provider.Flush(); err != nil {
		return ingestResult{err: err}
	}
	s.lastSeq[b.ActorID] = b.BatchSeq
	delete(s.partial, b.ActorID)
	s.ingestBatches.Inc()
	s.ingestRows.Add(uint64(b.N - skip))
	s.appendSeconds.Observe(time.Since(start).Seconds())
	if !enq.IsZero() {
		s.appendVisible.Observe(time.Since(enq).Seconds())
	}
	rows := s.cfg.Provider.RowCount()
	s.updateGauges(rows)
	var total uint64
	if st, ok := s.cfg.Provider.(statser); ok {
		total = st.Stats().Total
	} else {
		total = s.ingestRows.Value()
	}
	return ingestResult{total: total, rows: rows}
}

func (s *Server) updateGauges(rows int) {
	s.storeRows.Set(float64(rows))
	if st, ok := s.cfg.Provider.(statser); ok {
		s.storeSegments.Set(float64(st.Stats().Segments))
	}
}

// handleAppend ingests one actor batch. A full queue answers 429 — the
// backpressure signal the client's jittered retry loop respects.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := decodeAppend(body, s.layout.Stride())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The server span covers queue wait + apply + flush — the full
	// "experience becomes sampleable" window the client's append-rpc span
	// brackets from the other side of the wire.
	sp := s.requestSpan(r, "ingest")
	job := ingestJob{batch: batch, enq: time.Now(), done: make(chan ingestResult, 1)}
	select {
	case s.queue <- job:
	default:
		s.ingestRejected.Inc()
		sp.EndArg("rejected", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		return
	}
	res := <-job.done
	if res.err != nil {
		sp.EndArg("error", 1)
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
		return
	}
	sp.EndArg("rows", int64(batch.N))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(appendReply{Total: res.total, Rows: res.rows, Dup: res.dup})
}

// leGatherer is the zero-copy fast path contract: providers that can write
// selected rows straight from their row storage into a response buffer as
// little-endian bytes (expstore.Ring and expstore.Store both can). Others
// fall back to SamplePacked plus an encode pass.
type leGatherer interface {
	GatherEncodeLE(indices []int, dst []byte)
}

// sampleScratch is one request's worth of recycled sample state.
type sampleScratch struct {
	idx  []int
	buf  []byte    // full response frame
	rows []float64 // fallback gather target (providers without GatherEncodeLE)

	// Shard-sample path only: the owned subset of the draw.
	slots  []int32
	locals []int
}

// readSampleRequest parses either wire form of a sample request: the binary
// frame (preferred — fixed-size, CRC-checked) or the legacy JSON body.
func readSampleRequest(r *http.Request) (sampleRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return sampleRequest{}, err
	}
	if len(body) >= 4 && string(body[:4]) == sampleReqMagic {
		return decodeSampleRequest(body)
	}
	var req sampleRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return sampleRequest{}, err
	}
	return req, nil
}

// handleSample executes one seeded plan server-side. Selection and gather
// run under one provider read lock, so the learner's locality runs stay
// contiguous even while actors append concurrently. The response frame is
// assembled in pooled, pre-sized scratch — rows move ring storage → frame
// buffer in one hop — and ships with a known Content-Length so the write
// path never chunks.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := readSampleRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.N < 1 || req.N > s.cfg.MaxSampleRows {
		http.Error(w, fmt.Sprintf("n %d outside [1,%d]", req.N, s.cfg.MaxSampleRows), http.StatusBadRequest)
		return
	}
	if err := req.Plan.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	sp := s.requestSpan(r, "sample")
	s.sampleRequests.Inc()
	stride := s.layout.Stride()
	total := sampleReplySize(req.N, stride)

	sc, _ := s.samplePool.Get().(*sampleScratch)
	if sc == nil {
		sc = &sampleScratch{}
	}
	defer s.samplePool.Put(sc)
	if cap(sc.idx) < req.N {
		sc.idx = make([]int, req.N)
	}
	if cap(sc.buf) < total {
		sc.buf = make([]byte, total)
	}
	idx := sc.idx[:req.N]
	buf := sc.buf[:total]

	s.provMu.RLock()
	rowCount := s.cfg.Provider.RowCount()
	enc, fast := s.cfg.Provider.(leGatherer)
	if fast {
		err = req.Plan.FillIndices(idx, rowCount, req.Seed)
		if err == nil {
			enc.GatherEncodeLE(idx, buf[sampleReplyHdr:])
		}
	} else {
		if cap(sc.rows) < req.N*stride {
			sc.rows = make([]float64, req.N*stride)
		}
		err = s.cfg.Provider.SamplePacked(req.Plan, req.N, req.Seed, idx, sc.rows[:req.N*stride])
		if err == nil {
			f64le.Put(buf[sampleReplyHdr:], sc.rows[:req.N*stride])
		}
	}
	s.provMu.RUnlock()
	if err != nil {
		// An empty/underfilled store is the learner polling before warmup,
		// not a server fault.
		s.sampleErrors.Inc()
		sp.EndArg("error", 1)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	putSampleReplyHeader(buf, req.N, stride)
	putSampleReplyIndex(buf, req.N, stride, idx)

	// Experience age per sampled row, in rows appended since it: how far
	// behind the head of the stream training data actually is — the lag
	// no throughput aggregate can express.
	for _, ix := range idx {
		s.sampleAgeRows.Observe(float64(rowCount - ix))
	}

	s.sampleRows.Add(uint64(req.N))
	s.sampleBytes.Add(uint64(total))
	s.sampleSeconds.Observe(time.Since(start).Seconds())
	sp.EndArg("rows", int64(req.N))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(total))
	_, _ = w.Write(buf)
}

// handleShardSample executes this shard's slice of a fabric-wide draw.
// The request carries the client's frozen stream view; every shard runs
// the identical pure (plan, viewLen, seed) selection over it, maps each
// global index through the time-striped placement arithmetic, and
// gathers only the slots this shard's group owns. Because selection and
// mapping are pure functions of the request bytes, all shards agree on
// slot ownership without talking to each other, and the client's
// slot-merge reconstructs the exact batch a single store would return.
func (s *Server) handleShardSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := decodeShardSampleRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.cfg.ShardID != "" && req.ShardID != "" && req.ShardID != s.cfg.ShardID {
		s.shardSampleMisaddr.Inc()
		http.Error(w, fmt.Sprintf("request addressed to shard %q, this is %q", req.ShardID, s.cfg.ShardID), http.StatusBadRequest)
		return
	}
	if req.N < 1 || req.N > s.cfg.MaxSampleRows {
		http.Error(w, fmt.Sprintf("n %d outside [1,%d]", req.N, s.cfg.MaxSampleRows), http.StatusBadRequest)
		return
	}
	if err := req.Plan.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	view, err := expshard.NewView(req.Partitions, req.Offset, req.Part2Group, req.Stats)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !req.Stats[req.MyGroup].Live {
		http.Error(w, "draw marks this shard's group dead", http.StatusBadRequest)
		return
	}
	length := int(view.Len())
	if length < 1 {
		s.sampleErrors.Inc()
		http.Error(w, "fabric view is empty", http.StatusConflict)
		return
	}
	start := time.Now()
	sp := s.requestSpan(r, "shard-sample")
	s.sampleRequests.Inc()
	s.shardSampleRequests.Inc()
	stride := s.layout.Stride()

	sc, _ := s.samplePool.Get().(*sampleScratch)
	if sc == nil {
		sc = &sampleScratch{}
	}
	defer s.samplePool.Put(sc)
	if cap(sc.idx) < req.N {
		sc.idx = make([]int, req.N)
	}
	idx := sc.idx[:req.N]
	if err := req.Plan.FillIndices(idx, length, req.Seed); err != nil {
		s.sampleErrors.Inc()
		sp.EndArg("error", 1)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if cap(sc.slots) < req.N {
		sc.slots = make([]int32, req.N)
		sc.locals = make([]int, req.N)
	}
	slots, locals := sc.slots[:0], sc.locals[:0]
	for j, gi := range idx {
		g, local, _ := view.Map(int64(gi))
		if g != req.MyGroup {
			continue
		}
		slots = append(slots, int32(j))
		locals = append(locals, int(local))
	}
	k := len(slots)
	total := shardReplySize(k, stride)
	if cap(sc.buf) < total {
		sc.buf = make([]byte, total)
	}
	buf := sc.buf[:total]

	s.provMu.RLock()
	rowCount := s.cfg.Provider.RowCount()
	var storeTotal uint64
	if st, ok := s.cfg.Provider.(statser); ok {
		storeTotal = st.Stats().Total
	} else {
		storeTotal = s.ingestRows.Value()
	}
	// The view's local indices are relative to the retained window the
	// client observed; this store may have trimmed further (or, on a
	// lagging replica, less) since. Shift by the trim drift, and refuse
	// rather than mis-sample when a wanted row is gone or not yet here
	// — the client treats the 409 as a degraded shard and fails over.
	viewStat := req.Stats[req.MyGroup]
	viewTrim := int64(viewStat.Total) - int64(viewStat.Rows)
	storeTrim := int64(storeTotal) - int64(rowCount)
	drift := viewTrim - storeTrim
	var gatherErr error
	for i := range locals {
		l := int64(locals[i]) + drift
		if l < 0 || l >= int64(rowCount) {
			gatherErr = fmt.Errorf("row %d outside this shard's window [0,%d) (trim drift %d)", l, rowCount, drift)
			break
		}
		locals[i] = int(l)
	}
	enc, fast := s.cfg.Provider.(leGatherer)
	if gatherErr == nil {
		if !fast {
			gatherErr = fmt.Errorf("provider cannot gather shard samples")
		} else {
			enc.GatherEncodeLE(locals, buf[shardReplyHdr:])
		}
	}
	s.provMu.RUnlock()
	if gatherErr != nil {
		s.sampleErrors.Inc()
		sp.EndArg("error", 1)
		http.Error(w, gatherErr.Error(), http.StatusConflict)
		return
	}
	putShardReplyHeader(buf, k, stride, req.N)
	putShardReplySlots(buf, k, stride, slots)
	for _, l := range locals {
		s.sampleAgeRows.Observe(float64(rowCount - l))
	}
	s.sampleRows.Add(uint64(k))
	s.shardSampleRows.Add(uint64(k))
	s.sampleBytes.Add(uint64(total))
	s.sampleSeconds.Observe(time.Since(start).Seconds())
	sp.EndArg("rows", int64(k))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(total))
	_, _ = w.Write(buf)
}

// handleStats reports the spec, occupancy and per-actor append cursors as
// JSON. The cursors let a restarted actor resume its sequence stream past
// what the server already applied instead of colliding with the dedup map.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st expstore.Stats
	s.provMu.RLock()
	if withStats, ok := s.cfg.Provider.(statser); ok {
		st = withStats.Stats()
	} else {
		st.Rows = s.cfg.Provider.RowCount()
		st.Total = s.ingestRows.Value()
		st.Stride = s.layout.Stride()
	}
	st.Shard = s.cfg.ShardID
	actors := make(map[string]uint64, len(s.lastSeq))
	for a, seq := range s.lastSeq {
		actors[a] = seq
	}
	s.updateGauges(st.Rows)
	s.provMu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsReply{Spec: specToWire(s.cfg.Spec), Store: st, Actors: actors})
}

// ListenAndServe is a convenience for tests and the replayd binary: bind
// addr (port 0 picks a free port), serve the handler in the background, and
// return the bound listener address plus a shutdown func.
func (s *Server) ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("expserve: listener: %w", err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		err := srv.Close()
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
