package expserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"marlperf/internal/expstore"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
)

// statser is implemented by providers that expose occupancy counters
// (expstore.Store does); others get a synthesized view from RowCount.
type statser interface {
	Stats() expstore.Stats
}

// ServerConfig wires an experience server.
type ServerConfig struct {
	// Provider backs all endpoints. Required.
	Provider expstore.Provider
	// Spec is the transition shape; must match Provider's layout. Required.
	Spec replay.Spec
	// QueueDepth bounds the ingest queue in batches; a full queue rejects
	// appends with 429 so actors back off instead of piling up unbounded
	// memory. Defaults to 64.
	QueueDepth int
	// MaxSampleRows caps one sample request. Defaults to 4096.
	MaxSampleRows int
	// Registry receives service metrics; nil creates a private registry.
	Registry *telemetry.Registry
}

// ingestJob is one queued append batch; done carries the synchronous ack.
type ingestJob struct {
	batch appendBatch
	done  chan ingestResult
}

type ingestResult struct {
	total uint64
	rows  int
	dup   bool
	err   error
}

// Server executes the experience service: bounded-queue ingestion with a
// single writer (per-actor arrival order is preserved and every acknowledged
// batch is flushed — durable against process kill before the actor sees the
// ack), and server-side seeded sampling over the packed rows.
type Server struct {
	cfg    ServerConfig
	layout replay.RowLayout
	mux    *http.ServeMux

	// provMu serializes provider access between the single ingest writer and
	// concurrent sample/stats readers. The durable expstore.Store carries its
	// own lock, but the Provider contract does not require one (the volatile
	// Ring deliberately has none), so the server guards the boundary itself.
	provMu sync.RWMutex

	queue chan ingestJob
	stop  chan struct{}

	// Ingest metrics.
	ingestRows     *telemetry.Counter
	ingestBatches  *telemetry.Counter
	ingestDups     *telemetry.Counter
	ingestRejected *telemetry.Counter
	appendSeconds  *telemetry.Histogram
	// Sample metrics.
	sampleRequests *telemetry.Counter
	sampleRows     *telemetry.Counter
	sampleErrors   *telemetry.Counter
	sampleSeconds  *telemetry.Histogram
	// Occupancy gauges.
	storeRows     *telemetry.Gauge
	storeSegments *telemetry.Gauge
}

// NewServer validates cfg, registers metrics, and starts the ingest writer.
// Close must be called to stop it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("expserve: NewServer needs a Provider")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	layout := cfg.Provider.Layout()
	if want := replay.NewRowLayout(cfg.Spec); layout.Stride() != want.Stride() {
		return nil, fmt.Errorf("expserve: provider stride %d does not match spec stride %d", layout.Stride(), want.Stride())
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxSampleRows <= 0 {
		cfg.MaxSampleRows = 4096
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_exp_ingest_rows_total", "Transition rows ingested into the experience store.")
	reg.SetHelp("marl_exp_sample_requests_total", "Sample requests served by the experience store.")
	s := &Server{
		cfg:    cfg,
		layout: layout,
		queue:  make(chan ingestJob, cfg.QueueDepth),
		stop:   make(chan struct{}),

		ingestRows:     reg.Counter("marl_exp_ingest_rows_total"),
		ingestBatches:  reg.Counter("marl_exp_ingest_batches_total"),
		ingestDups:     reg.Counter("marl_exp_ingest_dup_batches_total"),
		ingestRejected: reg.Counter("marl_exp_ingest_rejected_total"),
		appendSeconds:  reg.Histogram("marl_exp_append_seconds", nil),
		sampleRequests: reg.Counter("marl_exp_sample_requests_total"),
		sampleRows:     reg.Counter("marl_exp_sample_rows_total"),
		sampleErrors:   reg.Counter("marl_exp_sample_errors_total"),
		sampleSeconds:  reg.Histogram("marl_exp_sample_seconds", nil),
		storeRows:      reg.Gauge("marl_exp_store_rows"),
		storeSegments:  reg.Gauge("marl_exp_store_segments"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathAppend, s.handleAppend)
	s.mux.HandleFunc(PathSample, s.handleSample)
	s.mux.HandleFunc(PathStats, s.handleStats)
	go s.ingestLoop()
	return s, nil
}

// Handler returns the service mux, for mounting alongside other endpoints
// (marl-replayd serves it together with the telemetry /metrics handler).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the ingest writer. In-flight jobs are drained first so no
// acknowledged batch is lost.
func (s *Server) Close() error {
	close(s.stop)
	return nil
}

// ingestLoop is the single writer: batches apply in arrival order, each
// acknowledged only after the store has accepted and flushed it. One writer
// means per-actor order is trivially preserved and RowCount is exact the
// moment an ack returns — the property the determinism contract needs.
func (s *Server) ingestLoop() {
	lastSeq := make(map[string]uint64)
	for {
		select {
		case job := <-s.queue:
			job.done <- s.applyBatch(lastSeq, job.batch)
		case <-s.stop:
			// Drain anything already queued, then exit.
			for {
				select {
				case job := <-s.queue:
					job.done <- s.applyBatch(lastSeq, job.batch)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) applyBatch(lastSeq map[string]uint64, b appendBatch) ingestResult {
	start := time.Now()
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if applied, ok := lastSeq[b.ActorID]; ok && b.BatchSeq <= applied {
		s.ingestDups.Inc()
		return ingestResult{rows: s.cfg.Provider.RowCount(), dup: true}
	}
	stride := s.layout.Stride()
	for k := 0; k < b.N; k++ {
		if err := s.cfg.Provider.AppendRow(b.Rows[k*stride : (k+1)*stride]); err != nil {
			return ingestResult{err: err}
		}
	}
	if err := s.cfg.Provider.Flush(); err != nil {
		return ingestResult{err: err}
	}
	lastSeq[b.ActorID] = b.BatchSeq
	s.ingestBatches.Inc()
	s.ingestRows.Add(uint64(b.N))
	s.appendSeconds.Observe(time.Since(start).Seconds())
	rows := s.cfg.Provider.RowCount()
	s.updateGauges(rows)
	var total uint64
	if st, ok := s.cfg.Provider.(statser); ok {
		total = st.Stats().Total
	} else {
		total = s.ingestRows.Value()
	}
	return ingestResult{total: total, rows: rows}
}

func (s *Server) updateGauges(rows int) {
	s.storeRows.Set(float64(rows))
	if st, ok := s.cfg.Provider.(statser); ok {
		s.storeSegments.Set(float64(st.Stats().Segments))
	}
}

// handleAppend ingests one actor batch. A full queue answers 429 — the
// backpressure signal the client's jittered retry loop respects.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := decodeAppend(body, s.layout.Stride())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job := ingestJob{batch: batch, done: make(chan ingestResult, 1)}
	select {
	case s.queue <- job:
	default:
		s.ingestRejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		return
	}
	res := <-job.done
	if res.err != nil {
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(appendReply{Total: res.total, Rows: res.rows, Dup: res.dup})
}

// handleSample executes one seeded plan server-side. Selection and gather
// run as a single atomic provider operation, so the learner's locality runs
// stay contiguous even while actors append concurrently.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sampleRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.N < 1 || req.N > s.cfg.MaxSampleRows {
		http.Error(w, fmt.Sprintf("n %d outside [1,%d]", req.N, s.cfg.MaxSampleRows), http.StatusBadRequest)
		return
	}
	if err := req.Plan.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	s.sampleRequests.Inc()
	stride := s.layout.Stride()
	idx := make([]int, req.N)
	rows := make([]float64, req.N*stride)
	s.provMu.RLock()
	err := s.cfg.Provider.SamplePacked(req.Plan, req.N, req.Seed, idx, rows)
	s.provMu.RUnlock()
	if err != nil {
		s.sampleErrors.Inc()
		// An empty/underfilled store is the learner polling before warmup,
		// not a server fault.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.sampleRows.Add(uint64(req.N))
	s.sampleSeconds.Observe(time.Since(start).Seconds())
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(encodeSampleReply(nil, idx, rows, stride))
}

// handleStats reports the spec and occupancy as JSON.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st expstore.Stats
	s.provMu.RLock()
	if withStats, ok := s.cfg.Provider.(statser); ok {
		st = withStats.Stats()
	} else {
		st.Rows = s.cfg.Provider.RowCount()
		st.Total = s.ingestRows.Value()
		st.Stride = s.layout.Stride()
	}
	s.updateGauges(st.Rows)
	s.provMu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsReply{Spec: specToWire(s.cfg.Spec), Store: st})
}

// ListenAndServe is a convenience for tests and the replayd binary: bind
// addr (port 0 picks a free port), serve the handler in the background, and
// return the bound listener address plus a shutdown func.
func (s *Server) ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("expserve: listener: %w", err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		err := srv.Close()
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
