package expserve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"marlperf/internal/expshard"
	"marlperf/internal/f64le"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// FabricOptions configure client-side routing over a sharded replay
// fabric.
type FabricOptions struct {
	// Client is the per-member client template. Edge is suffixed with
	// the member's group/replica position, and TotalDeadline is
	// replaced by MemberDeadline (fabric routing owns ride-through —
	// a member that does not answer within its bounded share fails
	// over to a replica instead of stalling the draw).
	Client ClientOptions
	// Partitions sets the hash-ring partition count; 0 uses
	// expshard.DefaultPartitions. Every process on the fabric must use
	// the same value.
	Partitions int
	// MemberDeadline bounds one member's share of a routing decision
	// (stats probe, shard draw, append) before the fabric moves on.
	// Defaults to 3s.
	MemberDeadline time.Duration
	// RetryFor keeps whole-fabric operations (view refresh, draws with
	// every replica of a group down) retrying with backoff for this
	// long before surfacing the failure — the ride-through budget for
	// a full shard restart. Zero tries once.
	RetryFor time.Duration
	// Registry receives marl_shard_* fabric metrics; nil keeps them
	// private.
	Registry *telemetry.Registry
	// Tracer propagates per-shard sample spans; see ClientOptions.
	Tracer *trace.Tracer
}

// fabricRetryDelay paces the outer ride-through loop.
const fabricRetryDelay = 250 * time.Millisecond

// Fabric is the client half of the sharded, replicated replay fabric:
// one Client (own circuit breaker, own connection pool) per replayd
// member, addressed through the consistent-hash ring. Sources fan
// sample RPCs in across shards; sinks fan replicated appends out.
type Fabric struct {
	opts FabricOptions
	ring *expshard.Ring

	// mu guards the snapshot↔clients pairing across Rebuild.
	mu      sync.RWMutex
	snap    *expshard.Snapshot
	clients [][]*Client // [group][member], aligned with snap.Groups

	replicaReads  *telemetry.Counter
	degradedDraws *telemetry.Counter
	viewRefreshes *telemetry.Counter
	rebuildsC     *telemetry.Counter
	groupsG       *telemetry.Gauge
	replicasG     *telemetry.Gauge
	versionG      *telemetry.Gauge
}

// NewFabric builds the ring snapshot and one client per member.
func NewFabric(groups []expshard.Group, opts FabricOptions) (*Fabric, error) {
	if opts.MemberDeadline <= 0 {
		opts.MemberDeadline = 3 * time.Second
	}
	ring, err := expshard.NewRing(groups, opts.Partitions)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_shard_replica_reads_total", "Fabric reads served by a non-preferred replica because the preferred member was down.")
	reg.SetHelp("marl_shard_degraded_draws_total", "Sample draws recomputed with a shard group excluded (skip-and-reweight) because every replica was down.")
	reg.SetHelp("marl_shard_view_refreshes_total", "Fabric stream-view refreshes (one stats fan-out each).")
	reg.SetHelp("marl_shard_ring_rebuilds_total", "Consistent-hash ring rebuilds from membership changes.")
	reg.SetHelp("marl_shard_groups", "Shard groups in the current ring snapshot.")
	reg.SetHelp("marl_shard_replicas", "Replication factor (widest member count across groups).")
	reg.SetHelp("marl_shard_ring_version", "Version of the installed ring snapshot.")
	f := &Fabric{
		opts:          opts,
		ring:          ring,
		replicaReads:  reg.Counter("marl_shard_replica_reads_total"),
		degradedDraws: reg.Counter("marl_shard_degraded_draws_total"),
		viewRefreshes: reg.Counter("marl_shard_view_refreshes_total"),
		rebuildsC:     reg.Counter("marl_shard_ring_rebuilds_total"),
		groupsG:       reg.Gauge("marl_shard_groups"),
		replicasG:     reg.Gauge("marl_shard_replicas"),
		versionG:      reg.Gauge("marl_shard_ring_version"),
	}
	f.install(ring.Snapshot())
	return f, nil
}

// install builds member clients for a snapshot and publishes the pair.
func (f *Fabric) install(snap *expshard.Snapshot) {
	clients := make([][]*Client, len(snap.Groups))
	for gi, g := range snap.Groups {
		clients[gi] = make([]*Client, len(g.Members))
		for mi, m := range g.Members {
			opts := f.opts.Client
			edge := opts.Edge
			if edge == "" {
				edge = "replay"
			}
			opts.Edge = fmt.Sprintf("%s-%s-m%d", edge, g.ID, mi)
			opts.TotalDeadline = f.opts.MemberDeadline
			opts.Registry = f.opts.Registry
			opts.Tracer = f.opts.Tracer
			clients[gi][mi] = NewClient(m.Addr, opts)
		}
	}
	f.mu.Lock()
	f.snap, f.clients = snap, clients
	f.mu.Unlock()
	f.groupsG.Set(float64(len(snap.Groups)))
	f.replicasG.Set(float64(snap.MaxReplicas()))
	f.versionG.Set(float64(snap.Version))
}

// Rebuild recomputes placement for a changed membership (consistent
// hashing moves only the affected groups' partitions) and swaps in
// fresh member clients. Sources pick the new topology up on their next
// view refresh; sinks are bound to the topology they were built with.
func (f *Fabric) Rebuild(groups []expshard.Group) error {
	snap, err := f.ring.Rebuild(groups)
	if err != nil {
		return err
	}
	f.install(snap)
	f.rebuildsC.Inc()
	return nil
}

// Snapshot returns the current ring snapshot.
func (f *Fabric) Snapshot() *expshard.Snapshot {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.snap
}

// topology returns the snapshot with its aligned client matrix.
func (f *Fabric) topology() (*expshard.Snapshot, [][]*Client) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.snap, f.clients
}

// ReplicaReads reports fabric reads that failed over to a replica.
func (f *Fabric) ReplicaReads() uint64 { return f.replicaReads.Value() }

// DegradedDraws reports draws recomputed with a group excluded.
func (f *Fabric) DegradedDraws() uint64 { return f.degradedDraws.Value() }

// FetchSpec returns the transition spec from the first reachable
// member, riding the RetryFor budget — the fabric equivalent of
// Client.Stats for startup validation.
func (f *Fabric) FetchSpec() (replay.Spec, error) {
	var lastErr error
	deadline := time.Now().Add(f.opts.RetryFor)
	for {
		snap, clients := f.topology()
		for gi := range snap.Groups {
			for _, c := range clients[gi] {
				st, err := c.ServiceStats()
				if err == nil {
					return st.Spec, nil
				}
				lastErr = err
			}
		}
		if f.opts.RetryFor <= 0 || time.Now().After(deadline) {
			return replay.Spec{}, fmt.Errorf("expserve: no fabric member reachable: %w", lastErr)
		}
		time.Sleep(fabricRetryDelay)
	}
}

// fabricView freezes one sampling topology: the ring snapshot, its
// client matrix, the stream view built from a stats fan-out, and the
// preferred (first live) member per group. Draws read it via one
// atomic load; refreshes swap the whole thing.
type fabricView struct {
	snap    *expshard.Snapshot
	clients [][]*Client
	view    *expshard.View
	pref    []int // preferred member index per group; -1 = none answered
}

// ShardedSource samples fabric-wide mini-batches, implementing
// replay.TransitionSource and Prefetchable. Every draw executes the
// same pure (plan, viewLen, seed) selection on all live shards
// (server-side, next to the data) and merges the returned slices by
// batch slot — a stable shard-ordered merge over disjoint slot sets —
// so at R=1 with all shards live the batch is bit-identical to a
// single replayd executing the same draw.
//
// Degraded paths (counted, never silent): a down member fails over to
// the next replica in its group; a group with every replica down is
// excluded from a recomputed draw (skip-and-reweight over the
// shrunken stream). Neither preserves bit-identity — they preserve
// training progress.
type ShardedSource struct {
	f      *Fabric
	plan   replay.SamplePlan
	layout replay.RowLayout

	view    atomic.Pointer[fabricView]
	scratch sync.Pool // of *shardScratch
}

// groupScratch is one group's slice of an in-flight draw.
type groupScratch struct {
	req   []byte
	body  []byte
	slots []int32
	rows  []float64 // decode fallback when the f64le view is unavailable
	view  []float64 // k*stride gathered floats, aliasing body or rows
	k     int
	dead  bool
}

// shardScratch is one in-flight fabric draw's worth of pooled buffers.
type shardScratch struct {
	idx     []int
	merged  []float64
	covered []bool
	groups  []groupScratch
	n       int
}

// NewShardedSource validates the plan and the fabric's spec against
// the trainer's.
func NewShardedSource(f *Fabric, want replay.Spec, plan replay.SamplePlan) (*ShardedSource, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	got, err := f.FetchSpec()
	if err != nil {
		return nil, err
	}
	if got.NumAgents != want.NumAgents || got.ActDim != want.ActDim || len(got.ObsDims) != len(want.ObsDims) {
		return nil, fmt.Errorf("expserve: fabric spec %+v does not match trainer spec %+v", got, want)
	}
	for a, od := range want.ObsDims {
		if got.ObsDims[a] != od {
			return nil, fmt.Errorf("expserve: fabric obs dim %d for agent %d, trainer wants %d", got.ObsDims[a], a, od)
		}
	}
	return &ShardedSource{f: f, plan: plan, layout: replay.NewRowLayout(want)}, nil
}

// Plan returns the plan executed server-side on every shard.
func (s *ShardedSource) Plan() replay.SamplePlan { return s.plan }

// tryRefresh performs one stats fan-out (members of each group probed
// in order until one answers) and builds a fresh fabric view.
func (s *ShardedSource) tryRefresh() (*fabricView, error) {
	snap, clients := s.f.topology()
	g := len(snap.Groups)
	stats := make([]expshard.GroupStat, g)
	pref := make([]int, g)
	var wg sync.WaitGroup
	for gi := 0; gi < g; gi++ {
		pref[gi] = -1
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for mi, c := range clients[gi] {
				st, err := c.ServiceStats()
				if err != nil {
					continue
				}
				stats[gi] = expshard.GroupStat{Rows: uint64(st.Rows), Total: st.Total, Live: true}
				pref[gi] = mi
				return
			}
		}(gi)
	}
	wg.Wait()
	live := 0
	for _, st := range stats {
		if st.Live {
			live++
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("expserve: no replay shard reachable (%d groups probed)", g)
	}
	view, err := expshard.NewView(snap.Partitions, 0, snap.Part2Group, stats)
	if err != nil {
		return nil, err
	}
	s.f.viewRefreshes.Inc()
	return &fabricView{snap: snap, clients: clients, view: view, pref: pref}, nil
}

// refreshView swaps in a fresh view, riding the RetryFor budget
// through a full-fabric outage.
func (s *ShardedSource) refreshView() (*fabricView, error) {
	deadline := time.Now().Add(s.f.opts.RetryFor)
	for {
		fv, err := s.tryRefresh()
		if err == nil {
			s.view.Store(fv)
			return fv, nil
		}
		if s.f.opts.RetryFor <= 0 || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(fabricRetryDelay)
	}
}

// Len implements replay.TransitionSource: the fabric-wide sampleable
// row count. Each call refreshes the frozen view — the trainer calls
// Len at the update gate, so draws inside one update all see the
// stream state the gate saw, matching a single store's behavior
// across worker counts and prefetch settings.
func (s *ShardedSource) Len() (int, error) {
	fv, err := s.refreshView()
	if err != nil {
		return 0, err
	}
	return int(fv.view.Len()), nil
}

func (s *ShardedSource) acquireFetch() fetchState {
	if sc, ok := s.scratch.Get().(*shardScratch); ok {
		return sc
	}
	return &shardScratch{}
}

func (s *ShardedSource) releaseFetch(st fetchState) {
	sc := st.(*shardScratch)
	sc.n = 0
	s.scratch.Put(sc)
}

// runFetch executes one fabric draw into sc, riding RetryFor through
// transient whole-fabric failures.
func (s *ShardedSource) runFetch(n int, seed int64, st fetchState) error {
	sc := st.(*shardScratch)
	deadline := time.Now().Add(s.f.opts.RetryFor)
	for {
		err := s.tryDraw(n, seed, sc)
		if err == nil {
			return nil
		}
		if s.f.opts.RetryFor <= 0 || time.Now().After(deadline) {
			return err
		}
		time.Sleep(fabricRetryDelay)
		if _, rerr := s.refreshView(); rerr != nil && time.Now().After(deadline) {
			return rerr
		}
	}
}

// tryDraw executes the draw against the current view, excluding groups
// that lose every replica mid-draw (skip-and-reweight) and redrawing
// until the live set holds still.
func (s *ShardedSource) tryDraw(n int, seed int64, sc *shardScratch) error {
	fv := s.view.Load()
	if fv == nil {
		var err error
		if fv, err = s.refreshView(); err != nil {
			return err
		}
	}
	stride := s.layout.Stride()
	s.sizeScratch(sc, n, stride, len(fv.snap.Groups))
	var lastErr error
	for redo := 0; redo <= len(fv.snap.Groups); redo++ {
		length := int(fv.view.Len())
		if length < 1 {
			return fmt.Errorf("expserve: fabric stream is empty")
		}
		idx := sc.idx[:n]
		if err := s.plan.FillIndices(idx, length, seed); err != nil {
			return err
		}
		var wg sync.WaitGroup
		var failedAny atomic.Bool
		for gi := range fv.snap.Groups {
			gs := &sc.groups[gi]
			gs.k, gs.dead = 0, false
			if !fv.view.Stats[gi].Live {
				gs.dead = true
				continue
			}
			wg.Add(1)
			go func(gi int, gs *groupScratch) {
				defer wg.Done()
				if err := s.groupFetch(fv, gi, n, seed, stride, gs); err != nil {
					gs.dead = true
					failedAny.Store(true)
				}
			}(gi, gs)
		}
		wg.Wait()
		if failedAny.Load() {
			// Exclude the groups that just lost their last replica and
			// reweight the draw over the survivors.
			view := fv.view
			var err error
			anyLive := false
			for gi := range sc.groups {
				if sc.groups[gi].dead && view.Stats[gi].Live {
					if view, err = view.WithDead(gi); err != nil {
						return err
					}
				}
			}
			for _, st := range view.Stats {
				anyLive = anyLive || st.Live
			}
			if !anyLive {
				return fmt.Errorf("expserve: every shard group is down")
			}
			s.f.degradedDraws.Inc()
			fv = &fabricView{snap: fv.snap, clients: fv.clients, view: view, pref: fv.pref}
			s.view.Store(fv)
			lastErr = fmt.Errorf("expserve: shard group(s) down, draw reweighted")
			continue
		}
		return s.merge(sc, n, stride)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("expserve: fabric draw did not converge")
	}
	return lastErr
}

// sizeScratch grows sc for an n-row draw across groups.
func (sc *shardScratch) grow(n, stride, groups int) {
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	if cap(sc.merged) < n*stride {
		sc.merged = make([]float64, n*stride)
	}
	if cap(sc.covered) < n {
		sc.covered = make([]bool, n)
	}
	if len(sc.groups) < groups {
		sc.groups = make([]groupScratch, groups)
	}
	sc.n = n
}

func (s *ShardedSource) sizeScratch(sc *shardScratch, n, stride, groups int) {
	sc.grow(n, stride, groups)
}

// groupFetch runs this group's slice of the draw against its preferred
// member, failing over through the replicas. Replies are decoded into
// gs; any non-primary member (index > 0) serving the draw counts as a
// replica read.
func (s *ShardedSource) groupFetch(fv *fabricView, gi, n int, seed int64, stride int, gs *groupScratch) error {
	req, err := encodeShardSampleRequest(gs.req[:0], shardSampleRequest{
		N:          n,
		Seed:       seed,
		Plan:       s.plan,
		ShardID:    fv.snap.Groups[gi].ID,
		MyGroup:    gi,
		Partitions: fv.view.Partitions,
		Offset:     fv.view.Offset,
		Part2Group: fv.view.Part2Group,
		Stats:      fv.view.Stats,
	})
	if err != nil {
		return err
	}
	gs.req = req
	if want := shardReplySize(n, stride); cap(gs.body) < want {
		gs.body = make([]byte, want)
	}
	if cap(gs.slots) < n {
		gs.slots = make([]int32, n)
	}
	members := fv.clients[gi]
	pref := fv.pref[gi]
	if pref < 0 || pref >= len(members) {
		pref = 0
	}
	var lastErr error
	for try := 0; try < len(members); try++ {
		mi := (pref + try) % len(members)
		c := members[mi]
		var sp trace.Span
		var hdr http.Header
		if tr := c.tracer; tr.Enabled() {
			if parent := tr.Active(); parent.Valid() {
				sp = tr.StartSpan(parent, "shard-sample-rpc")
				hdr = http.Header{trace.HeaderName: []string{trace.FormatHeader(sp.Context())}}
			}
		}
		body, err := c.doScratch(http.MethodPost, PathShardSample, "application/octet-stream", req, true, gs.body[:cap(gs.body)], hdr)
		if err != nil {
			sp.EndArg("error", 1)
			lastErr = err
			continue
		}
		if cap(body) > cap(gs.body) {
			gs.body = body
		}
		k, rowBytes, err := decodeShardReply(body, n, stride, gs.slots[:n])
		if err != nil {
			sp.EndArg("error", 1)
			lastErr = err
			continue
		}
		sp.EndArg("rows", int64(k))
		gs.k = k
		if view := f64le.Floats(rowBytes); view != nil {
			gs.view = view
		} else {
			if cap(gs.rows) < k*stride {
				gs.rows = make([]float64, k*stride)
			}
			gs.rows = gs.rows[:k*stride]
			f64le.Get(gs.rows, rowBytes)
			gs.view = gs.rows
		}
		if mi != 0 {
			// Member 0 is the group's primary; any other member serving
			// the draw is a replica read.
			s.f.replicaReads.Inc()
		}
		return nil
	}
	return fmt.Errorf("expserve: group %s: all %d members failed: %w", fv.snap.Groups[gi].ID, len(members), lastErr)
}

// merge reassembles the full batch from per-group slices by slot.
// Ownership is disjoint by construction (each global index maps to
// exactly one group), so the merge is a scatter; a gap or collision
// means the shards disagreed about the view and the draw is invalid.
func (s *ShardedSource) merge(sc *shardScratch, n, stride int) error {
	covered := sc.covered[:n]
	for i := range covered {
		covered[i] = false
	}
	merged := sc.merged[:n*stride]
	filled := 0
	for gi := range sc.groups {
		gs := &sc.groups[gi]
		if gs.dead {
			continue
		}
		for i := 0; i < gs.k; i++ {
			slot := int(gs.slots[i])
			if covered[slot] {
				return fmt.Errorf("expserve: shards disagree: slot %d returned twice", slot)
			}
			covered[slot] = true
			filled++
			copy(merged[slot*stride:(slot+1)*stride], gs.view[i*stride:(i+1)*stride])
		}
	}
	if filled != n {
		return fmt.Errorf("expserve: shards disagree: %d of %d slots returned", filled, n)
	}
	return nil
}

func (s *ShardedSource) consumeFetch(st fetchState, n int, dst []*replay.AgentBatch) []int {
	sc := st.(*shardScratch)
	s.layout.SplitRows(sc.merged[:n*s.layout.Stride()], n, dst)
	idx := make([]int, n)
	copy(idx, sc.idx[:n])
	return idx
}

// SampleBatch implements replay.TransitionSource: one fabric-wide
// draw, merged and split into per-agent tensors.
func (s *ShardedSource) SampleBatch(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	sc := s.acquireFetch()
	defer s.releaseFetch(sc)
	if err := s.runFetch(n, seed, sc); err != nil {
		return nil, err
	}
	return s.consumeFetch(sc, n, dst), nil
}

// ShardedSink fans replicated appends out across the fabric,
// implementing replay.TransitionSink. Each row is routed by its
// global stream index through the same time-striped placement the
// sampler inverts, then appended to every replica member of the
// owning group — R identical copies of the group's sub-stream, which
// is what lets a reader fail over to any replica without index
// translation.
type ShardedSink struct {
	f       *Fabric
	actorID string
	layout  replay.RowLayout
	snap    *expshard.Snapshot
	subs    [][]*RemoteSink // aligned with snap.Groups

	// OnSpool/OnDrain observe spool diversions across all member
	// sinks; set before EnableSpool.
	OnSpool func(queued int, err error)
	OnDrain func(batches int)

	t uint64 // global stream index of the next row
}

// NewShardedSink builds one RemoteSink per fabric member, all
// publishing as actorID.
func NewShardedSink(f *Fabric, actorID string, spec replay.Spec) (*ShardedSink, error) {
	snap, clients := f.topology()
	subs := make([][]*RemoteSink, len(snap.Groups))
	for gi := range snap.Groups {
		subs[gi] = make([]*RemoteSink, len(clients[gi]))
		for mi, c := range clients[gi] {
			sink, err := NewRemoteSink(c, actorID, spec)
			if err != nil {
				return nil, err
			}
			subs[gi][mi] = sink
		}
	}
	return &ShardedSink{f: f, actorID: actorID, layout: replay.NewRowLayout(spec), snap: snap, subs: subs}, nil
}

// SetMaxBatchRows sets the auto-flush threshold on every member sink.
func (s *ShardedSink) SetMaxBatchRows(n int) {
	for _, group := range s.subs {
		for _, sub := range group {
			sub.MaxBatchRows = n
		}
	}
}

// StreamPos returns the global stream index of the next row — the
// time key the placement function stripes on.
func (s *ShardedSink) StreamPos() uint64 { return s.t }

// Add implements replay.TransitionSink: route the row to its owning
// group and append it to every replica member.
func (s *ShardedSink) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error {
	p := s.t % uint64(s.snap.Partitions)
	gi := s.snap.Part2Group[p]
	s.t++
	var firstErr error
	for _, sub := range s.subs[gi] {
		if err := sub.Add(obs, act, rew, nextObs, done); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush implements replay.TransitionSink: flush every member sink,
// fanning the frames out concurrently (each member is an independent
// server; serializing the fan-out would make R and the group count a
// latency multiplier). All sinks are flushed even when one fails (a
// dead replica must not strand the live ones' rows); the first error
// in group/member order is returned.
func (s *ShardedSink) Flush() error {
	var wg sync.WaitGroup
	errs := make([][]error, len(s.subs))
	for gi, group := range s.subs {
		errs[gi] = make([]error, len(group))
		for mi, sub := range group {
			wg.Add(1)
			go func(gi, mi int, sub *RemoteSink) {
				defer wg.Done()
				errs[gi][mi] = sub.Flush()
			}(gi, mi, sub)
		}
	}
	wg.Wait()
	for _, group := range errs {
		for _, err := range group {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// EnableSpool arms per-member disk spooling under opts.Dir (one
// subdirectory per member, so each replica's backlog drains
// independently). OnSpool/OnDrain hooks set on the ShardedSink are
// forwarded to every member sink.
func (s *ShardedSink) EnableSpool(opts SpoolOptions) error {
	for gi, group := range s.subs {
		for mi, sub := range group {
			sub.OnSpool = s.OnSpool
			sub.OnDrain = s.OnDrain
			memberOpts := opts
			memberOpts.Dir = filepath.Join(opts.Dir, fmt.Sprintf("%s-m%d", s.snap.Groups[gi].ID, mi))
			if err := sub.EnableSpool(memberOpts); err != nil {
				return err
			}
		}
	}
	return nil
}

// SpoolLen returns the total spooled batch count across members.
func (s *ShardedSink) SpoolLen() int {
	n := 0
	for _, group := range s.subs {
		for _, sub := range group {
			n += sub.SpoolLen()
		}
	}
	return n
}

// DrainSpool drains every member's backlog; the first error is
// returned but all members are attempted.
func (s *ShardedSink) DrainSpool() error {
	var firstErr error
	for _, group := range s.subs {
		for _, sub := range group {
			if err := sub.DrainSpool(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ResumeCursors fast-forwards each member sink past the append
// sequence its server already applied (an actor restarting under the
// same ID must not collide with its previous incarnation's stream).
// Unreachable members are skipped — their spool (if armed) preserves
// ordering, and the dedup cursor check happens server-side anyway.
func (s *ShardedSink) ResumeCursors() {
	snap, clients := s.snap, func() [][]*Client {
		_, c := s.f.topology()
		return c
	}()
	for gi := range snap.Groups {
		for mi, sub := range s.subs[gi] {
			if gi >= len(clients) || mi >= len(clients[gi]) {
				continue
			}
			st, err := clients[gi][mi].ServiceStats()
			if err != nil {
				continue
			}
			if cursor, ok := st.Actors[s.actorID]; ok {
				sub.SkipTo(cursor)
			}
		}
	}
}

var (
	_ replay.TransitionSource = (*ShardedSource)(nil)
	_ Prefetchable            = (*ShardedSource)(nil)
	_ replay.TransitionSink   = (*ShardedSink)(nil)
)
