package expserve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"marlperf/internal/expshard"
	"marlperf/internal/replay"
)

// PathShardSample serves one shard's slice of a fabric-wide draw.
const PathShardSample = "/v1/shard-sample"

// Shard-sample wire frames. A fabric draw is executed server-side on
// every live shard: the client ships the frozen stream view (placement
// function + per-group row counts) inside each request, every shard
// runs the identical pure (plan, Len, seed) index selection over it,
// keeps the slots it owns, and returns those rows tagged with their
// batch slot. The client merges replies by slot — a stable
// shard-ordered merge, since slot ownership is disjoint — which makes
// the merged batch bit-identical to a single store executing the same
// draw.
//
//	request "MXHQ" (CRC32-IEEE over the whole frame):
//	  magic | u32 ver | u32 n | u64 seed
//	  | u32 plan | u32 neighbors | u32 refs
//	  | u32 partitions | u64 offset
//	  | u8 groups | u8 myGroup | u8 shardIDLen | u8 reserved
//	  | shardID | partitions×u8 part2group
//	  | groups×(u64 rows | u64 total | u8 live) | u32 CRC
//
//	reply "MXHR" (header + slot-region CRCs, row payload delegated to
//	the transport, same rationale as the sample reply):
//	  magic | u32 ver | u32 k | u32 stride | u32 n | u32 headerCRC
//	  | k·stride×f64 rows (LE, 8-aligned at offset 24)
//	  | k×u32 slots | u32 slotCRC
const (
	shardReqMagic    = "MXHQ"
	shardReplyMagic  = "MXHR"
	shardWireVersion = 1
	shardReplyHdr    = 24
	maxShardIDLen    = 255
)

// shardSampleRequest is the decoded form of an MXHQ frame.
type shardSampleRequest struct {
	N       int
	Seed    int64
	Plan    replay.SamplePlan
	ShardID string // target shard guard; empty skips the check
	MyGroup int

	Partitions int
	Offset     uint64
	Part2Group []int
	Stats      []expshard.GroupStat
}

func shardReqSize(shardIDLen, partitions, groups int) int {
	return 48 + shardIDLen + partitions + 17*groups + 4
}

// encodeShardSampleRequest frames one per-shard plan execution request.
func encodeShardSampleRequest(dst []byte, req shardSampleRequest) ([]byte, error) {
	code, err := planToCode(req.Plan.Strategy)
	if err != nil {
		return nil, err
	}
	if len(req.ShardID) > maxShardIDLen {
		return nil, fmt.Errorf("expserve: shard id %d bytes, max %d", len(req.ShardID), maxShardIDLen)
	}
	if len(req.Part2Group) != req.Partitions {
		return nil, fmt.Errorf("expserve: part2group len %d != partitions %d", len(req.Part2Group), req.Partitions)
	}
	if len(req.Stats) == 0 || len(req.Stats) > expshard.MaxGroups {
		return nil, fmt.Errorf("expserve: bad group count %d", len(req.Stats))
	}
	if req.MyGroup < 0 || req.MyGroup >= len(req.Stats) {
		return nil, fmt.Errorf("expserve: myGroup %d outside [0,%d)", req.MyGroup, len(req.Stats))
	}
	start := len(dst)
	dst = append(dst, shardReqMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, shardWireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.N))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Seed))
	dst = binary.LittleEndian.AppendUint32(dst, code)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Plan.Neighbors))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Plan.Refs))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Partitions))
	dst = binary.LittleEndian.AppendUint64(dst, req.Offset)
	dst = append(dst, byte(len(req.Stats)), byte(req.MyGroup), byte(len(req.ShardID)), 0)
	dst = append(dst, req.ShardID...)
	for _, g := range req.Part2Group {
		if g < 0 || g >= len(req.Stats) {
			return nil, fmt.Errorf("expserve: partition maps to invalid group %d", g)
		}
		dst = append(dst, byte(g))
	}
	for _, st := range req.Stats {
		dst = binary.LittleEndian.AppendUint64(dst, st.Rows)
		dst = binary.LittleEndian.AppendUint64(dst, st.Total)
		if st.Live {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// decodeShardSampleRequest parses and verifies an MXHQ frame.
func decodeShardSampleRequest(data []byte) (shardSampleRequest, error) {
	var req shardSampleRequest
	if len(data) < 48+4 {
		return req, fmt.Errorf("expserve: shard request too short (%d bytes)", len(data))
	}
	if string(data[:4]) != shardReqMagic {
		return req, fmt.Errorf("expserve: bad shard request magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != shardWireVersion {
		return req, fmt.Errorf("expserve: shard request version %d, want %d", v, shardWireVersion)
	}
	groups := int(data[44])
	myGroup := int(data[45])
	idLen := int(data[46])
	partitions := int(binary.LittleEndian.Uint32(data[32:]))
	if partitions < 1 || partitions > expshard.MaxPartitions {
		return req, fmt.Errorf("expserve: shard request claims %d partitions", partitions)
	}
	if groups < 1 || myGroup >= groups {
		return req, fmt.Errorf("expserve: shard request groups=%d myGroup=%d", groups, myGroup)
	}
	if want := shardReqSize(idLen, partitions, groups); len(data) != want {
		return req, fmt.Errorf("expserve: shard request %d bytes, layout needs %d", len(data), want)
	}
	if want := binary.LittleEndian.Uint32(data[len(data)-4:]); crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return req, fmt.Errorf("expserve: shard request checksum mismatch")
	}
	req.N = int(int32(binary.LittleEndian.Uint32(data[8:])))
	req.Seed = int64(binary.LittleEndian.Uint64(data[12:]))
	strategy, err := codeToPlan(binary.LittleEndian.Uint32(data[20:]))
	if err != nil {
		return req, err
	}
	req.Plan = replay.SamplePlan{
		Strategy:  strategy,
		Neighbors: int(int32(binary.LittleEndian.Uint32(data[24:]))),
		Refs:      int(int32(binary.LittleEndian.Uint32(data[28:]))),
	}
	req.Partitions = partitions
	req.Offset = binary.LittleEndian.Uint64(data[36:])
	req.MyGroup = myGroup
	off := 48
	req.ShardID = string(data[off : off+idLen])
	off += idLen
	req.Part2Group = make([]int, partitions)
	for p := 0; p < partitions; p++ {
		g := int(data[off+p])
		if g >= groups {
			return req, fmt.Errorf("expserve: partition %d maps to group %d of %d", p, g, groups)
		}
		req.Part2Group[p] = g
	}
	off += partitions
	req.Stats = make([]expshard.GroupStat, groups)
	for g := 0; g < groups; g++ {
		req.Stats[g] = expshard.GroupStat{
			Rows:  binary.LittleEndian.Uint64(data[off:]),
			Total: binary.LittleEndian.Uint64(data[off+8:]),
			Live:  data[off+16] == 1,
		}
		off += 17
	}
	return req, nil
}

// shardReplySize returns the MXHR frame size for k owned rows.
func shardReplySize(k, stride int) int {
	return shardReplyHdr + 8*k*stride + 4*k + 4
}

// putShardReplyHeader writes the fixed header into buf[:shardReplyHdr].
func putShardReplyHeader(buf []byte, k, stride, n int) {
	copy(buf, shardReplyMagic)
	binary.LittleEndian.PutUint32(buf[4:], shardWireVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(k))
	binary.LittleEndian.PutUint32(buf[12:], uint32(stride))
	binary.LittleEndian.PutUint32(buf[16:], uint32(n))
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
}

// putShardReplySlots writes the slot region and its CRC; the row
// payload at [shardReplyHdr, shardReplyHdr+8·k·stride) must already be
// in place.
func putShardReplySlots(buf []byte, k, stride int, slots []int32) {
	off := shardReplyHdr + 8*k*stride
	for i := 0; i < k; i++ {
		binary.LittleEndian.PutUint32(buf[off+4*i:], uint32(slots[i]))
	}
	binary.LittleEndian.PutUint32(buf[off+4*k:], crc32.ChecksumIEEE(buf[off:off+4*k]))
}

// decodeShardReply validates an MXHR frame against the draw's (n,
// stride), fills slots with each returned row's batch slot, and
// returns (k, raw LE row region aliasing data). slots must have
// capacity for n entries; k ≤ n rows come back.
func decodeShardReply(data []byte, n, stride int, slots []int32) (int, []byte, error) {
	if len(data) < shardReplyHdr+4 {
		return 0, nil, fmt.Errorf("%w: shard reply %d bytes", ErrShortFrame, len(data))
	}
	if string(data[:4]) != shardReplyMagic {
		return 0, nil, fmt.Errorf("expserve: bad shard reply magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != shardWireVersion {
		return 0, nil, fmt.Errorf("expserve: shard reply version %d, want %d", v, shardWireVersion)
	}
	k := int(binary.LittleEndian.Uint32(data[8:]))
	if k < 0 || k > n || k > maxWireRows {
		return 0, nil, fmt.Errorf("expserve: shard reply carries %d rows for an n=%d draw", k, n)
	}
	if got := int(binary.LittleEndian.Uint32(data[12:])); got != stride {
		return 0, nil, fmt.Errorf("expserve: shard reply stride %d, want %d", got, stride)
	}
	if got := int(binary.LittleEndian.Uint32(data[16:])); got != n {
		return 0, nil, fmt.Errorf("expserve: shard reply answers draw n=%d, want %d", got, n)
	}
	if want := binary.LittleEndian.Uint32(data[20:]); crc32.ChecksumIEEE(data[:20]) != want {
		return 0, nil, fmt.Errorf("expserve: shard reply header checksum mismatch")
	}
	if want := shardReplySize(k, stride); len(data) != want {
		if len(data) < want {
			return 0, nil, fmt.Errorf("%w: shard reply %d bytes, layout for k=%d needs %d", ErrShortFrame, len(data), k, want)
		}
		return 0, nil, fmt.Errorf("expserve: shard reply %d bytes, want %d", len(data), want)
	}
	off := shardReplyHdr + 8*k*stride
	if want := binary.LittleEndian.Uint32(data[off+4*k:]); crc32.ChecksumIEEE(data[off:off+4*k]) != want {
		return 0, nil, fmt.Errorf("expserve: shard reply slot checksum mismatch")
	}
	for i := 0; i < k; i++ {
		s := int32(binary.LittleEndian.Uint32(data[off+4*i:]))
		if s < 0 || int(s) >= n {
			return 0, nil, fmt.Errorf("expserve: shard reply slot %d outside draw of %d", s, n)
		}
		slots[i] = s
	}
	return k, data[shardReplyHdr:off], nil
}
