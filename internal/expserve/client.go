package expserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"marlperf/internal/f64le"
	"marlperf/internal/netretry"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// ClientOptions tune transport behaviour. Retry, backoff and circuit
// breaking are delegated to the shared netretry core — the same resilience
// implementation the policy client uses.
type ClientOptions struct {
	// Timeout bounds one HTTP round trip. Defaults to 10s.
	Timeout time.Duration
	// Attempts is the total tries per request (≥1). Defaults to 4.
	Attempts int
	// BaseDelay seeds the exponential backoff between tries; each retry
	// doubles it and adds up to 50% random jitter so a fleet of actors
	// bounced by a 429 does not re-arrive in lockstep. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the backoff jitter RNG (0 uses a time-derived seed).
	// Jitter never influences payload bytes, only retry spacing.
	JitterSeed int64
	// TotalDeadline caps the cumulative time one request may spend across
	// all attempts, backoff sleeps included. Zero leaves Attempts as the only
	// bound. An actor riding out a replayd restart wants generous Attempts
	// with a TotalDeadline matched to how long an outage it will tolerate
	// before surfacing the failure.
	TotalDeadline time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// contact failures (0 = netretry default, negative disables).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe interval (0 = MaxDelay).
	BreakerCooldown time.Duration
	// Edge labels this client's retry/circuit metrics; defaults to
	// "replay".
	Edge string
	// Registry receives marl_retry_*/marl_circuit_* metrics; nil keeps
	// them private.
	Registry *telemetry.Registry
	// Transport overrides the HTTP transport (fault injectors hook here).
	// When set, Conns is ignored — the caller owns connection management.
	Transport http.RoundTripper
	// Conns stripes the client across this many persistent connections:
	// the transport keeps Conns warm sockets to the server, so that many
	// sample/append requests can be in flight at once without handshake or
	// slow-start cost on any of them. The default transport keeps only 2
	// idle conns per host, which silently serializes a wider worker pool.
	// 0 or 1 means a single persistent connection.
	Conns int
	// Tracer, when set and enabled, emits a client span per sample/append
	// RPC and propagates the tracer's active context to the server in the
	// X-Marl-Trace header. Trace context never touches the wire frames
	// themselves, so traced and untraced requests are byte-identical.
	Tracer *trace.Tracer
}

// Client talks to an experience server. Requests may be issued from many
// goroutines at once; with Conns > 1 they ride separate persistent
// connections instead of queueing behind each other.
type Client struct {
	core   *netretry.Client
	tracer *trace.Tracer
}

// NewClient targets baseURL (e.g. "http://127.0.0.1:9300" or a bare
// "host:port").
func NewClient(baseURL string, opts ClientOptions) *Client {
	if opts.Edge == "" {
		opts.Edge = "replay"
	}
	if opts.Transport == nil && opts.Conns > 1 {
		opts.Transport = StripedTransport(opts.Conns)
	}
	core := netretry.New(baseURL, netretry.Options{
		Timeout:          opts.Timeout,
		Attempts:         opts.Attempts,
		BaseDelay:        opts.BaseDelay,
		MaxDelay:         opts.MaxDelay,
		JitterSeed:       opts.JitterSeed,
		TotalDeadline:    opts.TotalDeadline,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
		Edge:             opts.Edge,
		Registry:         opts.Registry,
		Transport:        opts.Transport,
	})
	return &Client{core: core, tracer: opts.Tracer}
}

// StripedTransport builds an http.Transport keeping conns warm sockets to
// the (single) replay host. The net/http default of 2 idle conns per host
// closes every socket beyond the pair, so a pool of update workers pays a
// TCP handshake + slow start on most concurrent samples; raising the idle
// cap is what lets requests actually pipeline across stripes.
func StripedTransport(conns int) *http.Transport {
	if conns < 1 {
		conns = 1
	}
	return &http.Transport{
		MaxIdleConns:        2 * conns,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
}

// Breaker exposes the client's circuit breaker state.
func (c *Client) Breaker() *netretry.Breaker { return c.core.Breaker() }

// StatusError is a definitive non-OK server answer (4xx that is not
// backpressure) — a rejection, not an outage.
type StatusError struct {
	Path   string
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("expserve: %s: server answered %d: %s", e.Path, e.Status, e.Msg)
}

// do runs one request through the shared retry core, returning the
// response body of the first success. failFast short-circuits while the
// circuit breaker is open — the spool path uses it to shed load off a
// dead server instead of stalling the actor.
func (c *Client) do(method, path string, contentType string, body []byte) ([]byte, error) {
	return c.doScratch(method, path, contentType, body, false, nil, nil)
}

func (c *Client) doMode(method, path string, contentType string, body []byte, failFast bool, hdr http.Header) ([]byte, error) {
	return c.doScratch(method, path, contentType, body, failFast, nil, hdr)
}

// doScratch is do with a recycled response buffer: when scratch is non-nil
// the reply body is read into it (netretry grows it at most once) and the
// returned slice aliases it. The sample path threads pooled multi-megabyte
// buffers through here so steady-state sampling allocates nothing per
// request. hdr carries extra request headers (trace propagation); nil adds
// none.
func (c *Client) doScratch(method, path string, contentType string, body []byte, failFast bool, scratch []byte, hdr http.Header) ([]byte, error) {
	resp, err := c.core.Do(context.Background(), netretry.Request{
		Method:      method,
		Path:        path,
		ContentType: contentType,
		Body:        body,
		Header:      hdr,
		FailFast:    failFast,
		Scratch:     scratch,
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, &StatusError{Path: path, Status: resp.Status, Msg: strings.TrimSpace(string(resp.Body))}
	}
	return resp.Body, nil
}

// isOutage reports whether err means the server is unreachable or
// persistently failing (spool-worthy), as opposed to a definitive
// rejection.
func isOutage(err error) bool { return netretry.Outage(err) }

// ServiceStats is the server's /v1/stats document: spec, occupancy, and
// the newest applied append sequence per actor.
type ServiceStats struct {
	Spec   replay.Spec
	Rows   int
	Total  uint64
	Actors map[string]uint64
}

// ServiceStats fetches the server's spec, occupancy and per-actor append
// cursors.
func (c *Client) ServiceStats() (ServiceStats, error) {
	data, err := c.do(http.MethodGet, PathStats, "", nil)
	if err != nil {
		return ServiceStats{}, err
	}
	var reply statsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return ServiceStats{}, fmt.Errorf("expserve: decoding stats: %w", err)
	}
	return ServiceStats{
		Spec:   reply.Spec.spec(),
		Rows:   reply.Store.Rows,
		Total:  reply.Store.Total,
		Actors: reply.Actors,
	}, nil
}

// Stats fetches the server's spec and occupancy.
func (c *Client) Stats() (replay.Spec, int, uint64, error) {
	st, err := c.ServiceStats()
	if err != nil {
		return replay.Spec{}, 0, 0, err
	}
	return st.Spec, st.Rows, st.Total, nil
}

// RemoteSource samples mini-batches from an experience server, implementing
// replay.TransitionSource. Because the server executes the same pure
// (plan, length, seed) index selection a local expstore.Source would, a
// learner wired to a RemoteSource trains bit-identically to one holding the
// rows in process.
//
// Len and SampleBatch are safe for concurrent use across update workers
// with no internal serialization: each call checks a pooled scratch set out
// and requests ride the client's striped transport, so a pool of workers
// keeps several samples in flight at once. Draw order cannot affect results
// — every batch is a pure function of its own (n, seed).
type RemoteSource struct {
	c      *Client
	plan   replay.SamplePlan
	layout replay.RowLayout

	scratch sync.Pool // of *clientScratch
}

// clientScratch is one in-flight sample's worth of recycled buffers: the
// encoded request frame, the reply body (netretry reads straight into it),
// the decoded index vector and — only on hosts where the zero-copy float
// view is unavailable — a row decode buffer.
type clientScratch struct {
	req  []byte
	body []byte
	idx  []int
	rows []float64 // decode fallback; unused when f64le views apply
	view []float64 // the sampled rows, aliasing body or rows
	n    int
}

func (s *RemoteSource) acquire() *clientScratch {
	if sc, ok := s.scratch.Get().(*clientScratch); ok {
		return sc
	}
	return &clientScratch{}
}

func (s *RemoteSource) release(sc *clientScratch) {
	sc.view = nil
	sc.n = 0
	s.scratch.Put(sc)
}

// fetch runs one sample RPC and decodes the reply into sc: afterwards
// sc.idx[:n] holds the server's row indices and sc.view the n*stride
// sampled floats. The float view aliases the reply body directly when the
// host is little-endian and the buffer landed 8-aligned (the common case:
// zero copies between socket and tensor split); otherwise rows are decoded
// once into sc.rows.
func (s *RemoteSource) fetch(n int, seed int64, sc *clientScratch) error {
	req, err := encodeSampleRequest(sc.req[:0], sampleRequest{N: n, Seed: seed, Plan: s.plan})
	if err != nil {
		return err
	}
	sc.req = req
	stride := s.layout.Stride()
	if want := sampleReplySize(n, stride); cap(sc.body) < want {
		sc.body = make([]byte, want)
	}
	// One client span per sample RPC, joined to the tracer's active
	// context (the learner's per-update root). Prefetched fetches run on
	// background goroutines but read the same context the pre-draw
	// published, so they attribute to the update that consumes them.
	var sp trace.Span
	var hdr http.Header
	if tr := s.c.tracer; tr.Enabled() {
		if parent := tr.Active(); parent.Valid() {
			sp = tr.StartSpan(parent, "sample-rpc")
			hdr = http.Header{trace.HeaderName: []string{trace.FormatHeader(sp.Context())}}
		}
	}
	data, err := s.c.doScratch(http.MethodPost, PathSample, "application/octet-stream", req, false, sc.body[:cap(sc.body)], hdr)
	if err != nil {
		sp.EndArg("error", 1)
		return err
	}
	sp.EndArg("rows", int64(n))
	if cap(data) > cap(sc.body) {
		sc.body = data // keep the grown buffer for next time
	}
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	rowBytes, err := decodeSampleReply(data, n, stride, sc.idx[:n])
	if err != nil {
		return err
	}
	if view := f64le.Floats(rowBytes); view != nil {
		sc.view = view
	} else {
		if cap(sc.rows) < n*stride {
			sc.rows = make([]float64, n*stride)
		}
		sc.rows = sc.rows[:n*stride]
		f64le.Get(sc.rows, rowBytes)
		sc.view = sc.rows
	}
	sc.n = n
	return nil
}

// split scatters a fetched scratch's rows into per-agent tensors.
func (s *RemoteSource) split(sc *clientScratch, dst []*replay.AgentBatch) {
	s.layout.SplitRows(sc.view, sc.n, dst)
}

// NewRemoteSource validates the plan, fetches the server's spec, checks it
// against the expected one, and returns a source.
func NewRemoteSource(c *Client, want replay.Spec, plan replay.SamplePlan) (*RemoteSource, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	got, _, _, err := c.Stats()
	if err != nil {
		return nil, err
	}
	if got.NumAgents != want.NumAgents || got.ActDim != want.ActDim || len(got.ObsDims) != len(want.ObsDims) {
		return nil, fmt.Errorf("expserve: server spec %+v does not match trainer spec %+v", got, want)
	}
	for a, od := range want.ObsDims {
		if got.ObsDims[a] != od {
			return nil, fmt.Errorf("expserve: server obs dim %d for agent %d, trainer wants %d", got.ObsDims[a], a, od)
		}
	}
	return &RemoteSource{c: c, plan: plan, layout: replay.NewRowLayout(want)}, nil
}

// Plan returns the plan executed server-side on every SampleBatch.
func (s *RemoteSource) Plan() replay.SamplePlan { return s.plan }

// Len implements replay.TransitionSource via the stats endpoint.
func (s *RemoteSource) Len() (int, error) {
	_, rows, _, err := s.c.Stats()
	return rows, err
}

// Prefetchable adapters: PrefetchSource drives the same pooled
// fetch/split machinery SampleBatch uses, just split into phases.
func (s *RemoteSource) acquireFetch() fetchState   { return s.acquire() }
func (s *RemoteSource) releaseFetch(st fetchState) { s.release(st.(*clientScratch)) }
func (s *RemoteSource) runFetch(n int, seed int64, st fetchState) error {
	return s.fetch(n, seed, st.(*clientScratch))
}
func (s *RemoteSource) consumeFetch(st fetchState, n int, dst []*replay.AgentBatch) []int {
	sc := st.(*clientScratch)
	s.split(sc, dst)
	idx := make([]int, n)
	copy(idx, sc.idx[:n])
	return idx
}

// SampleBatch implements replay.TransitionSource: one server-side plan
// execution, decoded and split into per-agent tensors. The returned index
// slice is freshly allocated (it cannot alias pooled scratch — concurrent
// callers would race on it); dst is fully written before return.
func (s *RemoteSource) SampleBatch(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	sc := s.acquire()
	defer s.release(sc)
	if err := s.fetch(n, seed, sc); err != nil {
		return nil, err
	}
	s.split(sc, dst)
	idx := make([]int, n)
	copy(idx, sc.idx[:n])
	return idx, nil
}

// RemoteSink buffers transitions locally and ships them to the server in
// batches, implementing replay.TransitionSink. Each shipped batch carries
// the sink's actor ID and a monotonic sequence number, so a retried append
// that already landed is acknowledged as a duplicate instead of doubling
// experience.
//
// With EnableSpool armed, an unreachable server no longer fails the sink:
// batches divert to a local spool directory and drain — in sequence order —
// once the server answers again. See spool.go.
type RemoteSink struct {
	c       *Client
	actorID string
	layout  replay.RowLayout

	// MaxBatchRows triggers an automatic Flush when the local buffer
	// reaches it. Defaults to 512.
	MaxBatchRows int

	// OnSpool, when non-nil, observes every batch diverted to the spool
	// (err is the ship failure that caused the diversion, nil for batches
	// queued behind earlier spooled ones). queued is the spool depth after
	// the diversion.
	OnSpool func(queued int, err error)
	// OnDrain, when non-nil, observes every completed spool drain with the
	// number of batches shipped.
	OnDrain func(batches int)

	batchSeq uint64
	buf      []float64
	n        int
	encBuf   []byte

	spool *spool
}

// NewRemoteSink creates a sink publishing as actorID.
func NewRemoteSink(c *Client, actorID string, spec replay.Spec) (*RemoteSink, error) {
	if actorID == "" || len(actorID) > 256 {
		return nil, fmt.Errorf("expserve: actor id must be 1..256 bytes")
	}
	return &RemoteSink{c: c, actorID: actorID, layout: replay.NewRowLayout(spec), MaxBatchRows: 512}, nil
}

// SkipTo fast-forwards the sink's sequence counter to seq if it is ahead
// of the local one. An actor restarting under the same ID calls this with
// the server's cursor (ServiceStats().Actors) so its fresh stream is not
// silently deduplicated against its previous incarnation's.
func (s *RemoteSink) SkipTo(seq uint64) {
	if seq > s.batchSeq {
		s.batchSeq = seq
	}
}

// Seq returns the last assigned batch sequence number.
func (s *RemoteSink) Seq() uint64 { return s.batchSeq }

// Add implements replay.TransitionSink: pack locally, auto-flushing at
// MaxBatchRows.
func (s *RemoteSink) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error {
	stride := s.layout.Stride()
	need := (s.n + 1) * stride
	if cap(s.buf) < need {
		grown := make([]float64, need*2)
		copy(grown, s.buf[:s.n*stride])
		s.buf = grown
	}
	s.buf = s.buf[:cap(s.buf)]
	s.layout.PackRow(s.buf[s.n*stride:(s.n+1)*stride], obs, act, rew, nextObs, done)
	s.n++
	if s.n >= s.MaxBatchRows {
		return s.Flush()
	}
	return nil
}

// doAppend ships one encoded append frame and validates the ack. When
// tracing, the RPC gets a span: joined to the tracer's active context
// when one is set (the rollout engine's step root, stitching actor
// rollout → replayd ingest into one trace), otherwise rooted under a
// deterministic (actorID, batchSeq)-derived trace ID — which also covers
// spool-drain replays.
func (s *RemoteSink) doAppend(frame []byte, failFast bool) (appendReply, error) {
	var sp trace.Span
	var hdr http.Header
	if tr := s.c.tracer; tr.Enabled() {
		if parent := tr.Active(); parent.Valid() {
			sp = tr.StartSpan(parent, "append-rpc")
		} else {
			tid := trace.DeriveTraceID(trace.HashID(s.actorID), trace.KindAppend, s.batchSeq)
			sp = tr.StartTrace(tid, "append-rpc")
		}
		if sp.Valid() {
			hdr = http.Header{trace.HeaderName: []string{trace.FormatHeader(sp.Context())}}
		}
	}
	data, err := s.c.doMode(http.MethodPost, PathAppend, "application/octet-stream", frame, failFast, hdr)
	if err != nil {
		sp.EndArg("error", 1)
		return appendReply{}, err
	}
	sp.EndArg("seq", int64(s.batchSeq))
	var reply appendReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return appendReply{}, fmt.Errorf("expserve: decoding append ack: %w", err)
	}
	return reply, nil
}

// Flush implements replay.TransitionSink: ship the buffered rows as one
// idempotent append batch and wait for the server's ack (which implies the
// store accepted and flushed them). With a spool armed, an outage diverts
// the batch to disk instead of failing — order is preserved by spooling
// every subsequent batch until the backlog drains.
func (s *RemoteSink) Flush() error {
	if s.spool != nil && s.spool.len() > 0 {
		// A backlog exists: drain it first so sequence order holds. While
		// the server is still down, the pending rows join the backlog.
		if err := s.drainSpool(true); err != nil {
			if !isOutage(err) {
				return err
			}
			return s.spoolPending(nil)
		}
	}
	if s.n == 0 {
		return nil
	}
	s.batchSeq++
	batch := appendBatch{ActorID: s.actorID, BatchSeq: s.batchSeq, Rows: s.buf, N: s.n}
	s.encBuf = encodeAppend(s.encBuf[:0], batch, s.layout.Stride())
	// With a spool armed, fail fast while the breaker is open: the batch
	// has a local home, so there is no reason to stall the rollout loop.
	_, err := s.doAppend(s.encBuf, s.spool != nil)
	if err == nil {
		s.n = 0
		return nil
	}
	if s.spool == nil || !isOutage(err) {
		return err
	}
	if serr := s.spoolFrame(s.encBuf, s.batchSeq, s.n, err); serr != nil {
		return serr
	}
	s.n = 0
	return nil
}

// spoolPending diverts the buffered-but-unshipped rows to the spool.
func (s *RemoteSink) spoolPending(cause error) error {
	if s.n == 0 {
		return nil
	}
	s.batchSeq++
	batch := appendBatch{ActorID: s.actorID, BatchSeq: s.batchSeq, Rows: s.buf, N: s.n}
	s.encBuf = encodeAppend(s.encBuf[:0], batch, s.layout.Stride())
	if err := s.spoolFrame(s.encBuf, s.batchSeq, s.n, cause); err != nil {
		return err
	}
	s.n = 0
	return nil
}

var (
	_ replay.TransitionSource = (*RemoteSource)(nil)
	_ replay.TransitionSink   = (*RemoteSink)(nil)
)
