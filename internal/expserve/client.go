package expserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"marlperf/internal/replay"
)

// ClientOptions tune transport behaviour.
type ClientOptions struct {
	// Timeout bounds one HTTP round trip. Defaults to 10s.
	Timeout time.Duration
	// Attempts is the total tries per request (≥1). Defaults to 4.
	Attempts int
	// BaseDelay seeds the exponential backoff between tries; each retry
	// doubles it and adds up to 50% random jitter so a fleet of actors
	// bounced by a 429 does not re-arrive in lockstep. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the backoff jitter RNG (0 uses a time-derived seed).
	// Jitter never influences payload bytes, only retry spacing.
	JitterSeed int64
	// TotalDeadline caps the cumulative time one request may spend across
	// all attempts, backoff sleeps included. Zero leaves Attempts as the only
	// bound. An actor riding out a replayd restart wants generous Attempts
	// with a TotalDeadline matched to how long an outage it will tolerate
	// before surfacing the failure.
	TotalDeadline time.Duration
}

// Client talks to an experience server. Safe for sequential use; wrap with
// external locking (or use one per goroutine) for concurrency.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions
	rng  *rand.Rand

	// sleep is the backoff delay function; tests may replace it.
	sleep func(time.Duration)
}

// NewClient targets baseURL (e.g. "http://127.0.0.1:9300" or a bare
// "host:port").
func NewClient(baseURL string, opts ClientOptions) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Attempts < 1 {
		opts.Attempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 50 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{Timeout: opts.Timeout},
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
		sleep: time.Sleep,
	}
}

// retryable reports whether a response status is worth retrying: the
// server's explicit backpressure signal plus transient server-side errors.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do runs one request with retries and jittered exponential backoff,
// returning the response body of the first success. Transport errors and
// retryable statuses back off; other statuses fail immediately with the
// server's message.
func (c *Client) do(method, path string, contentType string, body []byte) ([]byte, error) {
	var lastErr error
	delay := c.opts.BaseDelay
	var deadline time.Time
	if c.opts.TotalDeadline > 0 {
		deadline = time.Now().Add(c.opts.TotalDeadline)
	}
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
			resp.Body.Close()
			switch {
			case rerr != nil:
				lastErr = fmt.Errorf("expserve: reading %s response: %w", path, rerr)
			case resp.StatusCode == http.StatusOK:
				return data, nil
			case retryable(resp.StatusCode):
				lastErr = fmt.Errorf("expserve: %s: server answered %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
			default:
				return nil, fmt.Errorf("expserve: %s: server answered %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
			}
		} else {
			lastErr = fmt.Errorf("expserve: %s: %w", path, err)
		}
		if attempt >= c.opts.Attempts {
			return nil, lastErr
		}
		jittered := delay + time.Duration(c.rng.Int63n(int64(delay)/2+1))
		// Never start a sleep that would overrun the total deadline: fail now
		// with the underlying cause rather than burning the caller's budget.
		if !deadline.IsZero() && time.Now().Add(jittered).After(deadline) {
			return nil, fmt.Errorf("expserve: %s: total retry deadline %v exhausted after %d attempts: %w",
				path, c.opts.TotalDeadline, attempt, lastErr)
		}
		c.sleep(jittered)
		delay *= 2
		if delay > c.opts.MaxDelay {
			delay = c.opts.MaxDelay
		}
	}
}

// Stats fetches the server's spec and occupancy.
func (c *Client) Stats() (replay.Spec, int, uint64, error) {
	data, err := c.do(http.MethodGet, PathStats, "", nil)
	if err != nil {
		return replay.Spec{}, 0, 0, err
	}
	var reply statsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return replay.Spec{}, 0, 0, fmt.Errorf("expserve: decoding stats: %w", err)
	}
	return reply.Spec.spec(), reply.Store.Rows, reply.Store.Total, nil
}

// RemoteSource samples mini-batches from an experience server, implementing
// replay.TransitionSource. Because the server executes the same pure
// (plan, length, seed) index selection a local expstore.Source would, a
// learner wired to a RemoteSource trains bit-identically to one holding the
// rows in process.
//
// Len and SampleBatch are safe for concurrent use across update workers:
// calls serialize on an internal lock around the shared client and scratch.
// Draw order cannot affect results — every batch is a pure function of its
// own (n, seed).
type RemoteSource struct {
	c      *Client
	plan   replay.SamplePlan
	layout replay.RowLayout

	mu         sync.Mutex
	idxScratch []int
	rowScratch []float64
}

// NewRemoteSource validates the plan, fetches the server's spec, checks it
// against the expected one, and returns a source.
func NewRemoteSource(c *Client, want replay.Spec, plan replay.SamplePlan) (*RemoteSource, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	got, _, _, err := c.Stats()
	if err != nil {
		return nil, err
	}
	if got.NumAgents != want.NumAgents || got.ActDim != want.ActDim || len(got.ObsDims) != len(want.ObsDims) {
		return nil, fmt.Errorf("expserve: server spec %+v does not match trainer spec %+v", got, want)
	}
	for a, od := range want.ObsDims {
		if got.ObsDims[a] != od {
			return nil, fmt.Errorf("expserve: server obs dim %d for agent %d, trainer wants %d", got.ObsDims[a], a, od)
		}
	}
	return &RemoteSource{c: c, plan: plan, layout: replay.NewRowLayout(want)}, nil
}

// Plan returns the plan executed server-side on every SampleBatch.
func (s *RemoteSource) Plan() replay.SamplePlan { return s.plan }

// Len implements replay.TransitionSource via the stats endpoint.
func (s *RemoteSource) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, rows, _, err := s.c.Stats()
	return rows, err
}

// SampleBatch implements replay.TransitionSource: one server-side plan
// execution, decoded and split into per-agent tensors. The returned index
// slice aliases internal scratch and is valid only until the next
// SampleBatch on this source; dst is fully written before return.
func (s *RemoteSource) SampleBatch(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reqBody, err := json.Marshal(sampleRequest{N: n, Seed: seed, Plan: s.plan})
	if err != nil {
		return nil, err
	}
	data, err := s.c.do(http.MethodPost, PathSample, "application/json", reqBody)
	if err != nil {
		return nil, err
	}
	stride := s.layout.Stride()
	if cap(s.idxScratch) < n {
		s.idxScratch = make([]int, n)
		s.rowScratch = make([]float64, n*stride)
	}
	idx := s.idxScratch[:n]
	rows := s.rowScratch[:n*stride]
	if err := decodeSampleReply(data, n, stride, idx, rows); err != nil {
		return nil, err
	}
	s.layout.SplitRows(rows, n, dst)
	return idx, nil
}

// RemoteSink buffers transitions locally and ships them to the server in
// batches, implementing replay.TransitionSink. Each shipped batch carries
// the sink's actor ID and a monotonic sequence number, so a retried append
// that already landed is acknowledged as a duplicate instead of doubling
// experience.
type RemoteSink struct {
	c       *Client
	actorID string
	layout  replay.RowLayout

	// MaxBatchRows triggers an automatic Flush when the local buffer
	// reaches it. Defaults to 512.
	MaxBatchRows int

	batchSeq uint64
	buf      []float64
	n        int
	encBuf   []byte
}

// NewRemoteSink creates a sink publishing as actorID.
func NewRemoteSink(c *Client, actorID string, spec replay.Spec) (*RemoteSink, error) {
	if actorID == "" || len(actorID) > 256 {
		return nil, fmt.Errorf("expserve: actor id must be 1..256 bytes")
	}
	return &RemoteSink{c: c, actorID: actorID, layout: replay.NewRowLayout(spec), MaxBatchRows: 512}, nil
}

// Add implements replay.TransitionSink: pack locally, auto-flushing at
// MaxBatchRows.
func (s *RemoteSink) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error {
	stride := s.layout.Stride()
	need := (s.n + 1) * stride
	if cap(s.buf) < need {
		grown := make([]float64, need*2)
		copy(grown, s.buf[:s.n*stride])
		s.buf = grown
	}
	s.buf = s.buf[:cap(s.buf)]
	s.layout.PackRow(s.buf[s.n*stride:(s.n+1)*stride], obs, act, rew, nextObs, done)
	s.n++
	if s.n >= s.MaxBatchRows {
		return s.Flush()
	}
	return nil
}

// Flush implements replay.TransitionSink: ship the buffered rows as one
// idempotent append batch and wait for the server's ack (which implies the
// store accepted and flushed them).
func (s *RemoteSink) Flush() error {
	if s.n == 0 {
		return nil
	}
	s.batchSeq++
	batch := appendBatch{ActorID: s.actorID, BatchSeq: s.batchSeq, Rows: s.buf, N: s.n}
	s.encBuf = encodeAppend(s.encBuf[:0], batch, s.layout.Stride())
	data, err := s.c.do(http.MethodPost, PathAppend, "application/octet-stream", s.encBuf)
	if err != nil {
		return err
	}
	var reply appendReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return fmt.Errorf("expserve: decoding append ack: %w", err)
	}
	s.n = 0
	return nil
}

var (
	_ replay.TransitionSource = (*RemoteSource)(nil)
	_ replay.TransitionSink   = (*RemoteSink)(nil)
)
