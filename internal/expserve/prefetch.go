package expserve

import (
	"sync"
	"time"

	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
)

// fetchState is one in-flight fetch's pooled scratch, opaque to the
// prefetcher (RemoteSource uses *clientScratch, ShardedSource
// *shardScratch).
type fetchState any

// Prefetchable is the contract PrefetchSource wraps: a source whose
// fetch work can run ahead of consumption on pooled scratch. Both
// RemoteSource (one server) and ShardedSource (fabric fan-in draw)
// implement it, so prefetch overlap composes with either topology.
type Prefetchable interface {
	replay.TransitionSource
	acquireFetch() fetchState
	releaseFetch(fetchState)
	runFetch(n int, seed int64, st fetchState) error
	// consumeFetch splits a completed fetch into dst and returns a
	// freshly allocated index slice.
	consumeFetch(st fetchState, n int, dst []*replay.AgentBatch) []int
}

// PrefetchSource overlaps sample RPCs with learner compute. The trainer
// announces the next update round's (n, seed) pairs via PrefetchBatch; this
// source launches the RPCs immediately (bounded by the stripe count) so
// that by the time an update worker calls SampleBatch the reply is already
// decoded — the network round trip hides behind gradient math instead of
// serializing with it.
//
// Correctness does not depend on the prefetcher at all: batch content is a
// pure function of (plan, length, seed), so a prefetched reply is
// byte-identical to the one a synchronous call would have fetched. Every
// SampleBatch whose seed was not announced, whose prefetch errored, or
// whose prefetch is still in flight past SyncAfter simply falls back to a
// synchronous fetch. Prefetching therefore changes timing only — training
// remains bit-identical with the feature on or off, across worker counts
// and under injected network faults.
type PrefetchSource struct {
	Prefetchable

	// SyncAfter caps how long SampleBatch waits for an announced in-flight
	// prefetch before abandoning it and fetching synchronously. Zero means
	// wait for the prefetch to settle (its retries are bounded by the
	// client's own deadline, so this cannot hang past an outage verdict).
	SyncAfter time.Duration

	slots chan struct{} // bounds concurrent prefetch RPCs to the stripe count

	mu      sync.Mutex
	pending map[prefetchKey]*prefetchEntry
	gen     uint64

	hits   *telemetry.Counter
	misses *telemetry.Counter
}

type prefetchKey struct {
	n    int
	seed int64
}

// prefetchEntry is one announced fetch. done closes once sc/err are set.
// abandoned flags a consumer that gave up (timeout) or a pruned stale
// round; whoever loses the race owns returning sc to the pool.
type prefetchEntry struct {
	done      chan struct{}
	sc        fetchState
	err       error
	gen       uint64
	abandoned bool
}

// NewPrefetchSource wraps src with prefetch overlap. stripes bounds the
// number of concurrent prefetch RPCs (match the client's Conns so hinted
// fetches pipeline across all warm connections without queueing behind each
// other); reg, when non-nil, receives marl_exp_prefetch_hit_total /
// marl_exp_prefetch_miss_total.
func NewPrefetchSource(src Prefetchable, stripes int, reg *telemetry.Registry) *PrefetchSource {
	if stripes < 1 {
		stripes = 1
	}
	p := &PrefetchSource{
		Prefetchable: src,
		slots:        make(chan struct{}, stripes),
		pending:      make(map[prefetchKey]*prefetchEntry),
	}
	if reg != nil {
		reg.SetHelp("marl_exp_prefetch_hit_total", "Sample batches served from a completed prefetch.")
		reg.SetHelp("marl_exp_prefetch_miss_total", "Sample batches fetched synchronously (no or late prefetch).")
		p.hits = reg.Counter("marl_exp_prefetch_hit_total")
		p.misses = reg.Counter("marl_exp_prefetch_miss_total")
	}
	return p
}

// PrefetchBatch implements replay.BatchPrefetcher: launch one RPC per seed
// (deduplicated) and return without waiting for any of them. Entries from
// earlier rounds that were never consumed are abandoned here, so a learner
// that skips an update (store drained, config change) cannot leak pooled
// buffers or grow the pending map without bound.
func (p *PrefetchSource) PrefetchBatch(n int, seeds []int64) {
	p.mu.Lock()
	p.gen++
	gen := p.gen
	for key, e := range p.pending {
		if e.gen < gen {
			e.abandoned = true
			delete(p.pending, key)
			go p.reap(e)
		}
	}
	launch := make([]*prefetchEntry, 0, len(seeds))
	keys := make([]prefetchKey, 0, len(seeds))
	for _, seed := range seeds {
		key := prefetchKey{n: n, seed: seed}
		if _, ok := p.pending[key]; ok {
			continue
		}
		e := &prefetchEntry{done: make(chan struct{}), gen: gen}
		p.pending[key] = e
		launch = append(launch, e)
		keys = append(keys, key)
	}
	p.mu.Unlock()
	for i, e := range launch {
		go p.run(keys[i], e)
	}
}

// run performs one prefetch RPC under a stripe slot.
func (p *PrefetchSource) run(key prefetchKey, e *prefetchEntry) {
	p.slots <- struct{}{}
	sc := p.acquireFetch()
	err := p.runFetch(key.n, key.seed, sc)
	<-p.slots
	if err != nil {
		p.releaseFetch(sc)
		sc = nil
	}
	p.mu.Lock()
	if e.abandoned {
		// Nobody will consume this entry: keep sc out of it so the reaper
		// cannot release the same scratch twice.
		e.err = err
		p.mu.Unlock()
		close(e.done)
		if sc != nil {
			p.releaseFetch(sc)
		}
		return
	}
	e.sc, e.err = sc, err
	p.mu.Unlock()
	close(e.done)
}

// reap waits out an abandoned entry's RPC and returns its buffers.
func (p *PrefetchSource) reap(e *prefetchEntry) {
	<-e.done
	p.mu.Lock()
	sc := e.sc
	e.sc = nil
	p.mu.Unlock()
	if sc != nil {
		p.releaseFetch(sc)
	}
}

// SampleBatch implements replay.TransitionSource. A completed prefetch for
// (n, seed) is consumed without touching the network; anything else — not
// announced, errored, or still in flight past SyncAfter — falls back to the
// wrapped source's synchronous path, which returns the exact same bytes.
func (p *PrefetchSource) SampleBatch(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	key := prefetchKey{n: n, seed: seed}
	p.mu.Lock()
	e := p.pending[key]
	if e != nil {
		delete(p.pending, key)
	}
	p.mu.Unlock()
	if e == nil {
		return p.miss(n, seed, dst)
	}
	if p.SyncAfter > 0 {
		select {
		case <-e.done:
		case <-time.After(p.SyncAfter):
			// The prefetch is stuck behind a slow link. Abandon it (run/reap
			// return its buffers once the RPC settles) and fetch now — a
			// duplicate RPC costs latency, never correctness.
			p.mu.Lock()
			e.abandoned = true
			p.mu.Unlock()
			go p.reap(e)
			return p.miss(n, seed, dst)
		}
	} else {
		<-e.done
	}
	p.mu.Lock()
	sc, err := e.sc, e.err
	e.sc = nil
	p.mu.Unlock()
	if err != nil || sc == nil {
		return p.miss(n, seed, dst)
	}
	defer p.releaseFetch(sc)
	idx := p.consumeFetch(sc, n, dst)
	if p.hits != nil {
		p.hits.Inc()
	}
	return idx, nil
}

// miss is the synchronous fallback path.
func (p *PrefetchSource) miss(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	if p.misses != nil {
		p.misses.Inc()
	}
	return p.Prefetchable.SampleBatch(n, seed, dst)
}

var (
	_ replay.TransitionSource = (*PrefetchSource)(nil)
	_ replay.BatchPrefetcher  = (*PrefetchSource)(nil)
)
