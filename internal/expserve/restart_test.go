package expserve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"marlperf/internal/expstore"
)

// TestServerRestartMidIngestNoDuplicates kills the experience server between
// acknowledged batches and restarts it — same durable store, same port —
// while a sink keeps appending. The client's retry loop must ride out the
// outage, and the recovered store must hold every shipped row exactly once:
// acked batches survive the kill (they were flushed before the ack), and the
// batches retried across the restart land without duplication.
func TestServerRestartMidIngestNoDuplicates(t *testing.T) {
	spec := testSpec(4096)
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store")

	openStore := func() *expstore.Store {
		t.Helper()
		st, err := expstore.Open(storePath, spec, expstore.Options{SegmentRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serve := func(st *expstore.Store, addr string) (*Server, string, func() error) {
		t.Helper()
		srv, err := NewServer(ServerConfig{Provider: st, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		bound, shutdown, err := srv.ListenAndServe(addr)
		if err != nil {
			t.Fatal(err)
		}
		return srv, bound, shutdown
	}

	st := openStore()
	_, addr, shutdown := serve(st, "127.0.0.1:0")

	c := NewClient(addr, ClientOptions{
		Timeout:    2 * time.Second,
		Attempts:   200,
		BaseDelay:  2 * time.Millisecond,
		MaxDelay:   25 * time.Millisecond,
		JitterSeed: 1,
	})
	sink, err := NewRemoteSink(c, "actor-restart", spec)
	if err != nil {
		t.Fatal(err)
	}
	sink.MaxBatchRows = 8

	rng := rand.New(rand.NewSource(17))
	addRows := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			obs, act, rew, nxt, done := step(rng)
			if err := sink.Add(obs, act, rew, nxt, done); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
	}

	// Phase 1: three full batches land and are acked (hence durably flushed).
	addRows(24)

	// Kill the server between acked batches and close its store handle.
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address after a real outage window, reopening the
	// same on-disk store. Binding can transiently fail right after the old
	// listener closes, so retry briefly.
	restarted := make(chan struct{})
	go func() {
		defer close(restarted)
		time.Sleep(150 * time.Millisecond)
		st2 := openStore()
		deadline := time.Now().Add(5 * time.Second)
		for {
			srv2, err := NewServer(ServerConfig{Provider: st2, Spec: spec})
			if err != nil {
				t.Error(err)
				return
			}
			if _, shutdown2, err := srv2.ListenAndServe(addr); err == nil {
				t.Cleanup(func() { _ = shutdown2(); _ = st2.Close() })
				return
			} else if time.Now().After(deadline) {
				t.Errorf("could not rebind %s: %v", addr, err)
				return
			}
			_ = srv2.Close()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Phase 2: the next three batches hit the dead server first; the retry
	// loop must carry them across the restart without the test intervening.
	addRows(24)
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush across restart: %v", err)
	}
	<-restarted
	if t.Failed() {
		t.FailNow()
	}

	// Exactly-once accounting: 48 rows shipped, 48 rows stored.
	_, rows, total, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rows != 48 || total != 48 {
		t.Fatalf("store holds rows=%d total=%d after restart, want exactly 48 (no loss, no duplicates)", rows, total)
	}
}

// TestClientTotalDeadline proves the cumulative retry budget: against a
// server that only ever answers 503, a client with a generous attempt count
// but a tight TotalDeadline must give up once the next backoff sleep would
// overrun it, surfacing both the deadline and the underlying cause.
func TestClientTotalDeadline(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer down.Close()

	c := NewClient(down.URL, ClientOptions{
		Timeout:       time.Second,
		Attempts:      10_000,
		BaseDelay:     10 * time.Millisecond,
		MaxDelay:      20 * time.Millisecond,
		JitterSeed:    7,
		TotalDeadline: 150 * time.Millisecond,
	})
	start := time.Now()
	_, _, _, err := c.Stats()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Stats against a 503-only server succeeded")
	}
	if !strings.Contains(err.Error(), "total retry deadline") || !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %q does not name the deadline and the underlying 503", err)
	}
	// The pre-sleep check means we never sleep past the deadline; allow slack
	// for the in-flight attempt itself.
	if elapsed > 2*time.Second {
		t.Fatalf("client took %v to give up on a %v deadline", elapsed, 150*time.Millisecond)
	}

	// Zero deadline leaves Attempts as the only bound (the seed behaviour).
	c2 := NewClient(down.URL, ClientOptions{
		Timeout: time.Second, Attempts: 3, BaseDelay: time.Millisecond, JitterSeed: 7,
	})
	if _, _, _, err := c2.Stats(); err == nil || strings.Contains(err.Error(), "total retry deadline") {
		t.Fatalf("attempts-bounded failure should not mention the deadline: %v", err)
	}
}
