// Package expserve is the networked half of the experience service: a
// stdlib-only HTTP transport that lets actor processes stream transitions
// into a central segment-packed store and lets a learner sample mini-batches
// out of it. Sampling executes server-side — the seeded plan runs next to
// the data, so the paper's locality-aware selection still streams contiguous
// rows — and index selection being a pure function of (plan, length, seed)
// makes remote-fed training bit-reproducible against local training.
//
// Wire formats: bulk row payloads travel as little-endian binary frames with
// CRC32-IEEE trailers (float64s bit-exact, same framing idiom as the segment
// files); small control messages are JSON.
package expserve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"marlperf/internal/expstore"
	"marlperf/internal/replay"
)

// Endpoint paths served by Server and used by Client.
const (
	PathAppend = "/v1/append"
	PathSample = "/v1/sample"
	PathStats  = "/v1/stats"
)

const (
	appendMagic = "MXAP"
	sampleMagic = "MXSR"
	wireVersion = 1

	// maxWireRows bounds the row count any single frame may claim, so a
	// hostile or corrupt header cannot demand an absurd allocation.
	maxWireRows = 1 << 20
)

// appendBatch is one actor→server experience batch. ActorID plus the
// per-actor monotonic BatchSeq make retries idempotent: the server remembers
// the newest applied sequence per actor and acknowledges duplicates without
// re-appending them.
type appendBatch struct {
	ActorID  string
	BatchSeq uint64
	Rows     []float64 // n·stride packed rows
	N        int
}

// encodeAppend frames a batch: magic | u32 version | u32 actorLen | actor |
// u64 batchSeq | u32 rowCount | u32 stride | rows | u32 CRC.
func encodeAppend(dst []byte, b appendBatch, stride int) []byte {
	start := len(dst)
	dst = append(dst, appendMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.ActorID)))
	dst = append(dst, b.ActorID...)
	dst = binary.LittleEndian.AppendUint64(dst, b.BatchSeq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.N))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(stride))
	for _, v := range b.Rows[:b.N*stride] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeAppend parses and verifies an append frame against the expected
// layout stride.
func decodeAppend(data []byte, stride int) (appendBatch, error) {
	var b appendBatch
	if len(data) < 4+4+4 {
		return b, fmt.Errorf("expserve: append frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != appendMagic {
		return b, fmt.Errorf("expserve: bad append magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wireVersion {
		return b, fmt.Errorf("expserve: append frame version %d, want %d", v, wireVersion)
	}
	actorLen := int(binary.LittleEndian.Uint32(data[8:]))
	if actorLen < 1 || actorLen > 256 || len(data) < 12+actorLen+8+4+4+4 {
		return b, fmt.Errorf("expserve: implausible append frame (actor %d bytes, frame %d)", actorLen, len(data))
	}
	off := 12
	b.ActorID = string(data[off : off+actorLen])
	off += actorLen
	b.BatchSeq = binary.LittleEndian.Uint64(data[off:])
	off += 8
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	gotStride := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if gotStride != stride {
		return b, fmt.Errorf("expserve: append stride %d, store expects %d", gotStride, stride)
	}
	if n < 0 || n > maxWireRows || len(data) != off+8*n*stride+4 {
		return b, fmt.Errorf("expserve: append frame claims %d rows but carries %d bytes", n, len(data))
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return b, fmt.Errorf("expserve: append frame checksum mismatch")
	}
	b.N = n
	b.Rows = make([]float64, n*stride)
	for i := range b.Rows {
		b.Rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return b, nil
}

// appendReply is the server's JSON acknowledgement of an append.
type appendReply struct {
	Total uint64 `json:"total"` // rows ever ingested after this batch
	Rows  int    `json:"rows"`  // sampleable rows after this batch
	Dup   bool   `json:"dup"`   // batch was a replay of an applied sequence
}

// sampleRequest asks the server to execute one seeded plan.
type sampleRequest struct {
	N    int               `json:"n"`
	Seed int64             `json:"seed"`
	Plan replay.SamplePlan `json:"plan"`
}

// encodeSampleReply frames a sampled batch: magic | u32 version | u32 n |
// u32 stride | n×u64 indices | n·stride×f64 rows | u32 CRC.
func encodeSampleReply(dst []byte, idx []int, rows []float64, stride int) []byte {
	start := len(dst)
	dst = append(dst, sampleMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(idx)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(stride))
	for _, i := range idx {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(i))
	}
	for _, v := range rows[:len(idx)*stride] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeSampleReply parses a sampled batch into caller-provided idx and rows
// slices (len n and n·stride).
func decodeSampleReply(data []byte, n, stride int, idx []int, rows []float64) error {
	wantLen := 4 + 4 + 4 + 4 + 8*n + 8*n*stride + 4
	if len(data) != wantLen {
		return fmt.Errorf("expserve: sample reply %d bytes, want %d", len(data), wantLen)
	}
	if string(data[:4]) != sampleMagic {
		return fmt.Errorf("expserve: bad sample magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wireVersion {
		return fmt.Errorf("expserve: sample reply version %d, want %d", v, wireVersion)
	}
	if got := int(binary.LittleEndian.Uint32(data[8:])); got != n {
		return fmt.Errorf("expserve: sample reply carries %d rows, want %d", got, n)
	}
	if got := int(binary.LittleEndian.Uint32(data[12:])); got != stride {
		return fmt.Errorf("expserve: sample reply stride %d, want %d", got, stride)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return fmt.Errorf("expserve: sample reply checksum mismatch")
	}
	off := 16
	for i := 0; i < n; i++ {
		idx[i] = int(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	off += 8 * n
	for i := range rows[:n*stride] {
		rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return nil
}

// specWire is the JSON shape of a replay.Spec on the stats endpoint.
type specWire struct {
	NumAgents int   `json:"num_agents"`
	ObsDims   []int `json:"obs_dims"`
	ActDim    int   `json:"act_dim"`
	Capacity  int   `json:"capacity"`
}

func specToWire(s replay.Spec) specWire {
	return specWire{NumAgents: s.NumAgents, ObsDims: s.ObsDims, ActDim: s.ActDim, Capacity: s.Capacity}
}

func (w specWire) spec() replay.Spec {
	return replay.Spec{NumAgents: w.NumAgents, ObsDims: w.ObsDims, ActDim: w.ActDim, Capacity: w.Capacity}
}

// statsReply is the stats endpoint's JSON document. Actors maps each
// actor ID to the newest applied append sequence (the idempotency cursor).
type statsReply struct {
	Spec   specWire          `json:"spec"`
	Store  expstore.Stats    `json:"store"`
	Actors map[string]uint64 `json:"actors,omitempty"`
}
