// Package expserve is the networked half of the experience service: a
// stdlib-only HTTP transport that lets actor processes stream transitions
// into a central segment-packed store and lets a learner sample mini-batches
// out of it. Sampling executes server-side — the seeded plan runs next to
// the data, so the paper's locality-aware selection still streams contiguous
// rows — and index selection being a pure function of (plan, length, seed)
// makes remote-fed training bit-reproducible against local training.
//
// Wire formats: bulk row payloads travel as little-endian binary frames
// (float64s bit-exact, same encoding as the segment files). Append frames
// carry a CRC32-IEEE trailer over the whole frame — they get spooled to
// disk and replayed, so they need at-rest integrity. Sample requests are
// fixed 32-byte binary frames; sample replies checksum their header and
// index regions and delegate row-payload integrity to the transport (see
// the v2 frame comment below). Small control messages are JSON.
package expserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"marlperf/internal/expstore"
	"marlperf/internal/f64le"
	"marlperf/internal/replay"
)

// Endpoint paths served by Server and used by Client.
const (
	PathAppend = "/v1/append"
	PathSample = "/v1/sample"
	PathStats  = "/v1/stats"
)

const (
	appendMagic    = "MXAP"
	sampleMagic    = "MXSR"
	sampleReqMagic = "MXSQ"
	wireVersion    = 1
	// sampleWireVersion versions the sample request/reply frames
	// independently of the append frame: append frames are spooled to disk
	// and replayed byte-identically across process generations, so their
	// version must not move with the (purely transient) sample wire path.
	sampleWireVersion = 2

	// maxWireRows bounds the row count any single frame may claim, so a
	// hostile or corrupt header cannot demand an absurd allocation.
	maxWireRows = 1 << 20
)

// appendBatch is one actor→server experience batch. ActorID plus the
// per-actor monotonic BatchSeq make retries idempotent: the server remembers
// the newest applied sequence per actor and acknowledges duplicates without
// re-appending them.
type appendBatch struct {
	ActorID  string
	BatchSeq uint64
	Rows     []float64 // n·stride packed rows
	N        int
}

// encodeAppend frames a batch: magic | u32 version | u32 actorLen | actor |
// u64 batchSeq | u32 rowCount | u32 stride | rows | u32 CRC.
func encodeAppend(dst []byte, b appendBatch, stride int) []byte {
	start := len(dst)
	dst = append(dst, appendMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.ActorID)))
	dst = append(dst, b.ActorID...)
	dst = binary.LittleEndian.AppendUint64(dst, b.BatchSeq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.N))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(stride))
	for _, v := range b.Rows[:b.N*stride] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeAppend parses and verifies an append frame against the expected
// layout stride.
func decodeAppend(data []byte, stride int) (appendBatch, error) {
	var b appendBatch
	if len(data) < 4+4+4 {
		return b, fmt.Errorf("expserve: append frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != appendMagic {
		return b, fmt.Errorf("expserve: bad append magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wireVersion {
		return b, fmt.Errorf("expserve: append frame version %d, want %d", v, wireVersion)
	}
	actorLen := int(binary.LittleEndian.Uint32(data[8:]))
	if actorLen < 1 || actorLen > 256 || len(data) < 12+actorLen+8+4+4+4 {
		return b, fmt.Errorf("expserve: implausible append frame (actor %d bytes, frame %d)", actorLen, len(data))
	}
	off := 12
	b.ActorID = string(data[off : off+actorLen])
	off += actorLen
	b.BatchSeq = binary.LittleEndian.Uint64(data[off:])
	off += 8
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	gotStride := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if gotStride != stride {
		return b, fmt.Errorf("expserve: append stride %d, store expects %d", gotStride, stride)
	}
	if n < 0 || n > maxWireRows || len(data) != off+8*n*stride+4 {
		return b, fmt.Errorf("expserve: append frame claims %d rows but carries %d bytes", n, len(data))
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return b, fmt.Errorf("expserve: append frame checksum mismatch")
	}
	b.N = n
	b.Rows = make([]float64, n*stride)
	for i := range b.Rows {
		b.Rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return b, nil
}

// appendReply is the server's JSON acknowledgement of an append.
type appendReply struct {
	Total uint64 `json:"total"` // rows ever ingested after this batch
	Rows  int    `json:"rows"`  // sampleable rows after this batch
	Dup   bool   `json:"dup"`   // batch was a replay of an applied sequence
}

// sampleRequest asks the server to execute one seeded plan. On the wire it
// travels as a fixed 32-byte binary frame (encodeSampleRequest); the JSON
// form is kept for older clients and hand-driven debugging.
type sampleRequest struct {
	N    int               `json:"n"`
	Seed int64             `json:"seed"`
	Plan replay.SamplePlan `json:"plan"`
}

// Sample plan strategies as wire codes (binary request frame).
const (
	planCodeUniform  = 1
	planCodeLocality = 2
)

func planToCode(strategy string) (uint32, error) {
	switch strategy {
	case replay.PlanUniform:
		return planCodeUniform, nil
	case replay.PlanLocality:
		return planCodeLocality, nil
	default:
		return 0, fmt.Errorf("expserve: plan strategy %q has no wire code", strategy)
	}
}

func codeToPlan(code uint32) (string, error) {
	switch code {
	case planCodeUniform:
		return replay.PlanUniform, nil
	case planCodeLocality:
		return replay.PlanLocality, nil
	default:
		return "", fmt.Errorf("expserve: unknown plan wire code %d", code)
	}
}

// sampleReqSize is the fixed size of a binary sample request frame:
// magic | u32 version | u32 n | u64 seed | u32 strategy | u32 neighbors |
// u32 refs | u32 CRC.
const sampleReqSize = 4 + 4 + 4 + 8 + 4 + 4 + 4 + 4

// encodeSampleRequest frames one seeded plan execution request.
func encodeSampleRequest(dst []byte, req sampleRequest) ([]byte, error) {
	code, err := planToCode(req.Plan.Strategy)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	dst = append(dst, sampleReqMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, sampleWireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.N))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Seed))
	dst = binary.LittleEndian.AppendUint32(dst, code)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Plan.Neighbors))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.Plan.Refs))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// decodeSampleRequest parses and verifies a binary sample request frame.
func decodeSampleRequest(data []byte) (sampleRequest, error) {
	var req sampleRequest
	if len(data) != sampleReqSize {
		return req, fmt.Errorf("expserve: sample request %d bytes, want %d", len(data), sampleReqSize)
	}
	if string(data[:4]) != sampleReqMagic {
		return req, fmt.Errorf("expserve: bad sample request magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != sampleWireVersion {
		return req, fmt.Errorf("expserve: sample request version %d, want %d", v, sampleWireVersion)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return req, fmt.Errorf("expserve: sample request checksum mismatch")
	}
	req.N = int(int32(binary.LittleEndian.Uint32(data[8:])))
	req.Seed = int64(binary.LittleEndian.Uint64(data[12:]))
	strategy, err := codeToPlan(binary.LittleEndian.Uint32(data[20:]))
	if err != nil {
		return req, err
	}
	req.Plan = replay.SamplePlan{
		Strategy:  strategy,
		Neighbors: int(int32(binary.LittleEndian.Uint32(data[24:]))),
		Refs:      int(int32(binary.LittleEndian.Uint32(data[28:]))),
	}
	return req, nil
}

// ErrShortFrame reports a sample reply shorter than the layout its header
// (or the request it answers) declares — a truncated read, a torn proxy
// body, or a hostile peer. It is detected from the frame length alone,
// before any row decoding touches the payload.
var ErrShortFrame = errors.New("expserve: sample reply frame truncated")

// Sample reply frame v2, laid out so the row payload sits on an 8-byte
// boundary (offset 24) and can be reinterpreted in place on little-endian
// hosts:
//
//	magic "MXSR" | u32 version | u32 n | u32 stride | u32 flags
//	| u32 headerCRC                    — CRC32-IEEE over bytes [0,20)
//	| n·stride×f64 rows (LE)           — integrity delegated to TCP
//	| n×u64 indices | u32 indexCRC     — CRC32-IEEE over the index region
//
// Unlike append frames (which are spooled to disk and replayed across
// process restarts), a sample reply lives for exactly one RAM-to-RAM hop on
// a checksummed transport; CRC-ing the multi-megabyte row payload on both
// ends would cost more than the rest of the decode combined, so the frame
// checksums only what steers decoding: the header and the index region.
const (
	sampleReplyHdr = 24 // fixed header size; rows start here, 8-aligned
)

// sampleReplySize returns the total v2 frame size for n rows of stride.
func sampleReplySize(n, stride int) int {
	return sampleReplyHdr + 8*n*stride + 8*n + 4
}

// putSampleReplyHeader writes the fixed header into buf[:sampleReplyHdr].
func putSampleReplyHeader(buf []byte, n, stride int) {
	copy(buf, sampleMagic)
	binary.LittleEndian.PutUint32(buf[4:], sampleWireVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	binary.LittleEndian.PutUint32(buf[12:], uint32(stride))
	binary.LittleEndian.PutUint32(buf[16:], 0) // flags, reserved
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
}

// putSampleReplyIndex writes the index region and its CRC. The row payload
// at [sampleReplyHdr, sampleReplyHdr+8·n·stride) must already be in place.
func putSampleReplyIndex(buf []byte, n, stride int, idx []int) {
	off := sampleReplyHdr + 8*n*stride
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[off+8*i:], uint64(idx[i]))
	}
	binary.LittleEndian.PutUint32(buf[off+8*n:], crc32.ChecksumIEEE(buf[off:off+8*n]))
}

// encodeSampleReply builds a complete v2 frame from already-gathered rows —
// the fallback for providers without a GatherEncodeLE fast path, and the
// frame builder tests exercise.
func encodeSampleReply(dst []byte, idx []int, rows []float64, stride int) []byte {
	n := len(idx)
	total := sampleReplySize(n, stride)
	if cap(dst) < total {
		dst = make([]byte, total)
	}
	dst = dst[:total]
	putSampleReplyHeader(dst, n, stride)
	f64le.Put(dst[sampleReplyHdr:], rows[:n*stride])
	putSampleReplyIndex(dst, n, stride, idx)
	return dst
}

// decodeSampleReply validates a v2 frame against the expected (n, stride),
// fills idx with the selected insertion-order indices, and returns the raw
// little-endian row payload region (aliasing data) for the caller to split
// into tensors. The full frame length is validated before any copy loop
// runs: a truncated frame returns ErrShortFrame and touches nothing.
func decodeSampleReply(data []byte, n, stride int, idx []int) ([]byte, error) {
	wantLen := sampleReplySize(n, stride)
	if len(data) < wantLen {
		return nil, fmt.Errorf("%w: %d bytes, frame layout for n=%d stride=%d needs %d",
			ErrShortFrame, len(data), n, stride, wantLen)
	}
	if len(data) > wantLen {
		return nil, fmt.Errorf("expserve: sample reply %d bytes, want %d", len(data), wantLen)
	}
	if string(data[:4]) != sampleMagic {
		return nil, fmt.Errorf("expserve: bad sample magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != sampleWireVersion {
		return nil, fmt.Errorf("expserve: sample reply version %d, want %d", v, sampleWireVersion)
	}
	if got := int(binary.LittleEndian.Uint32(data[8:])); got != n {
		return nil, fmt.Errorf("expserve: sample reply carries %d rows, want %d", got, n)
	}
	if got := int(binary.LittleEndian.Uint32(data[12:])); got != stride {
		return nil, fmt.Errorf("expserve: sample reply stride %d, want %d", got, stride)
	}
	if want := binary.LittleEndian.Uint32(data[20:]); crc32.ChecksumIEEE(data[:20]) != want {
		return nil, fmt.Errorf("expserve: sample reply header checksum mismatch")
	}
	idxOff := sampleReplyHdr + 8*n*stride
	if want := binary.LittleEndian.Uint32(data[idxOff+8*n:]); crc32.ChecksumIEEE(data[idxOff:idxOff+8*n]) != want {
		return nil, fmt.Errorf("expserve: sample reply index checksum mismatch")
	}
	for i := 0; i < n; i++ {
		idx[i] = int(binary.LittleEndian.Uint64(data[idxOff+8*i:]))
	}
	return data[sampleReplyHdr:idxOff], nil
}

// specWire is the JSON shape of a replay.Spec on the stats endpoint.
type specWire struct {
	NumAgents int   `json:"num_agents"`
	ObsDims   []int `json:"obs_dims"`
	ActDim    int   `json:"act_dim"`
	Capacity  int   `json:"capacity"`
}

func specToWire(s replay.Spec) specWire {
	return specWire{NumAgents: s.NumAgents, ObsDims: s.ObsDims, ActDim: s.ActDim, Capacity: s.Capacity}
}

func (w specWire) spec() replay.Spec {
	return replay.Spec{NumAgents: w.NumAgents, ObsDims: w.ObsDims, ActDim: w.ActDim, Capacity: w.Capacity}
}

// statsReply is the stats endpoint's JSON document. Actors maps each
// actor ID to the newest applied append sequence (the idempotency cursor).
type statsReply struct {
	Spec   specWire          `json:"spec"`
	Store  expstore.Stats    `json:"store"`
	Actors map[string]uint64 `json:"actors,omitempty"`
}
