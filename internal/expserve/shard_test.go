package expserve

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"marlperf/internal/expshard"
	"marlperf/internal/expstore"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
)

// fabricCell is one test topology: groups×replicas of real in-process
// replay servers behind a Fabric.
type fabricCell struct {
	fabric  *Fabric
	servers [][]*httptest.Server
	groups  []expshard.Group
}

// newFabricCell spins up groups×replicas servers (each replica of a
// group carries the group's shard ID) and a Fabric over them.
func newFabricCell(t *testing.T, spec replay.Spec, groups, replicas int, reg *telemetry.Registry) *fabricCell {
	t.Helper()
	cell := &fabricCell{}
	for gi := 0; gi < groups; gi++ {
		id := expshard.DefaultGroupID(gi)
		g := expshard.Group{ID: id}
		cell.servers = append(cell.servers, nil)
		for mi := 0; mi < replicas; mi++ {
			srv, err := NewServer(ServerConfig{Provider: expstore.NewRing(spec), Spec: spec, ShardID: id})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			t.Cleanup(func() { hs.Close(); srv.Close() })
			cell.servers[gi] = append(cell.servers[gi], hs)
			g.Members = append(g.Members, expshard.Member{Addr: hs.URL})
		}
		cell.groups = append(cell.groups, g)
	}
	f, err := NewFabric(cell.groups, FabricOptions{
		Client:         ClientOptions{Timeout: 5 * time.Second, Attempts: 2, BaseDelay: time.Millisecond, JitterSeed: 1},
		MemberDeadline: 2 * time.Second,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell.fabric = f
	return cell
}

func drawEqual(t *testing.T, tag string, idxA, idxB []int, dstA, dstB []*replay.AgentBatch) {
	t.Helper()
	for i := range idxA {
		if idxA[i] != idxB[i] {
			t.Fatalf("%s: index %d differs: %d vs %d", tag, i, idxA[i], idxB[i])
		}
	}
	for a := range dstA {
		for i := range dstA[a].Obs.Data {
			if dstA[a].Obs.Data[i] != dstB[a].Obs.Data[i] {
				t.Fatalf("%s: agent %d obs diverges at %d", tag, a, i)
			}
		}
		for i := range dstA[a].Act.Data {
			if dstA[a].Act.Data[i] != dstB[a].Act.Data[i] {
				t.Fatalf("%s: agent %d act diverges at %d", tag, a, i)
			}
		}
		for i := range dstA[a].NextObs.Data {
			if dstA[a].NextObs.Data[i] != dstB[a].NextObs.Data[i] {
				t.Fatalf("%s: agent %d next-obs diverges at %d", tag, a, i)
			}
		}
		for i := range dstA[a].Rew.Data {
			if dstA[a].Rew.Data[i] != dstB[a].Rew.Data[i] || dstA[a].Done.Data[i] != dstB[a].Done.Data[i] {
				t.Fatalf("%s: agent %d scalars diverge at %d", tag, a, i)
			}
		}
	}
}

// The tentpole equivalence property: a sharded fabric at R=1 must be
// bit-identical to a single replayd — same rows in, same (plan, n,
// seed) draws out, across shard counts.
func TestShardedMatchesSingleStoreBitForBit(t *testing.T) {
	spec := testSpec(256)
	for _, shards := range []int{1, 2, 4} {
		for _, plan := range []replay.SamplePlan{
			{Strategy: replay.PlanUniform},
			{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4},
		} {
			cell := newFabricCell(t, spec, shards, 1, nil)
			sink, err := NewShardedSink(cell.fabric, "actor-0", spec)
			if err != nil {
				t.Fatal(err)
			}

			localRing := expstore.NewRing(spec)
			local, err := expstore.NewSource(localRing, plan)
			if err != nil {
				t.Fatal(err)
			}

			rngA := rand.New(rand.NewSource(7))
			rngB := rand.New(rand.NewSource(7))
			const rows = 200 // below per-shard capacity: no trims anywhere
			for i := 0; i < rows; i++ {
				obs, act, rew, nxt, done := step(rngA)
				if err := sink.Add(obs, act, rew, nxt, done); err != nil {
					t.Fatal(err)
				}
				obs, act, rew, nxt, done = step(rngB)
				if err := local.Add(obs, act, rew, nxt, done); err != nil {
					t.Fatal(err)
				}
			}
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}

			src, err := NewShardedSource(cell.fabric, spec, plan)
			if err != nil {
				t.Fatal(err)
			}
			nF, err := src.Len()
			if err != nil {
				t.Fatal(err)
			}
			nL, _ := local.Len()
			if nF != nL || nF != rows {
				t.Fatalf("shards=%d plan %v: fabric Len %d, local Len %d, want %d", shards, plan, nF, nL, rows)
			}

			const batch = 32
			for trial := 0; trial < 5; trial++ {
				seed := int64(4000 + trial)
				dstF := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
				dstL := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
				idxF, err := src.SampleBatch(batch, seed, dstF)
				if err != nil {
					t.Fatal(err)
				}
				idxL, err := local.SampleBatch(batch, seed, dstL)
				if err != nil {
					t.Fatal(err)
				}
				drawEqual(t, "sharded-vs-local", idxF, idxL, dstF, dstL)
			}
		}
	}
}

// Replication: every replica of a group receives every routed row, so
// killing the preferred member mid-stream must not change a single
// sampled bit — only the marl_shard_replica_reads_total counter.
func TestShardedReplicaFailoverBitForBit(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	reg := telemetry.NewRegistry()
	cell := newFabricCell(t, spec, 2, 2, reg)

	sink, err := NewShardedSink(cell.fabric, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := expstore.NewSource(expstore.NewRing(spec), plan)
	if err != nil {
		t.Fatal(err)
	}
	rngA, rngB := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for i := 0; i < 180; i++ {
		obs, act, rew, nxt, done := step(rngA)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
		obs, act, rew, nxt, done = step(rngB)
		if err := local.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	src, err := NewShardedSource(cell.fabric, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Len(); err != nil {
		t.Fatal(err)
	}

	// Kill group 0's preferred member; its replica holds an identical copy.
	cell.servers[0][0].Close()
	if n, err := src.Len(); err != nil || n != 180 {
		t.Fatalf("Len after member kill: %d, %v", n, err)
	}

	const batch = 32
	for trial := 0; trial < 3; trial++ {
		seed := int64(9000 + trial)
		dstF := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		dstL := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		idxF, err := src.SampleBatch(batch, seed, dstF)
		if err != nil {
			t.Fatal(err)
		}
		idxL, err := local.SampleBatch(batch, seed, dstL)
		if err != nil {
			t.Fatal(err)
		}
		drawEqual(t, "failover-vs-local", idxF, idxL, dstF, dstL)
	}
	if cell.fabric.ReplicaReads() == 0 {
		t.Fatal("expected replica reads after killing the preferred member")
	}
	if cell.fabric.DegradedDraws() != 0 {
		t.Fatalf("replica failover must not degrade the draw, got %d degraded", cell.fabric.DegradedDraws())
	}
}

// Degraded reads: a group losing every replica is excluded and the draw
// reweighted over the survivors — training continues, the loss is
// counted, and the batch is fully populated from live shards.
func TestShardedDegradedDrawSkipsDeadGroup(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	reg := telemetry.NewRegistry()
	cell := newFabricCell(t, spec, 2, 1, reg)

	sink, err := NewShardedSink(cell.fabric, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 160; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	src, err := NewShardedSource(cell.fabric, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Len(); err != nil {
		t.Fatal(err)
	}

	cell.servers[1][0].Close() // whole group 1 gone (R=1)

	const batch = 32
	dst := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
	idx, err := src.SampleBatch(batch, 777, dst)
	if err != nil {
		t.Fatalf("degraded draw failed: %v", err)
	}
	if len(idx) != batch {
		t.Fatalf("degraded draw returned %d indices, want %d", len(idx), batch)
	}
	if cell.fabric.DegradedDraws() == 0 {
		t.Fatal("expected degraded draws after losing a whole group")
	}
	// The reweighted stream must still be sampleable via Len.
	n, err := src.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 160 {
		t.Fatalf("degraded Len %d outside (0,160]", n)
	}
}

// Prefetch overlap composes with the fabric: a prefetched fabric draw
// is bit-identical to the synchronous one.
func TestShardedPrefetchMatchesSync(t *testing.T) {
	spec := testSpec(256)
	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	cell := newFabricCell(t, spec, 2, 1, nil)

	sink, err := NewShardedSink(cell.fabric, "actor-0", spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		obs, act, rew, nxt, done := step(rng)
		if err := sink.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	sync1, err := NewShardedSource(cell.fabric, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	sync2, err := NewShardedSource(cell.fabric, spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	pre := NewPrefetchSource(sync2, 2, nil)
	if _, err := sync1.Len(); err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Len(); err != nil {
		t.Fatal(err)
	}

	const batch = 24
	seeds := []int64{101, 102, 103}
	pre.PrefetchBatch(batch, seeds)
	for _, seed := range seeds {
		dstS := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		dstP := []*replay.AgentBatch{replay.NewAgentBatch(batch, 3, 2), replay.NewAgentBatch(batch, 4, 2)}
		idxS, err := sync1.SampleBatch(batch, seed, dstS)
		if err != nil {
			t.Fatal(err)
		}
		idxP, err := pre.SampleBatch(batch, seed, dstP)
		if err != nil {
			t.Fatal(err)
		}
		drawEqual(t, "prefetch-vs-sync", idxS, idxP, dstS, dstP)
	}
}

// Wire sanity: the shard request survives an encode/decode round trip
// and corruption of any byte is detected.
func TestShardWireRoundTripAndCorruption(t *testing.T) {
	req := shardSampleRequest{
		N:          32,
		Seed:       -12345,
		Plan:       replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 8, Refs: 4},
		ShardID:    "shard-1",
		MyGroup:    1,
		Partitions: 64,
		Offset:     0,
		Part2Group: func() []int {
			p := make([]int, 64)
			for i := range p {
				p[i] = i % 3
			}
			return p
		}(),
		Stats: []expshard.GroupStat{
			{Rows: 100, Total: 100, Live: true},
			{Rows: 90, Total: 120, Live: true},
			{Rows: 0, Total: 0, Live: false},
		},
	}
	buf, err := encodeShardSampleRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeShardSampleRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != req.N || got.Seed != req.Seed || got.ShardID != req.ShardID || got.MyGroup != req.MyGroup ||
		got.Partitions != req.Partitions || got.Plan.Strategy != req.Plan.Strategy || got.Plan.Neighbors != req.Plan.Neighbors {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
	}
	for i := range req.Part2Group {
		if got.Part2Group[i] != req.Part2Group[i] {
			t.Fatalf("part2group[%d] = %d, want %d", i, got.Part2Group[i], req.Part2Group[i])
		}
	}
	for g := range req.Stats {
		if got.Stats[g] != req.Stats[g] {
			t.Fatalf("stats[%d] = %+v, want %+v", g, got.Stats[g], req.Stats[g])
		}
	}

	for pos := 0; pos < len(buf); pos++ {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[pos] ^= 0x41
		if _, err := decodeShardSampleRequest(mut); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	if _, err := decodeShardSampleRequest(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated request went undetected")
	}
}
