package expstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"marlperf/internal/replay"
)

// DefaultSegmentRows is the rotation threshold when Options.SegmentRows is
// zero: large enough to amortize per-file cost, small enough that a torn
// tail loses at most one flush interval of one segment.
const DefaultSegmentRows = 4096

// Options tune a Store.
type Options struct {
	// SegmentRows is the record count at which the active segment is sealed
	// and a new one started. Defaults to DefaultSegmentRows.
	SegmentRows int
}

// segMeta describes one sealed, fully-verified segment on disk.
type segMeta struct {
	baseSeq uint64
	rows    int
	path    string
}

// Store is the crash-recoverable experience store: every appended row goes
// both to an in-memory Ring (the sampling substrate) and to the active
// CRC-framed segment file. Segments rotate at SegmentRows records and are
// deleted once every row they hold has been evicted from the ring window,
// bounding disk use at roughly Capacity rows plus one segment.
//
// Durability contract: Flush pushes buffered frames to the OS, so rows
// appended before a Flush survive a SIGKILL of the process. On reopen the
// newest segment may end in a torn frame from writes after the last flush;
// recovery truncates it to the last intact record and training resumes.
// Call Sync to additionally fsync for whole-machine crash safety.
//
// All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	spec   replay.Spec
	layout replay.RowLayout
	opts   Options

	ring   *Ring
	sealed []segMeta

	active     *os.File
	activeBuf  *bufio.Writer
	activeBase uint64
	activeRows int

	nextSeq uint64 // global insertion index of the next appended row

	encScratch []byte
}

// Open loads (or creates) a store in dir for spec. Existing segments are
// verified and replayed to rebuild the ring: interior segments must be fully
// intact; the newest segment may carry a torn tail, which is truncated away.
func Open(dir string, spec replay.Spec, opts Options) (*Store, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.SegmentRows <= 0 {
		opts.SegmentRows = DefaultSegmentRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expstore: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:    dir,
		spec:   spec,
		layout: replay.NewRowLayout(spec),
		opts:   opts,
		ring:   NewRing(spec),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover scans the segment chain, verifies it, truncates a torn tail on
// the newest segment, replays the retained window into the ring, and leaves
// the store ready to append at nextSeq.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("expstore: reading %s: %w", s.dir, err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".xpk") {
			paths = append(paths, filepath.Join(s.dir, name))
		}
	}
	sort.Strings(paths) // 12-digit zero-padded base: lexical = append order

	type loaded struct {
		meta segMeta
		rows []float64
		n    int
	}
	var segs []loaded
	for i, path := range paths {
		last := i == len(paths)-1
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("expstore: reading segment: %w", err)
		}
		base, rows, n, goodOff, err := parseSegment(data, s.layout, last)
		if errors.Is(err, errTornHeader) {
			// The newest segment's header never hit disk: the crash landed
			// between file creation and the first flush. Nothing in it was
			// ever durable; drop the file and resume from the chain so far.
			if rmErr := os.Remove(path); rmErr != nil {
				return fmt.Errorf("expstore: dropping torn segment: %w", rmErr)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("expstore: %s: %w", filepath.Base(path), err)
		}
		if len(segs) > 0 {
			prev := segs[len(segs)-1].meta
			if base != prev.baseSeq+uint64(prev.rows) {
				return fmt.Errorf("expstore: segment chain gap: %s starts at seq %d, previous ends at %d",
					filepath.Base(path), base, prev.baseSeq+uint64(prev.rows))
			}
		}
		if last && goodOff < len(data) {
			// Torn tail after the last intact record: truncate so the next
			// append continues a clean frame boundary.
			if err := os.Truncate(path, int64(goodOff)); err != nil {
				return fmt.Errorf("expstore: truncating torn tail of %s: %w", filepath.Base(path), err)
			}
		}
		segs = append(segs, loaded{meta: segMeta{baseSeq: base, rows: n, path: path}, rows: rows, n: n})
	}

	if len(segs) == 0 {
		return nil
	}
	tail := segs[len(segs)-1]
	s.nextSeq = tail.meta.baseSeq + uint64(tail.meta.rows)

	// Replay the newest Capacity rows into the ring, oldest first. Seed the
	// ring's total so Base() reflects global sequence numbers, then append
	// the retained window.
	windowStart := uint64(0)
	if s.nextSeq > uint64(s.spec.Capacity) {
		windowStart = s.nextSeq - uint64(s.spec.Capacity)
	}
	s.ring.total = windowStart
	stride := s.layout.Stride()
	for _, seg := range segs {
		for k := 0; k < seg.n; k++ {
			seq := seg.meta.baseSeq + uint64(k)
			if seq < windowStart {
				continue
			}
			s.ring.Append(seg.rows[k*stride : (k+1)*stride])
		}
	}

	// Reopen the newest segment for appending if it still has room;
	// otherwise it is sealed and the next append starts a fresh one.
	if tail.meta.rows < s.opts.SegmentRows {
		f, err := os.OpenFile(tail.meta.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("expstore: reopening active segment: %w", err)
		}
		s.active = f
		s.activeBuf = bufio.NewWriter(f)
		s.activeBase = tail.meta.baseSeq
		s.activeRows = tail.meta.rows
		segs = segs[:len(segs)-1]
	}
	for _, seg := range segs {
		s.sealed = append(s.sealed, seg.meta)
	}
	s.retireLocked()
	return nil
}

// Layout returns the shared interleaved row layout.
func (s *Store) Layout() replay.RowLayout { return s.layout }

// Spec returns the transition shape the store was opened with.
func (s *Store) Spec() replay.Spec { return s.spec }

// RowCount returns the number of sampleable (ring-resident) rows.
func (s *Store) RowCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Len()
}

// Total returns the number of rows ever appended across all incarnations.
func (s *Store) Total() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextSeq
}

// Base returns the global sequence number of sampleable index 0.
func (s *Store) Base() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Base()
}

// SetTracer installs (or clears) the ring's address tracer.
func (s *Store) SetTracer(t replay.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring.SetTracer(t)
}

// AppendRow appends one packed row (layout.Stride() floats) to the ring and
// the active segment, rotating and retiring segments as needed. The row is
// durable against process kill only after the next Flush.
func (s *Store) AppendRow(row []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(row)
}

// AppendPacked appends n rows packed back-to-back in rows.
func (s *Store) AppendPacked(rows []float64, n int) error {
	stride := s.layout.Stride()
	if len(rows) < n*stride {
		return fmt.Errorf("expstore: AppendPacked got %d floats for %d rows of %d", len(rows), n, stride)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := 0; k < n; k++ {
		if err := s.appendLocked(rows[k*stride : (k+1)*stride]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) appendLocked(row []float64) error {
	if s.active == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	s.encScratch = appendRecord(s.encScratch[:0], s.layout, s.nextSeq, row)
	if _, err := s.activeBuf.Write(s.encScratch); err != nil {
		return fmt.Errorf("expstore: appending record %d: %w", s.nextSeq, err)
	}
	s.ring.Append(row)
	s.nextSeq++
	s.activeRows++
	if s.activeRows >= s.opts.SegmentRows {
		if err := s.sealLocked(); err != nil {
			return err
		}
	}
	return nil
}

// openSegmentLocked starts a fresh segment at nextSeq.
func (s *Store) openSegmentLocked() error {
	path := filepath.Join(s.dir, fmt.Sprintf(segPattern, s.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("expstore: creating segment: %w", err)
	}
	s.active = f
	s.activeBuf = bufio.NewWriter(f)
	s.activeBase = s.nextSeq
	s.activeRows = 0
	s.encScratch = appendSegmentHeader(s.encScratch[:0], s.layout, s.nextSeq)
	if _, err := s.activeBuf.Write(s.encScratch); err != nil {
		return fmt.Errorf("expstore: writing segment header: %w", err)
	}
	return nil
}

// sealLocked flushes and closes the active segment, records it as sealed,
// and retires segments that fell out of the ring window.
func (s *Store) sealLocked() error {
	if err := s.activeBuf.Flush(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.sealed = append(s.sealed, segMeta{baseSeq: s.activeBase, rows: s.activeRows, path: s.active.Name()})
	s.active = nil
	s.activeBuf = nil
	s.retireLocked()
	return nil
}

// retireLocked deletes sealed segments every row of which has been evicted
// from the ring window [nextSeq-Capacity, nextSeq).
func (s *Store) retireLocked() {
	windowStart := uint64(0)
	if s.nextSeq > uint64(s.spec.Capacity) {
		windowStart = s.nextSeq - uint64(s.spec.Capacity)
	}
	keep := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.baseSeq+uint64(seg.rows) <= windowStart {
			// Best-effort: a segment that outlives retirement only costs
			// disk, never correctness, so removal errors are not fatal.
			os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	s.sealed = keep
}

// Flush pushes buffered frames to the OS, making all appended rows durable
// against process kill.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeBuf == nil {
		return nil
	}
	return s.activeBuf.Flush()
}

// Sync flushes and fsyncs the active segment for machine-crash durability.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeBuf == nil {
		return nil
	}
	if err := s.activeBuf.Flush(); err != nil {
		return err
	}
	return s.active.Sync()
}

// Close flushes and closes the active segment. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.activeBuf.Flush(); err != nil {
		return err
	}
	err := s.active.Close()
	s.active = nil
	s.activeBuf = nil
	return err
}

// SamplePacked selects and gathers n rows under one read lock, so index
// selection and the gather see the same store state — the contiguity of a
// locality plan's runs is preserved even with concurrent appenders.
func (s *Store) SamplePacked(plan replay.SamplePlan, n int, seed int64, idx []int, rows []float64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.SamplePacked(plan, n, seed, idx, rows)
}

// GatherEncodeLE copies the rows at the given insertion-order indices into
// dst as little-endian float64 bytes under one read lock (see
// Ring.GatherEncodeLE).
func (s *Store) GatherEncodeLE(indices []int, dst []byte) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.ring.GatherEncodeLE(indices, dst)
}

// Stats is a point-in-time snapshot of store occupancy.
type Stats struct {
	Rows     int    `json:"rows"`            // sampleable rows in the ring window
	Total    uint64 `json:"total"`           // rows ever appended
	Base     uint64 `json:"base"`            // global seq of sampleable index 0
	Segments int    `json:"segments"`        // on-disk segments (sealed + active)
	Stride   int    `json:"stride"`          // float64s per row
	DiskRows int    `json:"disk_rows"`       // rows currently held by on-disk segments
	Shard    string `json:"shard,omitempty"` // shard id when serving inside a replay fabric
}

// Stats returns current occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Rows:   s.ring.Len(),
		Total:  s.nextSeq,
		Base:   s.ring.Base(),
		Stride: s.layout.Stride(),
	}
	for _, seg := range s.sealed {
		st.Segments++
		st.DiskRows += seg.rows
	}
	if s.active != nil {
		st.Segments++
		st.DiskRows += s.activeRows
	}
	return st
}
