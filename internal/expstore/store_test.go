package expstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"marlperf/internal/replay"
)

func testSpec(capacity int) replay.Spec {
	return replay.Spec{NumAgents: 2, ObsDims: []int{3, 4}, ActDim: 2, Capacity: capacity}
}

// rowForSeq derives a self-checking row: every float is a function of the
// global sequence number, so recovery tests can verify content without
// keeping a copy.
func rowForSeq(layout replay.RowLayout, seq uint64) []float64 {
	row := make([]float64, layout.Stride())
	for i := range row {
		row[i] = float64(seq)*1000 + float64(i)
	}
	return row
}

func appendSeqs(t *testing.T, s *Store, from, to uint64) {
	t.Helper()
	for seq := from; seq < to; seq++ {
		if err := s.AppendRow(rowForSeq(s.Layout(), seq)); err != nil {
			t.Fatalf("appending row %d: %v", seq, err)
		}
	}
}

// verifyWindow checks that the store's sampleable window holds exactly the
// rows [base, base+len) with self-checking content.
func verifyWindow(t *testing.T, s *Store, wantBase uint64, wantLen int) {
	t.Helper()
	if got := s.RowCount(); got != wantLen {
		t.Fatalf("RowCount = %d, want %d", got, wantLen)
	}
	if got := s.Base(); got != wantBase {
		t.Fatalf("Base = %d, want %d", got, wantBase)
	}
	stride := s.Layout().Stride()
	idx := make([]int, wantLen)
	for i := range idx {
		idx[i] = i
	}
	rows := make([]float64, wantLen*stride)
	s.mu.RLock()
	s.ring.GatherPacked(idx, rows)
	s.mu.RUnlock()
	for i := 0; i < wantLen; i++ {
		want := rowForSeq(s.Layout(), wantBase+uint64(i))
		got := rows[i*stride : (i+1)*stride]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d (seq %d) float %d = %v, want %v", i, wantBase+uint64(i), j, got[j], want[j])
			}
		}
	}
}

func TestStoreAppendSampleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSpec(64), Options{SegmentRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSeqs(t, s, 0, 40)
	verifyWindow(t, s, 0, 40)

	// SamplePacked returns rows matching their indices.
	plan := replay.SamplePlan{Strategy: replay.PlanUniform}
	n := 10
	idx := make([]int, n)
	rows := make([]float64, n*s.Layout().Stride())
	if err := s.SamplePacked(plan, n, 7, idx, rows); err != nil {
		t.Fatal(err)
	}
	stride := s.Layout().Stride()
	for k, i := range idx {
		want := rowForSeq(s.Layout(), uint64(i))
		got := rows[k*stride : (k+1)*stride]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sampled row %d (index %d): float %d = %v, want %v", k, i, j, got[j], want[j])
			}
		}
	}
}

func TestStoreRingEvictionKeepsInsertionOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSpec(32), Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSeqs(t, s, 0, 100) // wraps the 32-row ring three times
	verifyWindow(t, s, 68, 32)
}

func TestStoreRetiresDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSpec(32), Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSeqs(t, s, 0, 200)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xpk") {
			segs = append(segs, e.Name())
		}
	}
	// Window is [168,200): rows 168.. live in segments based at 168, 176,
	// 184, 192 plus the active one at 200 — everything older must be gone.
	maxLive := 1 + (32+8-1)/8 + 1
	if len(segs) > maxLive {
		t.Fatalf("%d segments on disk after retirement, want ≤%d: %v", len(segs), maxLive, segs)
	}
	st := s.Stats()
	if st.Total != 200 || st.Rows != 32 || st.Base != 168 {
		t.Fatalf("stats %+v", st)
	}
	if st.DiskRows < st.Rows {
		t.Fatalf("disk holds %d rows, fewer than the %d sampleable", st.DiskRows, st.Rows)
	}
}

func TestStoreReopenRestoresWindowAndContinues(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(32)
	s, err := Open(dir, spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendSeqs(t, s, 0, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyWindow(t, s2, 18, 32)

	// Appends continue the global sequence seamlessly.
	appendSeqs(t, s2, 50, 70)
	verifyWindow(t, s2, 38, 32)
}

func TestStoreRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(64)
	s, err := Open(dir, spec, Options{SegmentRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	appendSeqs(t, s, 0, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-frame: cut the single segment mid-record.
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.xpk"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("glob: %v %v", paths, err)
	}
	info, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(paths[0], info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, spec, Options{SegmentRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The torn record 19 is dropped; rows 0..18 survive intact.
	verifyWindow(t, s2, 0, 19)
	// Appends resume at the recovered sequence.
	appendSeqs(t, s2, 19, 25)
	verifyWindow(t, s2, 0, 25)
}

func TestStoreRecoveryRejectsDamagedSealedSegment(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(64)
	s, err := Open(dir, spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendSeqs(t, s, 0, 30) // several sealed segments + active
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.xpk"))
	if err != nil || len(paths) < 2 {
		t.Fatalf("glob: %v %v", paths, err)
	}
	// Bit-flip a record payload in the FIRST (sealed, interior) segment.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0x10
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, spec, Options{SegmentRows: 8}); err == nil {
		t.Fatal("damaged sealed segment accepted")
	}
}

func TestStoreRecoveryDropsTornHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(64)
	s, err := Open(dir, spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendSeqs(t, s, 0, 16) // exactly two sealed segments
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash right after rotation can leave a new segment with a short
	// header. Recovery must drop it and resume from the sealed chain.
	torn := filepath.Join(dir, "seg-000000000016.xpk")
	if err := os.WriteFile(torn, []byte("MX"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyWindow(t, s2, 0, 16)
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not removed: %v", err)
	}
	appendSeqs(t, s2, 16, 20)
	verifyWindow(t, s2, 0, 20)
}

// traceRecorder captures (addr, size) accesses like the cache simulator.
type traceRecorder struct {
	addrs []uint64
	sizes []int
}

func (tr *traceRecorder) Access(addr uint64, size int) {
	tr.addrs = append(tr.addrs, addr)
	tr.sizes = append(tr.sizes, size)
}

// Server-side locality sampling must emit contiguous address runs: the whole
// point of executing the plan next to the data is that neighbor runs stream
// sequential rows.
func TestStoreLocalitySamplingTraceIsContiguous(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(256)
	s, err := Open(dir, spec, Options{SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSeqs(t, s, 0, 200)

	rec := &traceRecorder{}
	s.SetTracer(rec)
	plan := replay.SamplePlan{Strategy: replay.PlanLocality, Neighbors: 16, Refs: 4}
	n := 64
	idx := make([]int, n)
	rows := make([]float64, n*s.Layout().Stride())
	if err := s.SamplePacked(plan, n, 3, idx, rows); err != nil {
		t.Fatal(err)
	}
	if len(rec.addrs) != n {
		t.Fatalf("trace has %d accesses, want %d", len(rec.addrs), n)
	}
	rowBytes := uint64(s.Layout().Stride() * 8)
	for k := 1; k < n; k++ {
		if k%plan.Neighbors == 0 {
			continue // new reference point: jump allowed
		}
		// Within a run, consecutive samples touch adjacent rows (modulo one
		// ring wrap, which appears as a jump back to the region base).
		delta := int64(rec.addrs[k]) - int64(rec.addrs[k-1])
		if delta != int64(rowBytes) && delta != -int64(rowBytes)*int64(spec.Capacity-1) {
			t.Fatalf("access %d not contiguous: addr delta %d, want %d", k, delta, rowBytes)
		}
	}
}

func TestSourceMatchesDirectKVGather(t *testing.T) {
	spec := testSpec(128)
	ring := NewRing(spec)
	src, err := NewSource(ring, replay.SamplePlan{Strategy: replay.PlanUniform})
	if err != nil {
		t.Fatal(err)
	}
	kv := replay.NewKVBuffer(spec)

	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 100; step++ {
		obs := [][]float64{randVec(rng, 3), randVec(rng, 4)}
		act := [][]float64{randVec(rng, 2), randVec(rng, 2)}
		nxt := [][]float64{randVec(rng, 3), randVec(rng, 4)}
		rew := []float64{rng.NormFloat64(), rng.NormFloat64()}
		done := []float64{0, float64(step % 2)}
		if err := src.Add(obs, act, rew, nxt, done); err != nil {
			t.Fatal(err)
		}
		kv.Add(obs, act, rew, nxt, done)
	}
	if n, _ := src.Len(); n != 100 {
		t.Fatalf("source Len = %d, want 100", n)
	}

	const batch = 32
	dst := []*replay.AgentBatch{
		replay.NewAgentBatch(batch, 3, 2),
		replay.NewAgentBatch(batch, 4, 2),
	}
	idx, err := src.SampleBatch(batch, 99, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Gathering the same indices from the KV table must agree bit-for-bit:
	// before any ring wrap, insertion order equals KV slot order.
	want := []*replay.AgentBatch{
		replay.NewAgentBatch(batch, 3, 2),
		replay.NewAgentBatch(batch, 4, 2),
	}
	kv.GatherAll(idx, want)
	for a := 0; a < 2; a++ {
		for i := range want[a].Obs.Data {
			if dst[a].Obs.Data[i] != want[a].Obs.Data[i] {
				t.Fatalf("agent %d obs diverges from KV gather", a)
			}
		}
		for i := range want[a].Rew.Data {
			if dst[a].Rew.Data[i] != want[a].Rew.Data[i] || dst[a].Done.Data[i] != want[a].Done.Data[i] {
				t.Fatalf("agent %d scalars diverge from KV gather", a)
			}
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
