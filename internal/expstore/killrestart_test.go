package expstore

// Real-signal crash test: a child process (this test binary re-executed with
// an env guard) appends self-checking rows to a store, flushing every batch,
// until the parent SIGKILLs it mid-write. The parent then reopens the store
// and proves the invariant the segment format promises: recovery keeps a
// contiguous intact prefix — every row flushed before the kill survives,
// only the torn tail past the last flush may be dropped — and the store
// accepts new appends exactly where the prefix ends.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"marlperf/internal/replay"
)

const (
	killChildEnv = "EXPSTORE_KILL_CHILD_DIR"
	// killFlushEvery is the child's flush cadence; everything up to the last
	// flush must survive the kill.
	killFlushEvery = 50
)

func killSpec() replay.Spec {
	return replay.Spec{NumAgents: 2, ObsDims: []int{3, 4}, ActDim: 2, Capacity: 100000}
}

// TestMain runs the appender child when re-executed with the env guard, and
// the normal test binary otherwise.
func TestMain(m *testing.M) {
	if dir := os.Getenv(killChildEnv); dir != "" {
		killChildMain(dir)
		return
	}
	os.Exit(m.Run())
}

// killChildMain appends rows forever, flushing every killFlushEvery rows and
// reporting durable progress to progress.txt — until SIGKILLed.
func killChildMain(dir string) {
	s, err := Open(filepath.Join(dir, "store"), killSpec(), Options{SegmentRows: 64})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	layout := s.Layout()
	progress := filepath.Join(dir, "progress.txt")
	for seq := uint64(0); ; seq++ {
		if err := s.AppendRow(rowForSeq(layout, seq)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if (seq+1)%killFlushEvery == 0 {
			if err := s.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Publish the durable row count only after the flush: rows up to
			// here must survive any subsequent kill.
			tmp := progress + ".tmp"
			if err := os.WriteFile(tmp, []byte(strconv.FormatUint(seq+1, 10)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.Rename(tmp, progress); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

func TestSIGKILLRecoveryKeepsFlushedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec kill test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), killChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the child to make real progress, then SIGKILL it mid-stream.
	progress := filepath.Join(dir, "progress.txt")
	var durable uint64
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(progress); err == nil {
			if v, err := strconv.ParseUint(string(data), 10, 64); err == nil && v >= 10*killFlushEvery {
				durable = v
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reported durable progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill signal

	// The progress file may lag the true durable count (the child can have
	// flushed more batches after the last rename) — durable is a lower bound.
	if data, err := os.ReadFile(progress); err == nil {
		if v, err := strconv.ParseUint(string(data), 10, 64); err == nil && v > durable {
			durable = v
		}
	}

	// "Restart": reopen the store and verify zero intact-record loss.
	s, err := Open(filepath.Join(dir, "store"), killSpec(), Options{SegmentRows: 64})
	if err != nil {
		t.Fatalf("recovery after SIGKILL failed: %v", err)
	}
	defer s.Close()
	recovered := s.Total()
	if recovered < durable {
		t.Fatalf("recovered %d rows, but %d were flushed before the kill", recovered, durable)
	}
	t.Logf("SIGKILL at ≥%d durable rows; recovered %d (torn tail dropped: unflushed only)", durable, recovered)

	// Every recovered row is intact and in sequence.
	verifyWindow(t, s, s.Base(), s.RowCount())

	// The reopened store appends exactly where the intact prefix ends.
	appendSeqs(t, s, recovered, recovered+100)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyWindow(t, s, s.Base(), s.RowCount())
	if s.Total() != recovered+100 {
		t.Fatalf("Total = %d after 100 post-recovery appends, want %d", s.Total(), recovered+100)
	}
}
