package expstore

import (
	"sync"

	"marlperf/internal/replay"
)

// Provider is the packed-row store contract shared by the in-memory Ring
// and the persistent Store: insertion-order row addressing, single-call
// seeded sampling. The experience server and the local Source adapter both
// program against it.
type Provider interface {
	Layout() replay.RowLayout
	// RowCount returns the number of sampleable rows.
	RowCount() int
	// AppendRow appends one packed row of Layout().Stride() floats.
	AppendRow(row []float64) error
	// Flush publishes buffered rows (durability barrier for stores).
	Flush() error
	// SamplePacked selects n rows with plan seeded by seed as one atomic
	// operation, filling idx (len n) with the chosen insertion-order
	// indices and rows (n·stride floats) with the packed data.
	SamplePacked(plan replay.SamplePlan, n int, seed int64, idx []int, rows []float64) error
}

var (
	_ Provider = (*Ring)(nil)
	_ Provider = (*Store)(nil)
)

// Source adapts a Provider plus a SamplePlan to the trainer-facing
// replay.TransitionSource and replay.TransitionSink interfaces. It is the
// local half of the actor/learner split: a trainer wired to a Source backed
// by the same rows in the same order as a remote service draws bit-identical
// batches, because both reduce to Provider.SamplePacked with the same
// (plan, length, seed).
//
// SampleBatch is safe for concurrent use across update workers: draws
// serialize on an internal lock around the shared scratch, which costs
// nothing deterministically — every batch is a pure function of its own
// (n, seed, dst) regardless of draw order. Add/Flush belong to the single
// collection goroutine.
type Source struct {
	p    Provider
	plan replay.SamplePlan

	mu         sync.Mutex
	idxScratch []int
	rowScratch []float64
	packRow    []float64
}

// NewSource wraps p with plan. The plan must validate.
func NewSource(p Provider, plan replay.SamplePlan) (*Source, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Source{p: p, plan: plan}, nil
}

// Plan returns the sampling plan executed on every SampleBatch.
func (s *Source) Plan() replay.SamplePlan { return s.plan }

// Len implements replay.TransitionSource.
func (s *Source) Len() (int, error) { return s.p.RowCount(), nil }

// SampleBatch implements replay.TransitionSource: one seeded plan execution
// against the provider, split into per-agent tensors. The returned index
// slice aliases internal scratch and is valid only until the next
// SampleBatch on this Source; dst is fully written before return.
func (s *Source) SampleBatch(n int, seed int64, dst []*replay.AgentBatch) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	layout := s.p.Layout()
	stride := layout.Stride()
	if cap(s.idxScratch) < n {
		s.idxScratch = make([]int, n)
		s.rowScratch = make([]float64, n*stride)
	}
	idx := s.idxScratch[:n]
	rows := s.rowScratch[:n*stride]
	if err := s.p.SamplePacked(s.plan, n, seed, idx, rows); err != nil {
		return nil, err
	}
	layout.SplitRows(rows, n, dst)
	return idx, nil
}

// Add implements replay.TransitionSink: pack one environment step and
// append it.
func (s *Source) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error {
	layout := s.p.Layout()
	if s.packRow == nil {
		s.packRow = make([]float64, layout.Stride())
	}
	layout.PackRow(s.packRow, obs, act, rew, nextObs, done)
	return s.p.AppendRow(s.packRow)
}

// Flush implements replay.TransitionSink.
func (s *Source) Flush() error { return s.p.Flush() }

var (
	_ replay.TransitionSource = (*Source)(nil)
	_ replay.TransitionSink   = (*Source)(nil)
)
