// Package expstore is the persistent half of the experience service: an
// append-only, crash-recoverable segment store for KV transition rows. One
// record is one environment step — the key is the global time index, the
// value is every agent's transition packed contiguously (replay.RowLayout),
// preserving the paper's §IV-B2 data layout on disk so server-side
// locality-aware sampling streams sequential rows.
//
// The store keeps two views of the same experience:
//
//   - an in-memory Ring of the newest Capacity rows, which samplers gather
//     from (the hot path — one contiguous copy per row);
//   - CRC-framed pack files (segments) on disk, rotated at SegmentRows
//     records and retired once they fall entirely outside the ring window,
//     which make the experience crash-recoverable: reopening after a kill
//     drops at most the torn tail of the active segment.
//
// Framing and torn-tail handling follow internal/resilience (MSNP) and the
// MARB replay serialization: explicit lengths, IEEE CRC32 trailers, and
// plausibility bounds before any allocation.
package expstore

import (
	"fmt"

	"marlperf/internal/f64le"
	"marlperf/internal/replay"
)

// ringTraceBase is the synthetic base address Ring gathers report to the
// cache simulator; widely separated from the KVBuffer (1<<40) and baseline
// Buffer regions so traces never alias.
const ringTraceBase = 1 << 44

// Ring is a bounded in-memory row store addressed by insertion order: index
// 0 is the oldest retained row, Len()-1 the newest. It is the sampling
// substrate of both the local experience source and the networked store;
// consecutive indices occupy consecutive memory slots (modulo one wrap), so
// a locality plan's neighbor runs translate into sequential address
// streams.
//
// Ring is not safe for concurrent use; Store adds locking.
type Ring struct {
	layout replay.RowLayout
	data   []float64
	cap    int
	start  int // slot of insertion-order index 0
	length int
	total  uint64 // rows ever appended; Base() = total - length

	tracer replay.Tracer
}

// NewRing allocates an empty ring for spec, holding spec.Capacity rows.
func NewRing(spec replay.Spec) *Ring {
	layout := replay.NewRowLayout(spec)
	return &Ring{
		layout: layout,
		data:   make([]float64, spec.Capacity*layout.Stride()),
		cap:    spec.Capacity,
	}
}

// Layout returns the shared interleaved row layout.
func (r *Ring) Layout() replay.RowLayout { return r.layout }

// Len returns the number of retained rows.
func (r *Ring) Len() int { return r.length }

// RowCount implements Provider.
func (r *Ring) RowCount() int { return r.length }

// Total returns the number of rows ever appended.
func (r *Ring) Total() uint64 { return r.total }

// Base returns the global sequence number of insertion-order index 0.
func (r *Ring) Base() uint64 { return r.total - uint64(r.length) }

// SetTracer installs (or clears) the address tracer.
func (r *Ring) SetTracer(t replay.Tracer) { r.tracer = t }

// Append copies one packed row into the ring, evicting the oldest row once
// full.
func (r *Ring) Append(row []float64) {
	stride := r.layout.Stride()
	if len(row) != stride {
		panic(fmt.Sprintf("expstore: Append row of %d floats, want %d", len(row), stride))
	}
	slot := (r.start + r.length) % r.cap
	copy(r.data[slot*stride:(slot+1)*stride], row)
	if r.length < r.cap {
		r.length++
	} else {
		r.start = (r.start + 1) % r.cap
	}
	r.total++
}

// AppendRow implements Provider.
func (r *Ring) AppendRow(row []float64) error {
	r.Append(row)
	return nil
}

// Flush implements Provider; an in-memory ring has nothing to publish.
func (r *Ring) Flush() error { return nil }

// Row returns the packed row at insertion-order index i (aliasing the
// ring's storage; valid until the next Append evicts it).
func (r *Ring) Row(i int) []float64 {
	if i < 0 || i >= r.length {
		panic(fmt.Sprintf("expstore: Row index %d outside [0,%d)", i, r.length))
	}
	stride := r.layout.Stride()
	slot := (r.start + i) % r.cap
	return r.data[slot*stride : (slot+1)*stride]
}

// GatherPacked copies the rows at the given insertion-order indices into
// dst, emitting one address-trace access per row. dst must hold
// len(indices)·Stride() float64s.
func (r *Ring) GatherPacked(indices []int, dst []float64) {
	stride := r.layout.Stride()
	if len(dst) < len(indices)*stride {
		panic(fmt.Sprintf("expstore: GatherPacked dst %d floats for %d rows of %d", len(dst), len(indices), stride))
	}
	for rowN, idx := range indices {
		if idx < 0 || idx >= r.length {
			panic(fmt.Sprintf("expstore: gather index %d outside [0,%d)", idx, r.length))
		}
		slot := (r.start + idx) % r.cap
		if r.tracer != nil {
			r.tracer.Access(ringTraceBase+uint64(slot*stride*8), stride*8)
		}
		copy(dst[rowN*stride:(rowN+1)*stride], r.data[slot*stride:(slot+1)*stride])
	}
}

// GatherEncodeLE copies the rows at the given insertion-order indices
// straight into dst as little-endian float64 bytes — the experience
// server's zero-copy response path: one memmove per row from ring storage
// into the pooled response buffer, no intermediate []float64. dst must hold
// len(indices)·Stride()·8 bytes. Emits the same address-trace accesses as
// GatherPacked.
func (r *Ring) GatherEncodeLE(indices []int, dst []byte) {
	stride := r.layout.Stride()
	rowBytes := stride * 8
	if len(dst) < len(indices)*rowBytes {
		panic(fmt.Sprintf("expstore: GatherEncodeLE dst %d bytes for %d rows of %d bytes", len(dst), len(indices), rowBytes))
	}
	for rowN, idx := range indices {
		if idx < 0 || idx >= r.length {
			panic(fmt.Sprintf("expstore: gather index %d outside [0,%d)", idx, r.length))
		}
		slot := (r.start + idx) % r.cap
		if r.tracer != nil {
			r.tracer.Access(ringTraceBase+uint64(slot*rowBytes), rowBytes)
		}
		f64le.Put(dst[rowN*rowBytes:(rowN+1)*rowBytes], r.data[slot*stride:(slot+1)*stride])
	}
}

// SamplePacked selects n rows with plan seeded by seed and copies them into
// rows (n·Stride() floats), recording the chosen insertion-order indices in
// idx (length n). This is the one-call sampling path the experience server
// executes under a single read lock, so index selection and gather see a
// consistent store.
func (r *Ring) SamplePacked(plan replay.SamplePlan, n int, seed int64, idx []int, rows []float64) error {
	if len(idx) != n {
		return fmt.Errorf("expstore: SamplePacked idx len %d, want %d", len(idx), n)
	}
	if err := plan.FillIndices(idx, r.length, seed); err != nil {
		return err
	}
	r.GatherPacked(idx, rows)
	return nil
}
