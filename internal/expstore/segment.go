package expstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"marlperf/internal/replay"
)

// Segment file format (little-endian), one file per SegmentRows records:
//
//	header: magic "MXPK" | u32 version | u32 numAgents | u32 actDim |
//	        per-agent u32 obsDim | u64 baseSeq | u32 CRC32-IEEE(header)
//	record: u32 payloadLen | u64 seq | stride×f64 row | u32 CRC32-IEEE(frame)
//
// payloadLen is fixed for a given layout (8 + stride·8), which doubles as a
// cheap plausibility check before the CRC. The record CRC covers the length
// prefix and payload, so a torn or bit-flipped frame — including a torn
// length prefix — fails verification. seq is the row's global insertion
// index; record k of a segment must carry seq = baseSeq+k, making any
// reordering or splice detectable.

const (
	segMagic   = "MXPK"
	segVersion = 1
	// segSuffix names pack files; the 12-digit decimal base sequence keeps
	// lexical order equal to append order.
	segPattern = "seg-%012d.xpk"
)

// errTornHeader marks a segment whose header never finished reaching disk —
// legitimate only for the newest segment, where the crash window between
// file creation and the first flush can leave a short or damaged prefix.
var errTornHeader = errors.New("expstore: torn segment header")

// segHeaderSize returns the encoded header length for a layout.
func segHeaderSize(layout replay.RowLayout) int {
	return 4 + 4 + 4 + 4 + 4*layout.Spec().NumAgents + 8 + 4
}

// recordSize returns the full on-disk frame length for one record.
func recordSize(layout replay.RowLayout) int {
	return 4 + recordPayloadLen(layout) + 4
}

// recordPayloadLen returns the payload byte count (seq + packed row).
func recordPayloadLen(layout replay.RowLayout) int {
	return 8 + 8*layout.Stride()
}

// appendSegmentHeader encodes the segment header for baseSeq into dst.
func appendSegmentHeader(dst []byte, layout replay.RowLayout, baseSeq uint64) []byte {
	start := len(dst)
	spec := layout.Spec()
	dst = append(dst, segMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, segVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(spec.NumAgents))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(spec.ActDim))
	for _, od := range spec.ObsDims {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(od))
	}
	dst = binary.LittleEndian.AppendUint64(dst, baseSeq)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// appendRecord encodes one CRC-framed record into dst.
func appendRecord(dst []byte, layout replay.RowLayout, seq uint64, row []float64) []byte {
	if len(row) != layout.Stride() {
		panic(fmt.Sprintf("expstore: appendRecord row of %d floats, want %d", len(row), layout.Stride()))
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(recordPayloadLen(layout)))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	for _, v := range row {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// parseSegment decodes a full segment image. It returns the header base
// sequence, the decoded rows packed back-to-back (n rows of layout.Stride()
// floats), and goodOff, the byte offset just past the last intact record.
//
// With tornOK (the newest segment, where a crash may have cut the file
// mid-frame) a damaged or short tail simply ends the scan: everything before
// it is returned and goodOff marks where the file should be truncated. A
// header that fails verification returns errTornHeader. Without tornOK any
// damage is corruption and errors out — interior segments were sealed and
// fully flushed, so nothing may be missing from them.
func parseSegment(data []byte, layout replay.RowLayout, tornOK bool) (baseSeq uint64, rows []float64, n int, goodOff int, err error) {
	spec := layout.Spec()
	hs := segHeaderSize(layout)
	if len(data) < hs {
		if tornOK {
			return 0, nil, 0, 0, errTornHeader
		}
		return 0, nil, 0, 0, fmt.Errorf("expstore: segment shorter than header (%d < %d bytes)", len(data), hs)
	}
	hdr := data[:hs]
	if string(hdr[:4]) != segMagic {
		return 0, nil, 0, 0, fmt.Errorf("expstore: bad segment magic %q", hdr[:4])
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != segVersion {
		return 0, nil, 0, 0, fmt.Errorf("expstore: segment version %d, want %d", got, segVersion)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != uint32(spec.NumAgents) {
		return 0, nil, 0, 0, fmt.Errorf("expstore: segment for %d agents, store has %d", got, spec.NumAgents)
	}
	if got := binary.LittleEndian.Uint32(hdr[12:]); got != uint32(spec.ActDim) {
		return 0, nil, 0, 0, fmt.Errorf("expstore: segment act dim %d, store has %d", got, spec.ActDim)
	}
	for a, od := range spec.ObsDims {
		if got := binary.LittleEndian.Uint32(hdr[16+4*a:]); got != uint32(od) {
			return 0, nil, 0, 0, fmt.Errorf("expstore: segment obs dim %d for agent %d, store has %d", got, a, od)
		}
	}
	seqOff := 16 + 4*spec.NumAgents
	baseSeq = binary.LittleEndian.Uint64(hdr[seqOff:])
	wantSum := binary.LittleEndian.Uint32(hdr[hs-4:])
	if crc32.ChecksumIEEE(hdr[:hs-4]) != wantSum {
		if tornOK {
			return 0, nil, 0, 0, errTornHeader
		}
		return 0, nil, 0, 0, fmt.Errorf("expstore: segment header checksum mismatch")
	}

	stride := layout.Stride()
	frame := recordSize(layout)
	payload := recordPayloadLen(layout)
	off := hs
	for off < len(data) {
		if len(data)-off < frame {
			break // torn tail: partial frame
		}
		rec := data[off : off+frame]
		if got := binary.LittleEndian.Uint32(rec); got != uint32(payload) {
			break // torn or foreign frame
		}
		wantSum := binary.LittleEndian.Uint32(rec[frame-4:])
		if crc32.ChecksumIEEE(rec[:frame-4]) != wantSum {
			break // damaged frame
		}
		seq := binary.LittleEndian.Uint64(rec[4:])
		if seq != baseSeq+uint64(n) {
			return baseSeq, nil, 0, 0, fmt.Errorf("expstore: segment record %d carries seq %d, want %d", n, seq, baseSeq+uint64(n))
		}
		rows = append(rows, make([]float64, 0, stride)...)
		for i := 0; i < stride; i++ {
			rows = append(rows, math.Float64frombits(binary.LittleEndian.Uint64(rec[12+8*i:])))
		}
		n++
		off += frame
	}
	if off != len(data) && !tornOK {
		return baseSeq, nil, 0, 0, fmt.Errorf("expstore: sealed segment damaged at byte %d of %d", off, len(data))
	}
	return baseSeq, rows, n, off, nil
}
