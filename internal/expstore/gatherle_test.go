package expstore

import (
	"math"
	"math/rand"
	"testing"

	"marlperf/internal/f64le"
)

// GatherEncodeLE is GatherPacked fused with the wire encode: the bytes it
// writes must decode to exactly the floats GatherPacked gathers, for any
// index set, including after the ring wraps.
func TestGatherEncodeLEMatchesGatherPacked(t *testing.T) {
	spec := testSpec(64)
	ring := NewRing(spec)
	stride := ring.Layout().Stride()
	rng := rand.New(rand.NewSource(5))
	row := make([]float64, stride)
	for seq := 0; seq < 100; seq++ { // wraps the 64-row window
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		row[0] = math.NaN() // bit-exactness must survive non-finite values
		ring.Append(row)
	}

	idx := make([]int, 32)
	for i := range idx {
		idx[i] = rng.Intn(ring.Len())
	}
	packed := make([]float64, len(idx)*stride)
	ring.GatherPacked(idx, packed)

	encoded := make([]byte, len(idx)*stride*8)
	ring.GatherEncodeLE(idx, encoded)
	decoded := make([]float64, len(idx)*stride)
	f64le.Get(decoded, encoded)
	for i := range packed {
		if math.Float64bits(decoded[i]) != math.Float64bits(packed[i]) {
			t.Fatalf("float %d: encoded path %x, packed path %x", i, math.Float64bits(decoded[i]), math.Float64bits(packed[i]))
		}
	}
}

// The Store wrapper must agree with the ring it guards.
func TestStoreGatherEncodeLE(t *testing.T) {
	spec := testSpec(32)
	s, err := Open(t.TempDir(), spec, Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendSeqs(t, s, 0, 20)

	stride := s.Layout().Stride()
	idx := []int{0, 7, 19, 3}
	encoded := make([]byte, len(idx)*stride*8)
	s.GatherEncodeLE(idx, encoded)
	decoded := make([]float64, len(idx)*stride)
	f64le.Get(decoded, encoded)
	for i, ix := range idx {
		want := rowForSeq(s.Layout(), uint64(ix))
		got := decoded[i*stride : (i+1)*stride]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d (store idx %d) float %d = %v, want %v", i, ix, j, got[j], want[j])
			}
		}
	}
}
