package expstore

import (
	"testing"

	"marlperf/internal/replay"
)

// FuzzParseSegment hammers the segment decoder with mutated images, in both
// sealed (strict) and newest-segment (torn-tolerant) modes. The decoder
// guards every recovery path, so it must never panic, never over-read, and
// any accepted prefix must satisfy the format invariants.
func FuzzParseSegment(f *testing.F) {
	spec := replay.Spec{NumAgents: 2, ObsDims: []int{3, 4}, ActDim: 2, Capacity: 16}
	layout := replay.NewRowLayout(spec)

	valid := appendSegmentHeader(nil, layout, 7)
	for seq := uint64(7); seq < 12; seq++ {
		valid = appendRecord(valid, layout, seq, rowForSeq(layout, seq))
	}
	f.Add(valid, true)
	f.Add(valid, false)
	f.Add([]byte{}, true)
	f.Add([]byte("MXPK"), true)
	f.Add(append([]byte(nil), valid[:len(valid)/2]...), true)  // torn mid-record
	f.Add(append([]byte(nil), valid[:len(valid)/2]...), false) // same, sealed
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-10] ^= 0x04 // damage the last record
	f.Add(mutated, true)
	mutated2 := append([]byte(nil), valid...)
	mutated2[10] ^= 0xFF // damage the header
	f.Add(mutated2, false)

	f.Fuzz(func(t *testing.T, data []byte, tornOK bool) {
		base, rows, n, goodOff, err := parseSegment(data, layout, tornOK)
		if err != nil {
			return
		}
		stride := layout.Stride()
		if len(rows) != n*stride {
			t.Fatalf("parsed %d rows but %d floats (stride %d)", n, len(rows), stride)
		}
		if goodOff < segHeaderSize(layout) || goodOff > len(data) {
			t.Fatalf("goodOff %d outside [%d,%d]", goodOff, segHeaderSize(layout), len(data))
		}
		if !tornOK && goodOff != len(data) {
			t.Fatalf("sealed parse accepted a torn tail: goodOff %d of %d", goodOff, len(data))
		}
		if wantRows := (goodOff - segHeaderSize(layout)) / recordSize(layout); wantRows != n {
			t.Fatalf("goodOff %d implies %d records, decoder returned %d", goodOff, wantRows, n)
		}
		_ = base
	})
}
