package netretry

import (
	"sync"
	"time"

	"marlperf/internal/telemetry"
)

// BreakerState is the circuit breaker's three-state machine.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// allowed through. Its outcome closes or re-opens the circuit.
	BreakerHalfOpen
	// BreakerOpen: the edge is considered down; requests either wait for
	// the next probe slot or (fail-fast) are rejected locally.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// Breaker is a per-edge three-state circuit breaker. Consecutive contact
// failures (transport errors, 5xx) open it; a 429 counts as contact and
// resets the streak. While open, at most one probe per cooldown interval
// reaches the peer; a probe success closes the circuit, a probe failure
// re-arms the cooldown. All methods are safe for concurrent use, and all
// methods on a nil *Breaker are inert.
type Breaker struct {
	mu        sync.Mutex
	threshold int // <0: disabled
	cooldown  time.Duration
	now       func() time.Time
	state     BreakerState
	fails     int
	openedAt  time.Time
	probing   bool

	stateG  *telemetry.Gauge
	openedC *telemetry.Counter
}

// NewBreaker builds a breaker opening after threshold consecutive failures
// (0 = DefaultBreakerThreshold, negative disables) with the given probe
// cooldown, exporting marl_circuit_state / marl_circuit_open_total for
// edge on reg.
func NewBreaker(threshold int, cooldown time.Duration, reg *telemetry.Registry, edge string) *Breaker {
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultMaxDelay
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_circuit_state", "Circuit breaker state per edge: 0 closed, 1 half-open, 2 open.")
	reg.SetHelp("marl_circuit_open_total", "Times the circuit breaker opened, per edge.")
	b := &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		stateG:    reg.Gauge("marl_circuit_state", "edge", edge),
		openedC:   reg.Counter("marl_circuit_open_total", "edge", edge),
	}
	b.stateG.Set(float64(BreakerClosed))
	return b
}

func (b *Breaker) disabled() bool { return b == nil || b.threshold < 0 }

// Allow reports whether a request may proceed now. When it may not, it
// returns how long to wait before the next probe slot.
func (b *Breaker) Allow() (wait time.Duration, ok bool) {
	if b.disabled() {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return 0, true
	case BreakerOpen:
		if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
			return wait, false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return 0, true
	default: // half-open
		if b.probing {
			return b.cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// Success records a contact with the peer (any definitive answer,
// including backpressure): the failure streak resets and an open or
// half-open circuit closes.
func (b *Breaker) Success() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure records a failed contact. The threshold-th consecutive failure
// (or any half-open probe failure) opens the circuit and arms the
// cooldown.
func (b *Breaker) Failure() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch {
	case b.state == BreakerHalfOpen:
		b.openedAt = b.now()
		b.probing = false
		b.setState(BreakerOpen)
		b.openedC.Inc()
	case b.state == BreakerClosed && b.fails >= b.threshold:
		b.openedAt = b.now()
		b.probing = false
		b.setState(BreakerOpen)
		b.openedC.Inc()
	case b.state == BreakerOpen:
		// A failure that raced the open transition; re-arm the cooldown.
		b.openedAt = b.now()
		b.probing = false
	}
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState {
	if b.disabled() {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.stateG.Set(float64(s))
}

func (b *Breaker) setClock(now func() time.Time) {
	if b.disabled() || now == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}
