package netretry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ProbeHealth performs one GET <base>/healthz with its own timeout and
// returns nil iff the service answered 200.
func ProbeHealth(baseURL string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(NormalizeBase(baseURL) + "/healthz")
	if err != nil {
		return fmt.Errorf("netretry: health probe: %w", err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("netretry: health probe: %s answered %d", baseURL, resp.StatusCode)
	}
	return nil
}

// WaitHealthy polls ProbeHealth every interval until the service answers
// 200 or ctx is done, returning the last probe error in the latter case.
func WaitHealthy(ctx context.Context, baseURL string, interval, probeTimeout time.Duration) error {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var last error
	for {
		if last = ProbeHealth(baseURL, probeTimeout); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("netretry: %s never became healthy: %w (last probe: %v)", baseURL, ctx.Err(), last)
		case <-time.After(interval):
		}
	}
}
