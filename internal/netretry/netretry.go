// Package netretry is the single resilience layer shared by every
// networked client in the system. It owns the retry loop that used to be
// duplicated (with drift) in expserve.Client and policysync.Client:
// jittered exponential backoff, a per-attempt timeout plus a total
// retry-deadline budget, a three-state circuit breaker per edge, and
// /healthz readiness probes. Retry and breaker activity is exported as
// marl_retry_total / marl_retry_giveup_total / marl_circuit_state /
// marl_circuit_open_total on a caller-supplied telemetry registry, so an
// operator can see exactly which edge is flapping from /metrics.
//
// The jitter stream is seed-driven: the same JitterSeed yields the same
// backoff schedule, which is what makes outage tests reproducible. Both
// the clock and the sleep function are injectable, so backoff tests run
// without real sleeps.
package netretry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"marlperf/internal/telemetry"
)

// Defaults applied by New for zero Options fields.
const (
	DefaultTimeout          = 10 * time.Second
	DefaultAttempts         = 4
	DefaultBaseDelay        = 50 * time.Millisecond
	DefaultMaxDelay         = 2 * time.Second
	DefaultBreakerThreshold = 6
)

// maxBodyBytes bounds how much of a response body a client will buffer.
const maxBodyBytes = 256 << 20

// Options configures a resilient HTTP client for one edge.
type Options struct {
	// Timeout bounds each individual attempt.
	Timeout time.Duration
	// Attempts is the maximum number of tries per request (not counting
	// waits for a circuit-breaker probe slot, which consume no attempt).
	Attempts int
	// BaseDelay is the first backoff delay; it doubles per retry up to
	// MaxDelay, with +0..50% jitter drawn from JitterSeed.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// JitterSeed seeds the backoff jitter stream; 0 derives one from the
	// clock. A fixed seed makes the retry schedule reproducible.
	JitterSeed int64
	// TotalDeadline, when positive, bounds the whole retry loop: a sleep
	// that would overrun it is never started and the last error returns.
	TotalDeadline time.Duration
	// BreakerThreshold is how many consecutive contact failures open the
	// circuit (0 = DefaultBreakerThreshold, negative disables the breaker).
	// A 429 is backpressure, not an outage: it counts as contact.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe interval
	// (0 = MaxDelay).
	BreakerCooldown time.Duration
	// Edge labels this client's metrics (marl_retry_total{edge=...});
	// empty means "default".
	Edge string
	// Registry receives retry/circuit metrics; nil uses a private one.
	Registry *telemetry.Registry
	// Transport overrides the HTTP transport (fault injectors hook here).
	Transport http.RoundTripper
}

func (o *Options) fill() {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Attempts <= 0 {
		o.Attempts = DefaultAttempts
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = DefaultBaseDelay
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = time.Now().UnixNano()
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = o.MaxDelay
	}
	if o.Edge == "" {
		o.Edge = "default"
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
}

// Request is one logical HTTP exchange, retried as a unit.
type Request struct {
	Method      string // default GET
	Path        string // appended to the client base URL
	ContentType string
	Body        []byte
	Header      http.Header
	// ExtraTimeout widens this request's per-attempt timeout beyond the
	// client default (long-polls declare their wait here).
	ExtraTimeout time.Duration
	// FailFast returns ErrCircuitOpen immediately while the breaker is
	// open instead of sleeping until the next probe slot. Callers with a
	// local fallback (the actor's spool) use this to shed load off a dead
	// peer without stalling.
	FailFast bool
	// Scratch, when non-nil, receives the response body in place of a
	// fresh allocation whenever the server declares a Content-Length that
	// fits (growing it once when it does not). The returned Response.Body
	// then aliases Scratch (or its replacement), and the caller owns the
	// buffer again the moment Do returns — the contract that lets the
	// sample hot path recycle multi-megabyte reply buffers through a pool
	// instead of re-growing them per request.
	Scratch []byte
}

// Response is the first non-retryable answer the server gave. Callers see
// every status except 429/5xx, which are retried and surface as errors
// once attempts are exhausted.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// ErrCircuitOpen is returned (wrapped) by fail-fast requests while the
// edge's circuit breaker is open.
var ErrCircuitOpen = errors.New("netretry: circuit open")

// outageError marks errors that mean "the peer is unreachable or
// persistently failing" — transport faults, exhausted retries on 5xx/429,
// a blown total deadline, an open circuit — as opposed to a definitive
// server answer or a caller-side context cancellation.
type outageError struct{ err error }

func (e *outageError) Error() string { return e.err.Error() }
func (e *outageError) Unwrap() error { return e.err }

func markOutage(err error) error { return &outageError{err: err} }

// Outage reports whether err indicates the peer is down/unreachable (and a
// degraded-mode fallback such as spooling is appropriate) rather than a
// definitive rejection or a local cancellation.
func Outage(err error) bool {
	var oe *outageError
	return errors.As(err, &oe)
}

// Retryable reports whether an HTTP status is worth retrying: 429
// (backpressure) and all 5xx.
func Retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// Client issues requests against one base URL with unified retry, backoff
// and circuit-breaking. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	opts    Options
	breaker *Breaker

	mu  sync.Mutex
	rng *rand.Rand

	now   func() time.Time
	sleep func(time.Duration)

	retries  *telemetry.Counter
	giveups  *telemetry.Counter
	failfast *telemetry.Counter
}

// New builds a client for baseURL (scheme optional; http:// is assumed).
func New(baseURL string, opts Options) *Client {
	opts.fill()
	reg := opts.Registry
	reg.SetHelp("marl_retry_total", "Retries (sleeps before re-attempt) per edge.")
	reg.SetHelp("marl_retry_giveup_total", "Requests abandoned after exhausting attempts or the total retry deadline, per edge.")
	reg.SetHelp("marl_circuit_failfast_total", "Fail-fast requests rejected locally while the circuit was open, per edge.")
	c := &Client{
		base:     NormalizeBase(baseURL),
		hc:       &http.Client{Transport: opts.Transport},
		opts:     opts,
		breaker:  NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, reg, opts.Edge),
		rng:      rand.New(rand.NewSource(opts.JitterSeed)),
		now:      time.Now,
		sleep:    time.Sleep,
		retries:  reg.Counter("marl_retry_total", "edge", opts.Edge),
		giveups:  reg.Counter("marl_retry_giveup_total", "edge", opts.Edge),
		failfast: reg.Counter("marl_circuit_failfast_total", "edge", opts.Edge),
	}
	return c
}

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

// Breaker exposes the edge's circuit breaker (for state inspection).
func (c *Client) Breaker() *Breaker { return c.breaker }

// SetClock injects a clock and/or sleep function for tests; nil arguments
// leave the current function in place. The breaker shares the clock.
func (c *Client) SetClock(now func() time.Time, sleep func(time.Duration)) {
	if now != nil {
		c.now = now
		c.breaker.setClock(now)
	}
	if sleep != nil {
		c.sleep = sleep
	}
}

// Do runs one request through the retry loop. It returns the first
// non-retryable response (whatever its status), or an error once attempts
// or the total deadline are exhausted. Errors from exhausted retries,
// transport faults and open circuits satisfy Outage; context cancellation
// and non-retryable statuses do not.
func (c *Client) Do(ctx context.Context, req Request) (Response, error) {
	if req.Method == "" {
		req.Method = http.MethodGet
	}
	var lastErr error
	delay := c.opts.BaseDelay
	var deadline time.Time
	if c.opts.TotalDeadline > 0 {
		deadline = c.now().Add(c.opts.TotalDeadline)
	}
	for attempt := 1; ; {
		if wait, ok := c.breaker.Allow(); !ok {
			open := fmt.Errorf("%w on edge %q", ErrCircuitOpen, c.opts.Edge)
			if lastErr != nil {
				open = fmt.Errorf("%w on edge %q (last failure: %v)", ErrCircuitOpen, c.opts.Edge, lastErr)
			}
			if req.FailFast {
				c.failfast.Inc()
				return Response{}, markOutage(open)
			}
			if wait <= 0 {
				wait = time.Millisecond
			}
			if !deadline.IsZero() && c.now().Add(wait).After(deadline) {
				c.giveups.Inc()
				return Response{}, markOutage(fmt.Errorf("netretry: %s: total retry deadline %v exhausted waiting out an open circuit: %w",
					req.Path, c.opts.TotalDeadline, open))
			}
			if err := ctx.Err(); err != nil {
				return Response{}, err
			}
			// Waiting for a probe slot consumes no attempt: a client that
			// rides out an outage keeps its attempt budget for real tries.
			c.sleep(wait)
			continue
		}

		status, hdr, body, err := c.attempt(ctx, req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return Response{}, ctx.Err()
			}
			c.breaker.Failure()
			lastErr = fmt.Errorf("netretry: %s: %w", req.Path, err)
		case Retryable(status):
			if status == http.StatusTooManyRequests {
				// Backpressure is contact, not an outage.
				c.breaker.Success()
			} else {
				c.breaker.Failure()
			}
			lastErr = fmt.Errorf("netretry: %s: server answered %d: %s",
				req.Path, status, strings.TrimSpace(string(body)))
		default:
			c.breaker.Success()
			return Response{Status: status, Header: hdr, Body: body}, nil
		}

		if attempt >= c.opts.Attempts {
			c.giveups.Inc()
			return Response{}, markOutage(lastErr)
		}
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		c.mu.Lock()
		jittered := delay + time.Duration(c.rng.Int63n(int64(delay)/2+1))
		c.mu.Unlock()
		if !deadline.IsZero() && c.now().Add(jittered).After(deadline) {
			// Never start a sleep that would overrun the budget.
			c.giveups.Inc()
			return Response{}, markOutage(fmt.Errorf("netretry: %s: total retry deadline %v exhausted after %d attempts: %w",
				req.Path, c.opts.TotalDeadline, attempt, lastErr))
		}
		c.retries.Inc()
		c.sleep(jittered)
		delay *= 2
		if delay > c.opts.MaxDelay {
			delay = c.opts.MaxDelay
		}
		attempt++
	}
}

// attempt performs a single HTTP exchange under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, req Request) (int, http.Header, []byte, error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.opts.Timeout+req.ExtraTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(reqCtx, req.Method, c.base+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		return 0, nil, nil, err
	}
	if req.ContentType != "" {
		hreq.Header.Set("Content-Type", req.ContentType)
	}
	for k, vs := range req.Header {
		for _, v := range vs {
			hreq.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	// With a declared length and caller scratch, read straight into the
	// recycled buffer: no ReadAll growth copies, one allocation only when
	// the scratch has never been this large.
	if n := resp.ContentLength; req.Scratch != nil && n >= 0 && n <= maxBodyBytes {
		buf := req.Scratch
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return 0, nil, nil, fmt.Errorf("reading response: %w", err)
		}
		return resp.StatusCode, resp.Header, buf, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, body, nil
}

// NormalizeBase returns baseURL with an http:// scheme (added when absent)
// and no trailing slash.
func NormalizeBase(baseURL string) string {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return strings.TrimRight(baseURL, "/")
}
