package netretry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"marlperf/internal/telemetry"
)

// fakeClock advances only when the client sleeps, so backoff tests run in
// zero wall time while still exercising deadline arithmetic.
type fakeClock struct {
	t     time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (f *fakeClock) now() time.Time { return f.t }
func (f *fakeClock) sleep(d time.Duration) {
	f.slept = append(f.slept, d)
	f.t = f.t.Add(d)
}

// scriptRT answers the i-th request with script[min(i, len-1)]. A negative
// status means a transport error.
type scriptRT struct {
	script []int
	calls  int
}

func (s *scriptRT) RoundTrip(r *http.Request) (*http.Response, error) {
	i := s.calls
	s.calls++
	if i >= len(s.script) {
		i = len(s.script) - 1
	}
	status := s.script[i]
	if status < 0 {
		return nil, errors.New("injected transport error")
	}
	return &http.Response{
		StatusCode: status,
		Body:       io.NopCloser(strings.NewReader(fmt.Sprintf("status %d", status))),
		Header:     make(http.Header),
	}, nil
}

func testClient(t *testing.T, opts Options, rt http.RoundTripper) (*Client, *fakeClock) {
	t.Helper()
	opts.Transport = rt
	c := New("127.0.0.1:1", opts)
	clk := newFakeClock()
	c.SetClock(clk.now, clk.sleep)
	return c, clk
}

func TestBackoffScheduleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		c, clk := testClient(t, Options{
			Attempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
			JitterSeed: seed, BreakerThreshold: -1,
		}, &scriptRT{script: []int{503}})
		if _, err := c.Do(context.Background(), Request{Path: "/x"}); err == nil {
			t.Fatal("expected failure against an all-503 server")
		}
		return clk.slept
	}
	a, b := run(42), run(42)
	if len(a) != 7 {
		t.Fatalf("8 attempts should sleep 7 times, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := run(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jitter schedule")
	}
}

func TestBackoffBoundsAndCap(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	c, clk := testClient(t, Options{
		Attempts: 10, BaseDelay: base, MaxDelay: cap,
		JitterSeed: 7, BreakerThreshold: -1,
	}, &scriptRT{script: []int{503}})
	c.Do(context.Background(), Request{Path: "/x"})
	want := base
	for i, d := range clk.slept {
		lo, hi := want, want+want/2
		if d < lo || d > hi {
			t.Fatalf("retry %d slept %v, want within [%v, %v]", i, d, lo, hi)
		}
		want *= 2
		if want > cap {
			want = cap
		}
	}
}

func TestTotalDeadlineNeverExceeded(t *testing.T) {
	cases := []struct {
		name     string
		deadline time.Duration
		attempts int
	}{
		{"tight", 25 * time.Millisecond, 1000},
		{"medium", 200 * time.Millisecond, 1000},
		{"loose", 2 * time.Second, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, clk := testClient(t, Options{
				Attempts: tc.attempts, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
				JitterSeed: 11, TotalDeadline: tc.deadline, BreakerThreshold: -1,
			}, &scriptRT{script: []int{503}})
			start := clk.now()
			_, err := c.Do(context.Background(), Request{Path: "/x"})
			if err == nil {
				t.Fatal("expected deadline-exhausted failure")
			}
			if !strings.Contains(err.Error(), "total retry deadline") {
				t.Fatalf("error should name the total deadline, got: %v", err)
			}
			if !Outage(err) {
				t.Fatalf("deadline exhaustion should classify as an outage: %v", err)
			}
			if elapsed := clk.now().Sub(start); elapsed > tc.deadline {
				t.Fatalf("retry loop consumed %v, budget was %v", elapsed, tc.deadline)
			}
		})
	}
}

func TestNoDeadlineMessageWithoutBudget(t *testing.T) {
	c, _ := testClient(t, Options{
		Attempts: 3, BaseDelay: time.Millisecond, JitterSeed: 5, BreakerThreshold: -1,
	}, &scriptRT{script: []int{503}})
	_, err := c.Do(context.Background(), Request{Path: "/x"})
	if err == nil || strings.Contains(err.Error(), "total retry deadline") {
		t.Fatalf("attempt-exhausted error should not mention a deadline: %v", err)
	}
	if !Outage(err) {
		t.Fatalf("exhausted retries should classify as an outage: %v", err)
	}
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	rt := &scriptRT{script: []int{503, -1, 429, 200}}
	c, clk := testClient(t, Options{
		Attempts: 8, BaseDelay: time.Millisecond, JitterSeed: 3, BreakerThreshold: -1,
	}, rt)
	resp, err := c.Do(context.Background(), Request{Path: "/x"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d, want 200", resp.Status)
	}
	if rt.calls != 4 {
		t.Fatalf("transport saw %d calls, want 4", rt.calls)
	}
	if len(clk.slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(clk.slept))
	}
}

func TestNonRetryableStatusPassesThrough(t *testing.T) {
	rt := &scriptRT{script: []int{404}}
	c, clk := testClient(t, Options{Attempts: 5, BaseDelay: time.Millisecond, JitterSeed: 3}, rt)
	resp, err := c.Do(context.Background(), Request{Path: "/x"})
	if err != nil {
		t.Fatalf("a 404 is a definitive answer, not an error: %v", err)
	}
	if resp.Status != 404 || rt.calls != 1 || len(clk.slept) != 0 {
		t.Fatalf("404 should return immediately: status=%d calls=%d sleeps=%d",
			resp.Status, rt.calls, len(clk.slept))
	}
}

func TestContextCancelIsNotOutage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, _ := testClient(t, Options{Attempts: 5, BaseDelay: time.Millisecond, JitterSeed: 3}, &scriptRT{script: []int{503}})
	_, err := c.Do(ctx, Request{Path: "/x"})
	if err == nil {
		t.Fatal("expected error from cancelled context")
	}
	if Outage(err) {
		t.Fatalf("caller cancellation must not classify as a peer outage: %v", err)
	}
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	rt := &scriptRT{script: []int{-1}}
	c, clk := testClient(t, Options{
		Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		JitterSeed: 9, BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond,
		Edge: "test", Registry: reg,
	}, rt)

	if _, err := c.Do(context.Background(), Request{Path: "/x"}); err == nil {
		t.Fatal("expected failure")
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive failures breaker = %v, want open", got)
	}
	if g := reg.Gauge("marl_circuit_state", "edge", "test").Value(); g != float64(BreakerOpen) {
		t.Fatalf("marl_circuit_state = %v, want %v", g, float64(BreakerOpen))
	}

	// Fail-fast while open: rejected locally, no transport call, outage.
	calls := rt.calls
	_, err := c.Do(context.Background(), Request{Path: "/x", FailFast: true})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("fail-fast while open: err = %v, want ErrCircuitOpen", err)
	}
	if !Outage(err) {
		t.Fatal("open circuit should classify as an outage")
	}
	if rt.calls != calls {
		t.Fatalf("fail-fast reached the transport (%d calls, was %d)", rt.calls, calls)
	}

	// Ride-through: waits out the cooldown, probes, and the now-healthy
	// server closes the circuit.
	rt.script = []int{200}
	resp, err := c.Do(context.Background(), Request{Path: "/x"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("ride-through after recovery: resp=%+v err=%v", resp, err)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("after successful probe breaker = %v, want closed", got)
	}
	var waited time.Duration
	for _, d := range clk.slept {
		waited += d
	}
	if waited < 100*time.Millisecond {
		t.Fatalf("ride-through never waited out the cooldown (total sleeps %v)", waited)
	}
	if reg.Counter("marl_circuit_open_total", "edge", "test").Value() == 0 {
		t.Fatal("marl_circuit_open_total never incremented")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, 50*time.Millisecond, nil, "e")
	b.setClock(clk.now)
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker within cooldown should not allow")
	}
	clk.t = clk.t.Add(51 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("cooldown elapsed: probe slot should open")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("half-open admits exactly one probe")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure should reopen, state = %v", b.State())
	}
	clk.t = clk.t.Add(51 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("second probe slot should open after re-armed cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("probe success should close, state = %v", b.State())
	}
}

func Test429CountsAsContactNotOutage(t *testing.T) {
	c, _ := testClient(t, Options{
		Attempts: 4, BaseDelay: time.Millisecond, JitterSeed: 9, BreakerThreshold: 2,
	}, &scriptRT{script: []int{429}})
	if _, err := c.Do(context.Background(), Request{Path: "/x"}); err == nil {
		t.Fatal("expected exhausted-retries failure against an all-429 server")
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("429s tripped the breaker (state %v); backpressure is not an outage", got)
	}
}

func TestRetryMetricsExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, _ := testClient(t, Options{
		Attempts: 3, BaseDelay: time.Millisecond, JitterSeed: 9,
		BreakerThreshold: -1, Edge: "metrics", Registry: reg,
	}, &scriptRT{script: []int{503}})
	c.Do(context.Background(), Request{Path: "/x"})
	if got := reg.Counter("marl_retry_total", "edge", "metrics").Value(); got != 2 {
		t.Fatalf("marl_retry_total = %d, want 2", got)
	}
	if got := reg.Counter("marl_retry_giveup_total", "edge", "metrics").Value(); got != 1 {
		t.Fatalf("marl_retry_giveup_total = %d, want 1", got)
	}
}

func TestHealthProbes(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	if err := ProbeHealth(srv.URL, time.Second); err == nil {
		t.Fatal("probe should fail while unhealthy")
	}
	healthy.Store(true)
	if err := ProbeHealth(srv.URL, time.Second); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}

	healthy.Store(false)
	go func() {
		time.Sleep(30 * time.Millisecond)
		healthy.Store(true)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := WaitHealthy(ctx, srv.URL, 10*time.Millisecond, time.Second); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := WaitHealthy(ctx2, "127.0.0.1:1", 10*time.Millisecond, 20*time.Millisecond); err == nil {
		t.Fatal("WaitHealthy against a dead address should time out")
	}
}
