package f64le

import (
	"encoding/binary"
	"math"
	"testing"
)

func refBytes(f []float64) []byte {
	out := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func testVals() []float64 {
	return []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, math.MaxFloat64, math.Copysign(0, -1)}
}

func TestPutMatchesPortableEncoding(t *testing.T) {
	f := testVals()
	dst := make([]byte, 8*len(f))
	Put(dst, f)
	want := refBytes(f)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("byte %d: Put wrote %#x, portable encoding %#x", i, dst[i], want[i])
		}
	}
}

func TestGetRoundTripsBitExactly(t *testing.T) {
	f := testVals()
	enc := refBytes(f)
	got := make([]float64, len(f))
	Get(got, enc)
	for i := range f {
		if math.Float64bits(got[i]) != math.Float64bits(f[i]) {
			t.Fatalf("element %d: round trip %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(f[i]))
		}
	}
}

func TestFloatsViewAliasesOrNil(t *testing.T) {
	f := testVals()
	enc := refBytes(f)
	if v := Floats(enc); v != nil {
		for i := range f {
			if math.Float64bits(v[i]) != math.Float64bits(f[i]) {
				t.Fatalf("view element %d: %x, want %x", i, math.Float64bits(v[i]), math.Float64bits(f[i]))
			}
		}
	}
	// A misaligned or odd-length buffer must never yield a view.
	if v := Floats(enc[1:9]); v != nil {
		t.Fatal("misaligned buffer produced a reinterpreting view")
	}
	if v := Floats(enc[:7]); v != nil {
		t.Fatal("non-multiple-of-8 buffer produced a reinterpreting view")
	}
}

func TestEmptySlices(t *testing.T) {
	Put(nil, nil)
	Get(nil, nil)
	if Native {
		if b := Bytes([]float64{}); b == nil {
			t.Fatal("empty Bytes view is nil on a little-endian host")
		}
		if f := Floats([]byte{}); f == nil {
			t.Fatal("empty Floats view is nil on a little-endian host")
		}
	}
}
