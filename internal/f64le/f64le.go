// Package f64le converts between float64 slices and their little-endian
// byte representation — the encoding shared by the segment files and every
// bulk wire frame in the system. On little-endian hosts (every platform we
// run on in practice) the conversion is a reinterpreting view or a single
// memmove; on other hosts, or for misaligned buffers, it falls back to a
// portable per-element loop with identical bytes. Callers never need to
// know which path ran: the encoded form is little-endian either way, so
// frames are interchangeable across hosts.
//
// This is what makes the experience-sample wire path "zero-copy" in the
// useful sense: sampled rows move ring storage → response buffer → socket
// → client tensor with one memmove per hop and no intermediate
// float64-by-float64 marshal loop.
package f64le

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Native reports whether the host's in-memory float64 layout already is
// little-endian, i.e. whether reinterpreting views are legal.
var Native = func() bool {
	one := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&one)) == 0x02
}()

// aligned8 reports whether b's backing array starts on an 8-byte boundary
// (reinterpreting it as []float64 requires natural alignment).
func aligned8(b []byte) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0
}

// Bytes returns the little-endian byte view of f without copying, or nil
// when the host layout does not permit one (big-endian). An empty slice
// returns an empty view.
func Bytes(f []float64) []byte {
	if !Native {
		return nil
	}
	if len(f) == 0 {
		return []byte{}
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), len(f)*8)
}

// Floats returns the float64 view of the little-endian bytes in b without
// copying, or nil when a view is not possible (big-endian host, misaligned
// buffer, or len(b) not a multiple of 8). An empty input returns an empty
// view.
func Floats(b []byte) []float64 {
	if !Native || len(b)%8 != 0 {
		return nil
	}
	if len(b) == 0 {
		return []float64{}
	}
	if !aligned8(b) {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// Put encodes src into dst as little-endian bytes. dst must hold
// 8·len(src) bytes. One memmove on little-endian hosts.
func Put(dst []byte, src []float64) {
	if b := Bytes(src); b != nil {
		copy(dst, b)
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// Get decodes 8·len(dst) little-endian bytes from src into dst. One
// memmove on little-endian hosts.
func Get(dst []float64, src []byte) {
	if f := Floats(src[:len(dst)*8]); f != nil {
		copy(dst, f)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
