package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The paper runs network phases (action selection, target-Q, Q/P-loss
// backprop) on a GPU while the mini-batch sampling phase stays CPU-bound
// and single-threaded. To mirror that split on a CPU-only substrate, the
// dense kernels below fan large matmuls out across cores — playing the role
// of the parallel device — while the replay gather paths remain serial.

// parallelThreshold is the approximate multiply-add count below which
// splitting a matmul across goroutines costs more than it saves.
const parallelThreshold = 1 << 17

// coarseDepth counts how many coarse-grained parallel regions (per-agent
// update workers) are active. While non-zero, the row-parallel kernels run
// serially: the cores are already busy with one matmul per agent, and
// nesting goroutine fan-out inside them only adds scheduling overhead.
// Row ownership is identical either way, so results are bit-identical.
var coarseDepth atomic.Int64

// BeginCoarseParallel marks the start of a coarse-grained parallel region.
// Every call must be paired with EndCoarseParallel.
func BeginCoarseParallel() { coarseDepth.Add(1) }

// EndCoarseParallel marks the end of a coarse-grained parallel region.
func EndCoarseParallel() {
	if coarseDepth.Add(-1) < 0 {
		panic("tensor: EndCoarseParallel without matching Begin")
	}
}

// maxWorkers caps the worker count for one kernel invocation.
func maxWorkers(rows int) int {
	w := runtime.GOMAXPROCS(0)
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRows runs fn over [0, rows) split into contiguous chunks, one per
// worker. Each row is owned by exactly one worker, so results are
// deterministic.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	workers := maxWorkers(rows)
	if workers == 1 || flops < parallelThreshold || coarseDepth.Load() > 0 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulParallel computes dst = a × b like MatMul, fanning row blocks out
// across cores for large inputs. dst must not alias a or b.
func MatMulParallel(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		// Delegate to MatMul for its precise panic messages.
		return MatMul(dst, a, b)
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
			for k := 0; k < a.Cols; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					drow[j] += av * brow[j]
				}
			}
		}
	})
	return dst
}

// MatMulTransBParallel computes dst = a × bᵀ like MatMulTransB with row
// parallelism for large inputs.
func MatMulTransBParallel(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		return MatMulTransB(dst, a, b)
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var sum float64
				for k, av := range arow {
					sum += av * brow[k]
				}
				drow[j] = sum
			}
		}
	})
	return dst
}

// MatMulTransAParallel computes dst = aᵀ × b like MatMulTransA,
// parallelized over dst rows (columns of a) for large inputs.
func MatMulTransAParallel(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		return MatMulTransA(dst, a, b)
	}
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*a.Cols+i]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					drow[j] += av * brow[j]
				}
			}
		}
	})
	return dst
}
