package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	dst := []float64{1, 2, 3}
	AXPY(dst, 2, []float64{10, 20, 30})
	want := []float64{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", dst, want)
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	logits := []float64{1, 2, 3, 4, 5}
	out := make([]float64, 5)
	Softmax(out, logits)
	var sum float64
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax value %v outside (0,1)", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v, want 1", sum)
	}
	// Monotone: larger logit ⇒ larger probability.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("softmax not monotone at %d: %v", i, out)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := []float64{1000, 1001, 1002}
	out := make([]float64, 3)
	Softmax(out, logits)
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax produced %v on large logits", v)
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil, nil) // must not panic
}

// Property: softmax is invariant to adding a constant to all logits.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		logits := make([]float64, n)
		shifted := make([]float64, n)
		c := r.NormFloat64() * 10
		for i := range logits {
			logits[i] = r.NormFloat64() * 3
			shifted[i] = logits[i] + c
		}
		a := make([]float64, n)
		b := make([]float64, n)
		Softmax(a, logits)
		Softmax(b, shifted)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax([]float64{7, 7}); got != 0 {
		t.Fatalf("ArgMax ties = %d, want first index 0", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestClip(t *testing.T) {
	v := []float64{-2, 0.5, 3}
	Clip(v, -1, 1)
	want := []float64{-1, 0.5, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Clip = %v, want %v", v, want)
		}
	}
}
