// Package tensor provides the dense linear-algebra substrate used by the
// neural-network layers in this repository. Matrices are row-major float64
// with explicit dimensions; all operations are deterministic given a seeded
// *rand.Rand so experiments are reproducible.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero value is an empty (0x0) matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-filled rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix. The slice is used directly,
// not copied; len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Reshape returns m resized to rows×cols, reusing the backing array when it
// has capacity and allocating a fresh matrix otherwise (including m == nil).
// Contents are unspecified after a reshape; callers that need zeros must
// Zero() explicitly. This is the steady-state path for layers whose batch
// size varies call to call (e.g. a serving batcher coalescing a fluctuating
// number of requests): after the high-water mark, forwards allocate nothing.
func Reshape(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return New(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (shared storage) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)%v", m.Rows, m.Cols, m.Data)
}

// RandUniform fills m with samples from U[lo, hi).
func (m *Matrix) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = lo + (hi-lo)*rng.Float64()
	}
}

// RandNormal fills m with samples from N(mean, std²).
func (m *Matrix) RandNormal(rng *rand.Rand, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
}

// XavierInit fills m with the Glorot-uniform initialization for a layer with
// fanIn inputs and fanOut outputs, the scheme used by the paper's TF2 MLPs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.RandUniform(rng, -limit, limit)
}

// MatMul computes dst = a × b. dst must be a.Rows×b.Cols and must not alias
// a or b. It returns dst for chaining.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	// ikj loop order keeps the inner loop streaming over contiguous rows of
	// b and dst, which matters for the large joint-observation critics.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
	return dst
}

// MatMulTransA computes dst = aᵀ × b where a is stored untransposed.
// dst must be a.Cols×b.Cols.
func MatMulTransA(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA outer mismatch %dx%d ᵀ× %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
	return dst
}

// MatMulTransB computes dst = a × bᵀ where b is stored untransposed.
// dst must be a.Rows×b.Rows.
func MatMulTransB(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner mismatch %dx%d × %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
	return dst
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Matrix) *Matrix {
	assertSameShape("Add", a, b)
	assertSameShape("Add dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b *Matrix) *Matrix {
	assertSameShape("Sub", a, b)
	assertSameShape("Sub dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Mul computes dst = a ⊙ b (Hadamard product). dst may alias a or b.
func Mul(dst, a, b *Matrix) *Matrix {
	assertSameShape("Mul", a, b)
	assertSameShape("Mul dst", dst, a)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled performs m += s·other in place.
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	assertSameShape("AddScaled", m, other)
	for i := range m.Data {
		m.Data[i] += s * other.Data[i]
	}
}

// AddRowVector adds the 1×Cols row vector v to every row of m in place;
// this is the bias-broadcast used by dense layers.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Apply sets dst[i] = f(a[i]) for every element. dst may alias a.
func Apply(dst, a *Matrix, f func(float64) float64) *Matrix {
	assertSameShape("Apply", dst, a)
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
	return dst
}

// SumRows returns the 1×Cols column-wise sums of m (used for bias gradients).
func (m *Matrix) SumRows(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRows dst len %d want %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			dst[j] += row[j]
		}
	}
	return dst
}

// Sum returns the sum over all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean over all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// HStack concatenates the given matrices left-to-right into dst. All inputs
// must share the same row count and their column counts must sum to dst.Cols.
func HStack(dst *Matrix, parts ...*Matrix) *Matrix {
	total := 0
	for _, p := range parts {
		if p.Rows != dst.Rows {
			panic(fmt.Sprintf("tensor: HStack row mismatch %d vs %d", p.Rows, dst.Rows))
		}
		total += p.Cols
	}
	if total != dst.Cols {
		panic(fmt.Sprintf("tensor: HStack cols sum %d want %d", total, dst.Cols))
	}
	for i := 0; i < dst.Rows; i++ {
		drow := dst.Row(i)
		off := 0
		for _, p := range parts {
			copy(drow[off:off+p.Cols], p.Row(i))
			off += p.Cols
		}
	}
	return dst
}

// SliceCols copies columns [lo, hi) of src into dst (dst is src.Rows×(hi-lo)).
func SliceCols(dst, src *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > src.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", lo, hi, src.Cols))
	}
	if dst.Rows != src.Rows || dst.Cols != hi-lo {
		panic(fmt.Sprintf("tensor: SliceCols dst %dx%d want %dx%d", dst.Rows, dst.Cols, src.Rows, hi-lo))
	}
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
	return dst
}

// SetCols copies src into columns [lo, lo+src.Cols) of dst.
func SetCols(dst, src *Matrix, lo int) *Matrix {
	if lo < 0 || lo+src.Cols > dst.Cols {
		panic(fmt.Sprintf("tensor: SetCols [%d,%d) of %d cols", lo, lo+src.Cols, dst.Cols))
	}
	if dst.Rows != src.Rows {
		panic(fmt.Sprintf("tensor: SetCols row mismatch %d vs %d", dst.Rows, src.Rows))
	}
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i)[lo:lo+src.Cols], src.Row(i))
	}
	return dst
}

// ApproxEqual reports whether a and b have the same shape and all elements
// are within tol of each other.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
