package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceAndAtSet(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	m.Set(0, 1, 42)
	if got := m.At(0, 1); got != 42 {
		t.Fatalf("after Set, At(0,1) = %v, want 42", got)
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestRowIsView(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row should share storage with the matrix")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	src := FromSlice(2, 2, []float64{1, 2, 3, 4})
	dst := New(2, 2)
	dst.CopyFrom(src)
	if !ApproxEqual(dst, src, 0) {
		t.Fatalf("CopyFrom: got %v", dst.Data)
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched shape did not panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 2))
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(New(2, 2), a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	a.RandNormal(rng, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(New(4, 4), a, id)
	if !ApproxEqual(got, a, 1e-12) {
		t.Fatal("A × I should equal A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with inner mismatch did not panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 3)
	a.RandNormal(rng, 0, 1)
	b := New(5, 4)
	b.RandNormal(rng, 0, 1)

	// Explicit transpose of a.
	at := New(3, 5)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(New(3, 4), at, b)
	got := MatMulTransA(New(3, 4), a, b)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMulTransA mismatch: got %v want %v", got.Data, want.Data)
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 3)
	a.RandNormal(rng, 0, 1)
	b := New(5, 3)
	b.RandNormal(rng, 0, 1)

	bt := New(3, 5)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := MatMul(New(4, 5), a, bt)
	got := MatMulTransB(New(4, 5), a, b)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMulTransB mismatch: got %v want %v", got.Data, want.Data)
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	if got := Add(New(1, 3), a, b); !ApproxEqual(got, FromSlice(1, 3, []float64{11, 22, 33}), 0) {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(New(1, 3), b, a); !ApproxEqual(got, FromSlice(1, 3, []float64{9, 18, 27}), 0) {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := Mul(New(1, 3), a, b); !ApproxEqual(got, FromSlice(1, 3, []float64{10, 40, 90}), 0) {
		t.Fatalf("Mul = %v", got.Data)
	}
}

func TestAddAliasesDst(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{3, 4})
	Add(a, a, b)
	if !ApproxEqual(a, FromSlice(1, 2, []float64{4, 6}), 0) {
		t.Fatalf("aliased Add = %v", a.Data)
	}
}

func TestScaleAddScaled(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	if !ApproxEqual(m, FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatalf("Scale = %v", m.Data)
	}
	m.AddScaled(FromSlice(1, 3, []float64{1, 1, 1}), 0.5)
	if !ApproxEqual(m, FromSlice(1, 3, []float64{2.5, 4.5, 6.5}), 0) {
		t.Fatalf("AddScaled = %v", m.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVector([]float64{10, 20})
	want := FromSlice(2, 2, []float64{11, 22, 13, 24})
	if !ApproxEqual(m, want, 0) {
		t.Fatalf("AddRowVector = %v", m.Data)
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	Apply(m, m, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	})
	if !ApproxEqual(m, FromSlice(1, 3, []float64{0, 0, 2}), 0) {
		t.Fatalf("Apply = %v", m.Data)
	}
}

func TestSumRowsSumMean(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.SumRows(nil)
	want := []float64{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SumRows = %v, want %v", got, want)
		}
	}
	if m.Sum() != 21 {
		t.Fatalf("Sum = %v, want 21", m.Sum())
	}
	if m.Mean() != 3.5 {
		t.Fatalf("Mean = %v, want 3.5", m.Mean())
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := New(0, 0).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float64{-5, 3, 4, -2})
	if got := m.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
}

func TestHStackAndSliceCols(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 5, 6})
	b := FromSlice(2, 1, []float64{3, 7})
	c := FromSlice(2, 1, []float64{4, 8})
	dst := HStack(New(2, 4), a, b, c)
	want := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if !ApproxEqual(dst, want, 0) {
		t.Fatalf("HStack = %v", dst.Data)
	}
	mid := SliceCols(New(2, 2), dst, 1, 3)
	if !ApproxEqual(mid, FromSlice(2, 2, []float64{2, 3, 6, 7}), 0) {
		t.Fatalf("SliceCols = %v", mid.Data)
	}
}

func TestSetColsRoundTripsSliceCols(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	full := New(3, 6)
	full.RandNormal(rng, 0, 1)
	part := SliceCols(New(3, 2), full, 2, 4)
	out := full.Clone()
	out.Zero()
	SetCols(out, part, 2)
	back := SliceCols(New(3, 2), out, 2, 4)
	if !ApproxEqual(back, part, 0) {
		t.Fatal("SetCols/SliceCols did not round-trip")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(10, 10)
	m.XavierInit(rng, 64, 64)
	limit := math.Sqrt(6.0 / 128.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside [-%v, %v]", v, limit, limit)
		}
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier init produced all zeros")
	}
}

// Property: (A×B)×C == A×(B×C) within numerical tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := 2 + r.Intn(5)
		p := 2 + r.Intn(5)
		q := 2 + r.Intn(5)
		a := New(n, m)
		a.RandNormal(r, 0, 1)
		b := New(m, p)
		b.RandNormal(r, 0, 1)
		c := New(p, q)
		c.RandNormal(r, 0, 1)
		left := MatMul(New(n, q), MatMul(New(n, p), a, b), c)
		right := MatMul(New(n, q), a, MatMul(New(m, q), b, c))
		return ApproxEqual(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A×(B+C) == A×B + A×C.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := 1 + r.Intn(6)
		a := New(n, m)
		a.RandNormal(r, 0, 1)
		b := New(m, p)
		b.RandNormal(r, 0, 1)
		c := New(m, p)
		c.RandNormal(r, 0, 1)
		left := MatMul(New(n, p), a, Add(New(m, p), b, c))
		right := Add(New(n, p), MatMul(New(n, p), a, b), MatMul(New(n, p), a, c))
		return ApproxEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sub(Add(a,b),b) == a.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		a := New(rows, cols)
		a.RandNormal(r, 0, 10)
		b := New(rows, cols)
		b.RandNormal(r, 0, 10)
		sum := Add(New(rows, cols), a, b)
		back := Sub(New(rows, cols), sum, b)
		return ApproxEqual(back, a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
