package tensor

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// AXPY performs dst += s·src elementwise on equal-length slices.
func AXPY(dst []float64, s float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Softmax writes the softmax of logits into dst (which may alias logits)
// using the max-subtraction trick for numerical stability.
func Softmax(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("tensor: Softmax length mismatch %d vs %d", len(dst), len(logits)))
	}
	if len(logits) == 0 {
		return
	}
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - mx)
		dst[i] = e
		sum += e
	}
	inv := 1.0 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// ArgMax returns the index of the largest element of v (first on ties);
// -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clip limits every element of v to [lo, hi] in place.
func Clip(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}
