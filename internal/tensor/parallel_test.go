package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: every parallel kernel produces exactly the serial result, for
// shapes both below and above the parallel threshold.
func TestParallelKernelsMatchSerialProperty(t *testing.T) {
	f := func(seed int64, big bool) bool {
		r := rand.New(rand.NewSource(seed))
		var n, m, p int
		if big {
			n, m, p = 200+r.Intn(100), 50+r.Intn(50), 50+r.Intn(50)
		} else {
			n, m, p = 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		}
		a := New(n, m)
		a.RandNormal(r, 0, 1)
		b := New(m, p)
		b.RandNormal(r, 0, 1)

		want := MatMul(New(n, p), a, b)
		got := MatMulParallel(New(n, p), a, b)
		if !ApproxEqual(got, want, 1e-12) {
			return false
		}

		bt := New(p, m) // for a × btᵀ comparison
		bt.RandNormal(r, 0, 1)
		wantTB := MatMulTransB(New(n, p), a, bt)
		gotTB := MatMulTransBParallel(New(n, p), a, bt)
		if !ApproxEqual(gotTB, wantTB, 1e-12) {
			return false
		}

		c := New(n, p)
		c.RandNormal(r, 0, 1)
		wantTA := MatMulTransA(New(m, p), a, c)
		gotTA := MatMulTransAParallel(New(m, p), a, c)
		return ApproxEqual(gotTA, wantTA, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelKernelsPanicLikeSerialOnBadShapes(t *testing.T) {
	for name, fn := range map[string]func(){
		"matmul":  func() { MatMulParallel(New(2, 2), New(2, 3), New(2, 2)) },
		"transB":  func() { MatMulTransBParallel(New(2, 2), New(2, 3), New(2, 2)) },
		"transA":  func() { MatMulTransAParallel(New(2, 2), New(3, 2), New(2, 2)) },
		"destDim": func() { MatMulParallel(New(1, 1), New(2, 3), New(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: bad shapes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(512, 300)
	a.RandNormal(rng, 0, 1)
	b := New(300, 128)
	b.RandNormal(rng, 0, 1)
	first := MatMulParallel(New(512, 128), a, b)
	for trial := 0; trial < 5; trial++ {
		again := MatMulParallel(New(512, 128), a, b)
		if !ApproxEqual(first, again, 0) {
			t.Fatal("parallel matmul is not bitwise deterministic")
		}
	}
}
