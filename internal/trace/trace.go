// Package trace is a low-overhead span tracer for the distributed
// actor→replayd→learner→policyd loop.
//
// Design constraints, in order:
//
//  1. Off means free. Tracing is disabled by default; every hot-path
//     entry point (StartSpan, End, Active, SetActive) collapses to a
//     single atomic load and performs zero heap allocations when the
//     tracer is disabled or nil. Span is a value type so the compiler
//     keeps the disabled path entirely on the stack.
//  2. Deterministic trace identity. A trace ID is a pure function of
//     (run seed, kind, index) — learner update u of a seeded run hashes
//     to the same trace ID on every machine, every run. That is what
//     lets marl-trace merge /tracez captures from five processes
//     without any clock coordination, and what makes trace output
//     diffable across reruns.
//  3. Never perturb training. The tracer draws no RNG, writes no bytes
//     into any wire frame (context rides HTTP headers only), and the
//     record ring is fixed-size so enabling tracing cannot change
//     allocation behaviour of the code under test beyond the ring
//     itself.
//
// Records land in a fixed-capacity ring guarded by a mutex (span
// emission is a handful of events per update/step, so the lock is not a
// throughput concern; it keeps /tracez snapshots race-detector clean).
// When the ring wraps, the oldest records are overwritten and Dropped
// counts them.
package trace

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderName carries trace context across processes. The value is
// "<16-hex traceID>-<16-hex spanID>"; see FormatHeader/ParseHeader.
const HeaderName = "X-Marl-Trace"

// Trace-ID kinds: the "what started this trace" namespace fed into
// DeriveTraceID so updates, rollout steps and append batches can never
// collide even at equal indices.
const (
	KindUpdate uint64 = 1 // learner update u (root: the per-update critical path)
	KindStep   uint64 = 2 // rollout engine step s on one actor
	KindAppend uint64 = 3 // experience append batch b from one actor
)

// Context identifies a position in a trace: the trace it belongs to and
// the span that is the current parent. The zero Context is "not
// tracing" everywhere.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether c carries a real trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Record is one completed span. Fixed-size (strings are static names,
// never built per-span) so a ring slot never grows.
type Record struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string // static span name, e.g. "mini-batch-sampling"
	Proc     string // emitting process role, e.g. "learner"
	Start    int64  // wall clock, unix nanoseconds
	Dur      int64  // nanoseconds
	ArgName  string // optional numeric payload label, e.g. "rows"
	Arg      int64
}

// Tracer records spans for one process. All methods are safe for
// concurrent use and safe on a nil receiver (nil behaves as disabled),
// so callers thread a *Tracer without guarding every call site.
type Tracer struct {
	proc    string
	enabled atomic.Bool
	sample  atomic.Uint64
	seq     atomic.Uint64
	active  atomic.Pointer[Context]

	mu    sync.Mutex
	ring  []Record
	total uint64 // records ever appended; ring holds the last len(ring)
}

// DefaultCapacity bounds the record ring when the caller passes 0.
const DefaultCapacity = 65536

// New returns a disabled tracer for a process named proc ("learner",
// "replayd", "policyd", "actor"). capacity ≤ 0 selects
// DefaultCapacity.
func New(proc string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{proc: proc, ring: make([]Record, 0, capacity)}
}

// Proc returns the process role this tracer stamps on records.
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// SetEnabled flips span recording. Off is the zero state.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded. This is the one
// load every disabled-path call performs.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSampleEvery makes Sampled admit every nth index; n ≤ 1 admits all.
func (t *Tracer) SetSampleEvery(n uint64) {
	if t != nil {
		t.sample.Store(n)
	}
}

// Sampled reports whether the unit at index (an update count, a step
// count) should emit spans this run.
func (t *Tracer) Sampled(index uint64) bool {
	if !t.Enabled() {
		return false
	}
	n := t.sample.Load()
	return n <= 1 || index%n == 0
}

// SetActive publishes ctx as the process-wide current trace position.
// Cooperating subsystems that cannot thread a Context through their
// interfaces (the experience client under replay.TransitionSource, the
// policy publisher on its own goroutine) read it back with Active.
// No-op when disabled, so the hot path never allocates.
func (t *Tracer) SetActive(ctx Context) {
	if !t.Enabled() {
		return
	}
	c := ctx
	t.active.Store(&c)
}

// ClearActive drops the published context.
func (t *Tracer) ClearActive() {
	if t == nil {
		return
	}
	t.active.Store(nil)
}

// Active returns the last published context, or the zero Context.
func (t *Tracer) Active() Context {
	if !t.Enabled() {
		return Context{}
	}
	if c := t.active.Load(); c != nil {
		return *c
	}
	return Context{}
}

// StartTrace opens a root span (no parent) under the given trace ID,
// normally one produced by DeriveTraceID. Returns the zero Span when
// disabled or traceID is 0.
func (t *Tracer) StartTrace(traceID uint64, name string) Span {
	if !t.Enabled() || traceID == 0 {
		return Span{}
	}
	return t.startAt(Context{TraceID: traceID}, name, time.Now())
}

// StartSpan opens a child span under parent. An invalid parent returns
// the zero Span, which makes "only record if this unit is traced"
// gating automatic: descendants of an unsampled root all no-op.
func (t *Tracer) StartSpan(parent Context, name string) Span {
	if !t.Enabled() || !parent.Valid() {
		return Span{}
	}
	return t.startAt(parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for callers
// that only learn the parent after the work ran (a long-poll response
// carrying the publisher's context).
func (t *Tracer) StartSpanAt(parent Context, name string, start time.Time) Span {
	if !t.Enabled() || !parent.Valid() {
		return Span{}
	}
	return t.startAt(parent, name, start)
}

func (t *Tracer) startAt(parent Context, name string, start time.Time) Span {
	id := mix64(parent.TraceID ^ t.seq.Add(1)*0x9E3779B97F4A7C15)
	if id == 0 {
		id = 1
	}
	return Span{
		t:      t,
		ctx:    Context{TraceID: parent.TraceID, SpanID: id},
		parent: parent.SpanID,
		name:   name,
		start:  start.UnixNano(),
	}
}

// Span is an open span handle. The zero Span is inert: End and EndArg
// on it do nothing, so callers never branch on "am I tracing".
type Span struct {
	t      *Tracer
	ctx    Context
	parent uint64
	name   string
	start  int64
}

// Valid reports whether the span will record on End.
func (s Span) Valid() bool { return s.t != nil }

// Context returns the span's own position, for propagating to children
// (including across processes via FormatHeader).
func (s Span) Context() Context { return s.ctx }

// End closes the span and appends its record.
func (s Span) End() { s.EndArg("", 0) }

// EndArg closes the span with one numeric payload (e.g. "rows", n).
func (s Span) EndArg(argName string, arg int64) {
	if s.t == nil {
		return
	}
	s.t.append(Record{
		TraceID:  s.ctx.TraceID,
		SpanID:   s.ctx.SpanID,
		ParentID: s.parent,
		Name:     s.name,
		Proc:     s.t.proc,
		Start:    s.start,
		Dur:      time.Now().UnixNano() - s.start,
		ArgName:  argName,
		Arg:      arg,
	})
}

func (t *Tracer) append(r Record) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = r
	}
	t.total++
	t.mu.Unlock()
}

// Len reports how many records the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped reports how many records were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Snapshot copies the retained records, oldest first.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.ring))
	if t.total > uint64(len(t.ring)) { // wrapped: start after the write cursor
		at := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[at:]...)
		out = append(out, t.ring[:at]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Reset discards all retained records (testing and tooling).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.total = 0
	t.mu.Unlock()
}

// DeriveTraceID maps (seed, kind, index) to a trace ID. It is a pure
// function — the same seeded run derives the same IDs everywhere —
// built from two rounds of splitmix64 finalization over the three
// inputs. Never returns 0.
func DeriveTraceID(seed, kind, index uint64) uint64 {
	id := mix64(mix64(seed^kind*0xBF58476D1CE4E5B9) ^ index*0x94D049BB133111EB)
	if id == 0 {
		id = 1
	}
	return id
}

// HashID folds an arbitrary string (an actor ID) into a uint64 seed for
// DeriveTraceID, via FNV-1a.
func HashID(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a fast, well-dispersed bijection
// on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// FormatHeader renders c as the X-Marl-Trace wire form:
// "<16-hex traceID>-<16-hex spanID>".
func FormatHeader(c Context) string {
	var b [33]byte
	putHex16(b[:16], c.TraceID)
	b[16] = '-'
	putHex16(b[17:], c.SpanID)
	return string(b[:])
}

// ParseHeader parses the X-Marl-Trace wire form. Returns ok=false on
// any malformed input (including an all-zero trace ID), never an error:
// an unparseable header just means "not traced".
func ParseHeader(s string) (Context, bool) {
	if len(s) != 33 || s[16] != '-' {
		return Context{}, false
	}
	tid, ok := parseHex16(s[:16])
	if !ok {
		return Context{}, false
	}
	sid, ok := parseHex16(s[17:])
	if !ok {
		return Context{}, false
	}
	c := Context{TraceID: tid, SpanID: sid}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

const hexDigits = "0123456789abcdef"

func putHex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xF]
		v >>= 4
	}
}

func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
