// Chrome-trace ("Trace Event Format") export. The /tracez endpoint on
// every process serves its span ring in this shape, chrome://tracing
// and Perfetto open it directly, and cmd/marl-trace merges captures
// from N processes by the trace/span IDs carried in each event's args.
package trace

import (
	"encoding/json"
	"io"
	"net/http"
)

// ChromeEvent is one entry of traceEvents. Span records map to ph "X"
// (complete) events with microsecond ts/dur; one ph "M" metadata event
// per process names the pid.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// Args keys carrying the merge identity. IDs are 16-hex strings, not
// JSON numbers: uint64 does not survive a float64 round-trip.
const (
	ArgTrace  = "trace"
	ArgSpan   = "span"
	ArgParent = "parent"
	ArgProc   = "proc"
)

// ChromeTrace renders the current ring as a trace object.
func (t *Tracer) ChromeTrace() ChromeTrace {
	recs := t.Snapshot()
	events := make([]ChromeEvent, 0, len(recs)+1)
	events = append(events, ChromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  1,
		Args: map[string]any{"name": t.Proc()},
	})
	for _, r := range recs {
		events = append(events, recordEvent(r, 1))
	}
	return ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: events}
}

func recordEvent(r Record, pid int) ChromeEvent {
	args := map[string]any{
		ArgTrace:  FormatID(r.TraceID),
		ArgSpan:   FormatID(r.SpanID),
		ArgProc:   r.Proc,
		ArgParent: FormatID(r.ParentID),
	}
	if r.ArgName != "" {
		args[r.ArgName] = r.Arg
	}
	return ChromeEvent{
		Name: r.Name,
		Cat:  "marl",
		Ph:   "X",
		Ts:   float64(r.Start) / 1e3,
		Dur:  float64(r.Dur) / 1e3,
		Pid:  pid,
		Tid:  1,
		Args: args,
	}
}

// WriteChrome writes the trace object as JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.ChromeTrace())
}

// ParseChrome decodes a trace object previously produced by
// WriteChrome (or hand-merged by marl-trace).
func ParseChrome(data []byte) (ChromeTrace, error) {
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return ChromeTrace{}, err
	}
	return ct, nil
}

// FormatID renders an ID the way event args carry it.
func FormatID(v uint64) string {
	var b [16]byte
	putHex16(b[:], v)
	return string(b[:])
}

// ParseID parses a 16-hex event-args ID.
func ParseID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	return parseHex16(s)
}

// Handler serves the ring as Chrome-trace JSON — the /tracez endpoint.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChrome(w)
	})
}
