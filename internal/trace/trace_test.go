package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDeriveTraceIDDeterministicAndDistinct(t *testing.T) {
	a := DeriveTraceID(42, KindUpdate, 7)
	if a != DeriveTraceID(42, KindUpdate, 7) {
		t.Fatal("DeriveTraceID is not a pure function")
	}
	if a == 0 {
		t.Fatal("trace ID must never be 0")
	}
	seen := map[uint64]string{}
	for _, kind := range []uint64{KindUpdate, KindStep, KindAppend} {
		for idx := uint64(0); idx < 1000; idx++ {
			for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
				id := DeriveTraceID(seed, kind, idx)
				key := fmt.Sprintf("%d/%d/%d", seed, kind, idx)
				if prev, dup := seen[id]; dup {
					t.Fatalf("collision: %s and %s both map to %016x", prev, key, id)
				}
				seen[id] = key
			}
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, c := range []Context{
		{TraceID: 1, SpanID: 0},
		{TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x0123456789ABCDEF},
		{TraceID: ^uint64(0), SpanID: ^uint64(0)},
	} {
		h := FormatHeader(c)
		got, ok := ParseHeader(h)
		if !ok || got != c {
			t.Fatalf("round trip %+v -> %q -> %+v ok=%v", c, h, got, ok)
		}
	}
	for _, bad := range []string{
		"", "x", "0000000000000001", // too short
		"000000000000000100000000000000002",  // no dash
		"0000000000000001-000000000000000g",  // bad digit
		"0000000000000000-0000000000000001",  // zero trace ID
		"0000000000000001-00000000000000012", // too long
	} {
		if _, ok := ParseHeader(bad); ok {
			t.Fatalf("ParseHeader(%q) accepted malformed input", bad)
		}
	}
	// Uppercase hex is accepted on parse (proxies may canonicalize).
	if c, ok := ParseHeader("00000000000000AB-00000000000000CD"); !ok || c.TraceID != 0xAB || c.SpanID != 0xCD {
		t.Fatalf("uppercase parse failed: %+v ok=%v", c, ok)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	tr := New("test", 64)
	ctx := Context{TraceID: 1, SpanID: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("tracer unexpectedly enabled")
		}
		sp := tr.StartSpan(ctx, "x")
		sp.EndArg("rows", 1)
		tr.SetActive(ctx)
		_ = tr.Active()
		_ = tr.Sampled(3)
		root := tr.StartTrace(9, "y")
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocated %.1f times per op, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		sp := nilTr.StartSpan(ctx, "x")
		sp.End()
		_ = nilTr.Active()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocated %.1f times per op, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.Len())
	}
}

func TestSpanRecordingAndHierarchy(t *testing.T) {
	tr := New("learner", 64)
	tr.SetEnabled(true)
	root := tr.StartTrace(DeriveTraceID(1, KindUpdate, 0), "update")
	if !root.Valid() {
		t.Fatal("root span invalid while enabled")
	}
	child := tr.StartSpan(root.Context(), "mini-batch-sampling")
	child.EndArg("rows", 1024)
	root.EndArg("update", 0)

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Ring is append-ordered: child ended first.
	c, r := recs[0], recs[1]
	if c.Name != "mini-batch-sampling" || r.Name != "update" {
		t.Fatalf("unexpected record order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Fatal("child not in root's trace")
	}
	if c.ParentID != r.SpanID {
		t.Fatal("child's parent is not the root span")
	}
	if r.ParentID != 0 {
		t.Fatal("root span should have no parent")
	}
	if c.ArgName != "rows" || c.Arg != 1024 {
		t.Fatalf("child arg = %q %d", c.ArgName, c.Arg)
	}
	if c.Proc != "learner" {
		t.Fatalf("proc = %q", c.Proc)
	}
	if c.Dur < 0 || r.Dur < 0 {
		t.Fatal("negative duration")
	}

	// Spans parented on an invalid context never record — this is how
	// unsampled updates suppress their whole subtree.
	dead := tr.StartSpan(Context{}, "x")
	dead.End()
	if tr.Len() != 2 {
		t.Fatal("span with invalid parent recorded")
	}
}

func TestRingWrapOldestFirst(t *testing.T) {
	tr := New("p", 4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace(uint64(i+1), "s")
		sp.EndArg("i", int64(i))
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("len = %d, want 4", len(recs))
	}
	for j, r := range recs {
		if want := int64(6 + j); r.Arg != want {
			t.Fatalf("recs[%d].Arg = %d, want %d (oldest-first order)", j, r.Arg, want)
		}
	}
}

func TestSampled(t *testing.T) {
	tr := New("p", 4)
	if tr.Sampled(0) {
		t.Fatal("disabled tracer sampled")
	}
	tr.SetEnabled(true)
	if !tr.Sampled(0) || !tr.Sampled(1) {
		t.Fatal("sample-every 0 should admit everything")
	}
	tr.SetSampleEvery(4)
	got := []bool{tr.Sampled(0), tr.Sampled(1), tr.Sampled(4), tr.Sampled(6), tr.Sampled(8)}
	want := []bool{true, false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sampled pattern = %v, want %v", got, want)
		}
	}
}

func TestActiveContextHandoff(t *testing.T) {
	tr := New("p", 4)
	ctx := Context{TraceID: 5, SpanID: 6}
	tr.SetActive(ctx)
	if tr.Active().Valid() {
		t.Fatal("disabled tracer should not publish an active context")
	}
	tr.SetEnabled(true)
	tr.SetActive(ctx)
	if got := tr.Active(); got != ctx {
		t.Fatalf("Active = %+v, want %+v", got, ctx)
	}
	tr.ClearActive()
	if tr.Active().Valid() {
		t.Fatal("ClearActive did not clear")
	}
}

func TestConcurrentEmissionRaceFree(t *testing.T) {
	tr := New("p", 128)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartTrace(DeriveTraceID(uint64(g), KindStep, uint64(i)), "s")
				tr.SetActive(sp.Context())
				_ = tr.Active()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 128 || tr.Dropped() != 400-128 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	// Span IDs must be unique within the process.
	seen := map[uint64]bool{}
	for _, r := range tr.Snapshot() {
		if seen[r.SpanID] {
			t.Fatalf("duplicate span ID %016x", r.SpanID)
		}
		seen[r.SpanID] = true
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	tr := New("replayd", 16)
	tr.SetEnabled(true)
	sp := tr.StartSpanAt(Context{TraceID: 0xAA, SpanID: 0xBB}, "ingest", time.Now().Add(-time.Millisecond))
	sp.EndArg("rows", 100)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2 (metadata + span)", len(ct.TraceEvents))
	}
	meta, ev := ct.TraceEvents[0], ct.TraceEvents[1]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args["name"] != "replayd" {
		t.Fatalf("bad metadata event: %+v", meta)
	}
	if ev.Ph != "X" || ev.Name != "ingest" {
		t.Fatalf("bad span event: %+v", ev)
	}
	if ev.Dur < 900 { // ended ≥1ms after start → ≥900µs with slop
		t.Fatalf("Dur = %v µs, want ≥900", ev.Dur)
	}
	tid, ok := ParseID(ev.Args[ArgTrace].(string))
	if !ok || tid != 0xAA {
		t.Fatalf("trace arg = %v", ev.Args[ArgTrace])
	}
	pid, ok := ParseID(ev.Args[ArgParent].(string))
	if !ok || pid != 0xBB {
		t.Fatalf("parent arg = %v", ev.Args[ArgParent])
	}
	if ev.Args[ArgProc] != "replayd" {
		t.Fatalf("proc arg = %v", ev.Args[ArgProc])
	}
	if rows, ok := ev.Args["rows"].(float64); !ok || rows != 100 {
		t.Fatalf("rows arg = %v", ev.Args["rows"])
	}
}

func TestFormatParseID(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xDEADBEEF, ^uint64(0)} {
		s := FormatID(v)
		got, ok := ParseID(s)
		if !ok || got != v {
			t.Fatalf("ID round trip %d -> %q -> %d ok=%v", v, s, got, ok)
		}
	}
	if _, ok := ParseID("nope"); ok {
		t.Fatal("ParseID accepted garbage")
	}
}

func BenchmarkDisabledStartSpanEnd(b *testing.B) {
	tr := New("bench", 64)
	ctx := Context{TraceID: 1, SpanID: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(ctx, "x")
		sp.End()
	}
}

func BenchmarkEnabledStartSpanEnd(b *testing.B) {
	tr := New("bench", 1<<16)
	tr.SetEnabled(true)
	ctx := Context{TraceID: 1, SpanID: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(ctx, "x")
		sp.End()
	}
}
