package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"marlperf/internal/core"
	"marlperf/internal/profiler"
)

// Paper reference values used for side-by-side shape comparison.

// tableIPaperSeconds holds Table I end-to-end training times (seconds,
// 60k episodes) indexed by [env][algo][agent-count].
var tableIPaperSeconds = map[envKind]map[core.Algorithm]map[int]float64{
	envPredatorPrey: {
		core.MADDPG: {3: 3365.99, 6: 8504.99, 12: 23406.16, 24: 82768.15},
		core.MATD3:  {3: 3838.97, 6: 9039.11, 12: 24678.43, 24: 80123.24},
	},
	envCoopNav: {
		core.MADDPG: {3: 2403.64, 6: 5888.64, 12: 15722.43, 24: 52421.81},
		core.MATD3:  {3: 2785.53, 6: 6369.42, 12: 17081.71, 24: 55371.91},
	},
}

// fig2PaperUpdatePct holds Figure 2's update-all-trainers share (%), read
// from the published bars (approximate to the labeled values).
var fig2PaperUpdatePct = map[envKind]map[core.Algorithm]map[int]float64{
	envPredatorPrey: {
		core.MADDPG: {3: 36, 6: 50, 12: 62, 24: 76},
		core.MATD3:  {3: 36, 6: 50, 12: 62, 24: 73},
	},
	envCoopNav: {
		core.MADDPG: {3: 27, 6: 36, 12: 50, 24: 68},
		core.MATD3:  {3: 26, 6: 36, 12: 53, 24: 62},
	},
}

// fig3PaperSamplingPct holds Figure 3's mini-batch-sampling share of the
// update-all-trainers stage (%).
var fig3PaperSamplingPct = map[envKind]map[core.Algorithm]map[int]float64{
	envPredatorPrey: {
		core.MADDPG: {3: 59, 6: 64, 12: 65, 24: 65},
		core.MATD3:  {3: 56, 6: 60, 12: 61, 24: 61},
	},
	envCoopNav: {
		core.MADDPG: {3: 57, 6: 60, 12: 61, 24: 61},
		core.MATD3:  {3: 55, 6: 58, 12: 60, 24: 62},
	},
}

// fig6PaperUpdatePct holds Figure 6's update share for MADDPG Predator-Prey
// up to 48 agents, plus the paper's total seconds.
var fig6PaperUpdatePct = map[int]float64{3: 34, 6: 46, 12: 61, 24: 76, 48: 87}
var fig6PaperTotalSec = map[int]float64{3: 3366, 6: 8505, 12: 23406, 24: 82768, 48: 302400}

// charOutcome is one memoized characterization run.
type charOutcome struct {
	agents   int
	episodes int
	wall     time.Duration
	prof     *profiler.Profile
}

var (
	charMu    sync.Mutex
	charCache = map[string]*charOutcome{}
)

// runCharacterization trains algo on (kind, agents) for the scale's episode
// budget with the baseline uniform sampler and returns phase timings.
// Results are memoized per process so Table I and Figures 2/3/6 share runs.
func runCharacterization(algo core.Algorithm, kind envKind, agents int, scale Scale) *charOutcome {
	key := fmt.Sprintf("%v|%v|%d|%s", algo, kind, agents, scale.Name)
	charMu.Lock()
	if c, ok := charCache[key]; ok {
		charMu.Unlock()
		return c
	}
	charMu.Unlock()

	spec := newSpec(kind, agents, 1)
	cfg := charConfig(algo, scale, spec)
	tr, err := core.NewTrainer(cfg, newEnv(kind, agents))
	if err != nil {
		panic(err)
	}
	// Pre-fill the buffer to steady-state occupancy so the measured
	// sampling phase gathers from a realistically out-of-cache footprint
	// (the paper's replay holds up to 1M transitions) and updates run from
	// the first measured episode.
	fillSynthetic(tr.Buffer(), cfg.BufferCapacity, rand.New(rand.NewSource(cfg.Seed)))
	start := time.Now()
	tr.RunEpisodes(scale.CharEpisodes, nil)
	tr.Close()
	out := &charOutcome{
		agents:   agents,
		episodes: scale.CharEpisodes,
		wall:     time.Since(start),
		prof:     tr.Profile(),
	}
	charMu.Lock()
	charCache[key] = out
	charMu.Unlock()
	return out
}

// otherPct returns the non-action-selection, non-update share.
func otherPct(p *profiler.Profile) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	other := p.Duration(profiler.PhaseEnvStep) + p.Duration(profiler.PhaseReplayAdd)
	return 100 * float64(other) / float64(total)
}

func updatePct(p *profiler.Profile) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(p.UpdateTrainers()) / float64(total)
}

func init() {
	register(&Runner{
		ID:          "table1",
		Description: "Table I: end-to-end training times for MADDPG and MATD3, PP and CN, 3-24 agents",
		Run:         runTable1,
	})
	register(&Runner{
		ID:          "fig2",
		Description: "Figure 2: end-to-end training-time percentage breakdown per phase",
		Run:         runFig2,
	})
	register(&Runner{
		ID:          "fig3",
		Description: "Figure 3: training-time breakdown within update-all-trainers",
		Run:         runFig3,
	})
	register(&Runner{
		ID:          "fig6",
		Description: "Figure 6: MADDPG predator-prey scalability up to 48 agents",
		Run:         runFig6,
	})
}

func runTable1(scale Scale) *Result {
	tab := &Table{
		Title:   "Table I reproduction: end-to-end training time (extrapolated to 60k episodes)",
		Headers: []string{"env", "algo", "agents", "measured", "extrap 60k (s)", "gpu-model 60k (s)", "paper (s)", "growth vs base", "paper growth"},
		Notes: []string{
			fmt.Sprintf("scale=%s: %d episodes measured per configuration, batch %d; paper trains 60k episodes at batch 1024 on an RTX 3090", scale.Name, scale.CharEpisodes, scale.CharBatch),
			"gpu-model applies the documented CPU-GPU platform model to the network phases (see EXPERIMENTS.md)",
			"compare growth columns: the paper's shape is super-linear in agent count",
		},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, algo := range []core.Algorithm{core.MADDPG, core.MATD3} {
			var base float64
			for _, n := range scale.AgentCounts {
				c := runCharacterization(algo, kind, n, scale)
				perEp := c.wall.Seconds() / float64(c.episodes)
				extrap := perEp * 60000
				modeled := modeledProfile(c.prof, n).Total().Seconds() / float64(c.episodes) * 60000
				if n == scale.AgentCounts[0] {
					base = modeled
				}
				paper := tableIPaperSeconds[kind][algo][n]
				paperBase := tableIPaperSeconds[kind][algo][scale.AgentCounts[0]]
				tab.Rows = append(tab.Rows, []string{
					kind.short(), algo.String(), fmt.Sprint(n),
					c.wall.Round(time.Millisecond).String(),
					fmt.Sprintf("%.0f", extrap),
					fmt.Sprintf("%.0f", modeled),
					fmt.Sprintf("%.0f", paper),
					f2(modeled / base),
					f2(paper / paperBase),
				})
			}
		}
	}
	return &Result{ID: "table1", Tables: []*Table{tab}}
}

func runFig2(scale Scale) *Result {
	tab := &Table{
		Title:   "Figure 2 reproduction: end-to-end training-time percentage breakdown",
		Headers: []string{"env", "algo", "agents", "action-sel %", "update-all-trainers %", "other %", "paper update %", "raw update %"},
		Notes: []string{
			"percentage columns use the CPU-GPU platform model (network phases on device); 'raw update %' is the unmodeled all-CPU share",
			"paper shape: the update-all-trainers share grows with agent count and dominates by 24 agents",
			"'other' = environment step + replay add",
		},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, algo := range []core.Algorithm{core.MADDPG, core.MATD3} {
			for _, n := range scale.AgentCounts {
				c := runCharacterization(algo, kind, n, scale)
				p := modeledProfile(c.prof, n)
				tab.Rows = append(tab.Rows, []string{
					kind.short(), algo.String(), fmt.Sprint(n),
					pct(p.Percent(profiler.PhaseActionSelection)),
					pct(updatePct(p)),
					pct(otherPct(p)),
					pct(fig2PaperUpdatePct[kind][algo][n]),
					pct(updatePct(c.prof)),
				})
			}
		}
	}
	return &Result{ID: "fig2", Tables: []*Table{tab}}
}

func runFig3(scale Scale) *Result {
	tab := &Table{
		Title:   "Figure 3 reproduction: breakdown within update-all-trainers",
		Headers: []string{"env", "algo", "agents", "sampling %", "target-q %", "q-loss/p-loss %", "paper sampling %", "raw sampling %"},
		Notes: []string{
			"percentage columns use the CPU-GPU platform model; 'raw sampling %' is the unmodeled all-CPU share",
			"paper shape: mini-batch sampling is the largest component (~55-65%) at every agent count",
		},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, algo := range []core.Algorithm{core.MADDPG, core.MATD3} {
			for _, n := range scale.AgentCounts {
				c := runCharacterization(algo, kind, n, scale)
				p := modeledProfile(c.prof, n)
				tab.Rows = append(tab.Rows, []string{
					kind.short(), algo.String(), fmt.Sprint(n),
					pct(p.PercentOfUpdate(profiler.PhaseSampling)),
					pct(p.PercentOfUpdate(profiler.PhaseTargetQ)),
					pct(p.PercentOfUpdate(profiler.PhaseQPLoss)),
					pct(fig3PaperSamplingPct[kind][algo][n]),
					pct(c.prof.PercentOfUpdate(profiler.PhaseSampling)),
				})
			}
		}
	}
	return &Result{ID: "fig3", Tables: []*Table{tab}}
}

func runFig6(scale Scale) *Result {
	tab := &Table{
		Title:   "Figure 6 reproduction: MADDPG predator-prey scalability",
		Headers: []string{"agents", "action-sel %", "update-all-trainers %", "other %", "gpu-model 60k (s)", "paper update %", "paper total (s)"},
		Notes: []string{
			"percentage columns use the CPU-GPU platform model (network phases on device)",
			"paper shape: update share climbs from 34% (3 agents) to 87% (48 agents); total time grows super-linearly",
		},
	}
	for _, n := range scale.BigAgentCounts {
		c := runCharacterization(core.MADDPG, envPredatorPrey, n, scale)
		p := modeledProfile(c.prof, n)
		perEp := p.Total().Seconds() / float64(c.episodes)
		paperUpd, okU := fig6PaperUpdatePct[n]
		paperTot, okT := fig6PaperTotalSec[n]
		paperUpdStr, paperTotStr := "-", "-"
		if okU {
			paperUpdStr = pct(paperUpd)
		}
		if okT {
			paperTotStr = fmt.Sprintf("%.0f", paperTot)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(n),
			pct(p.Percent(profiler.PhaseActionSelection)),
			pct(updatePct(p)),
			pct(otherPct(p)),
			fmt.Sprintf("%.0f", perEp*60000),
			paperUpdStr,
			paperTotStr,
		})
	}
	return &Result{ID: "fig6", Tables: []*Table{tab}}
}
