package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps runner tests fast: minimal agent counts, episodes and
// iterations while still exercising every code path.
func tinyScale() Scale {
	return Scale{
		Name:           "tiny",
		AgentCounts:    []int{2, 3},
		BigAgentCounts: []int{2, 3},
		RewardAgents:   []int{2},
		BufferFill:     600,
		Batch:          64,
		SamplingIters:  3,
		CharEpisodes:   2,
		CharBatch:      48,
		RewardEpisodes: 6,
		RewardBatch:    32,
		RewardWindow:   2,
		E2EEpisodes:    3,
	}
}

func TestRegistryContainsEveryPaperExperiment(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig6", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"ablation-neighbors", "ablation-ip", "ablation-beta", "ablation-rankper", "ablation-reuse", "ablation-epaware",
	}
	for _, id := range want {
		if Get(id) == nil {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	if len(All()) != len(want) {
		t.Fatalf("All() returned %d runners", len(All()))
	}
}

func TestGetUnknownReturnsNil(t *testing.T) {
	if Get("nope") != nil {
		t.Fatal("unknown ID should return nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "333", "note: a note", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table rendering missing %q:\n%s", want, s)
		}
	}
}

func TestScalesAreConsistent(t *testing.T) {
	for _, s := range []Scale{SmallScale(), FullScale(), tinyScale()} {
		if len(s.AgentCounts) == 0 || s.Batch < 1 || s.BufferFill < s.Batch {
			t.Fatalf("scale %q malformed: %+v", s.Name, s)
		}
		if s.RewardWindow < 1 || s.RewardEpisodes < s.RewardWindow {
			t.Fatalf("scale %q has bad reward windows", s.Name)
		}
	}
}

func TestReductionHelper(t *testing.T) {
	if got := reduction(100, 80); got != 20 {
		t.Fatalf("reduction(100,80) = %v, want 20", got)
	}
	if got := reduction(100, 120); got != -20 {
		t.Fatalf("reduction(100,120) = %v, want -20", got)
	}
	if got := reduction(0, 5); got != 0 {
		t.Fatalf("reduction with zero base = %v, want 0", got)
	}
}

// runAndCheck executes a runner at tiny scale and sanity-checks the output.
func runAndCheck(t *testing.T, id string, wantHeaders ...string) *Result {
	t.Helper()
	r := Get(id)
	if r == nil {
		t.Fatalf("runner %q missing", id)
	}
	res := r.Run(tinyScale())
	if res.ID != id {
		t.Fatalf("runner %q returned ID %q", id, res.ID)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("runner %q produced no tables", id)
	}
	out := res.String()
	for _, h := range wantHeaders {
		if !strings.Contains(out, h) {
			t.Fatalf("runner %q output missing %q:\n%s", id, h, out)
		}
	}
	for _, tab := range res.Tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("runner %q produced empty table %q", id, tab.Title)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Fatalf("runner %q table %q: row width %d vs %d headers", id, tab.Title, len(row), len(tab.Headers))
			}
		}
	}
	return res
}

func TestRunTable1Tiny(t *testing.T) {
	runAndCheck(t, "table1", "extrap 60k (s)", "paper (s)", "growth")
}

func TestRunFig2Tiny(t *testing.T) {
	runAndCheck(t, "fig2", "update-all-trainers %", "paper update %")
}

func TestRunFig3Tiny(t *testing.T) {
	runAndCheck(t, "fig3", "sampling %", "target-q %")
}

func TestRunFig4Tiny(t *testing.T) {
	res := runAndCheck(t, "fig4", "cache misses", "dTLB")
	// Growth rows exist for each env (one transition: 2→3 agents).
	if len(res.Tables[0].Rows) != 2 {
		t.Fatalf("fig4 growth rows = %d, want 2", len(res.Tables[0].Rows))
	}
}

func TestRunFig6Tiny(t *testing.T) {
	runAndCheck(t, "fig6", "update-all-trainers %", "paper total (s)")
}

func TestRunFig8Tiny(t *testing.T) {
	runAndCheck(t, "fig8", "n16r64", "n64r16", "LLC misses")
}

func TestRunFig9Tiny(t *testing.T) {
	runAndCheck(t, "fig9", "reduction", "paper")
}

func TestRunFig10Tiny(t *testing.T) {
	res := runAndCheck(t, "fig10", "baseline", "n16r64")
	// Panels: PP + CN for the single reward agent count.
	if len(res.Tables) != 2 {
		t.Fatalf("fig10 tables = %d, want 2", len(res.Tables))
	}
}

func TestRunFig11Tiny(t *testing.T) {
	res := runAndCheck(t, "fig11", "per-maddpg", "ip-maddpg", "speedup")
	last := res.Tables[len(res.Tables)-1]
	if !strings.Contains(last.Title, "PER vs information-prioritized") {
		t.Fatalf("fig11 missing sampling-speed table, got %q", last.Title)
	}
}

func TestRunFig12Fig13Tiny(t *testing.T) {
	runAndCheck(t, "fig12", "MBS reduction", "TT reduction")
	runAndCheck(t, "fig13", "MBS reduction", "TT reduction")
}

func TestRunFig14Tiny(t *testing.T) {
	res := runAndCheck(t, "fig14", "kv gather", "reshape", "speedup", "LLC ratio")
	if len(res.Tables) != 3 {
		t.Fatalf("fig14 tables = %d, want 3 (inclusive + exclusive + memory-system)", len(res.Tables))
	}
}

func TestRunAblationsTiny(t *testing.T) {
	runAndCheck(t, "ablation-neighbors", "neighbors", "LLC misses")
	runAndCheck(t, "ablation-ip", "predictor", "mean run length")
	runAndCheck(t, "ablation-beta", "beta", "final reward")
	runAndCheck(t, "ablation-rankper", "proportional", "rank-based", "outlier share")
	runAndCheck(t, "ablation-reuse", "reuse w=2", "distinct batches")
	runAndCheck(t, "ablation-epaware", "ep-aware", "crossing")
}

func TestTableMarkdownRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"a note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFig4GrowthIsSuperLinear(t *testing.T) {
	// The paper's headline characterization: counters grow super-linearly
	// (more than 2x when agents double). With tiny 2→3 agent steps we
	// require growth above the linear ratio 1.5.
	a := sampleTraceStats(envPredatorPrey, 2, 2000, 64)
	b := sampleTraceStats(envPredatorPrey, 4, 2000, 64)
	if r := ratio(b.Accesses, a.Accesses); r <= 2 {
		t.Fatalf("access growth %v for 2x agents, want super-linear (>2)", r)
	}
}
