package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"marlperf/internal/core"
	"marlperf/internal/replay"
	"marlperf/internal/simcache"
)

func init() {
	register(&Runner{
		ID:          "ablation-neighbors",
		Description: "Ablation: neighbor-run length vs reference-point count at fixed batch coverage",
		Run:         runAblationNeighbors,
	})
	register(&Runner{
		ID:          "ablation-ip",
		Description: "Ablation: IP neighbor-predictor thresholds vs fixed neighbor counts",
		Run:         runAblationIP,
	})
	register(&Runner{
		ID:          "ablation-beta",
		Description: "Ablation: Lemma-1 importance-sampling compensation β on learning outcome",
		Run:         runAblationBeta,
	})
	register(&Runner{
		ID:          "ablation-rankper",
		Description: "Ablation: proportional vs rank-based prioritized replay",
		Run:         runAblationRankPER,
	})
	register(&Runner{
		ID:          "ablation-reuse",
		Description: "Ablation: AccMER-style transition reuse windows vs fresh sampling",
		Run:         runAblationReuse,
	})
	register(&Runner{
		ID:          "ablation-epaware",
		Description: "Ablation: episode-boundary-aware neighbor runs vs plain locality sampling",
		Run:         runAblationEpAware,
	})
}

// runAblationEpAware compares plain Algorithm-1 locality sampling against
// the episode-aware variant that truncates neighbor runs at done flags:
// sampling cost, reference-point inflation, and the boundary-crossing
// fraction the variant eliminates.
func runAblationEpAware(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: episode-aware neighbor runs (predator-prey, 25-step episodes)",
		Headers: []string{"sampler", "sampling time", "refs/batch", "runs crossing episode boundary"},
		Notes: []string{
			"plain locality lets a neighbor run straddle episode boundaries; the aware variant stops at done flags",
			"cost of awareness = slightly more reference points (shorter average runs)",
		},
	}
	n := scale.AgentCounts[0]
	fill := cappedFill(newSpec(envPredatorPrey, n, 1), scale.BufferFill)
	spec := newSpec(envPredatorPrey, n, fill)
	buf := replay.NewBuffer(spec)
	fillSyntheticEpisodes(buf, fill, 25)
	batches := newBatches(spec, scale.Batch)
	rng := rand.New(rand.NewSource(65))

	for _, v := range []struct {
		label string
		s     replay.Sampler
	}{
		{"locality n=16", replay.NewLocalitySampler(buf, 16, scale.Batch/16)},
		{"ep-aware n=16", replay.NewEpisodeAwareLocalitySampler(buf, 16, scale.Batch/16)},
	} {
		var refs, crossings, runs int
		start := time.Now()
		for it := 0; it < scale.SamplingIters; it++ {
			for trainer := 0; trainer < n; trainer++ {
				sample := v.s.Sample(scale.Batch, rng)
				buf.GatherAll(sample.Indices, batches)
				refs += len(sample.Refs)
				c, r := countBoundaryCrossings(buf, sample.Indices)
				crossings += c
				runs += r
			}
		}
		wall := time.Since(start)
		tab.Rows = append(tab.Rows, []string{
			v.label,
			wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(refs)/float64(scale.SamplingIters*n)),
			fmt.Sprintf("%d/%d", crossings, runs),
		})
	}
	return &Result{ID: "ablation-epaware", Tables: []*Table{tab}}
}

// fillSyntheticEpisodes fills buf with random transitions whose done flags
// mark every epLen-th step as terminal.
func fillSyntheticEpisodes(buf *replay.Buffer, n, epLen int) {
	rng := rand.New(rand.NewSource(66))
	spec := buf.Spec()
	obs := make([][]float64, spec.NumAgents)
	act := make([][]float64, spec.NumAgents)
	rew := make([]float64, spec.NumAgents)
	nextObs := make([][]float64, spec.NumAgents)
	done := make([]float64, spec.NumAgents)
	for a := 0; a < spec.NumAgents; a++ {
		obs[a] = make([]float64, spec.ObsDims[a])
		nextObs[a] = make([]float64, spec.ObsDims[a])
		act[a] = make([]float64, spec.ActDim)
	}
	for t := 0; t < n; t++ {
		flag := 0.0
		if (t+1)%epLen == 0 {
			flag = 1
		}
		for a := 0; a < spec.NumAgents; a++ {
			for j := range obs[a] {
				obs[a][j] = rng.Float64()
			}
			act[a][t%spec.ActDim] = 1
			rew[a] = rng.NormFloat64()
			done[a] = flag
		}
		buf.Add(obs, act, rew, nextObs, done)
	}
}

// countBoundaryCrossings counts consecutive-index runs in a sample and how
// many of them continue past a terminal transition.
func countBoundaryCrossings(buf *replay.Buffer, indices []int) (crossings, runs int) {
	if len(indices) == 0 {
		return 0, 0
	}
	runs = 1
	for i := 0; i+1 < len(indices); i++ {
		cur, next := indices[i], indices[i+1]
		if next == (cur+1)%buf.Len() {
			if buf.DoneFlag(0, cur) != 0 {
				crossings++
			}
		} else {
			runs++
		}
	}
	return crossings, runs
}

// runAblationReuse measures the sampling-cost savings of reusing a drawn
// mini-batch for W updates (the related-work AccMER strategy) against fresh
// uniform and locality-aware sampling.
func runAblationReuse(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: transition-reuse window (predator-prey, largest agent count)",
		Headers: []string{"strategy", "sampling time", "reduction vs fresh", "distinct batches"},
		Notes: []string{
			"reuse(w) redraws indices every w updates (AccMER-style); gathers still run every update",
			"fresh locality-aware sampling is the paper's alternative: cheap every update, no staleness",
		},
	}
	n := scale.AgentCounts[len(scale.AgentCounts)-1]
	spec := newSpec(envPredatorPrey, n, cappedFill(newSpec(envPredatorPrey, n, 1), scale.BufferFill))
	buf := replay.NewBuffer(spec)
	rng := rand.New(rand.NewSource(64))
	fillSynthetic(buf, spec.Capacity, rng)
	batches := newBatches(spec, scale.Batch)

	variants := []struct {
		label string
		s     replay.Sampler
	}{
		{"fresh uniform", replay.NewUniformSampler(buf)},
		{"reuse w=2", replay.NewReuseSampler(replay.NewUniformSampler(buf), 2)},
		{"reuse w=4", replay.NewReuseSampler(replay.NewUniformSampler(buf), 4)},
		{"fresh locality n16r64", replay.NewLocalitySampler(buf, 16, 64)},
	}
	var base float64
	for i, v := range variants {
		seen := map[int]bool{}
		start := time.Now()
		for it := 0; it < scale.SamplingIters; it++ {
			for trainer := 0; trainer < n; trainer++ {
				sample := v.s.Sample(scale.Batch, rng)
				buf.GatherAll(sample.Indices, batches)
				seen[sample.Indices[0]*1000003+sample.Indices[len(sample.Indices)-1]] = true
			}
		}
		wall := time.Since(start).Seconds()
		if i == 0 {
			base = wall
		}
		tab.Rows = append(tab.Rows, []string{
			v.label,
			fmt.Sprintf("%.3fms", wall*1000),
			pct(reduction(base, wall)),
			fmt.Sprint(len(seen)),
		})
	}
	return &Result{ID: "ablation-reuse", Tables: []*Table{tab}}
}

// runAblationRankPER compares the two PER variants of Schaul et al.:
// proportional (sum tree) vs rank-based (sorted order), on sampling cost
// and concentration under an outlier TD error.
func runAblationRankPER(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: proportional vs rank-based prioritized replay (predator-prey)",
		Headers: []string{"variant", "sampling time", "outlier share", "max weight spread"},
		Notes: []string{
			"outlier share = fraction of a batch drawn from one transition whose TD error is 1000x the rest",
			"rank-based bounds concentration (1/rank mass) where proportional follows magnitudes",
		},
	}
	n := scale.AgentCounts[0]
	for _, variant := range []string{"proportional", "rank-based"} {
		spec := newSpec(envPredatorPrey, n, cappedFill(newSpec(envPredatorPrey, n, 1), scale.BufferFill))
		buf := replay.NewBuffer(spec)
		var s replay.PrioritySampler
		if variant == "proportional" {
			s = replay.NewPERSampler(buf)
		} else {
			s = replay.NewRankPERSampler(buf)
		}
		rng := rand.New(rand.NewSource(63))
		fillSynthetic(buf, spec.Capacity, rng)

		// One outlier TD error among uniform small ones.
		idx := make([]int, buf.Len())
		td := make([]float64, buf.Len())
		for i := range idx {
			idx[i] = i
			td[i] = 0.01
		}
		td[42] = 10
		s.UpdatePriorities(idx, td)

		batches := newBatches(spec, scale.Batch)
		start := time.Now()
		outlier := 0
		totalDrawn := 0
		var minW, maxW float64 = 1, 0
		for it := 0; it < scale.SamplingIters; it++ {
			sample := s.Sample(scale.Batch, rng)
			buf.GatherAll(sample.Indices, batches)
			for i, drawn := range sample.Indices {
				if drawn == 42 {
					outlier++
				}
				w := sample.Weights[i]
				if w < minW {
					minW = w
				}
				if w > maxW {
					maxW = w
				}
			}
			totalDrawn += len(sample.Indices)
		}
		wall := time.Since(start)
		tab.Rows = append(tab.Rows, []string{
			variant,
			wall.Round(time.Microsecond).String(),
			pct(100 * float64(outlier) / float64(totalDrawn)),
			fmt.Sprintf("%.3f-%.3f", minW, maxW),
		})
	}
	return &Result{ID: "ablation-rankper", Tables: []*Table{tab}}
}

// runAblationNeighbors sweeps the (neighbors, refs) trade-off the paper's
// two operating points sit on: longer runs give the prefetcher more to
// stream but reduce randomness.
func runAblationNeighbors(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: neighbor sweep (predator-prey, largest agent count)",
		Headers: []string{"neighbors", "refs", "sampling time", "reduction vs uniform", "LLC misses", "dTLB misses", "distinct refs/batch"},
		Notes: []string{
			"batch coverage fixed at neighbors x refs = batch; the paper's operating points are n=16/ref=64 and n=64/ref=16",
		},
	}
	n := scale.AgentCounts[len(scale.AgentCounts)-1]
	spec := newSpec(envPredatorPrey, n, scale.BufferFill)
	buf := replay.NewBuffer(spec)
	rng := rand.New(rand.NewSource(61))
	fillSynthetic(buf, scale.BufferFill, rng)
	batches := newBatches(spec, scale.Batch)

	baseTime := measureSamplingWall(buf, replay.NewUniformSampler(buf), batches, n, scale.Batch, scale.SamplingIters, rng)
	baseRow := []string{"1 (uniform)", fmt.Sprint(scale.Batch), baseTime.Round(time.Microsecond).String(), "0.0%"}
	baseStats := traceSamplerStats(buf, replay.NewUniformSampler(buf), batches, n, scale.Batch)
	baseRow = append(baseRow, fmt.Sprint(baseStats.L3Misses), fmt.Sprint(baseStats.TLBMisses), fmt.Sprint(scale.Batch))
	tab.Rows = append(tab.Rows, baseRow)

	for _, neigh := range []int{4, 16, 64, 256} {
		if neigh > scale.Batch {
			continue
		}
		refs := scale.Batch / neigh
		s := replay.NewLocalitySampler(buf, neigh, refs)
		t := measureSamplingWall(buf, s, batches, n, scale.Batch, scale.SamplingIters, rng)
		stats := traceSamplerStats(buf, s, batches, n, scale.Batch)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(neigh), fmt.Sprint(refs),
			t.Round(time.Microsecond).String(),
			pct(reduction(baseTime.Seconds(), t.Seconds())),
			fmt.Sprint(stats.L3Misses),
			fmt.Sprint(stats.TLBMisses),
			fmt.Sprint(refs),
		})
	}
	return &Result{ID: "ablation-neighbors", Tables: []*Table{tab}}
}

// runAblationIP compares the threshold predictor against fixed neighbor
// counts sharing the same PER priorities.
func runAblationIP(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: IP neighbor predictor vs fixed neighbor counts (predator-prey)",
		Headers: []string{"predictor", "sampling time", "LLC misses", "mean run length"},
		Notes: []string{
			"the adaptive predictor (1/2/4 by normalized priority) sits between fixed-1 (max randomness) and fixed-4 (max locality)",
		},
	}
	n := scale.AgentCounts[len(scale.AgentCounts)-1]
	spec := newSpec(envPredatorPrey, n, scale.BufferFill)

	predictors := []struct {
		label string
		p     replay.NeighborPredictor
	}{
		{"adaptive 1/2/4 (paper)", replay.DefaultNeighborPredictor()},
		{"fixed 1", replay.NeighborPredictor{Neighbors: []int{1}}},
		{"fixed 4", replay.NeighborPredictor{Neighbors: []int{4}}},
	}
	for _, pr := range predictors {
		buf := replay.NewBuffer(spec)
		rng := rand.New(rand.NewSource(62))
		s := replay.NewIPLocalitySampler(buf, 1)
		s.Predictor = pr.p
		fillSynthetic(buf, scale.BufferFill, rng)
		// Shake priorities so the predictor sees a spread of weights.
		idx := make([]int, 0, scale.BufferFill/7)
		td := make([]float64, 0, scale.BufferFill/7)
		for i := 0; i < scale.BufferFill; i += 7 {
			idx = append(idx, i)
			td = append(td, rng.Float64()*2)
		}
		s.UpdatePriorities(idx, td)

		batches := newBatches(spec, scale.Batch)
		start := time.Now()
		var totalIdx, totalRefs int
		for it := 0; it < scale.SamplingIters; it++ {
			for trainer := 0; trainer < n; trainer++ {
				sample := s.Sample(scale.Batch, rng)
				buf.GatherAll(sample.Indices, batches)
				totalIdx += len(sample.Indices)
				totalRefs += len(sample.Refs)
			}
		}
		wall := time.Since(start)

		h := simcache.NewHierarchy(simcache.Ryzen3975WX())
		buf.SetTracer(h)
		for trainer := 0; trainer < n; trainer++ {
			sample := s.Sample(scale.Batch, rng)
			buf.GatherAll(sample.Indices, batches)
		}
		buf.SetTracer(nil)

		meanRun := float64(totalIdx) / float64(totalRefs)
		tab.Rows = append(tab.Rows, []string{
			pr.label,
			wall.Round(time.Microsecond).String(),
			fmt.Sprint(h.Stats().L3Misses),
			f2(meanRun),
		})
	}
	return &Result{ID: "ablation-ip", Tables: []*Table{tab}}
}

// runAblationBeta trains the IP sampler with β ∈ {0, 0.5, 1} to show the
// Lemma-1 compensation's effect on learning outcome.
func runAblationBeta(scale Scale) *Result {
	tab := &Table{
		Title:   "Ablation: Lemma-1 compensation β (cooperative navigation)",
		Headers: []string{"beta", "final reward", "mean of last half"},
		Notes: []string{
			"β=1 fully compensates the locality-induced distribution shift; β=0 disables the correction",
		},
	}
	agents := scale.RewardAgents[0]
	for _, beta := range []float64{0, 0.5, 1} {
		series, _ := rewardCurve(envCoopNav, agents, scale, rewardVariant{
			label: fmt.Sprintf("beta=%.1f", beta),
			cfg: func(c core.Config) core.Config {
				c.Sampler = core.SamplerIPLocality
				c.ISBeta = beta
				return c
			},
		}, 7)
		if len(series) == 0 {
			continue
		}
		var lastHalf float64
		half := series[len(series)/2:]
		for _, v := range half {
			lastHalf += v
		}
		lastHalf /= float64(len(half))
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.1f", beta),
			f2(series[len(series)-1]),
			f2(lastHalf),
		})
	}
	return &Result{ID: "ablation-beta", Tables: []*Table{tab}}
}
