// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the workload, executes the
// measurement at the requested scale, and returns paper-style tables that
// include the paper's reference numbers next to the measured ones so shape
// agreement (who wins, by roughly what factor, where crossovers fall) can
// be checked directly.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"marlperf/internal/core"
	"marlperf/internal/mpe"
	"marlperf/internal/replay"
)

// Scale selects the measurement size. The paper's full runs take days on
// an RTX 3090; Small keeps every experiment in seconds-to-minutes while
// preserving relative shapes, Full pushes closer to paper parameters
// (batch 1024, more agents) at minutes-to-hours cost.
type Scale struct {
	Name string

	AgentCounts    []int // sweep for characterization/optimization figures
	BigAgentCounts []int // fig6 scalability sweep
	RewardAgents   []int // agent counts for reward-curve figures

	BufferFill    int // transitions pre-filled for sampling measurements
	Batch         int // mini-batch size for measurements
	SamplingIters int // sampling-phase repetitions per measurement

	CharEpisodes   int // episodes for phase-breakdown runs
	CharBatch      int // batch for phase-breakdown runs
	RewardEpisodes int // episodes for reward-curve runs
	RewardBatch    int
	RewardWindow   int // smoothing window for reward series
	E2EEpisodes    int // episodes for end-to-end reduction runs

	// UpdateWorkers sizes the trainer's update-stage worker pool. The
	// characterization figures measure the serial pipeline of §III, so both
	// built-in scales keep it at 1; results are seed-identical either way.
	UpdateWorkers int
}

// SmallScale keeps the whole suite quick enough for go test benchmarks.
func SmallScale() Scale {
	return Scale{
		Name:           "small",
		AgentCounts:    []int{3, 6},
		BigAgentCounts: []int{3, 6, 12},
		RewardAgents:   []int{3},
		BufferFill:     20_000,
		Batch:          256,
		SamplingIters:  40,
		CharEpisodes:   6,
		CharBatch:      512,
		RewardEpisodes: 40,
		RewardBatch:    64,
		RewardWindow:   8,
		E2EEpisodes:    8,
		UpdateWorkers:  1,
	}
}

// FullScale sweeps the paper's agent counts with batch 1024.
func FullScale() Scale {
	return Scale{
		Name:           "full",
		AgentCounts:    []int{3, 6, 12, 24},
		BigAgentCounts: []int{3, 6, 12, 24, 48},
		RewardAgents:   []int{6, 12},
		BufferFill:     100_000,
		Batch:          1024,
		SamplingIters:  30,
		CharEpisodes:   8,
		CharBatch:      1024,
		RewardEpisodes: 300,
		RewardBatch:    256,
		RewardWindow:   20,
		E2EEpisodes:    10,
		UpdateWorkers:  1,
	}
}

// Table is a formatted result block.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Tables []*Table
}

// String renders all tables.
func (r *Result) String() string {
	parts := make([]string, 0, len(r.Tables))
	for _, t := range r.Tables {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, "\n")
}

// Markdown renders all tables as markdown sections.
func (r *Result) Markdown() string {
	parts := make([]string, 0, len(r.Tables))
	for _, t := range r.Tables {
		parts = append(parts, t.Markdown())
	}
	return strings.Join(parts, "\n")
}

// Runner executes one experiment at a scale.
type Runner struct {
	ID          string
	Description string
	Run         func(scale Scale) *Result
}

var registry = map[string]*Runner{}

func register(r *Runner) {
	if _, dup := registry[r.ID]; dup {
		panic("experiments: duplicate runner " + r.ID)
	}
	registry[r.ID] = r
}

// Get returns the runner with the given ID, or nil.
func Get(id string) *Runner { return registry[id] }

// IDs lists all registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every runner in ID order.
func All() []*Runner {
	out := make([]*Runner, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// envKind selects the multi-agent particle game.
type envKind int

const (
	envPredatorPrey envKind = iota
	envCoopNav
)

func (e envKind) String() string {
	if e == envPredatorPrey {
		return "predator-prey"
	}
	return "cooperative-navigation"
}

func (e envKind) short() string {
	if e == envPredatorPrey {
		return "PP"
	}
	return "CN"
}

func newEnv(kind envKind, agents int) mpe.Env {
	if kind == envPredatorPrey {
		return mpe.NewPredatorPrey(agents)
	}
	return mpe.NewCooperativeNavigation(agents)
}

// newSpec returns the replay spec matching an env configuration.
func newSpec(kind envKind, agents, capacity int) replay.Spec {
	env := newEnv(kind, agents)
	return replay.Spec{
		NumAgents: env.NumAgents(),
		ObsDims:   env.ObsDims(),
		ActDim:    env.NumActions(),
		Capacity:  capacity,
	}
}

// fillSynthetic loads n random transitions into buf.
func fillSynthetic(buf *replay.Buffer, n int, rng *rand.Rand) {
	spec := buf.Spec()
	obs := make([][]float64, spec.NumAgents)
	act := make([][]float64, spec.NumAgents)
	rew := make([]float64, spec.NumAgents)
	nextObs := make([][]float64, spec.NumAgents)
	done := make([]float64, spec.NumAgents)
	for a := 0; a < spec.NumAgents; a++ {
		obs[a] = make([]float64, spec.ObsDims[a])
		nextObs[a] = make([]float64, spec.ObsDims[a])
		act[a] = make([]float64, spec.ActDim)
	}
	for t := 0; t < n; t++ {
		for a := 0; a < spec.NumAgents; a++ {
			for j := range obs[a] {
				obs[a][j] = rng.Float64()
				nextObs[a][j] = rng.Float64()
			}
			for j := range act[a] {
				act[a][j] = 0
			}
			act[a][rng.Intn(spec.ActDim)] = 1
			rew[a] = rng.NormFloat64()
			done[a] = 0
		}
		buf.Add(obs, act, rew, nextObs, done)
	}
}

// newBatches allocates per-agent gather destinations for a spec.
func newBatches(spec replay.Spec, batch int) []*replay.AgentBatch {
	out := make([]*replay.AgentBatch, spec.NumAgents)
	for a := range out {
		out[a] = replay.NewAgentBatch(batch, spec.ObsDims[a], spec.ActDim)
	}
	return out
}

// charConfig builds a trainer config for characterization runs. The buffer
// capacity is sized to the (capped) characterization fill so the sampling
// phase works against a realistically out-of-cache footprint.
func charConfig(algo core.Algorithm, scale Scale, spec replay.Spec) core.Config {
	cfg := core.DefaultConfig(algo)
	cfg.BatchSize = scale.CharBatch
	cfg.BufferCapacity = maxInt(cappedFill(spec, scale.BufferFill), 4*scale.CharBatch)
	cfg.WarmupSize = scale.CharBatch
	cfg.UpdateWorkers = scale.UpdateWorkers
	return cfg
}

// fillBytesLimit caps replay allocations for large-agent sweeps.
const fillBytesLimit = int64(1024) << 20 // 1 GiB

// cappedFill limits a desired transition count so the buffer stays within
// fillBytesLimit for this spec (large agent counts have multi-KB rows).
func cappedFill(spec replay.Spec, want int) int {
	var rowBytes int64
	for _, od := range spec.ObsDims {
		rowBytes += int64(2*od+spec.ActDim+2) * 8
	}
	if rowBytes <= 0 {
		return want
	}
	limit := int(fillBytesLimit / rowBytes)
	if want > limit {
		return limit
	}
	return want
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// reduction returns the percentage improvement of opt over base
// (positive = faster).
func reduction(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - opt) / base
}
