package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"marlperf/internal/replay"
	"marlperf/internal/simcache"
)

// Figure 14 paper values: sampling-phase change (%) including the
// reshaping cost, and §VI-C2's exclusive inter-agent gather speedups.
var fig14PaperInclusive = map[envKind]map[int]float64{
	envPredatorPrey: {3: -37.1, 6: -10.35, 12: 9.3, 24: 25.8},
	envCoopNav:      {3: -63.8, 6: -19.7, 12: 4.8, 24: 15.23},
}
var fig14PaperExclusive = map[envKind]map[int]float64{
	envPredatorPrey: {3: 1.36, 6: 2.26, 12: 4.41, 24: 9.55},
	envCoopNav:      {3: 1.18, 6: 1.71, 12: 3.44, 24: 7.03},
}

func init() {
	register(&Runner{
		ID:          "fig14",
		Description: "Figure 14: transition data-layout reorganization — sampling-phase change incl. reshaping, and exclusive gather speedup",
		Run:         runFig14,
	})
}

// layoutMeasurement holds the timed legs of one configuration.
type layoutMeasurement struct {
	baseline   time.Duration // per-agent layout: N scattered gathers per trainer
	kvGather   time.Duration // KV layout: one contiguous row copy per key
	kvReshape  time.Duration // splitting gathered rows back into per-agent tensors
	kvSampling time.Duration // index generation on the KV side
}

// measureLayout times scale.SamplingIters sampling phases in both layouts.
// The KV side runs the paper's pipeline: O(m) row gathers (the exclusive
// win) followed by the data-reshaping pass that converts interleaved rows
// into the per-agent tensors the networks consume (charged in the
// inclusive numbers).
func measureLayout(kind envKind, agents int, scale Scale) layoutMeasurement {
	spec := newSpec(kind, agents, scale.BufferFill)
	buf := replay.NewBuffer(spec)
	rng := rand.New(rand.NewSource(51))
	fillSynthetic(buf, scale.BufferFill, rng)
	kv := replay.NewKVBuffer(spec)
	kv.ReorganizeFrom(buf)
	batches := newBatches(spec, scale.Batch)
	sampler := replay.NewUniformSampler(buf)
	iters := scale.SamplingIters

	// Pre-draw index sets so both layouts see identical index streams.
	indexSets := make([][]int, iters*agents)
	for i := range indexSets {
		indexSets[i] = sampler.Sample(scale.Batch, rng).Indices
	}

	var m layoutMeasurement
	start := time.Now()
	for _, idx := range indexSets {
		buf.GatherAll(idx, batches)
	}
	m.baseline = time.Since(start)

	rows := make([]float64, scale.Batch*kv.RowStride())
	start = time.Now()
	for _, idx := range indexSets {
		kv.GatherRows(idx, rows)
	}
	m.kvGather = time.Since(start)

	start = time.Now()
	for range indexSets {
		kv.SplitRows(rows, scale.Batch, batches)
	}
	m.kvReshape = time.Since(start)
	return m
}

func runFig14(scale Scale) *Result {
	incl := &Table{
		Title:   "Figure 14 reproduction: sampling-phase change with layout reorganization (reshaping included)",
		Headers: []string{"env", "agents", "baseline", "kv gather", "reshape", "change", "paper"},
		Notes: []string{
			"positive = faster; kv total = gather + reshape (converting interleaved rows to per-agent tensors)",
			"paper shape: slowdown at 3-6 agents where reshaping dominates, crossover, then speedup by 24 agents",
		},
	}
	excl := &Table{
		Title:   "Section VI-C2 reproduction: inter-agent gather speedup excluding reshaping",
		Headers: []string{"env", "agents", "baseline gather", "kv gather", "speedup", "paper"},
		Notes: []string{
			"paper shape: speedup grows steadily with agent count (1.36x-9.55x PP, 1.18x-7.03x CN)",
		},
	}
	miss := &Table{
		Title:   "Figure 14 memory-system view: simulated LLC misses and dTLB misses per layout",
		Headers: []string{"env", "agents", "baseline LLC", "kv LLC", "LLC ratio", "baseline dTLB", "kv dTLB", "dTLB ratio"},
		Notes: []string{
			"trace-driven cache model; the baseline touches 5·N distant regions per index, the KV layout one row",
			"the paper's growing exclusive speedup shows here as a miss ratio that widens with agent count",
		},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, n := range scale.AgentCounts {
			m := measureLayout(kind, n, scale)
			kvTotal := m.kvGather + m.kvReshape
			incl.Rows = append(incl.Rows, []string{
				kind.short(), fmt.Sprint(n),
				m.baseline.Round(time.Microsecond).String(),
				m.kvGather.Round(time.Microsecond).String(),
				m.kvReshape.Round(time.Microsecond).String(),
				pct(reduction(m.baseline.Seconds(), kvTotal.Seconds())),
				pct(fig14PaperInclusive[kind][n]),
			})
			excl.Rows = append(excl.Rows, []string{
				kind.short(), fmt.Sprint(n),
				m.baseline.Round(time.Microsecond).String(),
				m.kvGather.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", m.baseline.Seconds()/m.kvGather.Seconds()),
				fmt.Sprintf("%.2fx", fig14PaperExclusive[kind][n]),
			})

			base, kv := traceLayoutStats(kind, n, scale)
			miss.Rows = append(miss.Rows, []string{
				kind.short(), fmt.Sprint(n),
				fmt.Sprint(base.L3Misses), fmt.Sprint(kv.L3Misses),
				fmt.Sprintf("%.2fx", ratio(base.L3Misses, kv.L3Misses)),
				fmt.Sprint(base.TLBMisses), fmt.Sprint(kv.TLBMisses),
				fmt.Sprintf("%.2fx", ratio(base.TLBMisses, kv.TLBMisses)),
			})
		}
	}
	return &Result{ID: "fig14", Tables: []*Table{incl, excl, miss}}
}

// traceLayoutStats replays identical index streams through both layouts'
// address traces and returns (baseline, kv) hierarchy stats.
func traceLayoutStats(kind envKind, agents int, scale Scale) (simcache.Stats, simcache.Stats) {
	fill := cappedFill(newSpec(kind, agents, 1), scale.BufferFill)
	spec := newSpec(kind, agents, fill)
	buf := replay.NewBuffer(spec)
	rng := rand.New(rand.NewSource(53))
	fillSynthetic(buf, fill, rng)
	kv := replay.NewKVBuffer(spec)
	kv.ReorganizeFrom(buf)
	batches := newBatches(spec, scale.Batch)
	rows := make([]float64, scale.Batch*kv.RowStride())
	sampler := replay.NewUniformSampler(buf)

	indexSets := make([][]int, traceIters*agents)
	for i := range indexSets {
		indexSets[i] = sampler.Sample(scale.Batch, rng).Indices
	}

	hBase := simcache.NewHierarchy(simcache.Ryzen3975WX())
	buf.SetTracer(hBase)
	for _, idx := range indexSets {
		buf.GatherAll(idx, batches)
	}
	buf.SetTracer(nil)

	hKV := simcache.NewHierarchy(simcache.Ryzen3975WX())
	kv.SetTracer(hKV)
	for _, idx := range indexSets {
		kv.GatherRows(idx, rows)
	}
	kv.SetTracer(nil)
	return hBase.Stats(), hKV.Stats()
}
