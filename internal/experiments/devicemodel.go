package experiments

import (
	"time"

	"marlperf/internal/profiler"
)

// The paper's platform executes the network phases (action selection,
// target-Q, Q/P-loss backprop) on an RTX 3090 while the mini-batch sampling
// phase stays on the CPU. This substrate runs everything on host cores, so
// raw wall-clock shares overweight the network phases. For the
// characterization figures we therefore also report a GPU-host modeled
// breakdown: device-phase durations are divided by a throughput factor and
// charged a per-kernel-launch dispatch overhead, while the CPU-side phases
// (sampling, env step, replay add, layout reorg) keep their measured times.
//
// Constants are calibrated once and documented in EXPERIMENTS.md:
//   - deviceSpeedup: effective throughput ratio of the RTX 3090 over one
//     host core for these small 64-wide MLP batches (the card's 35 TFLOPS
//     peak is irrelevant at this size; ~100-150x effective is typical).
//   - launchOverhead: per-kernel dispatch + framework overhead
//     (tens of microseconds under TF2 eager/graph execution).
const (
	deviceSpeedup  = 120.0
	launchOverhead = 30 * time.Microsecond
)

// launchesPerCall estimates kernel launches per timed phase call.
func launchesPerCall(phase profiler.Phase, agents int) float64 {
	switch phase {
	case profiler.PhaseActionSelection:
		// One actor forward per agent per env step.
		return float64(agents)
	case profiler.PhaseTargetQ:
		// Every agent's target actor forward plus the target critic(s).
		return float64(agents + 2)
	case profiler.PhaseQPLoss:
		// Critic forward/backward/step + actor forward/backward/step.
		return 10
	default:
		return 0
	}
}

// devicePhases are the stages the paper offloads to the GPU.
var devicePhases = map[profiler.Phase]bool{
	profiler.PhaseActionSelection: true,
	profiler.PhaseTargetQ:         true,
	profiler.PhaseQPLoss:          true,
}

// modeledProfile maps a measured profile onto the paper's CPU-GPU platform.
func modeledProfile(p *profiler.Profile, agents int) *profiler.Profile {
	out := &profiler.Profile{}
	for _, phase := range profiler.Phases() {
		dur := p.Duration(phase)
		calls := p.Count(phase)
		if dur == 0 && calls == 0 {
			continue
		}
		if devicePhases[phase] {
			modeled := time.Duration(float64(dur)/deviceSpeedup) +
				time.Duration(float64(calls)*launchesPerCall(phase, agents))*launchOverhead
			out.Add(phase, modeled)
		} else {
			out.Add(phase, dur)
		}
	}
	return out
}
