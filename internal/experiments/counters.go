package experiments

import (
	"fmt"
	"math/rand"

	"marlperf/internal/replay"
	"marlperf/internal/simcache"
)

// traceIters is how many update-equivalents of sampling traffic are traced
// per configuration; traces are deterministic so a few suffice.
const traceIters = 3

func init() {
	register(&Runner{
		ID:          "fig4",
		Description: "Figure 4: simulated hardware-counter growth of update-all-trainers sampling as agents scale",
		Run:         runFig4,
	})
}

// fig4Paper holds the paper's average growth rates per agent doubling
// (approximate, read from the published bars).
var fig4Paper = map[string][3]float64{
	"instructions": {3.0, 3.2, 3.5},
	"cache-misses": {2.5, 3.3, 4.3},
	"dtlb-misses":  {3.0, 3.4, 4.0},
}

// sampleTraceStats replays traceIters updates of baseline uniform sampling
// traffic (N agent trainers, each gathering all N agents' batches) through
// the Ryzen hierarchy and returns the counter deltas.
func sampleTraceStats(kind envKind, agents, fill, batch int) simcache.Stats {
	spec := newSpec(kind, agents, fill)
	buf := replay.NewBuffer(spec)
	rng := rand.New(rand.NewSource(11))
	fillSynthetic(buf, fill, rng)
	h := simcache.NewHierarchy(simcache.Ryzen3975WX())
	buf.SetTracer(h)
	sampler := replay.NewUniformSampler(buf)
	batches := newBatches(spec, batch)
	for it := 0; it < traceIters; it++ {
		for trainer := 0; trainer < agents; trainer++ {
			s := sampler.Sample(batch, rng)
			buf.GatherAll(s.Indices, batches)
		}
	}
	return h.Stats()
}

func runFig4(scale Scale) *Result {
	growth := &Table{
		Title:   "Figure 4 reproduction: growth rate of sampling-phase hardware events as agents double",
		Headers: []string{"env", "transition", "instructions (Nx)", "cache misses (Nx)", "dTLB misses (Nx)", "L1 misses (Nx)"},
		Notes: []string{
			"counters come from the trace-driven cache simulator (substitute for perf; see DESIGN.md)",
			"instructions proxy = traced logical accesses; cache misses = LLC misses",
			fmt.Sprintf("paper averages per doubling: instructions %.1f-%.1fx, cache misses %.1f-%.1fx, dTLB %.1f-%.1fx",
				fig4Paper["instructions"][0], fig4Paper["instructions"][2],
				fig4Paper["cache-misses"][0], fig4Paper["cache-misses"][2],
				fig4Paper["dtlb-misses"][0], fig4Paper["dtlb-misses"][2]),
			"paper shape: super-linear growth (≥2x per agent doubling) in every event",
		},
	}
	raw := &Table{
		Title:   "Figure 4 raw counters (per configuration)",
		Headers: []string{"env", "agents", "accesses", "L1 misses", "LLC misses", "dTLB misses"},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		stats := make(map[int]simcache.Stats, len(scale.AgentCounts))
		for _, n := range scale.AgentCounts {
			stats[n] = sampleTraceStats(kind, n, scale.BufferFill, scale.Batch)
			s := stats[n]
			raw.Rows = append(raw.Rows, []string{
				kind.short(), fmt.Sprint(n),
				fmt.Sprint(s.Accesses), fmt.Sprint(s.L1Misses),
				fmt.Sprint(s.L3Misses), fmt.Sprint(s.TLBMisses),
			})
		}
		for i := 1; i < len(scale.AgentCounts); i++ {
			lo, hi := scale.AgentCounts[i-1], scale.AgentCounts[i]
			a, b := stats[lo], stats[hi]
			growth.Rows = append(growth.Rows, []string{
				kind.short(),
				fmt.Sprintf("%d to %d agents", lo, hi),
				f2(ratio(b.Accesses, a.Accesses)),
				f2(ratio(b.L3Misses, a.L3Misses)),
				f2(ratio(b.TLBMisses, a.TLBMisses)),
				f2(ratio(b.L1Misses, a.L1Misses)),
			})
		}
	}
	return &Result{ID: "fig4", Tables: []*Table{growth, raw}}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
