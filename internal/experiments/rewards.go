package experiments

import (
	"fmt"
	"time"

	"marlperf/internal/core"
	"marlperf/internal/profiler"
)

func init() {
	register(&Runner{
		ID:          "fig10",
		Description: "Figure 10: reward curves — baseline MADDPG vs cache-aware sampling (n16r64, n64r16)",
		Run:         runFig10,
	})
	register(&Runner{
		ID:          "fig11",
		Description: "Figure 11: reward curves — PER-MADDPG vs information-prioritized locality-aware sampling",
		Run:         runFig11,
	})
}

// rewardVariant is one training configuration in a reward-curve comparison.
type rewardVariant struct {
	label string
	cfg   func(base core.Config) core.Config
}

// rewardCurve trains one variant and returns window-averaged mean episode
// rewards plus the sampling-phase time from the profile.
func rewardCurve(kind envKind, agents int, scale Scale, variant rewardVariant, seed int64) (series []float64, samplingTime time.Duration) {
	cfg := core.DefaultConfig(core.MADDPG)
	cfg.BatchSize = scale.RewardBatch
	cfg.WarmupSize = scale.RewardBatch
	cfg.BufferCapacity = maxInt(8*scale.RewardBatch, 4096)
	cfg.Seed = seed
	cfg.UpdateWorkers = scale.UpdateWorkers
	cfg = variant.cfg(cfg)
	tr, err := core.NewTrainer(cfg, newEnv(kind, agents))
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	window := scale.RewardWindow
	var acc float64
	count := 0
	tr.RunEpisodes(scale.RewardEpisodes, func(ep int, reward float64) {
		acc += reward
		count++
		if count == window {
			series = append(series, acc/float64(window))
			acc, count = 0, 0
		}
	})
	return series, tr.Profile().Duration(profiler.PhaseSampling)
}

// rewardTable renders windowed series for several variants side by side.
func rewardTable(title string, kind envKind, agents int, scale Scale, variants []rewardVariant) (*Table, map[string]time.Duration) {
	headers := []string{"episodes"}
	for _, v := range variants {
		headers = append(headers, v.label)
	}
	tab := &Table{
		Title:   fmt.Sprintf("%s — %s, %d agents", title, kind, agents),
		Headers: headers,
		Notes: []string{
			fmt.Sprintf("mean episode reward, %d-episode windows over %d episodes (batch %d; paper: 60k episodes, batch 1024)",
				scale.RewardWindow, scale.RewardEpisodes, scale.RewardBatch),
		},
	}
	curves := make([][]float64, len(variants))
	sampling := map[string]time.Duration{}
	for i, v := range variants {
		series, st := rewardCurve(kind, agents, scale, v, 7)
		curves[i] = series
		sampling[v.label] = st
	}
	rows := len(curves[0])
	for _, c := range curves {
		if len(c) < rows {
			rows = len(c)
		}
	}
	for r := 0; r < rows; r++ {
		row := []string{fmt.Sprint((r + 1) * scale.RewardWindow)}
		for i := range variants {
			row = append(row, f2(curves[i][r]))
		}
		tab.Rows = append(tab.Rows, row)
	}
	// Final-window summary row for quick parity checks.
	if rows > 0 {
		row := []string{"final"}
		for i := range variants {
			row = append(row, f2(curves[i][rows-1]))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, sampling
}

// fig10Configs mirrors the paper's panels: PP-6, CN-6, CN-12 at full scale.
func rewardPanels(scale Scale) []struct {
	kind   envKind
	agents int
} {
	var panels []struct {
		kind   envKind
		agents int
	}
	for i, n := range scale.RewardAgents {
		if i == 0 {
			panels = append(panels, struct {
				kind   envKind
				agents int
			}{envPredatorPrey, n})
		}
		panels = append(panels, struct {
			kind   envKind
			agents int
		}{envCoopNav, n})
	}
	return panels
}

func runFig10(scale Scale) *Result {
	variants := []rewardVariant{
		{"baseline", func(c core.Config) core.Config { c.Sampler = core.SamplerUniform; return c }},
		{"n16r64", func(c core.Config) core.Config {
			c.Sampler = core.SamplerLocality
			c.Neighbors, c.Refs = 16, 64
			return c
		}},
		{"n64r16", func(c core.Config) core.Config {
			c.Sampler = core.SamplerLocality
			c.Neighbors, c.Refs = 64, 16
			return c
		}},
	}
	res := &Result{ID: "fig10"}
	for _, p := range rewardPanels(scale) {
		tab, _ := rewardTable("Figure 10 reproduction: baseline vs cache-aware sampling", p.kind, p.agents, scale, variants)
		tab.Notes = append(tab.Notes, "paper shape: cache-aware curves track the baseline closely; slight degradation possible at CN-12 (motivating the IP sampler)")
		res.Tables = append(res.Tables, tab)
	}
	return res
}

func runFig11(scale Scale) *Result {
	variants := []rewardVariant{
		{"per-maddpg", func(c core.Config) core.Config { c.Sampler = core.SamplerPER; return c }},
		{"ip-maddpg", func(c core.Config) core.Config { c.Sampler = core.SamplerIPLocality; c.ISBeta = 1; return c }},
	}
	res := &Result{ID: "fig11"}
	speedTab := &Table{
		Title:   "Section VI-C1 reproduction: sampling-phase time, PER vs information-prioritized locality-aware",
		Headers: []string{"env", "agents", "per sampling", "ip sampling", "speedup"},
		Notes:   []string{"paper reports an average 2x sampling-phase speedup for IP over PER across 3-12 agents"},
	}
	for _, p := range rewardPanels(scale) {
		tab, sampling := rewardTable("Figure 11 reproduction: PER vs information-prioritized sampling", p.kind, p.agents, scale, variants)
		tab.Notes = append(tab.Notes, "paper shape: IP tracks PER's reward curve while sampling faster")
		res.Tables = append(res.Tables, tab)
		per := sampling["per-maddpg"]
		ip := sampling["ip-maddpg"]
		speed := "-"
		if ip > 0 {
			speed = fmt.Sprintf("%.2fx", per.Seconds()/ip.Seconds())
		}
		speedTab.Rows = append(speedTab.Rows, []string{
			p.kind.short(), fmt.Sprint(p.agents),
			per.Round(time.Microsecond).String(),
			ip.Round(time.Microsecond).String(),
			speed,
		})
	}
	res.Tables = append(res.Tables, speedTab)
	return res
}
