package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"marlperf/internal/core"
	"marlperf/internal/profiler"
	"marlperf/internal/replay"
	"marlperf/internal/simcache"
)

// Paper reference reductions (%), read from the published bars (±1-2pp).
var fig8Paper = map[envKind]map[string]map[int]float64{
	envPredatorPrey: {
		"n16r64": {3: 35.9, 6: 32.9, 12: 33.8, 24: 35.0},
		"n64r16": {3: 36.6, 6: 34.9, 12: 37.5, 24: 37.2},
	},
	envCoopNav: {
		"n16r64": {3: 28.4, 6: 32.8, 12: 31.0, 24: 33.4},
		"n64r16": {3: 33.2, 6: 29.0, 12: 33.8, 24: 35.0},
	},
}

var fig9Paper = map[envKind]map[string]map[int]float64{
	envPredatorPrey: {
		"n16r64": {3: 7.8, 6: 6.1, 12: 7.6, 24: 19.1},
		"n64r16": {3: 8.2, 6: 6.5, 12: 8.6, 24: 20.5},
	},
	envCoopNav: {
		"n16r64": {3: 8.6, 6: 11.1, 12: 10.9, 24: 14.1},
		"n64r16": {3: 9.05, 6: 12.1, 12: 11.9, 24: 16.6},
	},
}

// §VI-A cache-miss reductions for MADDPG PP with (n=16, ref=64).
var cacheMissPaper = map[int]float64{3: 16.1, 6: 21.8, 12: 25.0, 24: 29.0}

func init() {
	register(&Runner{
		ID:          "fig8",
		Description: "Figure 8: mini-batch sampling-phase time reduction from cache-locality-aware sampling",
		Run:         runFig8,
	})
	register(&Runner{
		ID:          "fig9",
		Description: "Figure 9: end-to-end training-time reduction from cache-locality-aware sampling",
		Run:         runFig9,
	})
	register(&Runner{
		ID:          "fig12",
		Description: "Figure 12: modeled savings on an i7-9700K CPU-only platform",
		Run:         func(s Scale) *Result { return runCrossPlatform("fig12", simcache.I79700K(), s) },
	})
	register(&Runner{
		ID:          "fig13",
		Description: "Figure 13: modeled savings on an i7-9700K + GTX 1070 CPU-GPU platform",
		Run:         func(s Scale) *Result { return runCrossPlatform("fig13", simcache.GTX1070(), s) },
	})
}

// samplerVariant pairs a label with a sampler constructor over a buffer.
type samplerVariant struct {
	label string
	mk    func(buf *replay.Buffer) replay.Sampler
}

func baselineAndLocalityVariants() []samplerVariant {
	return []samplerVariant{
		{"uniform", func(b *replay.Buffer) replay.Sampler { return replay.NewUniformSampler(b) }},
		{"n16r64", func(b *replay.Buffer) replay.Sampler { return replay.NewLocalitySampler(b, 16, 64) }},
		{"n64r16", func(b *replay.Buffer) replay.Sampler { return replay.NewLocalitySampler(b, 64, 16) }},
	}
}

// measureSamplingWall times iters full sampling phases (N agent trainers
// each drawing indices and gathering every agent's batch) and returns the
// total wall time.
func measureSamplingWall(buf *replay.Buffer, sampler replay.Sampler, batches []*replay.AgentBatch, agents, batch, iters int, rng *rand.Rand) time.Duration {
	start := time.Now()
	for it := 0; it < iters; it++ {
		for trainer := 0; trainer < agents; trainer++ {
			s := sampler.Sample(batch, rng)
			buf.GatherAll(s.Indices, batches)
		}
	}
	return time.Since(start)
}

func runFig8(scale Scale) *Result {
	timeTab := &Table{
		Title:   "Figure 8 reproduction: sampling-phase time reduction vs baseline random sampling",
		Headers: []string{"env", "agents", "baseline", "n16r64", "reduction", "paper", "n64r16", "reduction", "paper"},
		Notes: []string{
			fmt.Sprintf("buffer fill %d, batch %d, %d sampling phases per point", scale.BufferFill, scale.Batch, scale.SamplingIters),
			"paper shape: 28-38%% sampling-phase reduction at every configuration; the longer-run (64,16) point reduces slightly more",
		},
	}
	missTab := &Table{
		Title:   "Section VI-A reproduction: simulated cache-miss reduction (n=16, ref=64 vs baseline)",
		Headers: []string{"env", "agents", "baseline LLC misses", "locality LLC misses", "reduction", "paper (PP)"},
		Notes:   []string{"paper reports 16.1%/21.8%/25%/29% fewer cache misses for 3/6/12/24 agents (predator-prey)"},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, n := range scale.AgentCounts {
			spec := newSpec(kind, n, scale.BufferFill)
			buf := replay.NewBuffer(spec)
			rng := rand.New(rand.NewSource(21))
			fillSynthetic(buf, scale.BufferFill, rng)
			batches := newBatches(spec, scale.Batch)

			times := map[string]time.Duration{}
			for _, v := range baselineAndLocalityVariants() {
				s := v.mk(buf)
				// Warm one pass so allocations settle, then measure.
				measureSamplingWall(buf, s, batches, n, scale.Batch, 1, rng)
				times[v.label] = measureSamplingWall(buf, s, batches, n, scale.Batch, scale.SamplingIters, rng)
			}
			base := times["uniform"].Seconds()
			timeTab.Rows = append(timeTab.Rows, []string{
				kind.short(), fmt.Sprint(n),
				times["uniform"].Round(time.Microsecond).String(),
				times["n16r64"].Round(time.Microsecond).String(),
				pct(reduction(base, times["n16r64"].Seconds())),
				pct(fig8Paper[kind]["n16r64"][n]),
				times["n64r16"].Round(time.Microsecond).String(),
				pct(reduction(base, times["n64r16"].Seconds())),
				pct(fig8Paper[kind]["n64r16"][n]),
			})

			// Simulated cache-miss comparison for the same traffic.
			baseStats := traceSamplerStats(buf, replay.NewUniformSampler(buf), batches, n, scale.Batch)
			locStats := traceSamplerStats(buf, replay.NewLocalitySampler(buf, 16, 64), batches, n, scale.Batch)
			paperRef := "-"
			if kind == envPredatorPrey {
				paperRef = pct(cacheMissPaper[n])
			}
			missTab.Rows = append(missTab.Rows, []string{
				kind.short(), fmt.Sprint(n),
				fmt.Sprint(baseStats.L3Misses),
				fmt.Sprint(locStats.L3Misses),
				pct(reduction(float64(baseStats.L3Misses), float64(locStats.L3Misses))),
				paperRef,
			})
		}
	}
	return &Result{ID: "fig8", Tables: []*Table{timeTab, missTab}}
}

// traceSamplerStats replays traceIters sampling phases through the Ryzen
// hierarchy for the given sampler and returns the counters.
func traceSamplerStats(buf *replay.Buffer, sampler replay.Sampler, batches []*replay.AgentBatch, agents, batch int) simcache.Stats {
	h := simcache.NewHierarchy(simcache.Ryzen3975WX())
	buf.SetTracer(h)
	defer buf.SetTracer(nil)
	rng := rand.New(rand.NewSource(31))
	for it := 0; it < traceIters; it++ {
		for trainer := 0; trainer < agents; trainer++ {
			s := sampler.Sample(batch, rng)
			buf.GatherAll(s.Indices, batches)
		}
	}
	return h.Stats()
}

func runFig9(scale Scale) *Result {
	tab := &Table{
		Title:   "Figure 9 reproduction: end-to-end training-time reduction vs baseline MADDPG",
		Headers: []string{"env", "agents", "baseline", "n16r64", "reduction", "paper", "n64r16", "reduction", "paper"},
		Notes: []string{
			fmt.Sprintf("%d training episodes per run, batch %d", scale.E2EEpisodes, scale.CharBatch),
			"paper shape: reductions grow from ~8%% (3 agents) to ~20%% (24 agents) as sampling's share of total time grows",
		},
	}
	for _, kind := range []envKind{envPredatorPrey, envCoopNav} {
		for _, n := range scale.AgentCounts {
			run := func(sampler core.SamplerKind, neighbors, refs int) time.Duration {
				cfg := charConfig(core.MADDPG, scale, newSpec(kind, n, 1))
				cfg.Sampler = sampler
				cfg.Neighbors = neighbors
				cfg.Refs = refs
				tr, err := core.NewTrainer(cfg, newEnv(kind, n))
				if err != nil {
					panic(err)
				}
				defer tr.Close()
				// Steady-state buffer occupancy so the sampling phase works
				// against a realistic footprint.
				fillSynthetic(tr.Buffer(), cfg.BufferCapacity, rand.New(rand.NewSource(cfg.Seed)))
				start := time.Now()
				tr.RunEpisodes(scale.E2EEpisodes, nil)
				return time.Since(start)
			}
			base := run(core.SamplerUniform, 0, 0)
			l1664 := run(core.SamplerLocality, 16, 64)
			l6416 := run(core.SamplerLocality, 64, 16)
			tab.Rows = append(tab.Rows, []string{
				kind.short(), fmt.Sprint(n),
				base.Round(time.Millisecond).String(),
				l1664.Round(time.Millisecond).String(),
				pct(reduction(base.Seconds(), l1664.Seconds())),
				pct(fig9Paper[kind]["n16r64"][n]),
				l6416.Round(time.Millisecond).String(),
				pct(reduction(base.Seconds(), l6416.Seconds())),
				pct(fig9Paper[kind]["n64r16"][n]),
			})
		}
	}
	return &Result{ID: "fig9", Tables: []*Table{tab}}
}

// Cross-validation paper references (approximate bar readings).
var fig12Paper = map[string]map[int]float64{
	"mbs": {3: 37.5, 6: 34.9, 12: 38.4},
	"tt":  {3: 9.9, 6: 12.1, 12: 18.5},
}
var fig13Paper = map[string]map[int]float64{
	"mbs": {3: 31.7, 6: 32.8, 12: 39.2},
	"tt":  {3: 3.2, 6: 6.5, 12: 13.3},
}

// runCrossPlatform models Figures 12-13: sampling traffic for MADDPG
// predator-prey is traced through the platform's cache hierarchy, modeled
// sampling (MBS) time comes from the latency model, and total time (TT)
// adds the non-sampling share measured on this host plus the platform's
// device-transfer term (zero for CPU-only).
func runCrossPlatform(id string, platform simcache.Platform, scale Scale) *Result {
	paper := fig12Paper
	if id == "fig13" {
		paper = fig13Paper
	}
	tab := &Table{
		Title:   fmt.Sprintf("%s reproduction: modeled savings on %s (MADDPG predator-prey)", id, platform.Name),
		Headers: []string{"agents", "MBS reduction (n16r64)", "paper MBS", "TT reduction (n16r64)", "paper TT"},
		Notes: []string{
			"modeled experiment: miss counts from the trace simulator, times from the platform latency model (see DESIGN.md)",
			"paper shape: CPU-only total-time savings exceed the GPU-attached platform's, where PCIe transfer dilutes the benefit",
		},
	}
	kind := envPredatorPrey
	for _, n := range scale.AgentCounts {
		spec := newSpec(kind, n, scale.BufferFill)
		buf := replay.NewBuffer(spec)
		rng := rand.New(rand.NewSource(41))
		fillSynthetic(buf, scale.BufferFill, rng)
		batches := newBatches(spec, scale.Batch)

		mbs := map[string]float64{}
		for _, v := range []samplerVariant{
			{"uniform", func(b *replay.Buffer) replay.Sampler { return replay.NewUniformSampler(b) }},
			{"n16r64", func(b *replay.Buffer) replay.Sampler { return replay.NewLocalitySampler(b, 16, 64) }},
		} {
			h := simcache.NewHierarchy(platform)
			buf.SetTracer(h)
			r2 := rand.New(rand.NewSource(42))
			for it := 0; it < traceIters; it++ {
				for trainer := 0; trainer < n; trainer++ {
					s := v.mk(buf).Sample(scale.Batch, r2)
					buf.GatherAll(s.Indices, batches)
				}
			}
			buf.SetTracer(nil)
			mbs[v.label] = platform.ModeledTimeNS(h.Stats(), 0)
		}

		// Non-sampling share of total time under the CPU-GPU platform
		// model (network phases on device), matching the paper's setting.
		c := runCharacterization(core.MADDPG, kind, n, scale)
		samplingShare := modeledProfile(c.prof, n).Percent(profiler.PhaseSampling) / 100
		if samplingShare <= 0.01 {
			samplingShare = 0.01
		}
		other := mbs["uniform"] * (1 - samplingShare) / samplingShare
		// Per-update device transfer: every agent trainer ships its joint
		// mini-batch to the device; charged equally to both configurations.
		batchBytes := 0
		for a := 0; a < spec.NumAgents; a++ {
			batchBytes += scale.Batch * (2*spec.ObsDims[a] + spec.ActDim + 2) * 8
		}
		transfer := 0.0
		if platform.TransferPerByte > 0 || platform.TransferFixed > 0 {
			transfer = float64(traceIters*n) * (platform.TransferFixed + platform.TransferPerByte*float64(batchBytes))
		}
		ttBase := mbs["uniform"] + other + transfer
		ttOpt := mbs["n16r64"] + other + transfer

		paperMBS, okM := paper["mbs"][n]
		paperTT, okT := paper["tt"][n]
		mbsStr, ttStr := "-", "-"
		if okM {
			mbsStr = pct(paperMBS)
		}
		if okT {
			ttStr = pct(paperTT)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(n),
			pct(reduction(mbs["uniform"], mbs["n16r64"])),
			mbsStr,
			pct(reduction(ttBase, ttOpt)),
			ttStr,
		})
	}
	return &Result{ID: id, Tables: []*Table{tab}}
}
