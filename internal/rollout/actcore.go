package rollout

import (
	"fmt"

	"marlperf/internal/nn"
	"marlperf/internal/tensor"
)

// ActCore is the batched-forward heart of action selection, shared between
// the rollout engine (acting for training) and the serving gateway
// (internal/serve): per-agent observation matrices filled row by row, one
// batched forward per agent network, and a private copy of the logits.
//
// Determinism contract: every output row of a dense layer is computed with
// the same operation order at any batch size, so the logits for one
// observation are bit-identical whether it travels alone (rows=1) or
// coalesced into a larger batch — the property that makes micro-batched
// serving answers equal per-request answers, and vectorized rollouts equal
// single-env rollouts. Forward never touches an RNG.
//
// An ActCore is not safe for concurrent use; one goroutine (the engine's
// step loop, the gateway's batch loop) must own it.
type ActCore struct {
	obsDims []int
	actDim  int
	agents  []*nn.Network

	rows    int
	obsMats []*tensor.Matrix // per agent: rows×obsDims[i], capacity maxRows
	logits  []*tensor.Matrix // per agent: rows×actDim copy of the forward output
	obsFull [][]float64      // full-capacity backing for obsMats
	lgFull  [][]float64      // full-capacity backing for logits
}

// NewActCore builds a core for the given per-agent observation widths and
// shared action width, able to batch up to maxRows observations per
// forward. No networks are bound yet; Forward panics until SetAgents.
func NewActCore(obsDims []int, actDim, maxRows int) *ActCore {
	if len(obsDims) == 0 || actDim <= 0 || maxRows <= 0 {
		panic(fmt.Sprintf("rollout: NewActCore(%v, %d, %d): need ≥1 agent, positive widths and capacity", obsDims, actDim, maxRows))
	}
	c := &ActCore{
		obsDims: append([]int(nil), obsDims...),
		actDim:  actDim,
		obsMats: make([]*tensor.Matrix, len(obsDims)),
		logits:  make([]*tensor.Matrix, len(obsDims)),
		obsFull: make([][]float64, len(obsDims)),
		lgFull:  make([][]float64, len(obsDims)),
	}
	for i, w := range obsDims {
		c.obsMats[i] = tensor.New(maxRows, w)
		c.logits[i] = tensor.New(maxRows, actDim)
		c.obsFull[i] = c.obsMats[i].Data
		c.lgFull[i] = c.logits[i].Data
	}
	c.rows = maxRows
	return c
}

// NumAgents returns the per-agent width count the core was built for.
func (c *ActCore) NumAgents() int { return len(c.obsDims) }

// ObsDims returns the per-agent observation widths.
func (c *ActCore) ObsDims() []int { return c.obsDims }

// ActDim returns the shared action width.
func (c *ActCore) ActDim() int { return c.actDim }

// MaxRows returns the batch capacity.
func (c *ActCore) MaxRows() int { return len(c.obsFull[0]) / c.obsDims[0] }

// Agents returns the currently bound networks (nil before SetAgents).
func (c *ActCore) Agents() []*nn.Network { return c.agents }

// SetAgents validates the networks' input/output widths against the core's
// dims and binds them for subsequent Forwards. The networks are used by
// reference — hot-swapping between Forwards is the policy-install path.
func (c *ActCore) SetAgents(agents []*nn.Network) error {
	if err := CheckAgents(agents, c.obsDims, c.actDim); err != nil {
		return err
	}
	c.agents = agents
	return nil
}

// Begin sizes the per-agent matrices for a batch of rows observations
// (1 ≤ rows ≤ MaxRows). Call before SetObs/Forward for each batch.
func (c *ActCore) Begin(rows int) {
	if rows < 1 || rows > c.MaxRows() {
		panic(fmt.Sprintf("rollout: ActCore.Begin(%d): capacity is %d", rows, c.MaxRows()))
	}
	c.rows = rows
	for i, w := range c.obsDims {
		c.obsMats[i].Rows = rows
		c.obsMats[i].Data = c.obsFull[i][:rows*w]
		c.logits[i].Rows = rows
		c.logits[i].Data = c.lgFull[i][:rows*c.actDim]
	}
}

// SetObs copies one agent's observation into batch row `row`.
func (c *ActCore) SetObs(row, agent int, obs []float64) {
	w := c.obsDims[agent]
	copy(c.obsMats[agent].Data[row*w:(row+1)*w], obs)
}

// Forward runs one batched forward per agent network over the rows set
// since Begin, copying each output into the core's private logits storage.
// The copy matters: Forward output is owned by the network's final layer,
// and nothing stops a caller binding one shared network for several agents.
func (c *ActCore) Forward() {
	if c.agents == nil {
		panic("rollout: ActCore.Forward before SetAgents")
	}
	for i, net := range c.agents {
		c.logits[i].CopyFrom(net.Forward(c.obsMats[i]))
	}
}

// Logits returns the batch-row view of one agent's logits from the last
// Forward. The slice aliases core storage — read it before the next Begin.
func (c *ActCore) Logits(agent, row int) []float64 {
	return c.logits[agent].Row(row)
}

// NetworkDims derives the per-agent observation widths and the shared
// action width from the networks themselves (first dense layer in, last
// dense head out) — how a serving gateway learns the contract of a policy
// snapshot without access to the environment that trained it.
func NetworkDims(agents []*nn.Network) (obsDims []int, actDim int, err error) {
	if len(agents) == 0 {
		return nil, 0, fmt.Errorf("rollout: no agent networks")
	}
	obsDims = make([]int, len(agents))
	for i, net := range agents {
		if net == nil || len(net.Layers) == 0 {
			return nil, 0, fmt.Errorf("rollout: agent %d network is empty", i)
		}
		first, ok := net.Layers[0].(*nn.Dense)
		if !ok {
			return nil, 0, fmt.Errorf("rollout: agent %d network does not start with a dense layer", i)
		}
		last, ok := net.Layers[len(net.Layers)-1].(*nn.Dense)
		if !ok {
			return nil, 0, fmt.Errorf("rollout: agent %d network does not end with a dense head", i)
		}
		obsDims[i] = first.In()
		if i == 0 {
			actDim = last.Out()
		} else if last.Out() != actDim {
			return nil, 0, fmt.Errorf("rollout: agent %d network emits %d actions, agent 0 emits %d", i, last.Out(), actDim)
		}
	}
	return obsDims, actDim, nil
}

// CheckAgents verifies the networks' input/output widths against the given
// per-agent observation widths and action width — the validation both the
// rollout engine and the serving gateway run before installing a policy.
func CheckAgents(agents []*nn.Network, obsDims []int, actDim int) error {
	if len(agents) != len(obsDims) {
		return fmt.Errorf("rollout: policy has %d agents, want %d", len(agents), len(obsDims))
	}
	for i, net := range agents {
		if net == nil || len(net.Layers) == 0 {
			return fmt.Errorf("rollout: agent %d network is empty", i)
		}
		first, ok := net.Layers[0].(*nn.Dense)
		if !ok {
			return fmt.Errorf("rollout: agent %d network does not start with a dense layer", i)
		}
		if first.In() != obsDims[i] {
			return fmt.Errorf("rollout: agent %d network wants %d-dim obs, caller gives %d", i, first.In(), obsDims[i])
		}
		last, ok := net.Layers[len(net.Layers)-1].(*nn.Dense)
		if !ok {
			return fmt.Errorf("rollout: agent %d network does not end with a dense head", i)
		}
		if last.Out() != actDim {
			return fmt.Errorf("rollout: agent %d network emits %d actions, caller wants %d", i, last.Out(), actDim)
		}
	}
	return nil
}
