// Package rollout is the acting half of the distributed MARL loop: a
// vectorized engine that steps B environments per actor process with batched
// forward passes through the acting networks, amortizing per-step dispatch
// the same way the update engine batches training work.
//
// Determinism contract: every environment owns an RNG stream derived from
// the run seed and its global environment index (see EnvSeed), consumed in a
// fixed per-env order — Gumbel exploration draws agent-by-agent, then the
// environment's own internal draws during Step. Batched forwards never touch
// an RNG and each output row of a dense layer is computed with the same
// operation order at any batch size, so a B-env engine produces trajectories
// bit-identical to B single-env engines running the same global indices —
// the property TestVectorizedMatchesSingleEnv pins down.
package rollout

import (
	"fmt"
	"math"
	"math/rand"

	"marlperf/internal/mpe"
	"marlperf/internal/nn"
	"marlperf/internal/profiler"
	"marlperf/internal/replay"
	"marlperf/internal/telemetry"
	"marlperf/internal/tensor"
	"marlperf/internal/trace"
)

// envStreamPrime spaces the per-env RNG streams derived from the run seed.
// Deliberately distinct from core's agentStreamPrime so an actor and a
// learner sharing one run seed never collide streams.
const envStreamPrime = 998_244_353

// EnvSeed derives the RNG stream seed for the environment with the given
// global index (FirstEnvIndex+local slot) from the run seed.
func EnvSeed(seed int64, globalIdx int) int64 {
	return seed ^ int64(globalIdx+1)*envStreamPrime
}

// Config describes a rollout engine.
type Config struct {
	// NewEnv constructs one environment instance. Required; called Envs
	// times, so instances must be independent.
	NewEnv func() mpe.Env
	// Envs is the number of environments stepped per Step call (B).
	// Defaults to 1.
	Envs int
	// FirstEnvIndex is the global index of this engine's first environment.
	// Actor k of a fleet running E envs each passes k·E so every env in the
	// fleet draws from a distinct RNG stream.
	FirstEnvIndex int
	// Seed is the run seed the per-env streams derive from.
	Seed int64
	// GumbelTau is the exploration temperature. Defaults to 1.0.
	GumbelTau float64
	// MaxEpisodeLen caps episodes (the paper uses 25). Defaults to 25.
	MaxEpisodeLen int
	// PerEnvForward disables batched acting: every env forwards its own
	// 1-row batch. Trajectories are identical either way (forwards consume
	// no randomness); this is the baseline BenchmarkRolloutVec compares
	// against.
	PerEnvForward bool
	// Sink, when non-nil, receives every transition in (step, env) order.
	Sink replay.TransitionSink
	// Prof, when non-nil, receives phase timings (action selection, env
	// step, replay add); nil keeps an internal profile.
	Prof *profiler.Profile
	// Registry, when non-nil, receives marl_rollout_* and marl_policy_*
	// actor-side metrics.
	Registry *telemetry.Registry
	// Tracer, when set and enabled, opens a sampled root span per Step call
	// (trace ID derived from Seed and the step index, so actor traces are
	// reproducible across runs) with phase child spans, and sets the active
	// context so the sink's append RPC joins the step's trace. Tracing draws
	// no randomness and never touches trajectory bytes.
	Tracer *trace.Tracer
}

// Engine steps B environments under one acting policy. It is not safe for
// concurrent use: Install and Step must come from one goroutine (the actor
// loop), which is exactly what makes a policy hot-swap between steps torn-
// read-free — the networks swap whole, never mid-forward.
type Engine struct {
	cfg     Config
	n       int
	obsDims []int
	actDim  int

	envs []mpe.Env
	rngs []*rand.Rand

	agents   []*nn.Network
	version  uint64
	knownVer uint64 // newest policy version seen (installed or not)

	obs     [][][]float64 // [env][agent][obsDim]
	epStep  []int
	epRew   []float64
	lastRew float64
	steps   uint64
	eps     uint64

	prof      *profiler.Profile
	tracer    *trace.Tracer
	stepCalls uint64 // Step invocations (trace sampling index)

	// Acting scratch.
	core      *ActCore       // batched per-agent forwards (shared with internal/serve)
	obsRow    *tensor.Matrix // header rebound per (env, agent) in per-env mode
	probs     [][][]float64  // [env][agent][actDim]
	actionIdx [][]int        // [env][agent]
	dones     [][]float64    // [env][agent]

	stepsC    *telemetry.Counter
	episodesC *telemetry.Counter
	installsC *telemetry.Counter
	actingG   *telemetry.Gauge
	staleG    *telemetry.Gauge
	actLagH   *telemetry.Histogram
}

// actLagBuckets bounds the act-time version-lag histogram: how many policy
// versions behind the newest-known one the engine was acting on, observed
// once per Step call. Power-of-two-ish buckets because a healthy loop sits
// at 0-1 and a stalled syncer grows geometrically.
func actLagBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
}

// NewEngine validates cfg, constructs the B environments, seeds their RNG
// streams, and resets each one. No policy is installed yet; Step fails until
// the first Install.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.NewEnv == nil {
		return nil, fmt.Errorf("rollout: Config.NewEnv is required")
	}
	if cfg.Envs <= 0 {
		cfg.Envs = 1
	}
	if cfg.FirstEnvIndex < 0 {
		return nil, fmt.Errorf("rollout: negative FirstEnvIndex %d", cfg.FirstEnvIndex)
	}
	if cfg.GumbelTau <= 0 {
		cfg.GumbelTau = 1.0
	}
	if cfg.MaxEpisodeLen <= 0 {
		cfg.MaxEpisodeLen = 25
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &Engine{
		cfg:       cfg,
		prof:      cfg.Prof,
		tracer:    cfg.Tracer,
		stepsC:    reg.Counter("marl_rollout_env_steps_total"),
		episodesC: reg.Counter("marl_rollout_episodes_total"),
		installsC: reg.Counter("marl_policy_installs_total"),
		actingG:   reg.Gauge("marl_policy_acting_version"),
		staleG:    reg.Gauge("marl_policy_staleness_versions"),
		actLagH:   reg.Histogram("marl_policy_act_lag_versions", actLagBuckets()),
	}
	if e.prof == nil {
		e.prof = &profiler.Profile{}
	}
	reg.SetHelp("marl_rollout_env_steps_total", "Environment steps taken across all vectorized envs.")
	reg.SetHelp("marl_policy_staleness_versions", "Versions the acting policy lags the newest one this actor has seen.")
	reg.SetHelp("marl_policy_act_lag_versions", "Per-Step histogram of how many versions behind the newest-known policy the engine acted.")

	b := cfg.Envs
	e.envs = make([]mpe.Env, b)
	e.rngs = make([]*rand.Rand, b)
	e.obs = make([][][]float64, b)
	for i := 0; i < b; i++ {
		e.envs[i] = cfg.NewEnv()
		e.rngs[i] = rand.New(rand.NewSource(EnvSeed(cfg.Seed, cfg.FirstEnvIndex+i)))
	}
	e.n = e.envs[0].NumAgents()
	e.obsDims = e.envs[0].ObsDims()
	e.actDim = e.envs[0].NumActions()
	for i, env := range e.envs {
		if env.NumAgents() != e.n || env.NumActions() != e.actDim {
			return nil, fmt.Errorf("rollout: env %d disagrees on agent/action counts", i)
		}
		e.obs[i] = env.Reset(e.rngs[i])
	}

	e.epStep = make([]int, b)
	e.epRew = make([]float64, b)
	e.core = NewActCore(e.obsDims, e.actDim, b)
	e.obsRow = tensor.New(1, 0)
	e.probs = make([][][]float64, b)
	e.actionIdx = make([][]int, b)
	e.dones = make([][]float64, b)
	for env := 0; env < b; env++ {
		e.probs[env] = make([][]float64, e.n)
		for i := 0; i < e.n; i++ {
			e.probs[env][i] = make([]float64, e.actDim)
		}
		e.actionIdx[env] = make([]int, e.n)
		e.dones[env] = make([]float64, e.n)
	}
	return e, nil
}

// Install hot-swaps the acting policy. version is the policysync serving
// version (informational; shows up in metrics and PolicyVersion). Call only
// between Step calls — the engine is single-goroutine by contract, so the
// swap can never tear a forward pass.
func (e *Engine) Install(version uint64, agents []*nn.Network) error {
	return e.InstallCtx(version, agents, trace.Context{})
}

// InstallCtx is Install carrying the trace position the snapshot's delivery
// descended from (Snapshot.TraceCtx). A valid context records a
// "policy-install" span parented on the fetch — the final hop of the
// learner update → policyd publish → actor hot-swap chain. A zero context
// records nothing.
func (e *Engine) InstallCtx(version uint64, agents []*nn.Network, tctx trace.Context) error {
	sp := e.tracer.StartSpan(tctx, "policy-install")
	if err := e.core.SetAgents(agents); err != nil {
		sp.EndArg("error", 1)
		return err
	}
	e.agents = agents
	e.version = version
	if version > e.knownVer {
		e.knownVer = version
	}
	e.installsC.Inc()
	e.actingG.Set(float64(version))
	e.staleG.Set(0)
	sp.EndArg("version", int64(version))
	return nil
}

// NoteKnownVersion records the newest policy version this actor has seen
// (installed or not), updating the staleness gauge. The actor loop calls it
// on every sync check, so "how far behind am I acting" is always observable.
func (e *Engine) NoteKnownVersion(latest uint64) {
	if latest > e.knownVer {
		e.knownVer = latest
	}
	if latest > e.version {
		e.staleG.Set(float64(latest - e.version))
	} else {
		e.staleG.Set(0)
	}
}

// PolicyVersion returns the serving version of the acting policy (0 before
// the first Install).
func (e *Engine) PolicyVersion() uint64 { return e.version }

// TotalSteps returns env-steps taken, summed across the vector (one Step
// call advances Envs of them).
func (e *Engine) TotalSteps() uint64 { return e.steps }

// Episodes returns completed episodes across the vector.
func (e *Engine) Episodes() uint64 { return e.eps }

// LastEpisodeReward returns the mean-over-agents summed reward of the most
// recently completed episode (any env).
func (e *Engine) LastEpisodeReward() float64 { return e.lastRew }

// Profile returns the engine's phase-timing profile.
func (e *Engine) Profile() *profiler.Profile { return e.prof }

// NumAgents returns the trainable-agent count of the wrapped envs.
func (e *Engine) NumAgents() int { return e.n }

// Spec returns the replay spec matching this engine's transitions, with the
// given buffer capacity.
func (e *Engine) Spec(capacity int) replay.Spec {
	return replay.Spec{NumAgents: e.n, ObsDims: e.obsDims, ActDim: e.actDim, Capacity: capacity}
}

func finiteSlice(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// act fills probs/actionIdx for every (env, agent). Forward passes are
// batched per agent (or per env in PerEnvForward mode); exploration draws
// always run env-major then agent-minor, so each env's RNG stream sees the
// exact sequence a single-env engine would produce.
func (e *Engine) act() {
	b := e.cfg.Envs
	if e.cfg.PerEnvForward {
		for env := 0; env < b; env++ {
			for i := 0; i < e.n; i++ {
				row := e.obsRow
				row.Rows, row.Cols, row.Data = 1, e.obsDims[i], e.obs[env][i]
				out := e.agents[i].Forward(row)
				e.drawAction(env, i, out.Row(0))
			}
		}
		return
	}
	e.core.Begin(b)
	for env := 0; env < b; env++ {
		for i := 0; i < e.n; i++ {
			e.core.SetObs(env, i, e.obs[env][i])
		}
	}
	e.core.Forward()
	for env := 0; env < b; env++ {
		for i := 0; i < e.n; i++ {
			e.drawAction(env, i, e.core.Logits(i, env))
		}
	}
}

// drawAction turns one agent's logits row into exploration action probs and
// a discrete action, mirroring the trainer's interact: Gumbel-softmax
// exploration with a uniform fallback when a diverged policy emits non-
// finite values (a poisoned row must never reach the replay service).
func (e *Engine) drawAction(env, agent int, logitsRow []float64) {
	rng := e.rngs[env]
	probs := e.probs[env][agent]
	nn.GumbelSoftmaxRow(probs, logitsRow, e.cfg.GumbelTau, rng)
	if !finiteSlice(probs) {
		uniform := 1 / float64(e.actDim)
		for k := range probs {
			probs[k] = uniform
		}
		e.actionIdx[env][agent] = rng.Intn(e.actDim)
		e.prof.Event(profiler.EventActionSanitized, 1)
		return
	}
	e.actionIdx[env][agent] = tensor.ArgMax(probs)
}

// Step advances every environment by one step: batched action selection,
// B environment transitions, B replay appends, episode bookkeeping. It
// returns how many episodes completed on this step (0..Envs). A policy must
// have been installed.
func (e *Engine) Step() (int, error) {
	if e.agents == nil {
		return 0, fmt.Errorf("rollout: Step before any policy was installed")
	}
	b := e.cfg.Envs

	// Sampled steps open a deterministic root trace and park it as the
	// active context so the sink's append RPC (which may fire from inside
	// Sink.Add when a batch fills) joins this step's trace. Unsampled steps
	// clear it so a stale context never leaks into a later flush.
	e.stepCalls++
	var stepSpan trace.Span
	if e.tracer.Sampled(e.stepCalls) {
		tid := trace.DeriveTraceID(uint64(e.cfg.Seed), trace.KindStep, e.stepCalls)
		stepSpan = e.tracer.StartTrace(tid, "step")
		e.tracer.SetActive(stepSpan.Context())
	} else if e.tracer.Enabled() {
		e.tracer.ClearActive()
	}

	// Act-time version lag: how far behind the newest-known policy this
	// step's actions are drawn. Observed per Step call, not per env-step.
	if lag := e.knownVer; lag > e.version {
		e.actLagH.Observe(float64(lag - e.version))
	} else {
		e.actLagH.Observe(0)
	}

	e.prof.Start(profiler.PhaseActionSelection)
	actSpan := e.tracer.StartSpan(stepSpan.Context(), "action-selection")
	e.act()
	actSpan.EndArg("envs", int64(b))
	e.prof.Stop(profiler.PhaseActionSelection)

	completed := 0
	for env := 0; env < b; env++ {
		e.prof.Start(profiler.PhaseEnvStep)
		envSpan := e.tracer.StartSpan(stepSpan.Context(), "env-step")
		nextObs, rewards := e.envs[env].Step(e.actionIdx[env])
		envSpan.EndArg("env", int64(e.cfg.FirstEnvIndex+env))
		e.prof.Stop(profiler.PhaseEnvStep)

		e.epStep[env]++
		var meanRew float64
		for _, r := range rewards {
			meanRew += r
		}
		e.epRew[env] += meanRew / float64(e.n)

		done := e.epStep[env] >= e.cfg.MaxEpisodeLen
		flag := 0.0
		if done {
			flag = 1
		}
		for i := range e.dones[env] {
			e.dones[env][i] = flag
		}

		if e.cfg.Sink != nil {
			e.prof.Start(profiler.PhaseReplayAdd)
			addSpan := e.tracer.StartSpan(stepSpan.Context(), "replay-add")
			err := e.cfg.Sink.Add(e.obs[env], e.probs[env], rewards, nextObs, e.dones[env])
			addSpan.EndArg("env", int64(e.cfg.FirstEnvIndex+env))
			e.prof.Stop(profiler.PhaseReplayAdd)
			if err != nil {
				return completed, fmt.Errorf("rollout: env %d replay add: %w", e.cfg.FirstEnvIndex+env, err)
			}
		}

		if done {
			completed++
			e.eps++
			e.episodesC.Inc()
			e.lastRew = e.epRew[env]
			e.epRew[env] = 0
			e.epStep[env] = 0
			e.obs[env] = e.envs[env].Reset(e.rngs[env])
		} else {
			e.obs[env] = nextObs
		}
	}
	e.steps += uint64(b)
	e.stepsC.Add(uint64(b))
	// The active context is left set on purpose: a sink that buffers this
	// step's transitions may flush them (append RPC) after Step returns,
	// and the fallback root in the remote sink covers the unsampled case.
	stepSpan.EndArg("steps", int64(e.steps))
	return completed, nil
}
