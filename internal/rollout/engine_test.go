package rollout

import (
	"math/rand"
	"testing"

	"marlperf/internal/mpe"
	"marlperf/internal/nn"
	"marlperf/internal/policysync"
)

// recordingSink captures every transition by deep copy, so trajectories can
// be compared bit-for-bit after the fact.
type recordingSink struct {
	rows []recordedRow
}

type recordedRow struct {
	obs, act, nextObs [][]float64
	rew, done         []float64
}

func copy2d(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i, s := range src {
		out[i] = append([]float64(nil), s...)
	}
	return out
}

func (r *recordingSink) Add(obs, act [][]float64, rew []float64, nextObs [][]float64, done []float64) error {
	r.rows = append(r.rows, recordedRow{
		obs:     copy2d(obs),
		act:     copy2d(act),
		rew:     append([]float64(nil), rew...),
		nextObs: copy2d(nextObs),
		done:    append([]float64(nil), done...),
	})
	return nil
}

func (r *recordingSink) Flush() error { return nil }

func testPolicy(t testing.TB, seed int64, env mpe.Env) []*nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nets := make([]*nn.Network, env.NumAgents())
	for i, d := range env.ObsDims() {
		nets[i] = nn.NewMLP(rng, d, 32, 32, env.NumActions())
	}
	return nets
}

func sameRows(t *testing.T, label string, a, b recordedRow) {
	t.Helper()
	eq2d := func(x, y [][]float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if len(x[i]) != len(y[i]) {
				return false
			}
			for j := range x[i] {
				if x[i][j] != y[i][j] {
					return false
				}
			}
		}
		return true
	}
	eq1d := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq2d(a.obs, b.obs) || !eq2d(a.act, b.act) || !eq2d(a.nextObs, b.nextObs) ||
		!eq1d(a.rew, b.rew) || !eq1d(a.done, b.done) {
		t.Fatalf("%s: transition differs", label)
	}
}

// TestVectorizedMatchesSingleEnv pins the determinism contract: a B-env
// vectorized engine produces, env by env, trajectories bit-identical to B
// independent single-env engines running the same global env indices under
// the same policy and seed.
func TestVectorizedMatchesSingleEnv(t *testing.T) {
	const (
		envs  = 8
		steps = 60
		seed  = 42
	)
	newEnv := func() mpe.Env { return mpe.NewPredatorPrey(3) }
	policy := testPolicy(t, 7, newEnv())

	vecSink := &recordingSink{}
	vec, err := NewEngine(Config{NewEnv: newEnv, Envs: envs, Seed: seed, Sink: vecSink})
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Install(1, policy); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if _, err := vec.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := int(vec.TotalSteps()); got != envs*steps {
		t.Fatalf("vec engine took %d env-steps, want %d", got, envs*steps)
	}
	if len(vecSink.rows) != envs*steps {
		t.Fatalf("vec sink has %d rows, want %d", len(vecSink.rows), envs*steps)
	}

	for e := 0; e < envs; e++ {
		soloSink := &recordingSink{}
		solo, err := NewEngine(Config{NewEnv: newEnv, Envs: 1, FirstEnvIndex: e, Seed: seed, Sink: soloSink})
		if err != nil {
			t.Fatal(err)
		}
		if err := solo.Install(1, policy); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if _, err := solo.Step(); err != nil {
				t.Fatal(err)
			}
		}
		// Vec sink interleaves env-major within each step: step s emits
		// envs 0..B-1 in order, so env e's row for step s is s·B+e.
		for s := 0; s < steps; s++ {
			sameRows(t, "env "+string(rune('0'+e))+" step", vecSink.rows[s*envs+e], soloSink.rows[s])
		}
	}
}

// TestPerEnvForwardMatchesBatched checks the two acting modes are
// interchangeable: forwards consume no randomness, so the bench baseline
// (per-env 1-row forwards) must reproduce the batched trajectories exactly.
func TestPerEnvForwardMatchesBatched(t *testing.T) {
	newEnv := func() mpe.Env { return mpe.NewCooperativeNavigation(3) }
	policy := testPolicy(t, 9, newEnv())

	run := func(perEnv bool) *recordingSink {
		sink := &recordingSink{}
		eng, err := NewEngine(Config{NewEnv: newEnv, Envs: 4, Seed: 5, PerEnvForward: perEnv, Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Install(1, policy); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 30; s++ {
			if _, err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return sink
	}
	batched, perEnv := run(false), run(true)
	if len(batched.rows) != len(perEnv.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(batched.rows), len(perEnv.rows))
	}
	for i := range batched.rows {
		sameRows(t, "row", batched.rows[i], perEnv.rows[i])
	}
}

// TestStalenessBound proves the sync-every contract: an actor that checks
// for new policy versions every E steps acts on a policy at most E versions
// behind the newest published one, even when the learner publishes a new
// version on every single step.
func TestStalenessBound(t *testing.T) {
	const (
		syncEvery = 4
		steps     = 40
	)
	newEnv := func() mpe.Env { return mpe.NewPredatorPrey(3) }
	policy := testPolicy(t, 11, newEnv())

	store := policysync.NewStore(nil)
	eng, err := NewEngine(Config{NewEnv: newEnv, Envs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.PublishNetworks(0, policy); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Install(snap.Version, snap.Agents); err != nil {
		t.Fatal(err)
	}

	for s := 1; s <= steps; s++ {
		// The learner races ahead: one new version per actor step.
		if _, err := store.PublishNetworks(uint64(s), policy); err != nil {
			t.Fatal(err)
		}
		if s%syncEvery == 0 {
			snap, err := store.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Version > eng.PolicyVersion() {
				if err := eng.Install(snap.Version, snap.Agents); err != nil {
					t.Fatal(err)
				}
			}
		}
		latest, _, _ := store.Latest()
		eng.NoteKnownVersion(latest)
		if lag := latest - eng.PolicyVersion(); lag > syncEvery {
			t.Fatalf("step %d: acting policy %d versions stale, bound is %d", s, lag, syncEvery)
		}
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStepBeforeInstallFails(t *testing.T) {
	eng, err := NewEngine(Config{NewEnv: func() mpe.Env { return mpe.NewPredatorPrey(3) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err == nil {
		t.Fatal("Step without a policy succeeded")
	}
}

func TestInstallRejectsMismatchedPolicy(t *testing.T) {
	eng, err := NewEngine(Config{NewEnv: func() mpe.Env { return mpe.NewPredatorPrey(3) }})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong obs width for predator-prey.
	rng := rand.New(rand.NewSource(1))
	bad := []*nn.Network{
		nn.NewMLP(rng, 3, 8, 5), nn.NewMLP(rng, 3, 8, 5), nn.NewMLP(rng, 3, 8, 5),
	}
	if err := eng.Install(1, bad); err == nil {
		t.Fatal("mismatched policy installed")
	}
	// Wrong agent count.
	if err := eng.Install(1, bad[:2]); err == nil {
		t.Fatal("short policy installed")
	}
}

// TestEpisodeBookkeeping checks episode caps and resets advance per env.
func TestEpisodeBookkeeping(t *testing.T) {
	newEnv := func() mpe.Env { return mpe.NewCooperativeNavigation(2) }
	eng, err := NewEngine(Config{NewEnv: newEnv, Envs: 3, Seed: 1, MaxEpisodeLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Install(1, testPolicy(t, 2, newEnv())); err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 10; s++ {
		n, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	// 10 steps at cap 5 → every env completes exactly 2 episodes.
	if total != 6 || eng.Episodes() != 6 {
		t.Fatalf("completed %d episodes (engine says %d), want 6", total, eng.Episodes())
	}
}
