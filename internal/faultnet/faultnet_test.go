package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func fates(in *Injector, edge string, n int) []fate {
	e := in.edgeFor(edge)
	out := make([]fate, n)
	for i := range out {
		out[i], _, _ = e.decide()
	}
	return out
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	rule := Rule{Drop: 0.2, Error: 0.1, Delay: time.Millisecond, DelayProb: 0.3}
	build := func(seed int64) *Injector {
		in := New(seed)
		if err := in.SetRule("a→b", rule); err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := fates(build(99), "a→b", 500), fates(build(99), "a→b", 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := fates(build(100), "a→b", 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

func TestEdgesHaveIndependentStreams(t *testing.T) {
	in := New(7)
	rule := Rule{Drop: 0.5}
	in.SetRule("x", rule)
	in.SetRule("y", rule)
	x, y := fates(in, "x", 200), fates(in, "y", 200)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("edges x and y share a fault stream; they must be independent")
	}
	// A fresh injector replays edge x identically even if y is never used.
	in2 := New(7)
	in2.SetRule("x", rule)
	x2 := fates(in2, "x", 200)
	for i := range x {
		if x[i] != x2[i] {
			t.Fatalf("edge x schedule depends on other edges (diverged at %d)", i)
		}
	}
}

func TestRuleChangeKeepsStreamAligned(t *testing.T) {
	// Toggling the delay rule must not shift the drop schedule: the
	// sequence of drop decisions with delays on equals the one with
	// delays off at the same seed.
	dropsOf := func(withDelay bool) []bool {
		in := New(31)
		r := Rule{Drop: 0.3}
		if withDelay {
			r.Delay, r.DelayProb = time.Millisecond, 0.5
		}
		in.SetRule("e", r)
		e := in.edgeFor("e")
		out := make([]bool, 300)
		for i := range out {
			f, _, _ := e.decide()
			out[i] = f == fateDrop
		}
		return out
	}
	a, b := dropsOf(false), dropsOf(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop schedule shifted when delays were enabled (request %d)", i)
		}
	}
}

func TestPartitionOverridesAndHeals(t *testing.T) {
	in := New(1)
	e := in.edgeFor("p")
	in.Partition("p", true)
	for i := 0; i < 10; i++ {
		if f, _, _ := e.decide(); f != fateDrop {
			t.Fatalf("request %d passed through an active partition", i)
		}
	}
	in.Partition("p", false)
	if f, _, _ := e.decide(); f != fateForward {
		t.Fatal("healed partition still dropping")
	}
	c := in.Counts("p")
	if c.Partitioned != 10 || c.Requests != 11 {
		t.Fatalf("counts = %+v, want 10 partitioned of 11", c)
	}
}

func TestRoundTripperInjectsFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := New(5)
	in.Partition("cl", true)
	hc := &http.Client{Transport: in.RoundTripper("cl", nil)}
	if _, err := hc.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned edge: err = %v, want wrapped ErrInjected", err)
	}
	in.Partition("cl", false)

	in.SetRule("cl", Rule{Error: 1, Status: 502})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("errored edge: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want synthesized 502", resp.StatusCode)
	}

	in.SetRule("cl", Rule{})
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed edge: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want %q", body, "ok")
	}
}

func TestHandlerInjectsFaults(t *testing.T) {
	in := New(5)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(in.Handler("sv", inner))
	defer srv.Close()

	in.SetRule("sv", Rule{Error: 1})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want default 503", resp.StatusCode)
	}

	in.Partition("sv", true)
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("server-side drop should abort the connection")
	}
	in.Partition("sv", false)

	in.SetRule("sv", Rule{})
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want %q", body, "ok")
	}
}

func TestConcurrentTrafficIsSafe(t *testing.T) {
	in := New(11)
	in.SetRule("hot", Rule{Drop: 0.3, Error: 0.2})
	srv := httptest.NewServer(in.Handler("hot", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})))
	defer srv.Close()
	hc := &http.Client{Transport: in.RoundTripper("hot", nil)}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := hc.Get(srv.URL)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if i%10 == 0 {
					in.Counts("hot")
				}
			}
		}()
	}
	wg.Wait()
	c := in.Counts("hot")
	if c.Requests == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec    string
		want    Rule
		wantErr bool
	}{
		{"", Rule{}, false},
		{"drop=0.1", Rule{Drop: 0.1}, false},
		{"drop=0.1,error=0.05,status=502,delay=5ms,delayp=0.2",
			Rule{Drop: 0.1, Error: 0.05, Status: 502, Delay: 5 * time.Millisecond, DelayProb: 0.2}, false},
		{"err=0.5", Rule{Error: 0.5}, false},
		{"drop=1.5", Rule{}, true},
		{"bogus=1", Rule{}, true},
		{"drop", Rule{}, true},
		{"delay=-1ms", Rule{}, true},
	}
	for _, tc := range cases {
		got, err := ParseRule(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseRule(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func ExampleInjector_RoundTripper() {
	in := New(42)
	in.SetRule("actor→replay", Rule{Drop: 0.1})
	hc := &http.Client{Transport: in.RoundTripper("actor→replay", nil)}
	_ = hc
	fmt.Println(in.Counts("actor→replay").Requests)
	// Output: 0
}
