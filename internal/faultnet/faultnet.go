// Package faultnet is a deterministic, seed-driven network fault
// injector. It wraps http.RoundTripper (client side) and http.Handler
// (server side) to drop, delay, error or partition traffic per named
// edge, with schedules that are a pure function of (seed, edge name,
// request order) — the same seed replays the same fault pattern, which is
// what lets the chaos smoke and the full-loop race test assert exact
// outcomes under injected failures.
//
// Each edge owns an independent RNG stream seeded with seed ^ fnv64(edge),
// so adding an edge or reordering traffic on one edge never perturbs the
// schedule of another. Every request draws the same number of variates
// regardless of the rule in force, so toggling (say) delays on and off
// does not shift the drop schedule.
package faultnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every client-side fault this package
// fabricates; errors.Is(err, ErrInjected) identifies injected faults in
// test assertions.
var ErrInjected = errors.New("faultnet: injected fault")

// Rule describes the faults applied to one edge. Zero value = pass
// everything through.
type Rule struct {
	// Drop is the probability [0,1] a request is blackholed: the client
	// side sees a transport error, the server side an aborted connection.
	Drop float64
	// Error is the probability [0,1] a request is answered with Status
	// without reaching the wrapped transport/handler.
	Error float64
	// Status is the synthesized error status (default 503).
	Status int
	// Delay stalls matching requests before forwarding.
	Delay time.Duration
	// DelayProb is the probability a request is delayed; 0 with Delay set
	// means every request.
	DelayProb float64
}

func (r Rule) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"error", r.Error}, {"delayp", r.DelayProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if r.Delay < 0 {
		return fmt.Errorf("faultnet: negative delay %v", r.Delay)
	}
	return nil
}

// Counts is a snapshot of one edge's traffic and injected faults.
type Counts struct {
	Requests    uint64 // total requests seen
	Dropped     uint64 // blackholed by probability
	Errored     uint64 // answered with a synthesized error status
	Delayed     uint64 // stalled before forwarding
	Partitioned uint64 // blackholed by an active partition
}

type fate int

const (
	fateForward fate = iota
	fateDrop
	fateError
)

type edge struct {
	mu          sync.Mutex
	name        string
	rule        Rule
	rng         *rand.Rand
	partitioned bool
	counts      Counts
}

// decide draws this request's fate. All three variates are always drawn
// so the stream stays aligned across rule changes.
func (e *edge) decide() (fate, int, time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.counts.Requests++
	uDrop, uErr, uDelay := e.rng.Float64(), e.rng.Float64(), e.rng.Float64()
	if e.partitioned {
		e.counts.Partitioned++
		return fateDrop, 0, 0
	}
	r := e.rule
	if uDrop < r.Drop {
		e.counts.Dropped++
		return fateDrop, 0, 0
	}
	if uErr < r.Error {
		e.counts.Errored++
		status := r.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return fateError, status, 0
	}
	if r.Delay > 0 {
		dp := r.DelayProb
		if dp == 0 {
			dp = 1
		}
		if uDelay < dp {
			e.counts.Delayed++
			return fateForward, 0, r.Delay
		}
	}
	return fateForward, 0, 0
}

// Injector holds per-edge fault state. One injector is typically shared
// by every wrapped transport/handler of a process so a test or the chaos
// harness can steer all edges from one place.
type Injector struct {
	seed int64

	mu    sync.Mutex
	edges map[string]*edge
}

// New builds an injector whose per-edge schedules derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, edges: make(map[string]*edge)}
}

// Seed returns the injector's root seed.
func (in *Injector) Seed() int64 { return in.seed }

func (in *Injector) edgeFor(name string) *edge {
	in.mu.Lock()
	defer in.mu.Unlock()
	e := in.edges[name]
	if e == nil {
		h := fnv.New64a()
		h.Write([]byte(name))
		e = &edge{name: name, rng: rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))}
		in.edges[name] = e
	}
	return e
}

// SetRule installs (replacing) the fault rule for an edge.
func (in *Injector) SetRule(name string, r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	e := in.edgeFor(name)
	e.mu.Lock()
	e.rule = r
	e.mu.Unlock()
	return nil
}

// Partition blackholes (on=true) or heals (on=false) an edge,
// independently of its probabilistic rule.
func (in *Injector) Partition(name string, on bool) {
	e := in.edgeFor(name)
	e.mu.Lock()
	e.partitioned = on
	e.mu.Unlock()
}

// Counts returns a snapshot of an edge's traffic counters.
func (in *Injector) Counts(name string) Counts {
	e := in.edgeFor(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts
}

// Edges returns the names of all edges seen so far.
func (in *Injector) Edges() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.edges))
	for n := range in.edges {
		names = append(names, n)
	}
	return names
}

type roundTripper struct {
	edge *edge
	base http.RoundTripper
}

// RoundTripper wraps base (nil = http.DefaultTransport) with the edge's
// fault rule. Dropped requests surface as transport errors wrapping
// ErrInjected — exactly what an unreachable peer looks like to a client.
func (in *Injector) RoundTripper(name string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{edge: in.edgeFor(name), base: base}
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f, status, delay := rt.edge.decide()
	switch f {
	case fateDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: request dropped on edge %q", ErrInjected, rt.edge.name)
	case fateError:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode: status,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:    http.NoBody,
			Request: req,
		}, nil
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	return rt.base.RoundTrip(req)
}

// Handler wraps h with the edge's fault rule on the server side. Dropped
// requests abort the connection mid-response (the client sees a transport
// error), errored requests answer with the rule's status.
func (in *Injector) Handler(name string, h http.Handler) http.Handler {
	e := in.edgeFor(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, status, delay := e.decide()
		switch f {
		case fateDrop:
			panic(http.ErrAbortHandler)
		case fateError:
			http.Error(w, "faultnet: injected error", status)
			return
		}
		if delay > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(delay):
			}
		}
		h.ServeHTTP(w, r)
	})
}

// ParseRule parses a comma-separated "k=v" fault spec, e.g.
// "drop=0.1,delay=5ms,delayp=0.2,error=0.05,status=502". Unknown keys are
// errors; an empty spec is the zero Rule.
func ParseRule(spec string) (Rule, error) {
	var r Rule
	if strings.TrimSpace(spec) == "" {
		return r, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return r, fmt.Errorf("faultnet: bad rule term %q (want k=v)", part)
		}
		k, v := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch k {
		case "drop":
			r.Drop, err = strconv.ParseFloat(v, 64)
		case "error", "err":
			r.Error, err = strconv.ParseFloat(v, 64)
		case "delayp":
			r.DelayProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			r.Delay, err = time.ParseDuration(v)
		case "status":
			r.Status, err = strconv.Atoi(v)
		default:
			return r, fmt.Errorf("faultnet: unknown rule key %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("faultnet: rule term %q: %w", part, err)
		}
	}
	return r, r.validate()
}
