// Package telemetry is the runtime observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket latency histograms with
// quantile summaries), a Prometheus text-exposition renderer, a buffered
// crash-tolerant JSONL run-event log, and an opt-in HTTP server exposing
// /metrics, /profilez, /healthz and net/http/pprof.
//
// The paper's method is measurement — per-phase training-time breakdowns
// and counter growth — and this package makes those measurements live:
// profiler phase durations feed per-phase histograms (tail latencies, not
// just means), resilience events become counters, and every update step
// emits one machine-readable run record.
//
// All metric write paths (Counter.Add, Gauge.Set, Histogram.Observe) are
// lock-free atomics and safe for concurrent use; registration takes a
// registry lock and should happen once per metric, not per observation.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name=value metric dimension.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Registry holds all metrics of a process, keyed by name plus label set.
// Look-ups return the same metric instance for the same identity, so hot
// paths should capture the returned pointer once.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string

	// identity metadata for snapshots, keyed like the metric maps.
	meta map[string]metricMeta
}

type metricMeta struct {
	name   string
	labels []Label
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		meta:     make(map[string]metricMeta),
	}
}

// SetHelp records the HELP text rendered for the metric family in the
// Prometheus exposition.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// metricKey canonicalizes a (name, labels) identity: labels sorted by name.
// The sorted labels are returned for snapshot metadata.
func metricKey(name string, labels []string) (string, []Label) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label list %v (want k,v pairs)", name, labels))
	}
	ls := make([]Label, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		ls = append(ls, Label{Name: labels[i], Value: labels[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// Counter returns (creating on first use) the counter with the given name
// and alternating key,value label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name and
// alternating key,value label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket upper bounds, and alternating key,value label pairs. Bounds
// must be sorted ascending; nil selects DefaultDurationBuckets. Re-lookups
// of an existing histogram ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	key, ls := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = NewHistogram(bounds)
		r.hists[key] = h
		r.meta[key] = metricMeta{name: name, labels: ls}
	}
	return h
}

// CounterSnapshot is one counter series at snapshot time.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnapshot is one gauge series at snapshot time.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSnapshot is one histogram series at snapshot time. Counts are
// per-bucket (not cumulative); Bounds[i] is bucket i's inclusive upper
// bound, with one final implicit +Inf bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	P999   float64   `json:"p999"`
}

// Snapshot is a consistent-enough point-in-time view of every registered
// metric, ordered deterministically by (name, labels). Individual values
// are loaded atomically; cross-metric skew is possible while writers run.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for key, c := range r.counters {
		m := r.meta[key]
		s.Counters = append(s.Counters, CounterSnapshot{Name: m.name, Labels: m.labels, Value: c.Value()})
	}
	for key, g := range r.gauges {
		m := r.meta[key]
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: m.name, Labels: m.labels, Value: g.Value()})
	}
	for key, h := range r.hists {
		m := r.meta[key]
		hs := h.Snapshot()
		hs.Name, hs.Labels = m.name, m.labels
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return seriesLess(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return seriesLess(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return seriesLess(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

func seriesLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i].Name != bl[i].Name {
			return al[i].Name < bl[i].Name
		}
		if al[i].Value != bl[i].Value {
			return al[i].Value < bl[i].Value
		}
	}
	return len(al) < len(bl)
}

// helpFor returns the registered HELP text for a family, if any.
func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}
