package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// RunLog is a buffered JSONL (one JSON object per line) event stream,
// appended to by the training loop once per update step. Records are
// marshalled and written under a mutex, so concurrent appenders interleave
// whole lines, never bytes. Writes go through a bufio buffer; a record
// sits in memory until the buffer fills, Flush is called, or the log is
// closed — a crash can therefore lose the buffered tail or truncate the
// last line, which is why ScanRunLog tolerates a torn final record.
type RunLog struct {
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	records uint64
}

// CreateRunLog opens (appending, creating if absent) the JSONL run log at
// path.
func CreateRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: run log: %w", err)
	}
	return &RunLog{f: f, bw: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Append marshals rec and writes it as one line.
func (l *RunLog) Append(rec any) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("telemetry: run log record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("telemetry: run log is closed")
	}
	if _, err := l.bw.Write(data); err != nil {
		return err
	}
	if err := l.bw.WriteByte('\n'); err != nil {
		return err
	}
	l.records++
	return nil
}

// Records returns how many records have been appended through this log.
func (l *RunLog) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Flush pushes buffered records to the file.
func (l *RunLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.bw.Flush()
}

// Close flushes, syncs and closes the log. Idempotent.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.bw.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ScanRunLog reads a JSONL stream, invoking fn with each record's raw
// bytes, and returns the number of intact records. A truncated final
// record — a line without its trailing newline, or a final line that is
// not valid JSON — is the signature of a crash mid-write and is silently
// dropped; an invalid record followed by further data is real corruption
// and is an error.
func ScanRunLog(r io.Reader, fn func(line json.RawMessage) error) (int, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	n := 0
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return n, fmt.Errorf("telemetry: run log read: %w", err)
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(bytes.TrimSpace(line)) == 0 {
			if atEOF {
				return n, nil
			}
			continue
		}
		if !json.Valid(line) {
			if atEOF && !complete {
				// Torn tail from a crash mid-write: tolerated.
				return n, nil
			}
			if atEOF {
				// Complete but invalid final line: also the tail — a crash
				// between the payload write and a partially flushed buffer
				// can land here. Tolerated.
				return n, nil
			}
			return n, fmt.Errorf("telemetry: run log: corrupt record at line %d", lineNo)
		}
		if !complete && atEOF {
			// Valid JSON but no newline: could still be a prefix of a longer
			// record (e.g. "12" of "123"). Treat as torn tail.
			return n, nil
		}
		if fn != nil {
			if err := fn(json.RawMessage(line)); err != nil {
				return n, err
			}
		}
		n++
		if atEOF {
			return n, nil
		}
	}
}
