package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// JSONSnapshot holds the latest marshalled JSON document for an endpoint
// that must not race with its producer. The training loop refreshes it at
// safe points (episode boundaries); the HTTP handler serves whatever
// version is current. Safe for concurrent Set/Get.
type JSONSnapshot struct {
	p atomic.Pointer[[]byte]
}

// Set replaces the snapshot.
func (s *JSONSnapshot) Set(data []byte) {
	d := append([]byte(nil), data...)
	s.p.Store(&d)
}

// Get returns the latest snapshot, or nil if none was set yet.
func (s *JSONSnapshot) Get() []byte {
	if d := s.p.Load(); d != nil {
		return *d
	}
	return nil
}

// ServerConfig wires the live endpoints.
type ServerConfig struct {
	// Registry backs /metrics. Required.
	Registry *Registry
	// Profilez backs /profilez; typically a JSONSnapshot refreshed by the
	// training loop. Optional — nil serves 404.
	Profilez *JSONSnapshot
	// Tracez backs /tracez; typically (*trace.Tracer).Handler() serving
	// the span ring as Chrome-trace JSON. Optional — nil serves 404.
	Tracez http.Handler
}

// Server is the opt-in observability HTTP server. Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/profilez      latest profiler state as JSON (when configured)
//	/tracez        span ring as Chrome-trace JSON (when configured)
//	/healthz       liveness: 200 "ok"
//	/debug/pprof/  net/http/pprof profiles (heap, goroutine, CPU, trace)
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (host:port; port 0 picks a free port) and
// serves in a background goroutine until Close.
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: StartServer needs a Registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		_ = cfg.Registry.WriteExposition(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/profilez", func(w http.ResponseWriter, _ *http.Request) {
		var data []byte
		if cfg.Profilez != nil {
			data = cfg.Profilez.Get()
		}
		if data == nil {
			http.Error(w, "no profile snapshot yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracez == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		cfg.Tracez.ServeHTTP(w, r)
	})
	// pprof registers on DefaultServeMux via its init; mount the handlers
	// explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
