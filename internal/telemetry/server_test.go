package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	var snap JSONSnapshot
	snap.Set([]byte(`{"phases":[]}`))
	srv, err := StartServer("127.0.0.1:0", ServerConfig{Registry: reg, Profilez: &snap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := getBody(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body := getBody(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, body = getBody(t, base+"/profilez")
	if code != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("/profilez: %d %q", code, body)
	}
	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestServerProfilezUnset(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := getBody(t, "http://"+srv.Addr()+"/profilez"); code != http.StatusNotFound {
		t.Fatalf("/profilez without snapshot: %d, want 404", code)
	}
}

func TestServerRequiresRegistry(t *testing.T) {
	if _, err := StartServer("127.0.0.1:0", ServerConfig{}); err == nil {
		t.Fatal("nil registry should be rejected")
	}
}

func TestJSONSnapshotCopies(t *testing.T) {
	var s JSONSnapshot
	if s.Get() != nil {
		t.Fatal("fresh snapshot should be nil")
	}
	buf := []byte(`{"a":1}`)
	s.Set(buf)
	buf[0] = 'X' // mutate the caller's slice; snapshot must hold a copy
	if got := string(s.Get()); got != `{"a":1}` {
		t.Fatalf("snapshot aliased caller buffer: %q", got)
	}
}
