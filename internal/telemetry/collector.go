package telemetry

import (
	"time"

	"marlperf/internal/profiler"
)

// Metric families recorded by the phase collector.
const (
	// MetricPhaseSeconds is the per-phase latency histogram family,
	// labelled by phase name.
	MetricPhaseSeconds = "marl_phase_seconds"
	// MetricEventsTotal is the resilience/runtime event counter family,
	// labelled by event name.
	MetricEventsTotal = "marl_events_total"
)

// PhaseCollector implements profiler.Observer over a Registry: every phase
// observation lands in a marl_phase_seconds{phase=...} histogram and every
// event increment in a marl_events_total{event=...} counter. Safe for
// concurrent use — the parallel update engine points every worker's
// profiler shard at the same collector.
type PhaseCollector struct {
	reg   *Registry
	hists []*Histogram // indexed by int(profiler.Phase)
}

// NewPhaseCollector registers one histogram per profiler phase (with
// DefaultDurationBuckets) and returns the collector. Event counters are
// registered lazily on first occurrence.
func NewPhaseCollector(reg *Registry) *PhaseCollector {
	reg.SetHelp(MetricPhaseSeconds, "Per-call latency of each MARL training phase, in seconds.")
	reg.SetHelp(MetricEventsTotal, "Discrete runtime events (watchdog rollbacks, checkpoint writes, sanitized actions, ...).")
	c := &PhaseCollector{
		reg:   reg,
		hists: make([]*Histogram, profiler.NumPhases()),
	}
	for _, p := range profiler.Phases() {
		c.hists[int(p)] = reg.Histogram(MetricPhaseSeconds, nil, "phase", p.String())
	}
	return c
}

// ObservePhase records one phase duration.
func (c *PhaseCollector) ObservePhase(p profiler.Phase, d time.Duration) {
	if i := int(p); i >= 0 && i < len(c.hists) {
		c.hists[i].Observe(d.Seconds())
	}
}

// ObserveEvent records n occurrences of the named event. The counter
// lookup takes the registry's read lock; events are rare next to phase
// observations, so this stays off the hot path.
func (c *PhaseCollector) ObserveEvent(name string, n uint64) {
	c.reg.Counter(MetricEventsTotal, "event", name).Add(n)
}
