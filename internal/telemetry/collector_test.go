package telemetry

import (
	"sync"
	"testing"
	"time"

	"marlperf/internal/profiler"
)

// TestPhaseCollectorBridgesProfiler drives the collector the way the
// parallel update engine does — several profiler shards on goroutines, all
// observed by one collector — and checks the registry totals match the
// merged profile exactly (counts, events) and to float tolerance (sums).
func TestPhaseCollectorBridgesProfiler(t *testing.T) {
	reg := NewRegistry()
	col := NewPhaseCollector(reg)

	var main profiler.Profile
	main.SetObserver(col)
	shards := make([]*profiler.Profile, 4)
	for i := range shards {
		shards[i] = &profiler.Profile{}
		shards[i].SetObserver(col)
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *profiler.Profile) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sh.Add(profiler.PhaseSampling, 2*time.Millisecond)
				sh.Add(profiler.PhaseQPLoss, time.Millisecond)
			}
			sh.Event(profiler.EventPriorityClamped, 3)
		}(sh)
	}
	wg.Wait()
	for _, sh := range shards {
		sh.DrainInto(&main)
	}
	main.Event(profiler.EventCheckpointWritten, 2)

	hist := reg.Histogram(MetricPhaseSeconds, nil, "phase", profiler.PhaseSampling.String())
	if got, want := hist.Count(), main.Count(profiler.PhaseSampling); got != want {
		t.Fatalf("sampling observations = %d, want %d", got, want)
	}
	if got, want := hist.Sum(), main.Duration(profiler.PhaseSampling).Seconds(); !near(got, want) {
		t.Fatalf("sampling sum = %v, want %v", got, want)
	}
	if got := reg.Counter(MetricEventsTotal, "event", profiler.EventPriorityClamped).Value(); got != 12 {
		t.Fatalf("clamp events = %d, want 12", got)
	}
	if got := reg.Counter(MetricEventsTotal, "event", profiler.EventCheckpointWritten).Value(); got != 2 {
		t.Fatalf("checkpoint events = %d, want 2", got)
	}
}

func near(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-9+1e-9*b
}
