package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testRecord struct {
	Step   int     `json:"step"`
	Reward float64 `json:"reward"`
}

func TestRunLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := CreateRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 250
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord{Step: i, Reward: float64(i) * 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != n {
		t.Fatalf("Records = %d, want %d", l.Records(), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	next := 0
	got, err := ScanRunLog(f, func(line json.RawMessage) error {
		var r testRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		if r.Step != next {
			t.Fatalf("record %d has step %d", next, r.Step)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scanned %d records, want %d", got, n)
	}
}

// TestRunLogTruncatedTail simulates a crash mid-write: the file ends in a
// torn record, which the scanner must drop without error.
func TestRunLogTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"step":0,"reward":1}` + "\n")
	buf.WriteString(`{"step":1,"reward":2}` + "\n")
	buf.WriteString(`{"step":2,"rew`) // torn: no newline, invalid JSON

	got, err := ScanRunLog(&buf, nil)
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	if got != 2 {
		t.Fatalf("scanned %d records, want 2", got)
	}
}

// TestRunLogTornButValidJSONTail: a tail line without a newline is torn
// even if its prefix happens to parse as JSON (e.g. a truncated number).
func TestRunLogTornButValidJSONTail(t *testing.T) {
	r := strings.NewReader(`{"step":0}` + "\n" + `12`)
	got, err := ScanRunLog(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("scanned %d, want 1 (unterminated tail dropped)", got)
	}
}

// TestRunLogMidFileCorruptionIsError: garbage with records after it is not
// a crash signature — it must surface.
func TestRunLogMidFileCorruptionIsError(t *testing.T) {
	r := strings.NewReader(`{"step":0}` + "\n" + `not-json` + "\n" + `{"step":2}` + "\n")
	if _, err := ScanRunLog(r, nil); err == nil {
		t.Fatal("mid-file corruption should be an error")
	}
}

func TestRunLogEmptyAndBlankLines(t *testing.T) {
	got, err := ScanRunLog(strings.NewReader(""), nil)
	if err != nil || got != 0 {
		t.Fatalf("empty: %d, %v", got, err)
	}
	got, err = ScanRunLog(strings.NewReader("\n\n{\"a\":1}\n\n"), nil)
	if err != nil || got != 1 {
		t.Fatalf("blank lines: %d, %v", got, err)
	}
}

func TestRunLogAppendAfterCloseFails(t *testing.T) {
	l, err := CreateRunLog(filepath.Join(t.TempDir(), "x.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord{}); err == nil {
		t.Fatal("Append after Close should fail")
	}
}

// TestRunLogConcurrentAppend: whole lines only, never interleaved bytes.
func TestRunLogConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l, err := CreateRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Append(testRecord{Step: g*perG + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ScanRunLog(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != goroutines*perG {
		t.Fatalf("scanned %d records, want %d", got, goroutines*perG)
	}
}
