package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultDurationBuckets are the histogram bounds used for phase latencies,
// in seconds: a 1-2.5-5 decade ladder from 1µs to 10s. Phase durations in
// this codebase span sub-microsecond env steps to multi-second full update
// stages at large agent counts, so the ladder covers the working range with
// ~3 buckets per decade.
func DefaultDurationBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bucket histogram with lock-free observation. Bucket
// i counts observations v with v ≤ bounds[i] (and > bounds[i-1]); one
// final bucket counts everything above the last bound (+Inf). The total
// count and the running sum are tracked alongside.
type Histogram struct {
	bounds  []float64 // sorted ascending, immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given sorted upper bounds; nil
// selects DefaultDurationBuckets. Bounds must be strictly ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultDurationBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound ≥ v is not quite what we
	// want (bucket is v ≤ bound), so search for the first bound that is
	// not < v.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing bucket. Observations beyond the last finite bound
// clamp to that bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the last finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot captures the histogram's buckets, totals and p50/p90/p99/p999
// estimates. Name/Labels are filled by the registry.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.Count(),
		Sum:    h.Sum(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
