package telemetry

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the full Prometheus text rendering of a small
// registry: HELP/TYPE headers, label escaping, cumulative histogram
// buckets with the +Inf tail, and deterministic series order.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("marl_events_total", "Discrete runtime events.")
	reg.Counter("marl_events_total", "event", "watchdog-rollback").Add(3)
	reg.Counter("marl_events_total", "event", "checkpoint-written").Add(12)
	reg.Gauge("marl_episode_reward").Set(-42.5)
	h := reg.Histogram("marl_phase_seconds", []float64{0.001, 0.01, 0.1}, "phase", "env-step")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP marl_events_total Discrete runtime events.
# TYPE marl_events_total counter
marl_events_total{event="checkpoint-written"} 12
marl_events_total{event="watchdog-rollback"} 3
# TYPE marl_episode_reward gauge
marl_episode_reward -42.5
# TYPE marl_phase_seconds histogram
marl_phase_seconds_bucket{phase="env-step",le="0.001"} 2
marl_phase_seconds_bucket{phase="env-step",le="0.01"} 2
marl_phase_seconds_bucket{phase="env-step",le="0.1"} 3
marl_phase_seconds_bucket{phase="env-step",le="+Inf"} 4
marl_phase_seconds_sum{phase="env-step"} 2.051
marl_phase_seconds_count{phase="env-step"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestExpositionEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q", b.String())
	}
}
