package telemetry

import (
	"regexp"
	"strings"
	"testing"
)

// TestExpositionGolden pins the full Prometheus text rendering of a small
// registry: HELP/TYPE headers, label escaping, cumulative histogram
// buckets with the +Inf tail, and deterministic series order.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("marl_events_total", "Discrete runtime events.")
	reg.Counter("marl_events_total", "event", "watchdog-rollback").Add(3)
	reg.Counter("marl_events_total", "event", "checkpoint-written").Add(12)
	reg.Gauge("marl_episode_reward").Set(-42.5)
	h := reg.Histogram("marl_phase_seconds", []float64{0.001, 0.01, 0.1}, "phase", "env-step")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP marl_events_total Discrete runtime events.
# TYPE marl_events_total counter
marl_events_total{event="checkpoint-written"} 12
marl_events_total{event="watchdog-rollback"} 3
# TYPE marl_episode_reward gauge
marl_episode_reward -42.5
# TYPE marl_phase_seconds histogram
marl_phase_seconds_bucket{phase="env-step",le="0.001"} 2
marl_phase_seconds_bucket{phase="env-step",le="0.01"} 2
marl_phase_seconds_bucket{phase="env-step",le="0.1"} 3
marl_phase_seconds_bucket{phase="env-step",le="+Inf"} 4
marl_phase_seconds_sum{phase="env-step"} 2.051
marl_phase_seconds_count{phase="env-step"} 4
# TYPE marl_phase_seconds_quantiles summary
marl_phase_seconds_quantiles{phase="env-step",quantile="0.5"} 0.001
marl_phase_seconds_quantiles{phase="env-step",quantile="0.9"} 0.1
marl_phase_seconds_quantiles{phase="env-step",quantile="0.99"} 0.1
marl_phase_seconds_quantiles{phase="env-step",quantile="0.999"} 0.1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

// TestExpositionQuantileSeries is the p999 regression: every histogram must
// render a sibling summary family <name>_quantiles with a valid TYPE header
// and quantile-labelled series whose 0.999 value matches the snapshot
// estimate, and the series lines must parse under the text-format grammar
// (TestExpositionParseable checks the full-document grammar).
func TestExpositionQuantileSeries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("marl_serve_latency_seconds", nil, "encoding", "json")
	for i := 0; i < 2000; i++ {
		h.Observe(0.001 * float64(i%7))
	}
	h.Observe(9) // tail outlier only the p999 sees

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "# TYPE marl_serve_latency_seconds_quantiles summary\n") {
		t.Fatalf("quantile summary family missing its TYPE header:\n%s", text)
	}
	sample := regexp.MustCompile(`(?m)^marl_serve_latency_seconds_quantiles\{encoding="json",quantile="(0\.5|0\.9|0\.99|0\.999)"\} (\S+)$`)
	matches := sample.FindAllStringSubmatch(text, -1)
	if len(matches) != 4 {
		t.Fatalf("want 4 quantile series, found %d in:\n%s", len(matches), text)
	}
	snap := h.Snapshot()
	wantP999 := formatFloat(snap.P999)
	var sawP999 bool
	for _, m := range matches {
		if m[1] == "0.999" {
			sawP999 = true
			if m[2] != wantP999 {
				t.Fatalf("p999 series renders %s, snapshot says %s", m[2], wantP999)
			}
		}
	}
	if !sawP999 {
		t.Fatal("quantile ladder is missing the 0.999 series")
	}
	if snap.P999 < snap.P99 {
		t.Fatalf("p999 %v below p99 %v", snap.P999, snap.P99)
	}
}

func TestExpositionEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q", b.String())
	}
}
