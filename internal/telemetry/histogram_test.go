package telemetry

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the bucketing rule: an observation equal to a
// bound lands in that bound's bucket (le semantics), one beyond the last
// bound lands in +Inf.
func TestBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{
		0.5, // → bucket 0 (≤1)
		1,   // → bucket 0 (≤1, boundary inclusive)
		1.1, // → bucket 1 (≤2)
		2,   // → bucket 1
		4,   // → bucket 2
		4.1, // → +Inf bucket
		100, // → +Inf bucket
	} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.1+2+4+4.1+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestAscendingBoundsEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

// TestQuantileUniform checks linear interpolation: 100 observations spread
// evenly through [0,10) against bounds every 1.0 should put p50 near 5 and
// p90 near 9.
func TestQuantileUniform(t *testing.T) {
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := NewHistogram(bounds)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 10.0)
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.50, 5.0, 0.2},
		{0.90, 9.0, 0.2},
		{0.99, 9.9, 0.2},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%v = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(100) // +Inf bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to last bound 2", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("q0 = %v, want within first bucket", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("q1 = %v, want 2", got)
	}
}

// TestQuantileSingleBucketInterpolation: all mass in one bucket
// interpolates between the bucket's lower and upper bound.
func TestQuantileSingleBucketInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	for i := 0; i < 10; i++ {
		h.Observe(2.5) // bucket (2,3]
	}
	got := h.Quantile(0.5)
	if want := 2.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v (midpoint of (2,3])", got, want)
	}
	if got := h.Quantile(0.1); math.Abs(got-2.1) > 1e-9 {
		t.Fatalf("p10 = %v, want 2.1", got)
	}
}

func TestDefaultDurationBucketsSorted(t *testing.T) {
	b := DefaultDurationBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("default buckets not ascending at %d: %v", i, b)
		}
	}
	if b[0] > 1e-6 || b[len(b)-1] < 10 {
		t.Fatalf("default buckets should span 1µs..10s, got [%v, %v]", b[0], b[len(b)-1])
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	if s.P50 >= 1 {
		t.Fatalf("p50 = %v, want <1", s.P50)
	}
	if s.P99 < 2 || s.P99 > 4 {
		t.Fatalf("p99 = %v, want in (2,4]", s.P99)
	}
	if s.P90 > s.P99 {
		t.Fatalf("p90 %v > p99 %v", s.P90, s.P99)
	}
}

// TestHistogramP999 pins the tail quantile: with 999 fast observations and
// one slow outlier, p999 must land at or beyond the outlier's bucket while
// p99 stays in the bulk, and the quantile ladder must be monotone.
func TestHistogramP999(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1, 10})
	for i := 0; i < 997; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 3; i++ {
		h.Observe(5) // tail events past the 0.999 rank
	}
	s := h.Snapshot()
	if s.P99 > 0.001 {
		t.Fatalf("p99 = %v, want within the fast bucket (≤ 0.001)", s.P99)
	}
	if s.P999 <= 1 || s.P999 > 10 {
		t.Fatalf("p999 = %v, want inside the outlier bucket (1, 10]", s.P999)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
		t.Fatalf("quantile ladder not monotone: %v %v %v %v", s.P50, s.P90, s.P99, s.P999)
	}
}
