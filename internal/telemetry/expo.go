package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the /metrics response, per
// the Prometheus text exposition format v0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteExposition renders the registry's current state in the Prometheus
// text exposition format: one HELP/TYPE header per family (when help is
// registered), counter series with a _total-style value line, gauges, and
// histograms as cumulative _bucket{le=...} series plus _sum and _count.
// Each histogram additionally renders a sibling summary family named
// <name>_quantiles carrying the p50/p90/p99/p999 point estimates as
// quantile-labelled series, so tail latencies are scrapeable without
// server-side bucket math. Series order is deterministic.
func (r *Registry) WriteExposition(w io.Writer) error {
	s := r.Snapshot()
	seen := make(map[string]bool)
	header := func(name, typ string) error {
		if seen[name] {
			return nil
		}
		seen[name] = true
		if help := r.helpFor(name); help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}

	for _, c := range s.Counters {
		if err := header(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(c.Name, c.Labels, "", ""), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := header(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(g.Name, g.Labels, "", ""), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := header(h.Name, "histogram"); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(h.Name+"_bucket", h.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(h.Name+"_sum", h.Labels, "", ""), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(h.Name+"_count", h.Labels, "", ""), h.Count); err != nil {
			return err
		}
		if err := header(h.Name+"_quantiles", "summary"); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			value float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}, {"0.999", h.P999}} {
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(h.Name+"_quantiles", h.Labels, "quantile", q.label), formatFloat(q.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesName renders name{l1="v1",...} with an optional extra label (used
// for histogram le) appended after the identity labels.
func seriesName(name string, labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
