package telemetry

import (
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter from many goroutines; run
// under -race this is the registry's concurrency contract test.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines re-look the counter up each iteration to
			// exercise the registration path concurrently with writers.
			c := reg.Counter("test_total", "shard", "a")
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					reg.Counter("test_total", "shard", "a").Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test_total", "shard", "a").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentGauges(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge")
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	g.Set(-3.5)
	if g.Value() != -3.5 {
		t.Fatalf("Set: %v", g.Value())
	}
}

func TestConcurrentHistograms(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", []float64{1, 2, 4, 8})
	const goroutines, perG = 8, 5_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(v)
			}
		}(float64(i%4) + 0.5)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// 2 goroutines each of 0.5, 1.5, 2.5, 3.5 → sum = 2*perG*(0.5+1.5+2.5+3.5).
	if want := 2.0 * perG * 8.0; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestMetricIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "x", "1", "y", "2")
	b := reg.Counter("c", "y", "2", "x", "1") // label order must not matter
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	c := reg.Counter("c", "x", "1", "y", "3")
	if a == c {
		t.Fatal("distinct label values returned the same counter")
	}
	if d := reg.Counter("c"); d == a {
		t.Fatal("unlabelled series returned the labelled counter")
	}
}

func TestOddLabelsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	reg.Counter("c", "only-key")
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "k", "2").Add(2)
	reg.Counter("b_total", "k", "1").Add(1)
	reg.Counter("a_total").Add(7)
	reg.Gauge("g").Set(1)
	reg.Histogram("h_seconds", []float64{1}).Observe(0.5)

	s := reg.Snapshot()
	if len(s.Counters) != 3 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot sizes: %d/%d/%d", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if s.Counters[0].Name != "a_total" || s.Counters[1].Labels[0].Value != "1" || s.Counters[2].Labels[0].Value != "2" {
		t.Fatalf("snapshot order: %+v", s.Counters)
	}
	if s.Counters[0].Value != 7 {
		t.Fatalf("a_total = %d", s.Counters[0].Value)
	}
	if s.Histograms[0].Count != 1 || s.Histograms[0].Sum != 0.5 {
		t.Fatalf("histogram snapshot: %+v", s.Histograms[0])
	}
}
