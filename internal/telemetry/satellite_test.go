package telemetry

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"marlperf/internal/profiler"
)

// TestPhaseCollectorExactlyOnceUnderConcurrentDrains is the exactly-once
// contract under the parallel update engine's real interleaving: worker
// shards observe phases concurrently while draining into a shared merge
// profile between rounds. Every observation must land in the registry
// exactly once — notified at Add time, never re-notified by DrainInto —
// so the final histogram count equals the number of Adds precisely.
// Run with -race this doubles as the collector's concurrency test.
func TestPhaseCollectorExactlyOnceUnderConcurrentDrains(t *testing.T) {
	const (
		workers = 8
		rounds  = 20
		perAdd  = 25
	)
	reg := NewRegistry()
	col := NewPhaseCollector(reg)

	var mu sync.Mutex
	var main profiler.Profile
	main.SetObserver(col) // must not cause double delivery on merge

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := &profiler.Profile{}
			sh.SetObserver(col)
			for r := 0; r < rounds; r++ {
				for i := 0; i < perAdd; i++ {
					sh.Add(profiler.PhaseTargetQ, time.Microsecond)
				}
				sh.Event(profiler.EventCheckpointWritten, 1)
				mu.Lock()
				sh.DrainInto(&main)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	const wantObs = workers * rounds * perAdd
	hist := reg.Histogram(MetricPhaseSeconds, nil, "phase", profiler.PhaseTargetQ.String())
	if got := hist.Count(); got != wantObs {
		t.Fatalf("histogram count = %d, want exactly %d (lost or duplicated observations)", got, wantObs)
	}
	if got, want := main.Count(profiler.PhaseTargetQ), uint64(wantObs); got != want {
		t.Fatalf("merged profile count = %d, want %d", got, want)
	}
	if got := reg.Counter(MetricEventsTotal, "event", profiler.EventCheckpointWritten).Value(); got != workers*rounds {
		t.Fatalf("event counter = %d, want %d", got, workers*rounds)
	}
}

// Prometheus text exposition grammar, per line.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)
)

// TestExpositionParseable is the scrape-compatibility regression: render a
// registry exercising every metric kind this codebase registers — counters
// with and without labels, gauges, multi-bucket histograms including the
// new lag families — and verify every line of /metrics output against the
// Prometheus text-format grammar, plus the structural invariants a real
// scraper enforces (TYPE before samples, cumulative monotone buckets
// ending at +Inf, _count matching the final bucket).
func TestExpositionParseable(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("marl_exp_ingest_rows_total", "Rows ingested.")
	reg.Counter("marl_exp_ingest_rows_total").Add(12345)
	reg.Counter("marl_events_total", "event", `odd"label\with
newline`).Inc()
	reg.Gauge("marl_policy_staleness_versions").Set(3)
	reg.Gauge("marl_spool_depth_batches").Set(-0)
	ageH := reg.Histogram("marl_exp_sample_age_rows", []float64{100, 1000, 10000})
	for _, v := range []float64{50, 500, 5000, 50000} {
		ageH.Observe(v)
	}
	lagH := reg.Histogram("marl_policy_act_lag_versions", []float64{0, 1, 2, 4})
	for _, v := range []float64{0, 0, 1, 3, 9} {
		lagH.Observe(v)
	}

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with a newline")
	}

	typed := map[string]string{} // family → declared type
	// bucketCum tracks the last cumulative bucket value per histogram series
	// (keyed by the full label set minus le).
	bucketCum := map[string]float64{}
	sawInf := map[string]bool{}
	counts := map[string]float64{}

	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !promTypeRe.MatchString(line) {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			parts := strings.Fields(line)
			typed[parts[2]] = parts[3]
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: not a valid sample line: %q", i+1, line)
			}
			name := m[1]
			value, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				t.Fatalf("line %d: unparseable value %q: %v", i+1, m[5], err)
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
					family = base
				}
			}
			if _, ok := typed[family]; !ok {
				t.Fatalf("line %d: sample %q appears before its TYPE declaration", i+1, name)
			}
			if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
				series := family + seriesLabels(m[2])
				if value < bucketCum[series] {
					t.Fatalf("line %d: bucket not cumulative: %q drops to %v", i+1, line, value)
				}
				bucketCum[series] = value
				if leOf(m[2]) == "+Inf" {
					sawInf[series] = true
					counts[series+"/bucketInf"] = value
				}
			}
			if strings.HasSuffix(name, "_count") && typed[family] == "histogram" {
				counts[family+seriesLabels(m[2])+"/count"] = value
			}
		}
	}
	if len(sawInf) != 2 {
		t.Fatalf("expected 2 histogram series with +Inf tails, saw %d", len(sawInf))
	}
	for series := range sawInf {
		inf := counts[series+"/bucketInf"]
		cnt := counts[series+"/count"]
		if math.Abs(inf-cnt) > 0 {
			t.Fatalf("series %q: +Inf bucket %v != _count %v", series, inf, cnt)
		}
	}
}

// seriesLabels normalizes a label-set string to identify one histogram
// series across its _bucket/_sum/_count lines: the le pair is dropped and
// leftover separators cleaned up, so `{le="+Inf"}` and “ (the matching
// _count line) map to the same key.
func seriesLabels(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		if !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	inQuote, escaped, start := false, false, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// leOf extracts the le label value from a label-set string like
// `{phase="x",le="+Inf"}`.
func leOf(labels string) string {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(key):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return ""
	}
	return rest[:j]
}
