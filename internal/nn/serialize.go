package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"marlperf/internal/tensor"
)

// Binary checkpoint format for networks and optimizers. Layout (all values
// little-endian):
//
//	network:  magic "MLPN" | uint32 layerCount | per layer:
//	          uint8 kind (0=dense, 1=relu) | dense only: uint32 in, out,
//	          in·out weight float64s, out bias float64s
//	adam:     magic "ADAM" | float64 lr, beta1, beta2, eps | uint64 t |
//	          uint32 paramCount | per param: uint32 len, len float64s (m),
//	          len float64s (v)
//
// RNG state is not serialized; a restored trainer continues from a fresh
// exploration stream.

const (
	netMagic  = "MLPN"
	adamMagic = "ADAM"

	kindDense = 0
	kindReLU  = 1
)

// WriteTo serializes the network's architecture and parameters.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := cw.Write([]byte(netMagic)); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(len(n.Layers))); err != nil {
		return cw.n, err
	}
	for i, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			if err := writeU8(cw, kindDense); err != nil {
				return cw.n, err
			}
			if err := writeU32(cw, uint32(layer.In())); err != nil {
				return cw.n, err
			}
			if err := writeU32(cw, uint32(layer.Out())); err != nil {
				return cw.n, err
			}
			if err := writeF64s(cw, layer.W.Data); err != nil {
				return cw.n, err
			}
			if err := writeF64s(cw, layer.B.Data); err != nil {
				return cw.n, err
			}
		case *ReLU:
			if err := writeU8(cw, kindReLU); err != nil {
				return cw.n, err
			}
		default:
			return cw.n, fmt.Errorf("nn: cannot serialize layer %d of type %T", i, l)
		}
	}
	return cw.n, nil
}

// ReadNetwork deserializes a network written by WriteTo.
func ReadNetwork(r io.Reader) (*Network, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: reading network magic: %w", err)
	}
	if string(magic[:]) != netMagic {
		return nil, fmt.Errorf("nn: bad network magic %q", magic)
	}
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	const maxLayers = 1 << 16
	if count > maxLayers {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	// Untrusted inputs (policy frames, fuzzed checkpoints) must not be able
	// to demand unbounded memory: beyond the per-dimension caps, the total
	// parameter count across the whole network is budgeted, so a header
	// claiming a 2^24×2^24 dense layer fails before any allocation.
	const maxTotalParams = 1 << 26
	var totalParams int64
	net := &Network{}
	for i := uint32(0); i < count; i++ {
		kind, err := readU8(r)
		if err != nil {
			return nil, err
		}
		switch kind {
		case kindDense:
			in, err := readU32(r)
			if err != nil {
				return nil, err
			}
			out, err := readU32(r)
			if err != nil {
				return nil, err
			}
			const maxDim = 1 << 24
			if in == 0 || out == 0 || in > maxDim || out > maxDim {
				return nil, fmt.Errorf("nn: implausible dense dims %dx%d", in, out)
			}
			totalParams += int64(in)*int64(out) + int64(out)
			if totalParams > maxTotalParams {
				return nil, fmt.Errorf("nn: network exceeds %d-parameter budget at layer %d (%dx%d)", int64(maxTotalParams), i, in, out)
			}
			d := &Dense{
				W:     tensor.New(int(in), int(out)),
				B:     tensor.New(1, int(out)),
				gradW: tensor.New(int(in), int(out)),
				gradB: tensor.New(1, int(out)),
			}
			if err := readF64s(r, d.W.Data); err != nil {
				return nil, err
			}
			if err := readF64s(r, d.B.Data); err != nil {
				return nil, err
			}
			net.Layers = append(net.Layers, d)
		case kindReLU:
			net.Layers = append(net.Layers, NewReLU())
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %d", kind)
		}
	}
	return net, nil
}

// WriteTo serializes the optimizer's hyperparameters and moment estimates.
// The optimizer must be re-bound to its network with NewAdam before
// ReadInto restores the state.
func (a *Adam) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := cw.Write([]byte(adamMagic)); err != nil {
		return cw.n, err
	}
	for _, v := range []float64{a.LR, a.Beta1, a.Beta2, a.Eps} {
		if err := writeF64(cw, v); err != nil {
			return cw.n, err
		}
	}
	if err := writeU64(cw, uint64(a.t)); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, uint32(len(a.m))); err != nil {
		return cw.n, err
	}
	for i := range a.m {
		if err := writeU32(cw, uint32(len(a.m[i]))); err != nil {
			return cw.n, err
		}
		if err := writeF64s(cw, a.m[i]); err != nil {
			return cw.n, err
		}
		if err := writeF64s(cw, a.v[i]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadInto restores optimizer state written by WriteTo. The receiver must
// already be bound to a network of the same architecture.
func (a *Adam) ReadInto(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: reading adam magic: %w", err)
	}
	if string(magic[:]) != adamMagic {
		return fmt.Errorf("nn: bad adam magic %q", magic)
	}
	vals := make([]float64, 4)
	for i := range vals {
		v, err := readF64(r)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	a.LR, a.Beta1, a.Beta2, a.Eps = vals[0], vals[1], vals[2], vals[3]
	t, err := readU64(r)
	if err != nil {
		return err
	}
	a.t = int(t)
	count, err := readU32(r)
	if err != nil {
		return err
	}
	if int(count) != len(a.m) {
		return fmt.Errorf("nn: checkpoint has %d params, optimizer has %d", count, len(a.m))
	}
	for i := uint32(0); i < count; i++ {
		n, err := readU32(r)
		if err != nil {
			return err
		}
		if int(n) != len(a.m[i]) {
			return fmt.Errorf("nn: checkpoint param %d has %d values, optimizer has %d", i, n, len(a.m[i]))
		}
		if err := readF64s(r, a.m[i]); err != nil {
			return err
		}
		if err := readF64s(r, a.v[i]); err != nil {
			return err
		}
	}
	return nil
}

// --- encoding helpers ---

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU8(w io.Writer, v uint8) error {
	_, err := w.Write([]byte{v})
	return err
}

func readU8(r io.Reader) (uint8, error) {
	var b [1]byte
	_, err := io.ReadFull(r, b[:])
	return b[0], err
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	_, err := io.ReadFull(r, b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	_, err := io.ReadFull(r, b[:])
	return binary.LittleEndian.Uint64(b[:]), err
}

func writeF64(w io.Writer, v float64) error {
	return writeU64(w, math.Float64bits(v))
}

func readF64(r io.Reader) (float64, error) {
	u, err := readU64(r)
	return math.Float64frombits(u), err
}

func writeF64s(w io.Writer, vs []float64) error {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readF64s(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}
