package nn

import (
	"math"

	"marlperf/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2014), the optimizer the
// paper uses with learning rate 0.01.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	params []*tensor.Matrix
	grads  []*tensor.Matrix
	m      [][]float64 // first-moment estimates
	v      [][]float64 // second-moment estimates
	t      int         // step count
}

// NewAdam binds an Adam optimizer to a network's parameters with the given
// learning rate and the standard β₁=0.9, β₂=0.999, ε=1e-8 defaults.
func NewAdam(net *Network, lr float64) *Adam {
	a := &Adam{
		LR:     lr,
		Beta1:  0.9,
		Beta2:  0.999,
		Eps:    1e-8,
		params: net.Params(),
		grads:  net.Grads(),
	}
	a.m = make([][]float64, len(a.params))
	a.v = make([][]float64, len(a.params))
	for i, p := range a.params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step applies one Adam update from the currently accumulated gradients.
// Gradients are not cleared; call Network.ZeroGrads before the next
// accumulation.
func (a *Adam) Step() {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		g := a.grads[i].Data
		m := a.m[i]
		v := a.v[i]
		pd := p.Data
		for j := range pd {
			gj := g[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mh := m[j] / b1c
			vh := v[j] / b2c
			pd[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// StepCount returns how many Step calls have been applied.
func (a *Adam) StepCount() int { return a.t }
