package nn

import (
	"fmt"
	"math"
	"math/rand"

	"marlperf/internal/tensor"
)

// MSELoss computes the mean-squared-error loss between pred and target
// (both batch×1 for the critics) and writes ∂L/∂pred into grad.
// It returns the scalar loss.
func MSELoss(grad, pred, target *tensor.Matrix) float64 {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %dx%d vs %dx%d", pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	n := float64(len(pred.Data))
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n
}

// WeightedMSELoss is MSELoss with a per-sample importance weight w[i]
// (PER / Lemma-1 compensation). pred and target are batch×1; weights has
// one entry per row. It also writes the raw TD errors |pred-target| into
// tdAbs when non-nil, which the PER sampler uses to refresh priorities.
func WeightedMSELoss(grad, pred, target *tensor.Matrix, weights, tdAbs []float64) float64 {
	if pred.Cols != 1 || target.Cols != 1 {
		panic("nn: WeightedMSELoss expects batch×1 inputs")
	}
	if pred.Rows != target.Rows || len(weights) != pred.Rows {
		panic(fmt.Sprintf("nn: WeightedMSELoss got %d preds, %d targets, %d weights", pred.Rows, target.Rows, len(weights)))
	}
	n := float64(pred.Rows)
	var loss float64
	for i := 0; i < pred.Rows; i++ {
		d := pred.Data[i] - target.Data[i]
		if tdAbs != nil {
			tdAbs[i] = math.Abs(d)
		}
		w := weights[i]
		loss += w * d * d
		grad.Data[i] = 2 * w * d / n
	}
	return loss / n
}

// SoftmaxRows applies a row-wise softmax of src into dst (shapes must match;
// dst may alias src). Each row is treated as one agent's action logits.
func SoftmaxRows(dst, src *tensor.Matrix) *tensor.Matrix {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("nn: SoftmaxRows shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		tensor.Softmax(dst.Row(i), src.Row(i))
	}
	return dst
}

// SoftmaxBackwardRows converts ∂L/∂probs into ∂L/∂logits for a row-wise
// softmax: ∂L/∂z_j = p_j·(g_j − Σ_k p_k·g_k). probs must hold the forward
// softmax output. dst may alias gradProbs.
func SoftmaxBackwardRows(dst, probs, gradProbs *tensor.Matrix) *tensor.Matrix {
	if dst.Rows != probs.Rows || dst.Cols != probs.Cols || gradProbs.Rows != probs.Rows || gradProbs.Cols != probs.Cols {
		panic("nn: SoftmaxBackwardRows shape mismatch")
	}
	for i := 0; i < probs.Rows; i++ {
		p := probs.Row(i)
		g := gradProbs.Row(i)
		d := dst.Row(i)
		dot := tensor.Dot(p, g)
		for j := range p {
			d[j] = p[j] * (g[j] - dot)
		}
	}
	return dst
}

// SampleGumbel fills dst with Gumbel(0,1) noise: -log(-log(U)). The small
// offsets keep the logs finite.
func SampleGumbel(dst []float64, rng *rand.Rand) {
	for i := range dst {
		u := rng.Float64()
		dst[i] = -math.Log(-math.Log(u+1e-20) + 1e-20)
	}
}

// GumbelSoftmaxRow produces a differentiable sample from a categorical
// distribution: softmax((logits + gumbel)/temperature). The reference
// MADDPG implementation uses this relaxation for its discrete particle-env
// actions. dst may alias logits.
func GumbelSoftmaxRow(dst, logits []float64, temperature float64, rng *rand.Rand) {
	if len(dst) != len(logits) {
		panic("nn: GumbelSoftmaxRow length mismatch")
	}
	if temperature <= 0 {
		panic("nn: GumbelSoftmaxRow temperature must be positive")
	}
	tmp := make([]float64, len(logits))
	SampleGumbel(tmp, rng)
	for i, l := range logits {
		tmp[i] = (l + tmp[i]) / temperature
	}
	tensor.Softmax(dst, tmp)
}
