package nn

import (
	"math/rand"
	"sync"
	"testing"

	"marlperf/internal/tensor"
)

// TestSharedCloneForwardMatches verifies a clone computes the same forward
// pass as the original and tracks in-place weight updates.
func TestSharedCloneForwardMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(rng, 6, 8, 4)
	clone := net.SharedClone()

	x := tensor.New(5, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Forward(x)
	got := clone.Forward(x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("clone forward[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	// An in-place weight update (the trainer's soft-update/checkpoint-restore
	// pattern) must be visible through the clone.
	other := NewMLP(rand.New(rand.NewSource(9)), 6, 8, 4)
	HardCopy(net, other)
	want = net.Forward(x)
	got = clone.Forward(x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("after HardCopy, clone forward[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestSharedCloneConcurrentForward hammers one network's clones from many
// goroutines; under -race this proves the clones share no mutable scratch.
func TestSharedCloneConcurrentForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(rng, 6, 16, 4)
	x := tensor.New(8, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Forward(x)
	ref := append([]float64(nil), want.Data...)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := net.SharedClone()
			for r := 0; r < 50; r++ {
				out := clone.Forward(x)
				for i := range ref {
					if out.Data[i] != ref[i] {
						t.Errorf("concurrent clone forward[%d] = %v, want %v", i, out.Data[i], ref[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSharedCloneGradsArePrivate ensures backward through a clone leaves the
// original's gradients untouched.
func TestSharedCloneGradsArePrivate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(rng, 4, 6, 2)
	clone := net.SharedClone()

	x := tensor.New(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := clone.Forward(x)
	grad := tensor.New(out.Rows, out.Cols)
	grad.Fill(1)
	clone.Backward(grad)

	for gi, g := range net.Grads() {
		for i, v := range g.Data {
			if v != 0 {
				t.Fatalf("original grad %d[%d] = %v after clone backward, want 0", gi, i, v)
			}
		}
	}
	var nonZero bool
	for _, g := range clone.Grads() {
		for _, v := range g.Data {
			if v != 0 {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Fatal("clone accumulated no gradients")
	}
}
