package nn

import (
	"math"
	"math/rand"
	"testing"

	"marlperf/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	d.W.CopyFrom(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	d.B.CopyFrom(tensor.FromSlice(1, 2, []float64{10, 20}))
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := d.Forward(x)
	want := tensor.FromSlice(1, 2, []float64{14, 26})
	if !tensor.ApproxEqual(y, want, 1e-12) {
		t.Fatalf("Dense forward = %v, want %v", y.Data, want.Data)
	}
}

func TestDenseForwardWidthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Dense forward with wrong width did not panic")
		}
	}()
	d.Forward(tensor.New(1, 2))
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Dense backward before forward did not panic")
		}
	}()
	d.Backward(tensor.New(1, 2))
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float64{-1, 0, 2, -3})
	y := r.Forward(x)
	want := tensor.FromSlice(1, 4, []float64{0, 0, 2, 0})
	if !tensor.ApproxEqual(y, want, 0) {
		t.Fatalf("ReLU forward = %v", y.Data)
	}
	g := r.Backward(tensor.FromSlice(1, 4, []float64{5, 5, 5, 5}))
	wantG := tensor.FromSlice(1, 4, []float64{0, 0, 5, 0})
	if !tensor.ApproxEqual(g, wantG, 0) {
		t.Fatalf("ReLU backward = %v", g.Data)
	}
}

func TestReLUHasNoParams(t *testing.T) {
	r := NewReLU()
	if r.Params() != nil || r.Grads() != nil {
		t.Fatal("ReLU should report no parameters")
	}
}

// numericalGrad computes ∂loss/∂θ for every parameter of the network by
// central differences, where loss = MSE(net(x), target).
func numericalGrad(net *Network, x, target *tensor.Matrix, eps float64) [][]float64 {
	lossAt := func() float64 {
		out := net.Forward(x)
		g := tensor.New(out.Rows, out.Cols)
		return MSELoss(g, out, target)
	}
	params := net.Params()
	grads := make([][]float64, len(params))
	for pi, p := range params {
		grads[pi] = make([]float64, len(p.Data))
		for j := range p.Data {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			up := lossAt()
			p.Data[j] = orig - eps
			down := lossAt()
			p.Data[j] = orig
			grads[pi][j] = (up - down) / (2 * eps)
		}
	}
	return grads
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewMLP(rng, 4, 8, 8, 1)
	x := tensor.New(5, 4)
	x.RandNormal(rng, 0, 1)
	target := tensor.New(5, 1)
	target.RandNormal(rng, 0, 1)

	out := net.Forward(x)
	gradOut := tensor.New(out.Rows, out.Cols)
	MSELoss(gradOut, out, target)
	net.ZeroGrads()
	net.Backward(gradOut)
	analytic := net.Grads()

	numeric := numericalGrad(net, x, target, 1e-6)
	for pi := range analytic {
		for j := range analytic[pi].Data {
			a := analytic[pi].Data[j]
			n := numeric[pi][j]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(n)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", pi, j, a, n)
			}
		}
	}
}

func TestMLPBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewMLP(rng, 3, 6, 1)
	x := tensor.New(2, 3)
	x.RandNormal(rng, 0, 1)
	target := tensor.New(2, 1)
	target.RandNormal(rng, 0, 1)

	out := net.Forward(x)
	gradOut := tensor.New(out.Rows, out.Cols)
	MSELoss(gradOut, out, target)
	net.ZeroGrads()
	gin := net.Backward(gradOut)

	// Numerical input gradient.
	eps := 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		o1 := net.Forward(x)
		g1 := tensor.New(o1.Rows, o1.Cols)
		up := MSELoss(g1, o1, target)
		x.Data[i] = orig - eps
		o2 := net.Forward(x)
		down := MSELoss(g1, o2, target)
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(gin.Data[i]-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %v vs numeric %v", i, gin.Data[i], num)
		}
	}
}

func TestNewMLPPanicsOnTooFewWidths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP with one width did not panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(1)), 4)
}

func TestNumParamsPaperMLP(t *testing.T) {
	// Paper: two-layer ReLU MLP with 64 units per layer. For a 16-input,
	// 5-output actor: 16·64+64 + 64·64+64 + 64·5+5 parameters.
	rng := rand.New(rand.NewSource(9))
	net := NewMLP(rng, 16, 64, 64, 5)
	want := 16*64 + 64 + 64*64 + 64 + 64*5 + 5
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestHardCopyAndSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewMLP(rng, 3, 4, 2)
	dst := NewMLP(rng, 3, 4, 2)
	HardCopy(dst, src)
	for i, p := range dst.Params() {
		if !tensor.ApproxEqual(p, src.Params()[i], 0) {
			t.Fatal("HardCopy did not copy parameters")
		}
	}
	// Perturb src, then soft-update with τ=0.5 and check the midpoint.
	before := dst.Params()[0].At(0, 0)
	src.Params()[0].Set(0, 0, before+2)
	SoftUpdate(dst, src, 0.5)
	got := dst.Params()[0].At(0, 0)
	want := 0.5*(before+2) + 0.5*before
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SoftUpdate got %v, want %v", got, want)
	}
}

func TestSoftUpdateTauZeroIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewMLP(rng, 2, 3, 1)
	dst := NewMLP(rng, 2, 3, 1)
	snapshot := dst.Params()[0].Clone()
	SoftUpdate(dst, src, 0)
	if !tensor.ApproxEqual(dst.Params()[0], snapshot, 0) {
		t.Fatal("SoftUpdate with τ=0 changed the target")
	}
}

func TestClipGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewMLP(rng, 2, 2, 1)
	for _, g := range net.Grads() {
		g.Fill(10)
	}
	pre := net.ClipGradients(0.5)
	if pre <= 0.5 {
		t.Fatalf("expected pre-clip norm > 0.5, got %v", pre)
	}
	var sq float64
	for _, g := range net.Grads() {
		for _, v := range g.Data {
			sq += v * v
		}
	}
	if post := math.Sqrt(sq); math.Abs(post-0.5) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 0.5", post)
	}
}

func TestClipGradientsUnderLimitUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewMLP(rng, 2, 2, 1)
	for _, g := range net.Grads() {
		g.Fill(1e-4)
	}
	snapshot := net.Grads()[0].Clone()
	net.ClipGradients(100)
	if !tensor.ApproxEqual(net.Grads()[0], snapshot, 0) {
		t.Fatal("gradients under the limit should not be scaled")
	}
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(net, 0.01)

	// Learn y = x0 + 2·x1 on fixed data.
	x := tensor.New(32, 2)
	x.RandNormal(rng, 0, 1)
	target := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		target.Set(i, 0, x.At(i, 0)+2*x.At(i, 1))
	}
	gradOut := tensor.New(32, 1)

	lossAt := func() float64 {
		out := net.Forward(x)
		return MSELoss(gradOut, out, target)
	}
	first := lossAt()
	for step := 0; step < 300; step++ {
		out := net.Forward(x)
		MSELoss(gradOut, out, target)
		net.ZeroGrads()
		net.Backward(gradOut)
		opt.Step()
	}
	last := lossAt()
	if last > first/10 {
		t.Fatalf("Adam failed to learn: first loss %v, last loss %v", first, last)
	}
	if opt.StepCount() != 300 {
		t.Fatalf("StepCount = %d, want 300", opt.StepCount())
	}
}

func TestDenseGradAccumulatesAcrossBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDense(2, 1, rng)
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	g := tensor.FromSlice(1, 1, []float64{1})
	d.Forward(x)
	d.Backward(g)
	once := d.gradW.Clone()
	d.Forward(x)
	d.Backward(g)
	twice := d.gradW
	for i := range once.Data {
		if math.Abs(twice.Data[i]-2*once.Data[i]) > 1e-12 {
			t.Fatalf("gradients should accumulate: %v vs 2×%v", twice.Data[i], once.Data[i])
		}
	}
}
