package nn

import (
	"fmt"
	"math"
)

// RunningNormalizer tracks a running mean and variance per feature using
// Welford's online algorithm and standardizes observation vectors with
// them. Observation normalization is a standard stabilization technique in
// RL libraries; trainers can apply it per agent when observation scales
// vary widely (e.g. velocities vs relative positions in the particle
// environments).
type RunningNormalizer struct {
	dim   int
	count float64
	mean  []float64
	m2    []float64 // sum of squared deviations

	// ClipRange limits standardized values to ±ClipRange (0 disables).
	ClipRange float64
	// Eps stabilizes division for near-constant features.
	Eps float64
}

// NewRunningNormalizer returns a normalizer for dim-wide vectors with the
// conventional clip at ±5 standard deviations.
func NewRunningNormalizer(dim int) *RunningNormalizer {
	if dim < 1 {
		panic(fmt.Sprintf("nn: normalizer dim %d, want ≥1", dim))
	}
	return &RunningNormalizer{
		dim:       dim,
		mean:      make([]float64, dim),
		m2:        make([]float64, dim),
		ClipRange: 5,
		Eps:       1e-8,
	}
}

// Dim returns the feature width.
func (n *RunningNormalizer) Dim() int { return n.dim }

// Count returns how many vectors have been observed.
func (n *RunningNormalizer) Count() float64 { return n.count }

// Observe folds one raw vector into the running statistics.
func (n *RunningNormalizer) Observe(v []float64) {
	if len(v) != n.dim {
		panic(fmt.Sprintf("nn: normalizer observed width %d, want %d", len(v), n.dim))
	}
	n.count++
	for i, x := range v {
		delta := x - n.mean[i]
		n.mean[i] += delta / n.count
		n.m2[i] += delta * (x - n.mean[i])
	}
}

// Mean returns the running mean of feature i.
func (n *RunningNormalizer) Mean(i int) float64 { return n.mean[i] }

// Std returns the running standard deviation of feature i (0 until two
// observations have been seen).
func (n *RunningNormalizer) Std(i int) float64 {
	if n.count < 2 {
		return 0
	}
	return math.Sqrt(n.m2[i] / (n.count - 1))
}

// Normalize writes the standardized form of src into dst (which may alias
// src): (x - mean) / (std + eps), clipped to ±ClipRange. Before any
// observations it is the identity.
func (n *RunningNormalizer) Normalize(dst, src []float64) {
	if len(dst) != n.dim || len(src) != n.dim {
		panic(fmt.Sprintf("nn: normalize widths %d/%d, want %d", len(dst), len(src), n.dim))
	}
	if n.count < 2 {
		copy(dst, src)
		return
	}
	for i, x := range src {
		std := n.Std(i)
		y := (x - n.mean[i]) / (std + n.Eps)
		if n.ClipRange > 0 {
			if y > n.ClipRange {
				y = n.ClipRange
			} else if y < -n.ClipRange {
				y = -n.ClipRange
			}
		}
		dst[i] = y
	}
}

// ObserveAndNormalize folds src into the statistics and then standardizes
// it into dst in one call (the common online-training pattern).
func (n *RunningNormalizer) ObserveAndNormalize(dst, src []float64) {
	n.Observe(src)
	n.Normalize(dst, src)
}
