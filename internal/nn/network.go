package nn

import (
	"math"
	"math/rand"

	"marlperf/internal/tensor"
)

// Network is a sequential stack of layers. The paper's actors and critics
// are two-hidden-layer ReLU MLPs with 64 units per layer.
type Network struct {
	Layers []Layer

	// params/grads cache the flattened tensor lists so hot-path callers
	// (ZeroGrads, ClipGradients, optimizer steps) do not allocate a slice
	// per call. Built lazily on first use; Layers must not change after.
	params []*tensor.Matrix
	grads  []*tensor.Matrix
}

// NewMLP builds a dense network with the given layer widths, inserting a
// ReLU after every dense layer except the last (linear output head).
// widths must contain at least an input and an output width.
func NewMLP(rng *rand.Rand, widths ...int) *Network {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	net := &Network{}
	for i := 0; i+1 < len(widths); i++ {
		net.Layers = append(net.Layers, NewDense(widths[i], widths[i+1], rng))
		if i+2 < len(widths) {
			net.Layers = append(net.Layers, NewReLU())
		}
	}
	return net
}

// Forward runs the batch through every layer and returns the output.
// The returned matrix is owned by the final layer and is overwritten by the
// next Forward call.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse and
// returns the gradient with respect to the network input.
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable tensors in layer order. The slice is cached
// across calls; callers must not append to or reorder it.
func (n *Network) Params() []*tensor.Matrix {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// Grads returns all gradient tensors in the same order as Params. The slice
// is cached across calls; callers must not append to or reorder it.
func (n *Network) Grads() []*tensor.Matrix {
	if n.grads == nil {
		for _, l := range n.Layers {
			n.grads = append(n.grads, l.Grads()...)
		}
	}
	return n.grads
}

// SharedClone returns a network whose layers alias this network's parameter
// tensors but own private gradient and scratch storage. A clone can run
// Forward concurrently with the original (and with other clones) as long as
// the shared weights are not written during the overlap — the parallel
// update engine uses clones as read-only shadows of the target actors, whose
// weights only move in the post-join soft updates.
func (n *Network) SharedClone() *Network {
	c := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = l.SharedClone()
	}
	return c
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// HardCopy copies src's parameters into dst. The two networks must have the
// same architecture. Used to initialize target networks.
func HardCopy(dst, src *Network) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic("nn: HardCopy between different architectures")
	}
	for i := range dp {
		dp[i].CopyFrom(sp[i])
	}
}

// SoftUpdate performs the Polyak target update
// target ← τ·src + (1-τ)·target used by MADDPG and MATD3 (τ=0.01 in the
// paper's settings).
func SoftUpdate(target, src *Network, tau float64) {
	tp, sp := target.Params(), src.Params()
	if len(tp) != len(sp) {
		panic("nn: SoftUpdate between different architectures")
	}
	for i := range tp {
		td, sd := tp[i].Data, sp[i].Data
		for j := range td {
			td[j] = tau*sd[j] + (1-tau)*td[j]
		}
	}
}

// ClipGradients scales all gradients down so their global L2 norm does not
// exceed maxNorm (matching the gradient clipping of the reference MADDPG
// implementation, clip norm 0.5). It returns the pre-clip norm.
func (n *Network) ClipGradients(maxNorm float64) float64 {
	var sq float64
	grads := n.Grads()
	for _, g := range grads {
		for _, v := range g.Data {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, g := range grads {
			g.Scale(scale)
		}
	}
	return norm
}
