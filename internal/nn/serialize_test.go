package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"marlperf/internal/tensor"
)

func TestNetworkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewMLP(rng, 7, 16, 16, 3)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Layers) != len(net.Layers) {
		t.Fatalf("restored %d layers, want %d", len(restored.Layers), len(net.Layers))
	}
	for i, p := range net.Params() {
		if !tensor.ApproxEqual(restored.Params()[i], p, 0) {
			t.Fatalf("param %d differs after round-trip", i)
		}
	}
	// The restored network must produce identical outputs.
	x := tensor.New(4, 7)
	x.RandNormal(rng, 0, 1)
	want := net.Forward(x).Clone()
	got := restored.Forward(x)
	if !tensor.ApproxEqual(got, want, 0) {
		t.Fatal("restored network output differs")
	}
}

func TestNetworkRoundTripTrainable(t *testing.T) {
	// A restored network must be trainable: gradients and optimizer state
	// must wire up.
	rng := rand.New(rand.NewSource(2))
	net := NewMLP(rng, 3, 8, 1)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(restored, 0.01)
	x := tensor.New(8, 3)
	x.RandNormal(rng, 0, 1)
	target := tensor.New(8, 1)
	target.Fill(1)
	grad := tensor.New(8, 1)
	out := restored.Forward(x)
	first := MSELoss(grad, out, target)
	for i := 0; i < 100; i++ {
		out := restored.Forward(x)
		MSELoss(grad, out, target)
		restored.ZeroGrads()
		restored.Backward(grad)
		opt.Step()
	}
	out = restored.Forward(x)
	last := MSELoss(grad, out, target)
	if last >= first {
		t.Fatalf("restored network did not train: %v -> %v", first, last)
	}
}

func TestReadNetworkRejectsBadMagic(t *testing.T) {
	if _, err := ReadNetwork(strings.NewReader("XXXX....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadNetworkRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(rng, 4, 4, 1)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 12, len(data) / 2, len(data) - 1} {
		if _, err := ReadNetwork(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadNetworkRejectsImplausibleDims(t *testing.T) {
	// magic + 1 layer + dense kind + absurd dims.
	var buf bytes.Buffer
	buf.WriteString(netMagic)
	writeU32(&buf, 1)
	writeU8(&buf, kindDense)
	writeU32(&buf, 1<<30)
	writeU32(&buf, 1<<30)
	if _, err := ReadNetwork(&buf); err == nil {
		t.Fatal("implausible dims accepted")
	}
}

func TestReadNetworkRejectsParamBudgetOverrun(t *testing.T) {
	// Each dimension alone passes the per-dim cap, but the product blows the
	// total-parameter budget; the decoder must fail before allocating.
	var buf bytes.Buffer
	buf.WriteString(netMagic)
	writeU32(&buf, 1)
	writeU8(&buf, kindDense)
	writeU32(&buf, 1<<24)
	writeU32(&buf, 1<<24)
	if _, err := ReadNetwork(&buf); err == nil {
		t.Fatal("param-budget overrun accepted")
	}
}

func TestAdamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP(rng, 3, 6, 1)
	opt := NewAdam(net, 0.02)
	// Take a few steps so the moments are non-trivial.
	x := tensor.New(4, 3)
	x.RandNormal(rng, 0, 1)
	target := tensor.New(4, 1)
	grad := tensor.New(4, 1)
	for i := 0; i < 5; i++ {
		out := net.Forward(x)
		MSELoss(grad, out, target)
		net.ZeroGrads()
		net.Backward(grad)
		opt.Step()
	}

	var buf bytes.Buffer
	if _, err := opt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	opt2 := NewAdam(net, 0.5) // different lr, will be overwritten
	if err := opt2.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	if opt2.LR != 0.02 || opt2.StepCount() != 5 {
		t.Fatalf("restored lr=%v t=%d", opt2.LR, opt2.StepCount())
	}
	for i := range opt.m {
		for j := range opt.m[i] {
			if opt.m[i][j] != opt2.m[i][j] || opt.v[i][j] != opt2.v[i][j] {
				t.Fatalf("moment %d/%d differs after round-trip", i, j)
			}
		}
	}
}

func TestAdamReadIntoRejectsMismatchedArch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewAdam(NewMLP(rng, 3, 6, 1), 0.01)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewAdam(NewMLP(rng, 3, 9, 1), 0.01) // different hidden width
	if err := dst.ReadInto(&buf); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
}

func TestAdamReadIntoRejectsBadMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	opt := NewAdam(NewMLP(rng, 2, 2, 1), 0.01)
	if err := opt.ReadInto(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}
