package nn

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzReadNetwork hardens the checkpoint parser: arbitrary byte strings
// must never panic or allocate absurdly — they either parse to a valid
// network or return an error.
func FuzzReadNetwork(f *testing.F) {
	// Seed with a valid checkpoint and a few mutations.
	rng := rand.New(rand.NewSource(1))
	net := NewMLP(rng, 3, 4, 2)
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MLPN"))
	mutated := append([]byte(nil), valid...)
	mutated[6] ^= 0xFF
	f.Add(mutated)
	// Allocation attack: a header claiming one dense layer with maximal dims
	// would demand 2^48 float64s if dims were only capped individually. The
	// total-parameter budget must reject it before allocating.
	attack := []byte("MLPN")
	attack = binary.LittleEndian.AppendUint32(attack, 1)     // 1 layer
	attack = append(attack, 0)                               // dense
	attack = binary.LittleEndian.AppendUint32(attack, 1<<24) // in
	attack = binary.LittleEndian.AppendUint32(attack, 1<<24) // out
	f.Add(attack)

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must be usable.
		if restored.NumParams() < 0 {
			t.Fatal("negative param count")
		}
	})
}

// FuzzAdamReadInto hardens the optimizer-state parser the same way.
func FuzzAdamReadInto(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	opt := NewAdam(NewMLP(rng, 2, 3, 1), 0.01)
	var buf bytes.Buffer
	if _, err := opt.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ADAM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		target := NewAdam(NewMLP(rand.New(rand.NewSource(3)), 2, 3, 1), 0.01)
		_ = target.ReadInto(bytes.NewReader(data)) // must not panic
	})
}
