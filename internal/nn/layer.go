// Package nn implements the small neural-network substrate the paper's
// trainers need: dense layers with ReLU activations, backpropagation, an
// Adam optimizer, target-network updates, and the softmax machinery used to
// train discrete-action actors. Everything is pure Go over internal/tensor.
package nn

import (
	"fmt"
	"math/rand"

	"marlperf/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch×in matrix and produces batch×out; Backward consumes the gradient of
// the loss with respect to the layer output and returns the gradient with
// respect to the layer input, accumulating parameter gradients internally.
type Layer interface {
	Forward(x *tensor.Matrix) *tensor.Matrix
	Backward(grad *tensor.Matrix) *tensor.Matrix
	Params() []*tensor.Matrix
	Grads() []*tensor.Matrix
	// SharedClone returns a layer that aliases this layer's parameter
	// tensors but owns private gradient and scratch storage, so the clone
	// can run Forward/Backward concurrently with the original as long as
	// neither mutates the shared weights during the overlap.
	SharedClone() Layer
}

// Dense is a fully connected layer computing y = x·W + b.
type Dense struct {
	W *tensor.Matrix // in×out
	B *tensor.Matrix // 1×out

	gradW *tensor.Matrix
	gradB *tensor.Matrix

	lastX      *tensor.Matrix // retained input for backward
	out        *tensor.Matrix // forward scratch, resized per batch
	gradIn     *tensor.Matrix // backward scratch, resized per batch
	gwScratch  *tensor.Matrix // backward scratch for xᵀ·grad
	sumScratch []float64      // backward scratch for column sums
}

// NewDense returns a Dense layer with Xavier-initialized weights and zero
// biases, matching the paper's TF2 MLP initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W:     tensor.New(in, out),
		B:     tensor.New(1, out),
		gradW: tensor.New(in, out),
		gradB: tensor.New(1, out),
	}
	d.W.XavierInit(rng, in, out)
	return d
}

// In returns the input width of the layer.
func (d *Dense) In() int { return d.W.Rows }

// Out returns the output width of the layer.
func (d *Dense) Out() int { return d.W.Cols }

// Forward computes y = x·W + b, retaining x for the backward pass.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense forward got width %d, want %d", x.Cols, d.W.Rows))
	}
	d.lastX = x
	// Reshape reuses the output backing across varying batch sizes; the
	// matmul overwrites every element, so stale contents are fine.
	d.out = tensor.Reshape(d.out, x.Rows, d.W.Cols)
	tensor.MatMulParallel(d.out, x, d.W)
	d.out.AddRowVector(d.B.Data)
	return d.out
}

// Backward accumulates ∂L/∂W and ∂L/∂b and returns ∂L/∂x.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.lastX == nil {
		panic("nn: Dense backward before forward")
	}
	if grad.Rows != d.lastX.Rows || grad.Cols != d.W.Cols {
		panic(fmt.Sprintf("nn: Dense backward grad %dx%d, want %dx%d", grad.Rows, grad.Cols, d.lastX.Rows, d.W.Cols))
	}
	// gradW += xᵀ·grad  (accumulated; ZeroGrads clears between steps)
	if d.gwScratch == nil {
		d.gwScratch = tensor.New(d.W.Rows, d.W.Cols)
	}
	tensor.MatMulTransAParallel(d.gwScratch, d.lastX, grad)
	tensor.Add(d.gradW, d.gradW, d.gwScratch)
	// gradB += column sums of grad
	d.sumScratch = grad.SumRows(d.sumScratch)
	tensor.AXPY(d.gradB.Data, 1, d.sumScratch)
	// gradIn = grad·Wᵀ
	d.gradIn = tensor.Reshape(d.gradIn, grad.Rows, d.W.Rows)
	tensor.MatMulTransBParallel(d.gradIn, grad, d.W)
	return d.gradIn
}

// Params returns the trainable tensors (weights then bias).
func (d *Dense) Params() []*tensor.Matrix { return []*tensor.Matrix{d.W, d.B} }

// Grads returns the gradient tensors matching Params.
func (d *Dense) Grads() []*tensor.Matrix { return []*tensor.Matrix{d.gradW, d.gradB} }

// SharedClone implements Layer: the clone aliases W and B (in-place weight
// updates like CopyFrom/SoftUpdate stay visible to it) while gradients and
// forward/backward scratch are private.
func (d *Dense) SharedClone() Layer {
	return &Dense{
		W:     d.W,
		B:     d.B,
		gradW: tensor.New(d.W.Rows, d.W.Cols),
		gradB: tensor.New(1, d.W.Cols),
	}
}

// ReLU is the rectified-linear activation layer.
type ReLU struct {
	mask   []bool // true where the input was positive
	out    *tensor.Matrix
	gradIn *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0), remembering the active mask.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	n := len(x.Data)
	r.out = tensor.Reshape(r.out, x.Rows, x.Cols)
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	r.mask = r.mask[:n]
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
			r.mask[i] = true
		} else {
			r.out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return r.out
}

// Backward zeroes the gradient where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if r.mask == nil || len(grad.Data) != len(r.mask) {
		panic("nn: ReLU backward shape does not match forward")
	}
	r.gradIn = tensor.Reshape(r.gradIn, grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		if r.mask[i] {
			r.gradIn.Data[i] = g
		} else {
			r.gradIn.Data[i] = 0
		}
	}
	return r.gradIn
}

// Params returns nil; ReLU has no trainable parameters.
func (r *ReLU) Params() []*tensor.Matrix { return nil }

// Grads returns nil; ReLU has no trainable parameters.
func (r *ReLU) Grads() []*tensor.Matrix { return nil }

// SharedClone implements Layer; ReLU has no parameters, so the clone is a
// fresh layer with its own mask and scratch.
func (r *ReLU) SharedClone() Layer { return NewReLU() }
