package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizerIdentityBeforeData(t *testing.T) {
	n := NewRunningNormalizer(3)
	src := []float64{1, -2, 3}
	dst := make([]float64, 3)
	n.Normalize(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("pre-data normalize changed values: %v", dst)
		}
	}
}

func TestNormalizerMeanAndStd(t *testing.T) {
	n := NewRunningNormalizer(1)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		n.Observe([]float64{v})
	}
	if got := n.Mean(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := n.Std(0); math.Abs(got-2.1381) > 1e-3 {
		t.Fatalf("Std = %v, want ≈2.138", got)
	}
	if n.Count() != 8 {
		t.Fatalf("Count = %v", n.Count())
	}
}

func TestNormalizerStandardizesGaussianStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewRunningNormalizer(2)
	// Feature 0: N(10, 4); feature 1: N(-3, 0.25).
	for i := 0; i < 5000; i++ {
		n.Observe([]float64{10 + 2*rng.NormFloat64(), -3 + 0.5*rng.NormFloat64()})
	}
	dst := make([]float64, 2)
	// A point one std above each mean should normalize to ≈1.
	n.Normalize(dst, []float64{12, -2.5})
	if math.Abs(dst[0]-1) > 0.1 || math.Abs(dst[1]-1) > 0.1 {
		t.Fatalf("normalized = %v, want ≈[1 1]", dst)
	}
}

func TestNormalizerClips(t *testing.T) {
	n := NewRunningNormalizer(1)
	n.ClipRange = 2
	for i := 0; i < 100; i++ {
		n.Observe([]float64{float64(i % 3)}) // mean 1, std ≈ 0.82
	}
	dst := make([]float64, 1)
	n.Normalize(dst, []float64{1000})
	if dst[0] != 2 {
		t.Fatalf("clip high = %v, want 2", dst[0])
	}
	n.Normalize(dst, []float64{-1000})
	if dst[0] != -2 {
		t.Fatalf("clip low = %v, want -2", dst[0])
	}
}

func TestNormalizerConstantFeatureStable(t *testing.T) {
	n := NewRunningNormalizer(1)
	for i := 0; i < 50; i++ {
		n.Observe([]float64{7})
	}
	dst := make([]float64, 1)
	n.Normalize(dst, []float64{7})
	if math.IsNaN(dst[0]) || math.IsInf(dst[0], 0) {
		t.Fatalf("constant feature normalized to %v", dst[0])
	}
}

func TestNormalizerObserveAndNormalize(t *testing.T) {
	n := NewRunningNormalizer(1)
	dst := make([]float64, 1)
	n.ObserveAndNormalize(dst, []float64{1})
	n.ObserveAndNormalize(dst, []float64{3})
	if n.Count() != 2 {
		t.Fatalf("Count = %v, want 2", n.Count())
	}
}

func TestNormalizerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dim":  func() { NewRunningNormalizer(0) },
		"bad width": func() { NewRunningNormalizer(2).Observe([]float64{1}) },
		"bad norm":  func() { NewRunningNormalizer(2).Normalize(make([]float64, 1), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Welford's running mean matches the batch mean for any stream.
func TestNormalizerWelfordMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewRunningNormalizer(1)
		count := 2 + r.Intn(60)
		var sum float64
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = r.NormFloat64() * 10
			sum += vals[i]
			n.Observe([]float64{vals[i]})
		}
		mean := sum / float64(count)
		if math.Abs(n.Mean(0)-mean) > 1e-9*(1+math.Abs(mean)) {
			return false
		}
		var sq float64
		for _, v := range vals {
			sq += (v - mean) * (v - mean)
		}
		std := math.Sqrt(sq / float64(count-1))
		return math.Abs(n.Std(0)-std) < 1e-9*(1+std)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
