package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"marlperf/internal/tensor"
)

func TestMSELossKnownValues(t *testing.T) {
	pred := tensor.FromSlice(2, 1, []float64{1, 3})
	target := tensor.FromSlice(2, 1, []float64{0, 1})
	grad := tensor.New(2, 1)
	loss := MSELoss(grad, pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4) / 2
		t.Fatalf("MSE loss = %v, want 2.5", loss)
	}
	wantGrad := tensor.FromSlice(2, 1, []float64{1, 2}) // 2·d/n
	if !tensor.ApproxEqual(grad, wantGrad, 1e-12) {
		t.Fatalf("MSE grad = %v, want %v", grad.Data, wantGrad.Data)
	}
}

func TestMSELossZeroWhenEqual(t *testing.T) {
	pred := tensor.FromSlice(3, 1, []float64{1, 2, 3})
	grad := tensor.New(3, 1)
	if loss := MSELoss(grad, pred, pred.Clone()); loss != 0 {
		t.Fatalf("MSE of identical tensors = %v, want 0", loss)
	}
}

func TestWeightedMSEMatchesUnweightedWithUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pred := tensor.New(8, 1)
	pred.RandNormal(rng, 0, 1)
	target := tensor.New(8, 1)
	target.RandNormal(rng, 0, 1)
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = 1
	}
	g1 := tensor.New(8, 1)
	g2 := tensor.New(8, 1)
	l1 := MSELoss(g1, pred, target)
	l2 := WeightedMSELoss(g2, pred, target, weights, nil)
	if math.Abs(l1-l2) > 1e-12 {
		t.Fatalf("weighted(1) loss %v != unweighted %v", l2, l1)
	}
	if !tensor.ApproxEqual(g1, g2, 1e-12) {
		t.Fatal("weighted(1) grad differs from unweighted")
	}
}

func TestWeightedMSETDErrors(t *testing.T) {
	pred := tensor.FromSlice(2, 1, []float64{1, -2})
	target := tensor.FromSlice(2, 1, []float64{0, 2})
	weights := []float64{0.5, 0.25}
	td := make([]float64, 2)
	grad := tensor.New(2, 1)
	WeightedMSELoss(grad, pred, target, weights, td)
	if td[0] != 1 || td[1] != 4 {
		t.Fatalf("TD errors = %v, want [1 4]", td)
	}
}

func TestWeightedMSEPanicsOnWeightCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedMSELoss with wrong weight count did not panic")
		}
	}()
	WeightedMSELoss(tensor.New(2, 1), tensor.New(2, 1), tensor.New(2, 1), []float64{1}, nil)
}

func TestSoftmaxRowsEachRowSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := tensor.New(6, 5)
	src.RandNormal(rng, 0, 3)
	dst := tensor.New(6, 5)
	SoftmaxRows(dst, src)
	for i := 0; i < 6; i++ {
		var sum float64
		for _, v := range dst.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

// Softmax backward must match the numerical Jacobian-vector product.
func TestSoftmaxBackwardRowsGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.New(3, 5)
	logits.RandNormal(rng, 0, 1)
	// Downstream "loss": L = Σ c_ij · p_ij with random coefficients.
	coef := tensor.New(3, 5)
	coef.RandNormal(rng, 0, 1)

	probs := tensor.New(3, 5)
	SoftmaxRows(probs, logits)
	gradLogits := tensor.New(3, 5)
	SoftmaxBackwardRows(gradLogits, probs, coef)

	eps := 1e-6
	lossAt := func() float64 {
		p := tensor.New(3, 5)
		SoftmaxRows(p, logits)
		var l float64
		for i := range p.Data {
			l += coef.Data[i] * p.Data[i]
		}
		return l
	}
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		up := lossAt()
		logits.Data[i] = orig - eps
		down := lossAt()
		logits.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(gradLogits.Data[i]-num) > 1e-5 {
			t.Fatalf("logit grad %d: analytic %v vs numeric %v", i, gradLogits.Data[i], num)
		}
	}
}

func TestSampleGumbelFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dst := make([]float64, 10000)
	SampleGumbel(dst, rng)
	var mean float64
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("gumbel sample %v", v)
		}
		mean += v
	}
	mean /= float64(len(dst))
	// Gumbel(0,1) mean is the Euler–Mascheroni constant ≈ 0.5772.
	if math.Abs(mean-0.5772) > 0.05 {
		t.Fatalf("gumbel mean = %v, want ≈0.577", mean)
	}
}

func TestGumbelSoftmaxRowIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := []float64{1, 2, 3, 4, 5}
	dst := make([]float64, 5)
	GumbelSoftmaxRow(dst, logits, 1.0, rng)
	var sum float64
	for _, v := range dst {
		if v < 0 || v > 1 {
			t.Fatalf("gumbel-softmax value %v outside [0,1]", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("gumbel-softmax sums to %v", sum)
	}
}

func TestGumbelSoftmaxLowTemperatureNearOneHot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := []float64{0, 0, 10, 0, 0}
	dst := make([]float64, 5)
	GumbelSoftmaxRow(dst, logits, 0.1, rng)
	if tensor.ArgMax(dst) != 2 {
		t.Fatalf("low-temperature sample should pick the dominant logit, got %v", dst)
	}
	if dst[2] < 0.99 {
		t.Fatalf("low-temperature sample should be near one-hot, got %v", dst)
	}
}

func TestGumbelSoftmaxPanicsOnBadTemperature(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GumbelSoftmaxRow with temperature 0 did not panic")
		}
	}()
	GumbelSoftmaxRow(make([]float64, 2), []float64{1, 2}, 0, rand.New(rand.NewSource(1)))
}

// Property: gumbel-softmax sampling frequencies follow the softmax
// distribution for moderate temperature (statistical smoke test), and MSE
// loss is always non-negative.
func TestMSENonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		pred := tensor.New(n, 1)
		pred.RandNormal(r, 0, 5)
		target := tensor.New(n, 1)
		target.RandNormal(r, 0, 5)
		grad := tensor.New(n, 1)
		return MSELoss(grad, pred, target) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
