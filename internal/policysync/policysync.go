// Package policysync closes the learner→actor half of the distributed MARL
// loop: a versioned store of per-agent actor (policy) network snapshots
// behind a stdlib HTTP service. The learner publishes its actor weights at a
// configurable cadence (every k update stages); any number of actors
// long-poll or ETag-fetch new versions and hot-swap their acting networks
// atomically between environment steps. Together with the experience service
// (internal/expserve) this turns the actor/learner split into a closed
// system: learner → policyd → N actors → replayd → learner.
//
// Rollout-training co-design treats versioned weight publication with
// bounded staleness as the key primitive: actors never block on the learner
// (they keep acting on the last installed version) and the staleness of the
// acting policy is observable and bounded by the sync cadence rather than
// unbounded (the pre-existing marl-actor acted with a frozen -load
// checkpoint forever).
//
// Wire format: one policy snapshot travels as a little-endian binary frame
// with a CRC32-IEEE trailer, the same framing idiom as expstore segments and
// expserve batches —
//
//	magic "MPOL" | u32 wireVersion | u64 learnerUpdates | u32 numAgents |
//	per agent: u32 byteLen | MLPN network bytes (nn.Network.WriteTo) |
//	u32 CRC32-IEEE over every preceding byte
//
// The serving version is assigned by the store on publish (monotonic from
// 1), not carried in the frame, so a restarted learner republishing the
// same weights still advances every subscriber deterministically.
package policysync

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"marlperf/internal/nn"
	"marlperf/internal/trace"
)

// Endpoint paths served by Server and used by Client.
const (
	PathPolicy = "/v1/policy"
	PathStats  = "/v1/policy/stats"
)

const (
	frameMagic  = "MPOL"
	wireVersion = 1

	// maxWireAgents bounds the per-frame agent count so a hostile header
	// cannot demand an absurd allocation before the CRC is checked.
	maxWireAgents = 1 << 12
	// maxWireNetBytes bounds one serialized network.
	maxWireNetBytes = 1 << 28
)

// Snapshot is one decoded policy version: the store-assigned serving
// version, the learner's update count when it was published, and the
// per-agent actor networks ready to act with.
type Snapshot struct {
	Version uint64 // store-assigned, monotonic from 1 (0: never served)
	Updates uint64 // learner update-stage count at publish time
	Agents  []*nn.Network
	// TraceCtx is the trace position this snapshot's delivery descends
	// from (the publisher's span, relayed by the server in the
	// X-Marl-Trace response header). Transport metadata only — it is
	// never part of the encoded frame, so traced and untraced snapshots
	// are byte-identical. Zero when the publish was not traced.
	TraceCtx trace.Context
}

// EncodeSnapshot frames the per-agent actor networks for publication,
// appending to dst. The networks are serialized with the same MLPN format
// checkpoints use, so weights round-trip bit-exactly.
func EncodeSnapshot(dst []byte, updates uint64, agents []*nn.Network) ([]byte, error) {
	if len(agents) == 0 || len(agents) > maxWireAgents {
		return nil, fmt.Errorf("policysync: snapshot needs 1..%d agents, got %d", maxWireAgents, len(agents))
	}
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint64(dst, updates)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(agents)))
	var netBuf bytes.Buffer
	for i, net := range agents {
		netBuf.Reset()
		if _, err := net.WriteTo(&netBuf); err != nil {
			return nil, fmt.Errorf("policysync: serializing agent %d actor: %w", i, err)
		}
		if netBuf.Len() > maxWireNetBytes {
			return nil, fmt.Errorf("policysync: agent %d actor serializes to %d bytes (cap %d)", i, netBuf.Len(), maxWireNetBytes)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(netBuf.Len()))
		dst = append(dst, netBuf.Bytes()...)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// DecodeSnapshot parses and verifies one policy frame. The CRC trailer is
// checked over the whole frame before any network bytes reach the nn
// decoder, and every length field is bounded, so hostile or corrupt input
// fails cleanly instead of panicking or allocating absurdly. The returned
// snapshot carries Version 0; the transport layer stamps the serving
// version.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	const header = 4 + 4 + 8 + 4
	if len(data) < header+4 {
		return nil, fmt.Errorf("policysync: frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != frameMagic {
		return nil, fmt.Errorf("policysync: bad frame magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != wireVersion {
		return nil, fmt.Errorf("policysync: frame version %d, want %d", v, wireVersion)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != want {
		return nil, fmt.Errorf("policysync: frame checksum mismatch")
	}
	updates := binary.LittleEndian.Uint64(data[8:])
	numAgents := int(binary.LittleEndian.Uint32(data[16:]))
	if numAgents < 1 || numAgents > maxWireAgents {
		return nil, fmt.Errorf("policysync: implausible agent count %d", numAgents)
	}
	body := data[header : len(data)-4]
	snap := &Snapshot{Updates: updates, Agents: make([]*nn.Network, 0, numAgents)}
	for i := 0; i < numAgents; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("policysync: frame truncated before agent %d length", i)
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n < 1 || n > maxWireNetBytes || n > len(body) {
			return nil, fmt.Errorf("policysync: agent %d claims %d network bytes, %d remain", i, n, len(body))
		}
		r := bytes.NewReader(body[:n])
		net, err := nn.ReadNetwork(r)
		if err != nil {
			return nil, fmt.Errorf("policysync: agent %d network: %w", i, err)
		}
		if r.Len() != 0 {
			return nil, fmt.Errorf("policysync: agent %d network leaves %d undecoded bytes", i, r.Len())
		}
		snap.Agents = append(snap.Agents, net)
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("policysync: %d trailing bytes after %d agents", len(body), numAgents)
	}
	return snap, nil
}
