package policysync

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// ServerConfig wires a policy distribution server.
type ServerConfig struct {
	// Store backs the endpoints. Required.
	Store *Store
	// MaxWait caps one long-poll hold. Defaults to 30s.
	MaxWait time.Duration
	// MaxFrameBytes bounds one published snapshot. Defaults to 256 MiB.
	MaxFrameBytes int64
	// Registry receives service metrics; nil creates a private registry.
	Registry *telemetry.Registry
	// Tracer, when set and enabled, records a server span per traced
	// publish and per fetch that serves a traced version. Independent of
	// the tracer, the publisher's trace context is always relayed to
	// fetchers via the X-Marl-Trace response header, so actors can join
	// the learner's trace even when policyd itself is not tracing.
	Tracer *trace.Tracer
}

// Server exposes a Store over HTTP:
//
//	GET  /v1/policy?after=N&wait=5s  — fetch the newest snapshot frame.
//	     Blocks up to wait while no version newer than N exists (N also
//	     comes from If-None-Match: "vN"), then answers 200 with the frame
//	     (ETag "vM", X-Policy-Version/X-Policy-Updates headers), 304 when
//	     nothing newer arrived, or 404 when nothing was ever published.
//	POST /v1/policy                  — publish one frame (the learner's
//	     cadence-driven push). Validated end to end before acceptance.
//	GET  /v1/policy/stats            — JSON version/updates/bytes document.
type Server struct {
	cfg ServerConfig
	mux *http.ServeMux

	fetches   *telemetry.Counter
	notModded *telemetry.Counter
	fetchedB  *telemetry.Counter
}

// NewServer validates cfg and registers metrics.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("policysync: NewServer needs a Store")
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 256 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		fetches:   reg.Counter("marl_policy_fetches_total"),
		notModded: reg.Counter("marl_policy_not_modified_total"),
		fetchedB:  reg.Counter("marl_policy_fetched_bytes_total"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathPolicy, s.handlePolicy)
	s.mux.HandleFunc(PathStats, s.handleStats)
	return s, nil
}

// Handler returns the service mux for mounting alongside other endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleFetch(w, r)
	case http.MethodPost:
		s.handlePublish(w, r)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// etagVersion parses `"vN"` (quotes optional) into N.
func etagVersion(tag string) (uint64, bool) {
	tag = strings.Trim(strings.TrimSpace(tag), `"`)
	if !strings.HasPrefix(tag, "v") {
		return 0, false
	}
	v, err := strconv.ParseUint(tag[1:], 10, 64)
	return v, err == nil
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	if q := r.URL.Query().Get("version"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			http.Error(w, fmt.Sprintf("bad version %q", q), http.StatusBadRequest)
			return
		}
		s.handlePinnedFetch(w, v)
		return
	}
	after := uint64(0)
	if tag := r.Header.Get("If-None-Match"); tag != "" {
		if v, ok := etagVersion(tag); ok {
			after = v
		}
	}
	if q := r.URL.Query().Get("after"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad after %q", q), http.StatusBadRequest)
			return
		}
		after = v
	}
	var wait time.Duration
	if q := r.URL.Query().Get("wait"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad wait %q", q), http.StatusBadRequest)
			return
		}
		wait = d
	}
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}

	s.fetches.Inc()
	start := time.Now()
	version, updates, frame := s.cfg.Store.Wait(after, wait)
	if version == 0 {
		http.Error(w, "no policy published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("ETag", fmt.Sprintf(`"v%d"`, version))
	w.Header().Set("X-Policy-Version", strconv.FormatUint(version, 10))
	w.Header().Set("X-Policy-Updates", strconv.FormatUint(updates, 10))
	if version <= after {
		s.notModded.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Relay the publish's trace position so the fetcher's install joins
	// the publisher's trace. Guarded on the version match: a publish that
	// raced in after Wait returned must not lend its context to this
	// older frame.
	if pv, pctx := s.cfg.Store.PublishContext(); pv == version && pctx.Valid() {
		w.Header().Set(trace.HeaderName, trace.FormatHeader(pctx))
		if sp := s.cfg.Tracer.StartSpanAt(pctx, "fetch-serve", start); sp.Valid() {
			defer func() { sp.EndArg("version", int64(version)) }()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	n, _ := w.Write(frame)
	s.fetchedB.Add(uint64(n))
}

// handlePinnedFetch answers `GET /v1/policy?version=N`: the exact frame N if
// the store still holds it (newest or previous publish), 404 otherwise. No
// long-poll semantics — a pinned version either exists now or never will
// again. Canary serving uses this to fetch the stable arm after a hot-swap.
func (s *Server) handlePinnedFetch(w http.ResponseWriter, version uint64) {
	s.fetches.Inc()
	start := time.Now()
	updates, frame, pctx, ok := s.cfg.Store.Pinned(version)
	if !ok {
		http.Error(w, fmt.Sprintf("version %d not retained (store keeps the last two)", version), http.StatusNotFound)
		return
	}
	w.Header().Set("ETag", fmt.Sprintf(`"v%d"`, version))
	w.Header().Set("X-Policy-Version", strconv.FormatUint(version, 10))
	w.Header().Set("X-Policy-Updates", strconv.FormatUint(updates, 10))
	if pctx.Valid() {
		w.Header().Set(trace.HeaderName, trace.FormatHeader(pctx))
		if sp := s.cfg.Tracer.StartSpanAt(pctx, "fetch-serve", start); sp.Valid() {
			defer func() { sp.EndArg("version", int64(version)) }()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	n, _ := w.Write(frame)
	s.fetchedB.Add(uint64(n))
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxFrameBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.cfg.MaxFrameBytes {
		http.Error(w, fmt.Sprintf("frame exceeds %d bytes", s.cfg.MaxFrameBytes), http.StatusRequestEntityTooLarge)
		return
	}
	// A traced publish hands its context down: the server span (when this
	// process traces) becomes the stored position, otherwise the
	// publisher's own context is stored untouched — either way fetchers
	// can join the trace.
	pctx, _ := trace.ParseHeader(r.Header.Get(trace.HeaderName))
	sp := s.cfg.Tracer.StartSpan(pctx, "publish")
	if sp.Valid() {
		pctx = sp.Context()
	}
	version, err := s.cfg.Store.PublishCtx(body, pctx)
	if err != nil {
		sp.EndArg("error", 1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sp.EndArg("version", int64(version))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(publishReply{Version: version})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	version, updates, frame := s.cfg.Store.Latest()
	prev, _, _ := s.cfg.Store.Previous()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsReply{Version: version, Updates: updates, Bytes: len(frame), Previous: prev})
}

// publishReply acknowledges a publish with the assigned serving version.
type publishReply struct {
	Version uint64 `json:"version"`
}

// statsReply is the stats endpoint's JSON document. The previous field is
// named so no later field contains the substring `"version":` — the cluster
// smoke script extracts the version with a greedy regex over this document.
type statsReply struct {
	Version  uint64 `json:"version"`
	Updates  uint64 `json:"updates"`
	Bytes    int    `json:"bytes"`
	Previous uint64 `json:"previous"`
}

// ListenAndServe binds addr (port 0 picks a free port), serves the handler
// in the background, and returns the bound address plus a shutdown func.
func (s *Server) ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("policysync: listener: %w", err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
