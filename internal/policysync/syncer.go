package policysync

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Syncer long-polls a policy server in the background and keeps the newest
// decoded snapshot behind an atomic pointer, so a rollout loop can pick up
// fresh weights between env steps without ever blocking on the network. The
// snapshot pointer is swapped whole — readers see either the old complete
// policy or the new complete policy, never a torn mix.
type Syncer struct {
	client *Client
	wait   time.Duration

	// OnInstall, when non-nil, runs on the syncer goroutine after each new
	// version lands (marl-actor logs its hot-swap line here).
	OnInstall func(snap *Snapshot)
	// OnError, when non-nil, observes fetch failures (the syncer keeps
	// polling regardless; actors tolerate a policyd outage by acting on the
	// last installed version).
	OnError func(err error)

	latest atomic.Pointer[Snapshot]
	// lastContact is the wall time (UnixNano) of the most recent successful
	// exchange with the server — a new snapshot or a clean "nothing newer"
	// answer both count. Actors bound policy staleness against it: a live
	// server that simply has no newer version is not an outage.
	lastContact atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// NewSyncer wraps client; wait is the long-poll hold per fetch (defaults
// to 10s).
func NewSyncer(client *Client, wait time.Duration) *Syncer {
	if wait <= 0 {
		wait = 10 * time.Second
	}
	return &Syncer{client: client, wait: wait}
}

// Start launches the polling goroutine. Call Close to stop it. The
// contact clock starts now, so staleness is measured from "the syncer
// began trying", not from the epoch.
func (s *Syncer) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	s.lastContact.Store(time.Now().UnixNano())
	go s.loop(ctx)
}

func (s *Syncer) loop(ctx context.Context) {
	defer close(s.done)
	for ctx.Err() == nil {
		after := uint64(0)
		if cur := s.latest.Load(); cur != nil {
			after = cur.Version
		}
		snap, err := s.client.Fetch(ctx, after, s.wait)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			if s.OnError != nil {
				s.OnError(err)
			}
			// The client already backed off per attempt; pause briefly so a
			// dead server does not spin this loop hot.
			select {
			case <-ctx.Done():
				return
			case <-time.After(s.wait / 4):
			}
		case snap != nil && snap.Version > after:
			s.lastContact.Store(time.Now().UnixNano())
			s.latest.Store(snap)
			if s.OnInstall != nil {
				s.OnInstall(snap)
			}
		default:
			// A clean "nothing newer yet" answer is still contact.
			s.lastContact.Store(time.Now().UnixNano())
		}
	}
}

// Latest returns the newest snapshot seen so far (nil before the first
// fetch lands). The snapshot and its networks must be treated as read-only;
// they may be shared with other readers.
func (s *Syncer) Latest() *Snapshot { return s.latest.Load() }

// LastContact returns when the syncer last heard a definitive answer from
// the policy server (zero time before Start). The gap to now is the
// staleness bound an actor enforces with -max-staleness.
func (s *Syncer) LastContact() time.Time {
	ns := s.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// WaitFirst blocks until a first snapshot is installed or timeout elapses,
// returning it (nil on timeout). Lets an actor that insists on starting from
// a live policy gate its rollout loop.
func (s *Syncer) WaitFirst(timeout time.Duration) *Snapshot {
	deadline := time.Now().Add(timeout)
	for {
		if snap := s.latest.Load(); snap != nil {
			return snap
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the polling goroutine and waits for it to exit.
func (s *Syncer) Close() {
	s.once.Do(func() {
		if s.cancel != nil {
			s.cancel()
			<-s.done
		}
	})
}
