package policysync

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marlperf/internal/nn"
)

func testNets(t testing.TB, seed int64, n int) []*nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nets := make([]*nn.Network, n)
	for i := range nets {
		nets[i] = nn.NewMLP(rng, 8, 16, 16, 5)
	}
	return nets
}

func sameParams(t *testing.T, a, b *nn.Network) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		t.Fatalf("param tensor count %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if len(ap[i].Data) != len(bp[i].Data) {
			t.Fatalf("param %d length %d vs %d", i, len(ap[i].Data), len(bp[i].Data))
		}
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("param %d[%d]: %v vs %v", i, j, ap[i].Data[j], bp[i].Data[j])
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	nets := testNets(t, 1, 3)
	frame, err := EncodeSnapshot(nil, 42, nets)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Updates != 42 {
		t.Fatalf("updates %d, want 42", snap.Updates)
	}
	if snap.Version != 0 {
		t.Fatalf("decoded frame must not carry a serving version, got %d", snap.Version)
	}
	if len(snap.Agents) != 3 {
		t.Fatalf("agents %d, want 3", len(snap.Agents))
	}
	for i := range nets {
		sameParams(t, nets[i], snap.Agents[i])
	}
}

func TestDecodeSnapshotRejectsDamage(t *testing.T) {
	nets := testNets(t, 2, 2)
	frame, err := EncodeSnapshot(nil, 7, nets)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() []byte{
		"empty":     func() []byte { return nil },
		"short":     func() []byte { return frame[:10] },
		"magic":     func() []byte { f := append([]byte(nil), frame...); f[0] ^= 0xFF; return f },
		"bitflip":   func() []byte { f := append([]byte(nil), frame...); f[len(f)/2] ^= 0x01; return f },
		"truncated": func() []byte { return frame[:len(frame)-5] },
		"trailing":  func() []byte { return append(append([]byte(nil), frame...), 0xAA) },
	}
	for name, make := range cases {
		if _, err := DecodeSnapshot(make()); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
}

func TestStoreVersionsAndWait(t *testing.T) {
	s := NewStore(nil)
	if v, _, frame := s.Latest(); v != 0 || frame != nil {
		t.Fatalf("fresh store: version %d frame %v", v, frame)
	}
	// Zero-timeout Wait must return immediately.
	if v, _, _ := s.Wait(0, 0); v != 0 {
		t.Fatalf("fresh store wait: version %d", v)
	}

	nets := testNets(t, 3, 2)
	v1, err := s.PublishNetworks(10, nets)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("first publish version %d, want 1", v1)
	}

	// A waiter parked past the newest version is woken by the next publish.
	var got atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, _ := s.Wait(1, 5*time.Second)
		got.Store(v)
	}()
	time.Sleep(20 * time.Millisecond)
	v2, err := s.PublishNetworks(20, nets)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got.Load() != v2 {
		t.Fatalf("waiter saw version %d, want %d", got.Load(), v2)
	}

	// Wait that times out reports the (stale) newest version.
	start := time.Now()
	v, updates, _ := s.Wait(v2, 30*time.Millisecond)
	if v != v2 || updates != 20 {
		t.Fatalf("timed-out wait: version %d updates %d", v, updates)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("wait returned before its timeout with nothing new")
	}

	snap, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != v2 || snap.Updates != 20 {
		t.Fatalf("decode: version %d updates %d", snap.Version, snap.Updates)
	}
}

func TestStoreRejectsCorruptPublish(t *testing.T) {
	s := NewStore(nil)
	if _, err := s.Publish([]byte("not a policy frame")); err == nil {
		t.Fatal("corrupt publish accepted")
	}
	if v, _, _ := s.Latest(); v != 0 {
		t.Fatalf("corrupt publish advanced version to %d", v)
	}
}

func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	store := NewStore(nil)
	srv, err := NewServer(ServerConfig{Store: store, MaxWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func fastClient(url string) *Client {
	c := NewClient(url, ClientOptions{
		Timeout:    5 * time.Second,
		Attempts:   3,
		BaseDelay:  time.Millisecond,
		MaxDelay:   5 * time.Millisecond,
		JitterSeed: 1,
	})
	return c
}

func TestServerFetchPublishCycle(t *testing.T) {
	_, ts := newTestServer(t)
	c := fastClient(ts.URL)

	// Nothing published: fetch reports "keep polling", stats report zero.
	snap, err := c.Fetch(context.Background(), 0, 0)
	if err != nil || snap != nil {
		t.Fatalf("pre-publish fetch: snap %v err %v", snap, err)
	}
	if v, _, _, err := c.Stats(); err != nil || v != 0 {
		t.Fatalf("pre-publish stats: version %d err %v", v, err)
	}

	nets := testNets(t, 4, 3)
	v, err := c.PublishNetworks(5, nets)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("publish version %d, want 1", v)
	}

	snap, err = c.Fetch(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Version != 1 || snap.Updates != 5 || len(snap.Agents) != 3 {
		t.Fatalf("fetch: %+v", snap)
	}
	sameParams(t, nets[1], snap.Agents[1])

	// Caught-up fetch with a short hold comes back empty (304 path).
	snap, err = c.Fetch(context.Background(), 1, 20*time.Millisecond)
	if err != nil || snap != nil {
		t.Fatalf("caught-up fetch: snap %v err %v", snap, err)
	}

	// A long-polling fetch is released by the next publish.
	type result struct {
		snap *Snapshot
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		s, err := c2(ts.URL).Fetch(context.Background(), 1, 2*time.Second)
		ch <- result{s, err}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := c.PublishNetworks(9, nets); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.snap == nil || r.snap.Version != 2 || r.snap.Updates != 9 {
		t.Fatalf("long-poll fetch: %+v", r.snap)
	}

	version, updates, bytes, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || updates != 9 || bytes == 0 {
		t.Fatalf("stats: version %d updates %d bytes %d", version, updates, bytes)
	}
}

func c2(url string) *Client {
	return NewClient(url, ClientOptions{Timeout: 5 * time.Second, Attempts: 1, JitterSeed: 2})
}

func TestServerRejectsCorruptPublish(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+PathPolicy, "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty publish answered %d, want 400", resp.StatusCode)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	store := NewStore(nil)
	srv, err := NewServer(ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	if _, err := store.PublishNetworks(1, testNets(t, 5, 2)); err != nil {
		t.Fatal(err)
	}
	c := fastClient(flaky.URL)
	var slept int
	c.sleep = func(time.Duration) { slept++ }
	snap, err := c.Fetch(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Version != 1 {
		t.Fatalf("fetch through flaky front: %+v", snap)
	}
	if slept != 2 {
		t.Fatalf("backed off %d times, want 2", slept)
	}
}

func TestSyncerHotSwap(t *testing.T) {
	store, ts := newTestServer(t)
	sy := NewSyncer(fastClient(ts.URL), 500*time.Millisecond)
	installed := make(chan uint64, 16)
	sy.OnInstall = func(s *Snapshot) { installed <- s.Version }
	sy.Start()
	defer sy.Close()

	if got := sy.Latest(); got != nil {
		t.Fatalf("latest before any publish: %+v", got)
	}

	nets := testNets(t, 6, 2)
	for i := 1; i <= 3; i++ {
		if _, err := store.PublishNetworks(uint64(i*10), nets); err != nil {
			t.Fatal(err)
		}
		select {
		case v := <-installed:
			if v != uint64(i) {
				t.Fatalf("installed version %d, want %d", v, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("syncer never installed version %d", i)
		}
	}
	snap := sy.Latest()
	if snap == nil || snap.Version != 3 || snap.Updates != 30 {
		t.Fatalf("latest after three publishes: %+v", snap)
	}
	if got := sy.WaitFirst(time.Second); got == nil {
		t.Fatal("WaitFirst returned nil with a snapshot installed")
	}
}

func TestSyncerSurvivesServerOutage(t *testing.T) {
	store := NewStore(nil)
	srv, err := NewServer(ServerConfig{Store: store, MaxWait: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer front.Close()

	c := NewClient(front.URL, ClientOptions{Timeout: 2 * time.Second, Attempts: 1, BaseDelay: time.Millisecond, JitterSeed: 3})
	sy := NewSyncer(c, 40*time.Millisecond)
	installed := make(chan uint64, 16)
	sy.OnInstall = func(s *Snapshot) { installed <- s.Version }
	sy.Start()
	defer sy.Close()

	nets := testNets(t, 7, 2)
	if _, err := store.PublishNetworks(1, nets); err != nil {
		t.Fatal(err)
	}
	select {
	case <-installed:
	case <-time.After(5 * time.Second):
		t.Fatal("never installed v1")
	}

	down.Store(true)
	time.Sleep(100 * time.Millisecond) // several failed polls
	if _, err := store.PublishNetworks(2, nets); err != nil {
		t.Fatal(err)
	}
	down.Store(false)

	select {
	case v := <-installed:
		if v != 2 {
			t.Fatalf("post-outage install version %d, want 2", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("syncer did not recover after outage")
	}
}
