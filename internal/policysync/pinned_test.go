package policysync

import (
	"context"
	"net/http"
	"testing"
)

// TestStorePreviousRetention pins the two-deep window: each publish moves
// the displaced snapshot into the previous slot, Pinned answers for exactly
// the last two versions, and everything older is gone.
func TestStorePreviousRetention(t *testing.T) {
	s := NewStore(nil)
	if pv, _, pf := s.Previous(); pv != 0 || pf != nil {
		t.Fatalf("fresh store previous: version %d frame %v", pv, pf)
	}
	if _, _, _, ok := s.Pinned(1); ok {
		t.Fatal("fresh store pinned version 1")
	}

	netsA := testNets(t, 10, 2)
	netsB := testNets(t, 11, 2)
	netsC := testNets(t, 12, 2)
	if _, err := s.PublishNetworks(100, netsA); err != nil {
		t.Fatal(err)
	}
	// One publish: no previous yet, pinned(1) hits the head.
	if pv, _, _ := s.Previous(); pv != 0 {
		t.Fatalf("previous after one publish: version %d, want 0", pv)
	}
	if up, frame, _, ok := s.Pinned(1); !ok || up != 100 || frame == nil {
		t.Fatalf("pinned(1): updates %d ok %v", up, ok)
	}

	if _, err := s.PublishNetworks(200, netsB); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublishNetworks(300, netsC); err != nil {
		t.Fatal(err)
	}

	// Three publishes: head is v3, previous is v2, v1 is evicted.
	pv, pu, pf := s.Previous()
	if pv != 2 || pu != 200 || pf == nil {
		t.Fatalf("previous: version %d updates %d", pv, pu)
	}
	snap, err := DecodeSnapshot(pf)
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, netsB[0], snap.Agents[0])

	if _, _, _, ok := s.Pinned(1); ok {
		t.Fatal("version 1 still pinned after two newer publishes")
	}
	if up, _, _, ok := s.Pinned(2); !ok || up != 200 {
		t.Fatalf("pinned(2): updates %d ok %v", up, ok)
	}
	if up, _, _, ok := s.Pinned(3); !ok || up != 300 {
		t.Fatalf("pinned(3): updates %d ok %v", up, ok)
	}
	if _, _, _, ok := s.Pinned(0); ok {
		t.Fatal("pinned(0) answered ok")
	}
}

// TestServerPinnedFetch exercises GET /v1/policy?version=N end to end: both
// retained versions decode to the right weights, evicted and future versions
// answer 404 (the client maps that to nil,nil), and garbage is a 400.
func TestServerPinnedFetch(t *testing.T) {
	_, ts := newTestServer(t)
	c := fastClient(ts.URL)

	netsA := testNets(t, 20, 2)
	netsB := testNets(t, 21, 2)
	netsC := testNets(t, 22, 2)
	if _, err := c.PublishNetworks(10, netsA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishNetworks(20, netsB); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishNetworks(30, netsC); err != nil {
		t.Fatal(err)
	}

	snap, err := c.FetchVersion(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Version != 2 || snap.Updates != 20 {
		t.Fatalf("pinned fetch v2: %+v", snap)
	}
	sameParams(t, netsB[1], snap.Agents[1])

	snap, err = c.FetchVersion(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Version != 3 || snap.Updates != 30 {
		t.Fatalf("pinned fetch v3: %+v", snap)
	}
	sameParams(t, netsC[0], snap.Agents[0])

	// Evicted and never-published versions: not retained, not an error.
	for _, v := range []uint64{1, 9} {
		snap, err := c.FetchVersion(context.Background(), v)
		if err != nil || snap != nil {
			t.Fatalf("fetch version %d: snap %v err %v", v, snap, err)
		}
	}

	// Malformed version strings are a client error, not a silent latest.
	resp, err := http.Get(ts.URL + PathPolicy + "?version=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad version answered %d, want 400", resp.StatusCode)
	}
}
