package policysync

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"marlperf/internal/netretry"
	"marlperf/internal/nn"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// ClientOptions tune transport behaviour, mirroring expserve.ClientOptions.
// Retry, backoff and circuit breaking are delegated to the shared netretry
// core — the same resilience implementation the experience client uses.
type ClientOptions struct {
	// Timeout bounds one HTTP round trip on top of any requested long-poll
	// wait (the request deadline is wait+Timeout). Defaults to 10s.
	Timeout time.Duration
	// Attempts is the total tries per request (≥1). Defaults to 4.
	Attempts int
	// BaseDelay seeds the exponential backoff between tries; each retry
	// doubles it and adds up to 50% random jitter so a fleet of actors does
	// not re-arrive in lockstep. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the backoff jitter RNG (0 uses a time-derived seed).
	// Jitter never influences payload bytes, only retry spacing.
	JitterSeed int64
	// TotalDeadline caps the cumulative time one request may spend across
	// all attempts, backoff sleeps included. Zero leaves Attempts as the
	// only bound.
	TotalDeadline time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// contact failures (0 = netretry default, negative disables).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe interval (0 = MaxDelay).
	BreakerCooldown time.Duration
	// Edge labels this client's retry/circuit metrics; defaults to
	// "policy".
	Edge string
	// Registry receives marl_retry_*/marl_circuit_* metrics; nil keeps
	// them private.
	Registry *telemetry.Registry
	// Transport overrides the HTTP transport (fault injectors hook here).
	Transport http.RoundTripper
	// Tracer, when set and enabled, emits a client span per publish
	// (joined to the tracer's active context — the learner's per-update
	// root) and per fetch that lands a traced snapshot, and propagates
	// context via the X-Marl-Trace request/response headers.
	Tracer *trace.Tracer
}

// Client talks to a policy distribution server. Safe for sequential use;
// use one per goroutine for concurrency.
type Client struct {
	core   *netretry.Client
	tracer *trace.Tracer

	// sleep is the backoff delay function; tests may replace it.
	sleep func(time.Duration)
}

// NewClient targets baseURL (e.g. "http://127.0.0.1:9400" or a bare
// "host:port").
func NewClient(baseURL string, opts ClientOptions) *Client {
	if opts.Edge == "" {
		opts.Edge = "policy"
	}
	c := &Client{sleep: time.Sleep, tracer: opts.Tracer}
	c.core = netretry.New(baseURL, netretry.Options{
		Timeout:          opts.Timeout,
		Attempts:         opts.Attempts,
		BaseDelay:        opts.BaseDelay,
		MaxDelay:         opts.MaxDelay,
		JitterSeed:       opts.JitterSeed,
		TotalDeadline:    opts.TotalDeadline,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
		Edge:             opts.Edge,
		Registry:         opts.Registry,
		Transport:        opts.Transport,
	})
	// Forward through the field so tests that swap c.sleep after
	// construction still intercept backoff sleeps.
	c.core.SetClock(nil, func(d time.Duration) { c.sleep(d) })
	return c
}

// Breaker exposes the client's circuit breaker state.
func (c *Client) Breaker() *netretry.Breaker { return c.core.Breaker() }

// doResp runs one request through the shared retry core and returns the
// first non-retryable response (body fully read). extra widens the
// per-attempt deadline beyond Timeout — the long-poll hold time.
func (c *Client) doResp(ctx context.Context, method, path, contentType string, body []byte, extra time.Duration, hdr http.Header) (int, http.Header, []byte, error) {
	resp, err := c.core.Do(ctx, netretry.Request{
		Method:       method,
		Path:         path,
		ContentType:  contentType,
		Body:         body,
		Header:       hdr,
		ExtraTimeout: extra,
	})
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.Status, resp.Header, resp.Body, nil
}

// Publish ships one encoded snapshot frame and returns the serving version
// the store assigned to it. When the tracer has an active context (the
// learner's per-update root span — the publisher goroutine reads it after
// the update that produced these weights), the RPC gets a child span and
// the context rides the X-Marl-Trace header to the server.
func (c *Client) Publish(frame []byte) (uint64, error) {
	var sp trace.Span
	var hdr http.Header
	if tr := c.tracer; tr.Enabled() {
		if parent := tr.Active(); parent.Valid() {
			sp = tr.StartSpan(parent, "policy-publish")
			hdr = http.Header{trace.HeaderName: []string{trace.FormatHeader(sp.Context())}}
		}
	}
	status, _, data, err := c.doResp(context.Background(), http.MethodPost, PathPolicy, "application/octet-stream", frame, 0, hdr)
	if err != nil {
		sp.EndArg("error", 1)
		return 0, err
	}
	if status != http.StatusOK {
		sp.EndArg("error", 1)
		return 0, fmt.Errorf("policysync: publish: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
	var reply publishReply
	if err := json.Unmarshal(data, &reply); err != nil {
		sp.EndArg("error", 1)
		return 0, fmt.Errorf("policysync: decoding publish ack: %w", err)
	}
	sp.EndArg("version", int64(reply.Version))
	return reply.Version, nil
}

// PublishNetworks encodes the per-agent actor networks and publishes them;
// the learner's one-call path.
func (c *Client) PublishNetworks(updates uint64, agents []*nn.Network) (uint64, error) {
	frame, err := EncodeSnapshot(nil, updates, agents)
	if err != nil {
		return 0, err
	}
	return c.Publish(frame)
}

// Fetch asks for a snapshot newer than after, holding the request open up to
// wait server-side. It returns a decoded, version-stamped snapshot, or
// (nil, nil) when nothing newer exists yet — both "not modified" and "never
// published" mean keep acting on what you have and poll again.
func (c *Client) Fetch(ctx context.Context, after uint64, wait time.Duration) (*Snapshot, error) {
	q := url.Values{}
	if after > 0 {
		q.Set("after", fmt.Sprintf("%d", after))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	path := PathPolicy
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	start := time.Now()
	status, hdr, data, err := c.doResp(ctx, http.MethodGet, path, "", nil, wait, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		if v, ok := etagVersion(hdr.Get("ETag")); ok {
			snap.Version = v
		}
		// A traced publish relays its context in the response header. The
		// fetch span is recorded after the fact (its parent was unknown
		// until the response landed); its duration includes the long-poll
		// hold — the true distribution latency from publish to this
		// subscriber. The snapshot carries the span's position so the
		// caller's install joins the same trace.
		if pctx, ok := trace.ParseHeader(hdr.Get(trace.HeaderName)); ok {
			snap.TraceCtx = pctx
			if sp := c.tracer.StartSpanAt(pctx, "policy-fetch", start); sp.Valid() {
				snap.TraceCtx = sp.Context()
				sp.EndArg("version", int64(snap.Version))
			}
		}
		return snap, nil
	case http.StatusNotModified, http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("policysync: fetch: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
}

// FetchVersion asks for one exact retained version (the newest or the
// previous publish — the server's two-deep window). It returns the decoded,
// version-stamped snapshot, or (nil, nil) when the version is not retained.
// The canary gateway uses this to backfill its stable arm after starting up
// against a store that has already published twice.
func (c *Client) FetchVersion(ctx context.Context, version uint64) (*Snapshot, error) {
	start := time.Now()
	status, hdr, data, err := c.doResp(ctx, http.MethodGet, fmt.Sprintf("%s?version=%d", PathPolicy, version), "", nil, 0, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		snap.Version = version
		if v, ok := etagVersion(hdr.Get("ETag")); ok {
			snap.Version = v
		}
		if pctx, ok := trace.ParseHeader(hdr.Get(trace.HeaderName)); ok {
			snap.TraceCtx = pctx
			if sp := c.tracer.StartSpanAt(pctx, "policy-fetch", start); sp.Valid() {
				snap.TraceCtx = sp.Context()
				sp.EndArg("version", int64(snap.Version))
			}
		}
		return snap, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("policysync: fetch version %d: server answered %d: %s", version, status, strings.TrimSpace(string(data)))
	}
}

// Stats fetches the server's current version, learner update count, and
// frame size.
func (c *Client) Stats() (version, updates uint64, bytes int, err error) {
	status, _, data, err := c.doResp(context.Background(), http.MethodGet, PathStats, "", nil, 0, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if status != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("policysync: stats: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
	var reply statsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return 0, 0, 0, fmt.Errorf("policysync: decoding stats: %w", err)
	}
	return reply.Version, reply.Updates, reply.Bytes, nil
}
