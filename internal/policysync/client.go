package policysync

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"marlperf/internal/nn"
)

// ClientOptions tune transport behaviour, mirroring expserve.ClientOptions.
type ClientOptions struct {
	// Timeout bounds one HTTP round trip on top of any requested long-poll
	// wait (the request deadline is wait+Timeout). Defaults to 10s.
	Timeout time.Duration
	// Attempts is the total tries per request (≥1). Defaults to 4.
	Attempts int
	// BaseDelay seeds the exponential backoff between tries; each retry
	// doubles it and adds up to 50% random jitter so a fleet of actors does
	// not re-arrive in lockstep. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the backoff jitter RNG (0 uses a time-derived seed).
	// Jitter never influences payload bytes, only retry spacing.
	JitterSeed int64
}

// Client talks to a policy distribution server. Safe for sequential use;
// use one per goroutine for concurrency.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions
	rng  *rand.Rand

	// sleep is the backoff delay function; tests may replace it.
	sleep func(time.Duration)
}

// NewClient targets baseURL (e.g. "http://127.0.0.1:9400" or a bare
// "host:port").
func NewClient(baseURL string, opts ClientOptions) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Attempts < 1 {
		opts.Attempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 50 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{}, // deadlines are per request: long-polls outlive any fixed client timeout
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
		sleep: time.Sleep,
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// doResp runs one request with retries and jittered exponential backoff and
// returns the first non-retryable response (body fully read). extra widens
// the per-attempt deadline beyond Timeout — the long-poll hold time.
func (c *Client) doResp(ctx context.Context, method, path, contentType string, body []byte, extra time.Duration, hdr http.Header) (int, http.Header, []byte, error) {
	var lastErr error
	delay := c.opts.BaseDelay
	for attempt := 1; ; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, c.opts.Timeout+extra)
		req, err := http.NewRequestWithContext(reqCtx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return 0, nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
			resp.Body.Close()
			cancel()
			switch {
			case rerr != nil:
				lastErr = fmt.Errorf("policysync: reading %s response: %w", path, rerr)
			case retryable(resp.StatusCode):
				lastErr = fmt.Errorf("policysync: %s: server answered %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
			default:
				return resp.StatusCode, resp.Header, data, nil
			}
		} else {
			cancel()
			lastErr = fmt.Errorf("policysync: %s: %w", path, err)
		}
		if attempt >= c.opts.Attempts {
			return 0, nil, nil, lastErr
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, nil, err
		}
		jittered := delay + time.Duration(c.rng.Int63n(int64(delay)/2+1))
		c.sleep(jittered)
		delay *= 2
		if delay > c.opts.MaxDelay {
			delay = c.opts.MaxDelay
		}
	}
}

// Publish ships one encoded snapshot frame and returns the serving version
// the store assigned to it.
func (c *Client) Publish(frame []byte) (uint64, error) {
	status, _, data, err := c.doResp(context.Background(), http.MethodPost, PathPolicy, "application/octet-stream", frame, 0, nil)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("policysync: publish: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
	var reply publishReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return 0, fmt.Errorf("policysync: decoding publish ack: %w", err)
	}
	return reply.Version, nil
}

// PublishNetworks encodes the per-agent actor networks and publishes them;
// the learner's one-call path.
func (c *Client) PublishNetworks(updates uint64, agents []*nn.Network) (uint64, error) {
	frame, err := EncodeSnapshot(nil, updates, agents)
	if err != nil {
		return 0, err
	}
	return c.Publish(frame)
}

// Fetch asks for a snapshot newer than after, holding the request open up to
// wait server-side. It returns a decoded, version-stamped snapshot, or
// (nil, nil) when nothing newer exists yet — both "not modified" and "never
// published" mean keep acting on what you have and poll again.
func (c *Client) Fetch(ctx context.Context, after uint64, wait time.Duration) (*Snapshot, error) {
	q := url.Values{}
	if after > 0 {
		q.Set("after", fmt.Sprintf("%d", after))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	path := PathPolicy
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	status, hdr, data, err := c.doResp(ctx, http.MethodGet, path, "", nil, wait, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		if v, ok := etagVersion(hdr.Get("ETag")); ok {
			snap.Version = v
		}
		return snap, nil
	case http.StatusNotModified, http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("policysync: fetch: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
}

// Stats fetches the server's current version, learner update count, and
// frame size.
func (c *Client) Stats() (version, updates uint64, bytes int, err error) {
	status, _, data, err := c.doResp(context.Background(), http.MethodGet, PathStats, "", nil, 0, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if status != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("policysync: stats: server answered %d: %s", status, strings.TrimSpace(string(data)))
	}
	var reply statsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return 0, 0, 0, fmt.Errorf("policysync: decoding stats: %w", err)
	}
	return reply.Version, reply.Updates, reply.Bytes, nil
}
