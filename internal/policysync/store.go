package policysync

import (
	"fmt"
	"sync"
	"time"

	"marlperf/internal/nn"
	"marlperf/internal/telemetry"
	"marlperf/internal/trace"
)

// Store holds the newest published policy frame under a monotonic serving
// version and lets fetchers block until a newer one arrives (the long-poll
// primitive). Publishes validate the frame end to end — CRC and every
// network decode — before it becomes visible, so a corrupt learner push can
// never poison subscribers.
//
// All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	version uint64
	updates uint64
	frame   []byte
	pubCtx  trace.Context // trace position of the newest publish (zero: untraced)
	notify  chan struct{} // closed and replaced on every publish
	closed  bool          // set by Close; parked Waits return immediately

	// One-deep history: the snapshot the newest publish displaced. Canary
	// serving pins the previous version as its stable arm, so the store
	// keeps exactly the last two frames — older ones are gone for good.
	prevVersion uint64
	prevUpdates uint64
	prevFrame   []byte
	prevCtx     trace.Context

	// OnPublish, when non-nil, is invoked after every accepted publish
	// (outside the lock) with the new serving version, the learner's update
	// count, and the frame size. marl-policyd uses it for its log line.
	OnPublish func(version, updates uint64, bytes int)

	published *telemetry.Counter
	rejected  *telemetry.Counter
	versionG  *telemetry.Gauge
	updatesG  *telemetry.Gauge
	bytesG    *telemetry.Gauge
}

// NewStore creates an empty store registering marl_policy_* metrics on reg
// (nil: a private registry).
func NewStore(reg *telemetry.Registry) *Store {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.SetHelp("marl_policy_version", "Serving version of the newest published policy snapshot.")
	reg.SetHelp("marl_policy_published_total", "Policy snapshots accepted for distribution.")
	return &Store{
		notify:    make(chan struct{}),
		published: reg.Counter("marl_policy_published_total"),
		rejected:  reg.Counter("marl_policy_rejected_total"),
		versionG:  reg.Gauge("marl_policy_version"),
		updatesG:  reg.Gauge("marl_policy_learner_updates"),
		bytesG:    reg.Gauge("marl_policy_bytes"),
	}
}

// Publish validates frame and, if intact, makes it the newest version.
// The frame is retained by reference; callers must not mutate it afterwards.
func (s *Store) Publish(frame []byte) (uint64, error) {
	return s.PublishCtx(frame, trace.Context{})
}

// PublishCtx is Publish carrying the publisher's trace position, recorded
// alongside the version so fetch responses can relay it to subscribers —
// the link that stitches learner update → policyd publish → actor
// hot-swap into one trace. The context never enters the frame bytes.
func (s *Store) PublishCtx(frame []byte, tctx trace.Context) (uint64, error) {
	snap, err := DecodeSnapshot(frame)
	if err != nil {
		s.rejected.Inc()
		return 0, err
	}
	return s.install(frame, snap.Updates, tctx), nil
}

// PublishNetworks encodes and publishes the per-agent actor networks; the
// embedded path learners and tests use (no HTTP hop, same validation).
func (s *Store) PublishNetworks(updates uint64, agents []*nn.Network) (uint64, error) {
	frame, err := EncodeSnapshot(nil, updates, agents)
	if err != nil {
		s.rejected.Inc()
		return 0, err
	}
	return s.install(frame, updates, trace.Context{}), nil
}

func (s *Store) install(frame []byte, updates uint64, tctx trace.Context) uint64 {
	s.mu.Lock()
	if s.version > 0 {
		s.prevVersion = s.version
		s.prevUpdates = s.updates
		s.prevFrame = s.frame
		s.prevCtx = s.pubCtx
	}
	s.version++
	version := s.version
	s.updates = updates
	s.frame = frame
	s.pubCtx = tctx
	if !s.closed {
		close(s.notify)
		s.notify = make(chan struct{})
	}
	s.mu.Unlock()

	s.published.Inc()
	s.versionG.Set(float64(version))
	s.updatesG.Set(float64(updates))
	s.bytesG.Set(float64(len(frame)))
	if s.OnPublish != nil {
		s.OnPublish(version, updates, len(frame))
	}
	return version
}

// Latest returns the newest version, the learner update count it was
// published at, and the raw frame (nil if nothing has been published).
// The frame must be treated as read-only.
func (s *Store) Latest() (version, updates uint64, frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version, s.updates, s.frame
}

// Previous returns the displaced snapshot — the version published just
// before the newest one — or (0, 0, nil) when fewer than two publishes have
// happened. The frame must be treated as read-only.
func (s *Store) Previous() (version, updates uint64, frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prevVersion, s.prevUpdates, s.prevFrame
}

// Pinned returns the frame for an exact version if the store still holds it
// (the newest or the previous publish), along with its learner update count
// and publish-time trace position. ok is false for anything older — the
// store is a two-deep window, not an archive.
func (s *Store) Pinned(version uint64) (updates uint64, frame []byte, tctx trace.Context, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case version != 0 && version == s.version:
		return s.updates, s.frame, s.pubCtx, true
	case version != 0 && version == s.prevVersion:
		return s.prevUpdates, s.prevFrame, s.prevCtx, true
	}
	return 0, nil, trace.Context{}, false
}

// PublishContext returns the newest version and the trace position its
// publish carried (zero Context when untraced). Callers pair it with the
// version a concurrent Wait/Latest returned to avoid relaying a newer
// publish's context for an older frame.
func (s *Store) PublishContext() (uint64, trace.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version, s.pubCtx
}

// Wait blocks until a version newer than after exists or timeout elapses,
// then returns the newest state (which may still be ≤ after on timeout).
// A zero or negative timeout returns immediately.
func (s *Store) Wait(after uint64, timeout time.Duration) (version, updates uint64, frame []byte) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.version > after || timeout <= 0 || s.closed {
			defer s.mu.Unlock()
			return s.version, s.updates, s.frame
		}
		ch := s.notify
		s.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return s.Latest()
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return s.Latest()
		}
	}
}

// Close releases every parked Wait immediately and makes future Waits
// return without blocking — the graceful-drain primitive: a shutting-down
// marl-policyd closes the store so in-flight long-polls finish now (with
// whatever version is current) instead of holding connections open for
// their full hold time. Publishing to a closed store still works; only
// the blocking behavior changes. Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.notify)
}

// Decode returns the newest snapshot, fully decoded and stamped with its
// serving version, or an error if nothing has been published yet. Each call
// returns freshly built networks, safe to hand to a rollout engine.
func (s *Store) Decode() (*Snapshot, error) {
	version, _, frame := s.Latest()
	if version == 0 {
		return nil, fmt.Errorf("policysync: no policy published yet")
	}
	snap, err := DecodeSnapshot(frame)
	if err != nil {
		return nil, err
	}
	snap.Version = version
	return snap, nil
}
